//! A global multiplayer game built on MultiPub.
//!
//! Games are the paper's motivating workload: sub-150 ms bounds for
//! action channels, looser bounds for chat. This example models a game
//! with three topics — a fast game-state channel, a regional-match
//! channel and a global chat — optimizes them independently (paper
//! §IV.C), then *measures* the chosen configurations end-to-end with the
//! discrete-event simulator, including a straggler client that triggers
//! the §IV.D mitigation path.
//!
//! Run with `cargo run --example global_game`.

use multipub_core::constraint::DeliveryConstraint;
use multipub_core::ids::{ClientId, TopicId};
use multipub_core::mitigation::{find_stragglers, mitigate, MitigationPolicy};
use multipub_core::optimizer::{solve_topics, Optimizer, TopicProblem};
use multipub_core::workload::{MessageBatch, Publisher, Subscriber, TopicWorkload};
use multipub_data::ec2;
use multipub_data::king::ClientLatencyModel;
use multipub_netsim::engine::Engine;
use multipub_netsim::jitter::Jitter;
use multipub_netsim::scenario::Scenario;
use multipub_sim::horizon::CostHorizon;
use multipub_sim::population::{Population, PopulationSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const INTERVAL_SECS: f64 = 60.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let regions = ec2::region_set();
    let inter = ec2::inter_region_latencies();
    let horizon = CostHorizon::per_day(INTERVAL_SECS);

    // Three topics with different populations and bounds.
    let game_state = PopulationSpec::uniform(regions.len(), 2, 8, 20.0, 256);
    let regional_match =
        PopulationSpec::localized(regions.len(), ec2::regions::AP_NORTHEAST_1, 10, 10, 10.0, 512);
    let global_chat = PopulationSpec::uniform(regions.len(), 1, 20, 0.5, 2048);

    let populations = [
        ("game-state", Population::generate(&game_state, &inter, 1), 95.0, 150.0),
        ("match/asia", Population::generate(&regional_match, &inter, 2), 95.0, 60.0),
        ("chat/global", Population::generate(&global_chat, &inter, 3), 75.0, 400.0),
    ];

    let problems: Vec<TopicProblem> = populations
        .iter()
        .map(|(_, population, ratio, max_t)| TopicProblem {
            workload: population.workload(INTERVAL_SECS),
            constraint: DeliveryConstraint::new(*ratio, *max_t).expect("valid constraint"),
        })
        .collect();

    // Topics are independent: solve them all in parallel.
    let solutions = solve_topics(&regions, &inter, &problems)?;

    println!("Per-topic optimization:");
    for ((name, _, ratio, max_t), solution) in populations.iter().zip(&solutions) {
        println!(
            "  {name:<12} <{ratio}%, {max_t} ms> -> {} | {:.1} ms | ${:.2}/day | feasible: {}",
            solution.configuration(),
            solution.evaluation().percentile_ms(),
            horizon.scale(solution.evaluation().cost_dollars()),
            solution.is_feasible()
        );
    }

    // Validate the decisions end-to-end in the discrete-event simulator.
    let topics: Vec<_> = populations
        .iter()
        .zip(&solutions)
        .enumerate()
        .map(|(i, ((name, population, _, _), solution))| {
            population.scenario_topic(TopicId::new(*name), solution.configuration(), 100 + i as u64)
        })
        .collect();
    let scenario = Scenario::new(regions.clone(), inter.clone(), topics);
    let report = Engine::new(scenario, Jitter::uniform(3.0), 7).run(INTERVAL_SECS * 1000.0);
    println!(
        "\nDiscrete-event validation ({} deliveries, ±3 ms jitter per hop):",
        report.delivery_count()
    );
    for (i, (name, _, ratio, _)) in populations.iter().enumerate() {
        println!(
            "  {name:<12} measured {ratio}th percentile: {:.1} ms",
            report.topic_percentile_ms(i, *ratio)
        );
    }
    println!("  measured cost: ${:.2}/day", report.cost_dollars_per(&regions, 86_400_000.0));

    // A player on a degraded connection joins the Asia match topic: the
    // mitigation scan detects the straggler and force-adds a region.
    let model = ClientLatencyModel::new(&inter);
    let mut rng = StdRng::seed_from_u64(9);
    let mut degraded = TopicWorkload::new(regions.len());
    for publisher in problems[1].workload.publishers() {
        degraded.add_publisher(Publisher::new(
            publisher.id(),
            publisher.latencies().to_vec(),
            MessageBatch::uniform(publisher.batch().count(), 512),
        )?)?;
    }
    for subscriber in problems[1].workload.subscribers() {
        degraded
            .add_subscriber(Subscriber::new(subscriber.id(), subscriber.latencies().to_vec())?)?;
    }
    // The straggler: 8x the usual last-mile latency, homed at Seoul.
    let straggler_row = model.sample_straggler(ec2::regions::AP_NORTHEAST_2, 8.0, &mut rng);
    degraded.add_subscriber(Subscriber::new(ClientId(900_000), straggler_row)?)?;

    let optimizer = Optimizer::new(&regions, &inter, &degraded)?;
    let constraint = problems[1].constraint;
    let base = optimizer.solve(&constraint);
    let evaluator = optimizer.evaluator();
    let stragglers = find_stragglers(evaluator, base.configuration(), &constraint);
    println!("\nStraggler scan on match/asia: {} straggler(s) detected", stragglers.len());
    let outcome =
        mitigate(evaluator, base.configuration(), &constraint, &MitigationPolicy::default());
    if outcome.added.is_empty() {
        println!("  no region addition could help (bound {constraint})");
    } else {
        for region in &outcome.added {
            println!(
                "  force-added {} ({}) for the straggler",
                regions.region(*region).name(),
                regions.region(*region).location()
            );
        }
    }
    println!("  configuration after mitigation: {}", outcome.configuration);
    Ok(())
}
