//! Content-filtered market data over MultiPub — exercising the paper's
//! future-work extension (§VII: content-based pub/sub) on the real
//! middleware.
//!
//! A quote feed publishes ticks with typed headers; subscribers attach
//! predicates (`symbol =^ "A" && price < 100`) so brokers deliver only
//! matching ticks, while the controller still optimizes the topic's
//! region placement underneath.
//!
//! The feed also demonstrates the at-least-once extensions (DESIGN.md
//! §13): the end-of-session snapshot is published at QoS 1 **retained**,
//! so the broker acks it and replays it to any trader who connects
//! after the fact — the market-data snapshot pattern.
//!
//! Run with `cargo run --release --example market_data`.

use multipub_broker::broker::Broker;
use multipub_broker::client::{ClientConfig, PublisherClient, SubscriberClient};
use multipub_broker::controller::Controller;
use multipub_core::constraint::DeliveryConstraint;
use multipub_core::ids::RegionId;
use multipub_core::latency::InterRegionMatrix;
use multipub_core::region::{Region, RegionSet};
use multipub_filter::Headers;
use std::net::SocketAddr;
use std::time::Duration;

#[tokio::main]
async fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two regions: New York (cheap) and São Paulo (expensive).
    let regions = RegionSet::new(vec![
        Region::new("us-east-1", "N. Virginia", 0.02, 0.09),
        Region::new("sa-east-1", "Sao Paulo", 0.16, 0.25),
    ])?;
    let inter = InterRegionMatrix::from_rows(vec![vec![0.0, 60.0], vec![60.0, 0.0]])?;

    // Retention on: the brokers keep each topic's last retained value
    // for late subscribers.
    let broker_ny = Broker::builder(RegionId(0)).retain(true).spawn().await?;
    let broker_sp = Broker::builder(RegionId(1)).retain(true).spawn().await?;
    broker_ny.add_peer(RegionId(1), broker_sp.local_addr());
    broker_sp.add_peer(RegionId(0), broker_ny.local_addr());
    let addrs: Vec<SocketAddr> = vec![broker_ny.local_addr(), broker_sp.local_addr()];

    // A São Paulo trader wants cheap Brazilian large-caps only; a New York
    // analyst takes the whole feed.
    let mut trader = SubscriberClient::new(ClientConfig {
        client_id: 2,
        region_addrs: addrs.clone(),
        latencies_ms: vec![75.0, 8.0],
        emulate_wan: false,
        ..ClientConfig::new(0, Vec::new())
    })?;
    trader
        .subscribe_filtered("ticks/latam", r#"exchange == "B3" && price < 50 && !halted == true"#)
        .await?;
    let mut analyst = SubscriberClient::new(ClientConfig {
        client_id: 3,
        region_addrs: addrs.clone(),
        latencies_ms: vec![6.0, 80.0],
        emulate_wan: false,
        ..ClientConfig::new(0, Vec::new())
    })?;
    analyst.subscribe("ticks/latam").await?;
    tokio::time::sleep(Duration::from_millis(100)).await;

    // The session-close snapshot topic runs at QoS 1: the feed keeps
    // retransmitting until a broker acks, so the snapshot cannot be
    // lost to a flaky socket.
    let mut feed = PublisherClient::new(ClientConfig {
        client_id: 1,
        region_addrs: addrs.clone(),
        latencies_ms: vec![5.0, 78.0],
        emulate_wan: false,
        qos1_topics: vec!["ticks/latam/close".to_string()],
        ..ClientConfig::new(0, Vec::new())
    })?;

    let ticks = [
        ("PETR4", "B3", 38.2, false),
        ("VALE3", "B3", 61.9, false),
        ("ITUB4", "B3", 27.4, false),
        ("AAPL", "NASDAQ", 189.3, false),
        ("BBAS3", "B3", 26.1, true), // halted
    ];
    println!("Publishing {} ticks:", ticks.len());
    for (symbol, exchange, price, halted) in ticks {
        let mut headers = Headers::new();
        headers
            .set("symbol", symbol)
            .set("exchange", exchange)
            .set("price", price)
            .set("halted", halted);
        feed.publish_with_headers("ticks/latam", &headers, symbol.as_bytes().to_vec()).await?;
        println!("  {symbol:<6} {exchange:<7} {price:>7.2} halted={halted}");
    }

    println!("\nAnalyst (unfiltered) receives:");
    for _ in 0..ticks.len() {
        let d = tokio::time::timeout(Duration::from_secs(5), analyst.next_delivery()).await??;
        println!("  {}", String::from_utf8_lossy(&d.payload));
    }
    println!("Trader (B3, price < 50, not halted) receives:");
    for _ in 0..2 {
        let d = tokio::time::timeout(Duration::from_secs(5), trader.next_delivery()).await??;
        println!(
            "  {} @ {}",
            String::from_utf8_lossy(&d.payload),
            d.headers.get("price").expect("price header")
        );
    }

    // Session close: publish the closing prices as a retained QoS 1
    // snapshot. The broker acks it (at-least-once) and stores it as the
    // topic's last value.
    let mut close = Headers::new();
    close.set("session", "2016-06-14").set("exchange", "B3");
    feed.publish_retained("ticks/latam/close", &close, &b"PETR4=38.20 VALE3=61.90"[..]).await?;
    if feed.await_acked(Duration::from_secs(5)).await {
        println!("\nClosing snapshot published, retained and acked by the broker.");
    }

    // A latecomer connecting *after* the close still gets the snapshot:
    // the broker replays the retained value on subscribe.
    let mut latecomer = SubscriberClient::new(ClientConfig {
        client_id: 4,
        region_addrs: addrs.clone(),
        latencies_ms: vec![70.0, 9.0],
        emulate_wan: false,
        ..ClientConfig::new(0, Vec::new())
    })?;
    latecomer.subscribe("ticks/latam/close").await?;
    let replay = tokio::time::timeout(Duration::from_secs(5), latecomer.next_delivery()).await??;
    println!(
        "Latecomer receives the snapshot (retained replay = {}): {}",
        replay.retained,
        String::from_utf8_lossy(&replay.payload)
    );

    // The controller optimizes the topic placement underneath the filters.
    let mut controller =
        Controller::connect(regions, inter, &addrs, DeliveryConstraint::new(95.0, 250.0)?).await?;
    controller.register_client(1, vec![5.0, 78.0]);
    controller.register_client(2, vec![75.0, 8.0]);
    controller.register_client(3, vec![6.0, 80.0]);
    let decisions = controller.optimize_once().await;
    println!("\nController decision:");
    for d in &decisions {
        println!(
            "  {} -> {} ({:.1} ms predicted, feasible {})",
            d.topic, d.configuration, d.percentile_ms, d.feasible
        );
    }
    Ok(())
}
