//! A push-notification service on MultiPub.
//!
//! Push notifications are fan-out-heavy: few publishers (the backend),
//! enormous subscriber populations, modest latency bounds. This example
//! shows how proportional client bundling (paper §V.F) keeps the solve
//! tractable at 20 000 subscribers, and how the optimizer's choice moves
//! as the notification deadline relaxes.
//!
//! Run with `cargo run --release --example push_notifications`.

use multipub_core::constraint::DeliveryConstraint;
use multipub_core::optimizer::Optimizer;
use multipub_core::scaling::{bundle_clients, prune_regions, BundleOptions, PruneOptions};
use multipub_data::ec2;
use multipub_sim::horizon::CostHorizon;
use multipub_sim::population::{Population, PopulationSpec};
use multipub_sim::table::{dollars, millis, Table};
use std::time::Instant;

const INTERVAL_SECS: f64 = 60.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let regions = ec2::region_set();
    let inter = ec2::inter_region_latencies();
    let horizon = CostHorizon::per_day(INTERVAL_SECS);

    // 3 backend publishers (us-east-1), 2 000 subscribers near each of the
    // 10 regions, one 4 KiB notification per publisher per second.
    let mut spec = PopulationSpec::uniform(regions.len(), 0, 2000, 1.0, 4096);
    spec.pubs_per_region[ec2::regions::US_EAST_1.index()] = 3;
    let population = Population::generate(&spec, &inter, 11);
    let workload = population.workload(INTERVAL_SECS);
    println!(
        "Workload: {} publishers, {} subscribers, {} notifications per interval",
        workload.publisher_count(),
        workload.subscriber_count(),
        workload.total_messages()
    );

    // Bundle near-identical subscribers into weighted virtual clients.
    let bundled = bundle_clients(&workload, &BundleOptions { epsilon_ms: 8.0 });
    println!(
        "After bundling (ε = 8 ms): {} virtual subscribers for {} real ones",
        bundled.subscriber_count(),
        bundled.subscriber_weight()
    );

    // Prune regions that are home to almost nobody.
    let allowed = prune_regions(&regions, &bundled, &PruneOptions::default())?;
    println!("Pruned search space: {} of {} regions\n", allowed.count(), regions.len());

    let optimizer = Optimizer::new(&regions, &inter, &bundled)?.with_allowed_regions(allowed);

    let mut table =
        Table::new(["deadline (ms)", "achieved (ms)", "$/day", "#regions", "mode", "solve (ms)"]);
    for deadline in [120.0, 160.0, 200.0, 300.0, 500.0] {
        let constraint = DeliveryConstraint::new(95.0, deadline)?;
        let start = Instant::now();
        let solution = optimizer.solve(&constraint);
        let elapsed = start.elapsed().as_secs_f64() * 1000.0;
        table.push_row([
            millis(deadline),
            millis(solution.evaluation().percentile_ms()),
            dollars(horizon.scale(solution.evaluation().cost_dollars())),
            solution.configuration().region_count().to_string(),
            solution.configuration().mode().to_string(),
            format!("{elapsed:.1}"),
        ]);
    }
    println!("95% of notifications within the deadline:");
    println!("{}", table.to_markdown());

    // The money slide: bundling + pruning vs the exact solve.
    let constraint = DeliveryConstraint::new(95.0, 200.0)?;
    let start = Instant::now();
    let exact = Optimizer::new(&regions, &inter, &workload)?.solve(&constraint);
    let exact_ms = start.elapsed().as_secs_f64() * 1000.0;
    let start = Instant::now();
    let approx = optimizer.solve(&constraint);
    let approx_ms = start.elapsed().as_secs_f64() * 1000.0;
    println!(
        "Exact solve:   {:.1} ms, ${:.2}/day",
        exact_ms,
        horizon.scale(exact.evaluation().cost_dollars())
    );
    println!(
        "Heuristic:     {:.1} ms, ${:.2}/day",
        approx_ms,
        horizon.scale(approx.evaluation().cost_dollars())
    );
    println!(
        "Speedup {:.1}x with {:.2}% cost gap",
        exact_ms / approx_ms.max(1e-6),
        100.0
            * (horizon.scale(approx.evaluation().cost_dollars())
                / horizon.scale(exact.evaluation().cost_dollars()).max(f64::MIN_POSITIVE)
                - 1.0)
    );
    Ok(())
}
