//! A live three-region MultiPub deployment on loopback.
//!
//! Spawns real brokers (Virginia, Frankfurt, Tokyo) with WAN latencies
//! injected from the EC2 matrix, real publisher/subscriber clients, and
//! the controller. Traffic flows, the region managers report, the
//! controller optimizes, the clients re-steer — and the measured
//! end-to-end latencies before and after reconfiguration are printed.
//!
//! Run with `cargo run --release --example live_broker`.

use multipub_broker::broker::Broker;
use multipub_broker::client::{ClientConfig, PublisherClient, SubscriberClient};
use multipub_broker::controller::Controller;
use multipub_broker::delay::DelayTable;
use multipub_core::constraint::DeliveryConstraint;
use multipub_core::ids::RegionId;
use multipub_core::latency::InterRegionMatrix;
use multipub_data::ec2;
use std::net::SocketAddr;
use std::time::Duration;

/// The three regions of this demo, as indices into the EC2 tables.
const DEMO_REGIONS: [RegionId; 3] =
    [ec2::regions::US_EAST_1, ec2::regions::EU_CENTRAL_1, ec2::regions::AP_NORTHEAST_1];

#[tokio::main]
async fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Restrict the EC2 dataset to the three demo regions (renumbered 0-2).
    let full_regions = ec2::region_set();
    let regions = multipub_core::region::RegionSet::new(
        DEMO_REGIONS.iter().map(|&r| full_regions.region(r).clone()).collect(),
    )?;
    let inter = ec2::inter_region_latencies().restrict(&DEMO_REGIONS)?;

    // Client placement: publisher + subscriber in Virginia, subscriber in
    // Frankfurt. Tokyo serves nobody — the controller should drop it.
    let pub_virginia = client_row(&inter, 0, 8.0);
    let sub_virginia = client_row(&inter, 0, 10.0);
    let sub_frankfurt = client_row(&inter, 1, 12.0);

    // Spawn one broker per region with the inter-region delays installed,
    // plus per-client downlink delays.
    let mut brokers = Vec::new();
    for region in 0..3u8 {
        let mut delays = DelayTable::with_region_delays_ms(inter.row(RegionId(region)));
        delays.set_client_delay_ms(100, pub_virginia[region as usize]);
        delays.set_client_delay_ms(200, sub_virginia[region as usize]);
        delays.set_client_delay_ms(201, sub_frankfurt[region as usize]);
        brokers.push(Broker::builder(RegionId(region)).delays(delays).spawn().await?);
    }
    let addrs: Vec<SocketAddr> = brokers.iter().map(Broker::local_addr).collect();
    for (i, broker) in brokers.iter().enumerate() {
        for (j, addr) in addrs.iter().enumerate() {
            if i != j {
                broker.add_peer(RegionId(j as u8), *addr);
            }
        }
    }
    println!("Brokers listening:");
    for (i, addr) in addrs.iter().enumerate() {
        println!("  {} -> {addr}", regions.region(RegionId(i as u8)).name());
    }

    // Clients with WAN-emulated uplinks.
    let mut sub_near = SubscriberClient::new(ClientConfig {
        client_id: 200,
        region_addrs: addrs.clone(),
        latencies_ms: sub_virginia.clone(),
        emulate_wan: true,
        ..ClientConfig::new(0, Vec::new())
    })?;
    sub_near.subscribe("match/scores").await?;
    let mut sub_eu = SubscriberClient::new(ClientConfig {
        client_id: 201,
        region_addrs: addrs.clone(),
        latencies_ms: sub_frankfurt.clone(),
        emulate_wan: true,
        ..ClientConfig::new(0, Vec::new())
    })?;
    sub_eu.subscribe("match/scores").await?;
    tokio::time::sleep(Duration::from_millis(100)).await;

    let mut publisher = PublisherClient::new(ClientConfig {
        client_id: 100,
        region_addrs: addrs.clone(),
        latencies_ms: pub_virginia.clone(),
        emulate_wan: true,
        ..ClientConfig::new(0, Vec::new())
    })?;

    // Phase 1: bootstrap configuration (all regions, routed).
    println!("\nPhase 1 — bootstrap config (all regions, routed):");
    let (a, b) = round_trip(&mut publisher, &mut sub_near, &mut sub_eu, 10, b"goal!").await?;
    println!("  Virginia subscriber:  {a:.1} ms measured");
    println!("  Frankfurt subscriber: {b:.1} ms measured");

    // Controller: require 95% within 160 ms and optimize.
    let constraint = DeliveryConstraint::new(95.0, 160.0)?;
    let mut controller =
        Controller::connect(regions.clone(), inter.clone(), &addrs, constraint).await?;
    controller.register_client(100, pub_virginia);
    controller.register_client(200, sub_virginia);
    controller.register_client(201, sub_frankfurt);

    let decisions = controller.optimize_once().await;
    println!("\nController decisions:");
    for decision in &decisions {
        println!(
            "  {} -> {} (feasible: {}, predicted {:.1} ms)",
            decision.topic, decision.configuration, decision.feasible, decision.percentile_ms
        );
    }

    // Let the reconfiguration propagate, then measure again.
    tokio::time::sleep(Duration::from_millis(200)).await;
    println!("\nPhase 2 — optimized configuration:");
    let (a, b) = round_trip(&mut publisher, &mut sub_near, &mut sub_eu, 10, b"goal!").await?;
    println!("  Virginia subscriber:  {a:.1} ms measured");
    println!("  Frankfurt subscriber: {b:.1} ms measured");
    println!(
        "  subscriber regions: Virginia -> {:?}, Frankfurt -> {:?}",
        sub_near.subscribed_region("match/scores"),
        sub_eu.subscribed_region("match/scores"),
    );
    Ok(())
}

/// A client latency row: `last_mile` to its home region, inflated
/// backbone distance elsewhere.
fn client_row(inter: &InterRegionMatrix, home: u8, last_mile: f64) -> Vec<f64> {
    (0..inter.len())
        .map(|r| last_mile + 1.3 * inter.latency(RegionId(home), RegionId(r as u8)))
        .collect()
}

/// Publishes `count` messages and returns the mean measured delivery time
/// per subscriber (ms).
async fn round_trip(
    publisher: &mut PublisherClient,
    sub_a: &mut SubscriberClient,
    sub_b: &mut SubscriberClient,
    count: usize,
    payload: &[u8],
) -> Result<(f64, f64), Box<dyn std::error::Error>> {
    let mut total_a = 0.0;
    let mut total_b = 0.0;
    for _ in 0..count {
        publisher.publish("match/scores", payload.to_vec()).await?;
        let da = tokio::time::timeout(Duration::from_secs(5), sub_a.next_delivery()).await??;
        let db = tokio::time::timeout(Duration::from_secs(5), sub_b.next_delivery()).await??;
        total_a += da.latency_ms();
        total_b += db.latency_ms();
    }
    Ok((total_a / count as f64, total_b / count as f64))
}
