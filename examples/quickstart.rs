//! Quickstart: optimize a single topic over the 10 EC2 regions.
//!
//! Run with `cargo run --example quickstart`.

use multipub_core::prelude::*;
use multipub_data::ec2;
use multipub_sim::horizon::CostHorizon;
use multipub_sim::population::{Population, PopulationSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The deployment: Amazon EC2's 10 regions (paper Table I) and their
    // measured one-way inter-region latencies.
    let regions = ec2::region_set();
    let inter = ec2::inter_region_latencies();

    println!("Deployment: {} regions", regions.len());
    for (id, region) in regions.iter() {
        println!(
            "  {id}  {:<16} {:<14} ${:.2}/GB inter, ${:.3}/GB internet",
            region.name(),
            region.location(),
            region.inter_region_cost_per_gb(),
            region.internet_cost_per_gb()
        );
    }

    // A topic with 5 publishers and 5 subscribers near every region,
    // each publisher sending 1 KiB once per second.
    let spec = PopulationSpec::uniform(regions.len(), 5, 5, 1.0, 1024);
    let population = Population::generate(&spec, &inter, 42);
    let interval_secs = 60.0;
    let workload = population.workload(interval_secs);
    let horizon = CostHorizon::per_day(interval_secs);

    println!(
        "\nTopic: {} publishers, {} subscribers, {} messages per {interval_secs}s interval",
        workload.publisher_count(),
        workload.subscriber_count(),
        workload.total_messages()
    );

    // Require 75 % of deliveries within 150 ms and let MultiPub pick the
    // cheapest configuration that satisfies it.
    let constraint = DeliveryConstraint::new(75.0, 150.0)?;
    let optimizer = Optimizer::new(&regions, &inter, &workload)?;
    let solution = optimizer.solve(&constraint);

    println!("\nConstraint: {constraint}");
    println!("MultiPub chose: {}", solution.configuration());
    println!("  regions:");
    for region in solution.configuration().assignment().iter() {
        println!("    {} ({})", regions.region(region).name(), regions.region(region).location());
    }
    println!("  achieved 75th percentile: {:.1} ms", solution.evaluation().percentile_ms());
    println!("  cost: ${:.2}/day", horizon.scale(solution.evaluation().cost_dollars()));
    println!("  feasible: {}", solution.is_feasible());
    println!("  configurations considered: {}", solution.configurations_considered());

    // Compare against the two static deployments from the paper.
    let all = optimizer.solve_all_regions(DeliveryMode::Routed, &constraint);
    let one = optimizer.solve_one_region(&constraint);
    println!("\nBaselines:");
    println!(
        "  All Regions (routed): {:.1} ms, ${:.2}/day",
        all.evaluation().percentile_ms(),
        horizon.scale(all.evaluation().cost_dollars())
    );
    println!(
        "  One Region:           {:.1} ms, ${:.2}/day",
        one.evaluation().percentile_ms(),
        horizon.scale(one.evaluation().cost_dollars())
    );
    let saving = 1.0
        - solution.evaluation().cost_dollars()
            / all.evaluation().cost_dollars().max(f64::MIN_POSITIVE);
    println!("\nMultiPub saves {:.0}% vs All Regions while meeting {constraint}", saving * 100.0);
    Ok(())
}
