//! The paper's §III.A5 running example, closed-loop: a North-America-only
//! topic is served from one US region; European publishers and
//! subscribers join; EU↔EU publications start crossing the Atlantic
//! twice and blow the delivery bound; the controller reacts by adding a
//! European region, after which every message crosses the Atlantic at
//! most once.
//!
//! Run with `cargo run --release --example adaptive_reconfig`.

use multipub_core::constraint::DeliveryConstraint;
use multipub_data::ec2;
use multipub_netsim::jitter::Jitter;
use multipub_sim::adaptive::{AdaptiveLoop, Phase};
use multipub_sim::population::{Population, PopulationSpec};
use multipub_sim::table::{dollars, millis, Table};

fn population(pubs: &[(usize, usize)], subs: &[(usize, usize)], seed: u64) -> Population {
    let mut spec = PopulationSpec::uniform(10, 0, 0, 2.0, 1024);
    for &(region, count) in pubs {
        spec.pubs_per_region[region] = count;
    }
    for &(region, count) in subs {
        spec.subs_per_region[region] = count;
    }
    Population::generate(&spec, &ec2::inter_region_latencies(), seed)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let us = ec2::regions::US_EAST_1.index();
    let eu = ec2::regions::EU_CENTRAL_1.index();

    let constraint = DeliveryConstraint::new(95.0, 150.0)?;
    let control = AdaptiveLoop::new(
        ec2::region_set(),
        ec2::inter_region_latencies(),
        constraint,
        30.0, // 30 s observation intervals
    )
    .with_jitter(Jitter::uniform(2.0))
    .with_seed(2017);

    let phases = [
        // Phase A: 10 publishers + 10 subscribers in North America.
        Phase { population: population(&[(us, 10)], &[(us, 10)], 1), intervals: 3 },
        // Phase B: 10 publishers + 10 subscribers appear in Europe.
        Phase {
            population: population(&[(us, 10), (eu, 10)], &[(us, 10), (eu, 10)], 2),
            intervals: 3,
        },
    ];

    println!("Adaptive control loop, constraint {constraint}:");
    let outcomes = control.run(&phases);

    let mut table = Table::new([
        "interval",
        "phase",
        "config in force",
        "measured p95 (ms)",
        "met bound",
        "cost ($/interval)",
        "installed for next",
    ]);
    for outcome in &outcomes {
        let phase = if outcome.interval < 3 { "NA only" } else { "NA + EU" };
        table.push_row([
            outcome.interval.to_string(),
            phase.to_string(),
            outcome.configuration.to_string(),
            millis(outcome.measured_percentile_ms),
            outcome.met_bound.to_string(),
            dollars(outcome.measured_cost_dollars * 1e3) + "e-3",
            outcome.next_configuration.to_string(),
        ]);
    }
    println!("{}", table.to_markdown());

    let settled_na = outcomes[1].configuration;
    let reacted = outcomes[3].next_configuration;
    println!("Settled NA-only configuration:  {settled_na}");
    println!("Configuration after EU joins:   {reacted}");
    let regions = ec2::region_set();
    let names: Vec<&str> = reacted.assignment().iter().map(|r| regions.region(r).name()).collect();
    println!("Serving regions now: {names:?}");
    Ok(())
}
