//! Regenerates every table and figure of the paper's evaluation (§V).
//!
//! ```text
//! cargo run --release --example paper_experiments            # everything
//! cargo run --release --example paper_experiments -- 1       # Figure 3 only
//! cargo run --release --example paper_experiments -- 3 --quick
//! ```
//!
//! `--quick` shrinks populations and sweeps for a fast smoke run; omit it
//! to reproduce the paper-scale settings.

use multipub_sim::experiments::{exp1, exp2, exp3, exp4};
use multipub_sim::table::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<u32> = args.iter().filter_map(|a| a.parse().ok()).collect();
    let wants = |n: u32| selected.is_empty() || selected.contains(&n);

    println!("MultiPub paper experiments (quick = {quick})\n");

    if wants(0) {
        print_table_i();
    }
    if wants(1) {
        run_exp1(quick);
    }
    if wants(2) {
        run_exp2(quick);
    }
    if wants(3) {
        run_exp3(quick);
    }
    if wants(4) {
        run_exp4(quick);
    }
}

fn print_table_i() {
    println!("== Table I: EC2 outgoing bandwidth costs ==");
    let regions = multipub_data::ec2::region_set();
    let mut table = Table::new(["R", "Region", "Location", "$EC2", "$Inet"]);
    for (id, region) in regions.iter() {
        table.push_row([
            format!("R{}", id.index() + 1),
            region.name().to_string(),
            region.location().to_string(),
            format!("{}", region.inter_region_cost_per_gb()),
            format!("{}", region.internet_cost_per_gb()),
        ]);
    }
    println!("{}", table.to_markdown());
}

fn run_exp1(quick: bool) {
    println!("== Experiment 1 / Figure 3: MultiPub vs other approaches ==");
    let params = if quick {
        exp1::Exp1Params {
            pubs_per_region: 3,
            subs_per_region: 3,
            step_ms: 10.0,
            ..Default::default()
        }
    } else {
        exp1::Exp1Params::default()
    };
    let result = exp1::run(&params);
    println!("{}", result.table().to_markdown());
    println!(
        "Peak MultiPub saving vs All Regions: {:.0}% (paper: 28%)\n",
        result.peak_saving_vs_all_regions() * 100.0
    );
}

fn run_exp2(quick: bool) {
    println!("== Experiment 2 / Figure 4: direct vs routed delivery ==");
    let params = if quick {
        exp2::Exp2Params {
            publishers: 20,
            asia_subscribers: 8,
            usa_subscribers: 8,
            step_ms: 10.0,
            ..Default::default()
        }
    } else {
        exp2::Exp2Params::default()
    };
    let result = exp2::run(&params);
    println!("{}", result.table().to_markdown());
    println!(
        "Min delivery: MultiPub-R {:.0} ms vs MultiPub-D {:.0} ms (paper: 94 vs 110)\n",
        result.min_delivery_ms(|r| r.routed_only),
        result.min_delivery_ms(|r| r.direct_only)
    );
}

fn run_exp3(quick: bool) {
    for (label, mut params, paper) in [
        ("Figure 5a: Asia (Tokyo)", exp3::Exp3Params::asia(), 36),
        ("Figure 5b: South America (São Paulo)", exp3::Exp3Params::south_america(), 65),
    ] {
        println!("== Experiment 3 / {label} ==");
        if quick {
            params.publishers = 20;
            params.subscribers = 20;
            params.step_ms = 25.0;
        }
        let result = exp3::run(&params);
        println!("{}", result.table().to_markdown());
        println!(
            "Peak saving vs local-only: {:.0}% (paper: {paper}%)\n",
            result.peak_saving() * 100.0
        );
    }
}

fn run_exp4(quick: bool) {
    println!("== Experiment 4 / Figure 6: runtime analysis ==");
    let params = exp4::Exp4Params::default();
    println!("-- Figure 6a: clients scale (10 regions) --");
    let a = if quick {
        exp4::run_scaling_clients(&params, 10, 40, 10)
    } else {
        exp4::run_scaling_clients(&params, 10, 100, 10)
    };
    println!("{}", a.table().to_markdown());
    println!("-- Figure 6b: regions scale (100+100 clients) --");
    let b = if quick {
        exp4::run_scaling_regions(&params, 30, 2, 8)
    } else {
        exp4::run_scaling_regions(&params, 100, 2, 10)
    };
    println!("{}", b.table().to_markdown());
    println!("-- Asymmetric settings --");
    let c = if quick {
        exp4::run_asymmetric(&params, &[(10, 100), (100, 10)])
    } else {
        exp4::run_asymmetric(&params, &[(10, 1000), (1000, 10)])
    };
    println!("{}", c.table().to_markdown());
}
