//! Integration-test host crate for the MultiPub workspace.
//!
//! All content lives in the `tests/` directory of this package; the
//! library itself is intentionally empty.
