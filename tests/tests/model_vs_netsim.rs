//! Cross-validation of the analytic model (`multipub-core`) against the
//! discrete-event simulator (`multipub-netsim`).
//!
//! With jitter disabled, the simulator must reproduce the model *exactly*:
//! same delivery-time percentiles (Eq. 1–2, 5–6) and same bandwidth cost
//! (Eq. 3–4), for every configuration and both delivery modes.

use multipub_core::assignment::{AssignmentVector, Configuration, DeliveryMode};
use multipub_core::constraint::DeliveryConstraint;
use multipub_core::evaluate::TopicEvaluator;
use multipub_core::ids::TopicId;
use multipub_data::ec2;
use multipub_netsim::engine::Engine;
use multipub_netsim::jitter::Jitter;
use multipub_netsim::scenario::Scenario;
use multipub_sim::population::{Population, PopulationSpec};

const DURATION_MS: f64 = 10_000.0;

/// Runs one (population, configuration) pair through both the evaluator
/// and the simulator and asserts agreement.
fn assert_agreement(population: &Population, configuration: Configuration, seed: u64) {
    let regions = ec2::region_set();
    let inter = ec2::inter_region_latencies();
    let workload = population.workload(DURATION_MS / 1000.0);
    let evaluator = TopicEvaluator::new(&regions, &inter, &workload).unwrap();

    let topic = population.scenario_topic(TopicId::new("t"), configuration, seed);
    let scenario = Scenario::new(regions.clone(), inter.clone(), vec![topic]);
    let report = Engine::new(scenario, Jitter::disabled(), seed).run(DURATION_MS);

    // Same number of deliveries.
    assert_eq!(report.delivery_count(), workload.total_deliveries(), "{configuration}");

    // Same percentile at several ratios.
    for ratio in [25.0, 50.0, 75.0, 95.0, 100.0] {
        let constraint = DeliveryConstraint::new(ratio, 1000.0).unwrap();
        let predicted = evaluator.evaluate(configuration, &constraint).percentile_ms();
        let measured = report.percentile_ms(ratio);
        assert!(
            (predicted - measured).abs() < 1e-6,
            "{configuration} ratio {ratio}: predicted {predicted}, measured {measured}"
        );
    }

    // Same cost.
    let constraint = DeliveryConstraint::new(75.0, 1000.0).unwrap();
    let predicted_cost = evaluator.evaluate(configuration, &constraint).cost_dollars();
    let measured_cost = report.cost_dollars(&regions);
    assert!(
        (predicted_cost - measured_cost).abs() <= predicted_cost.abs() * 1e-9 + 1e-15,
        "{configuration}: predicted ${predicted_cost}, measured ${measured_cost}"
    );
}

fn small_population(seed: u64) -> Population {
    let inter = ec2::inter_region_latencies();
    let mut spec = PopulationSpec::uniform(10, 0, 0, 2.0, 512);
    spec.pubs_per_region[0] = 2;
    spec.pubs_per_region[5] = 1;
    spec.subs_per_region[0] = 2;
    spec.subs_per_region[4] = 1;
    spec.subs_per_region[9] = 2;
    Population::generate(&spec, &inter, seed)
}

#[test]
fn direct_all_regions_agrees() {
    let population = small_population(1);
    let config = Configuration::new(AssignmentVector::all(10).unwrap(), DeliveryMode::Direct);
    assert_agreement(&population, config, 1);
}

#[test]
fn routed_all_regions_agrees() {
    let population = small_population(2);
    let config = Configuration::new(AssignmentVector::all(10).unwrap(), DeliveryMode::Routed);
    assert_agreement(&population, config, 2);
}

#[test]
fn single_region_agrees() {
    let population = small_population(3);
    let config = Configuration::new(
        AssignmentVector::single(ec2::regions::EU_WEST_1, 10).unwrap(),
        DeliveryMode::Direct,
    );
    assert_agreement(&population, config, 3);
}

#[test]
fn sparse_assignments_agree_in_both_modes() {
    let population = small_population(4);
    for mask in [0b0000000011u32, 0b1000010001, 0b0000110000, 0b1111111111] {
        for mode in [DeliveryMode::Direct, DeliveryMode::Routed] {
            let config = Configuration::new(AssignmentVector::from_mask(mask, 10).unwrap(), mode);
            assert_agreement(&population, config, u64::from(mask));
        }
    }
}

#[test]
fn optimizer_choice_agrees_end_to_end() {
    // The configuration the optimizer picks must behave in simulation
    // exactly as the optimizer predicted.
    let regions = ec2::region_set();
    let inter = ec2::inter_region_latencies();
    let population = small_population(5);
    let workload = population.workload(DURATION_MS / 1000.0);
    let constraint = DeliveryConstraint::new(75.0, 150.0).unwrap();
    let solution = multipub_core::optimizer::Optimizer::new(&regions, &inter, &workload)
        .unwrap()
        .solve(&constraint);
    assert_agreement(&population, solution.configuration(), 5);
}

#[test]
fn jitter_widens_but_never_shrinks_latency() {
    let population = small_population(6);
    let config = Configuration::new(AssignmentVector::all(10).unwrap(), DeliveryMode::Routed);
    let regions = ec2::region_set();
    let inter = ec2::inter_region_latencies();
    let build = |jitter| {
        let topic = population.scenario_topic(TopicId::new("t"), config, 6);
        let scenario = Scenario::new(regions.clone(), inter.clone(), vec![topic]);
        Engine::new(scenario, jitter, 99).run(DURATION_MS)
    };
    let clean = build(Jitter::disabled());
    let noisy = build(Jitter::uniform(8.0));
    assert_eq!(clean.delivery_count(), noisy.delivery_count());
    for ratio in [50.0, 95.0] {
        assert!(noisy.percentile_ms(ratio) >= clean.percentile_ms(ratio));
        // ≤ 3 hops × 8 ms of extra delay.
        assert!(noisy.percentile_ms(ratio) <= clean.percentile_ms(ratio) + 24.0);
    }
    // Jitter does not change what is billed.
    assert!((noisy.cost_dollars(&regions) - clean.cost_dollars(&regions)).abs() < 1e-15);
}
