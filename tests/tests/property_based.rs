//! Property-based tests over the core model's invariants, driven by
//! randomly generated workloads and deployments.

use multipub_core::assignment::{
    enumerate_configurations, AssignmentVector, Configuration, DeliveryMode, ModePolicy,
};
use multipub_core::constraint::DeliveryConstraint;
use multipub_core::delivery::{materialized_percentile, weighted_percentile, WeightedSample};
use multipub_core::evaluate::TopicEvaluator;
use multipub_core::ids::ClientId;
use multipub_core::latency::InterRegionMatrix;
use multipub_core::optimizer::Optimizer;
use multipub_core::region::{Region, RegionSet};
use multipub_core::workload::{MessageBatch, Publisher, Subscriber, TopicWorkload};
use proptest::prelude::*;

/// A random deployment of 2–5 regions with random symmetric latencies and
/// random prices.
fn arb_deployment() -> impl Strategy<Value = (RegionSet, InterRegionMatrix)> {
    (2usize..=5).prop_flat_map(|n| {
        let prices = proptest::collection::vec((0.01f64..0.3, 0.05f64..0.5), n);
        let pairs = proptest::collection::vec(1.0f64..200.0, n * n);
        (prices, pairs).prop_map(move |(prices, pairs)| {
            let regions = RegionSet::new(
                prices
                    .iter()
                    .enumerate()
                    .map(|(i, &(alpha, beta))| Region::new(format!("r{i}"), "x", alpha, beta))
                    .collect(),
            )
            .unwrap();
            let mut rows = vec![vec![0.0; n]; n];
            for i in 0..n {
                for j in (i + 1)..n {
                    let v = pairs[i * n + j];
                    rows[i][j] = v;
                    rows[j][i] = v;
                }
            }
            (regions, InterRegionMatrix::from_rows(rows).unwrap())
        })
    })
}

/// A random workload over `n` regions: 1–4 publishers, 1–6 subscribers.
fn arb_workload(n: usize) -> impl Strategy<Value = TopicWorkload> {
    let publishers = proptest::collection::vec(
        (proptest::collection::vec(1.0f64..300.0, n), 1u64..20, 64u64..2048),
        1..=4,
    );
    let subscribers =
        proptest::collection::vec((proptest::collection::vec(1.0f64..300.0, n), 1u64..4), 1..=6);
    (publishers, subscribers).prop_map(move |(pubs, subs)| {
        let mut workload = TopicWorkload::new(n);
        for (i, (lat, count, size)) in pubs.into_iter().enumerate() {
            workload
                .add_publisher(
                    Publisher::new(ClientId(i as u64), lat, MessageBatch::uniform(count, size))
                        .unwrap(),
                )
                .unwrap();
        }
        for (i, (lat, weight)) in subs.into_iter().enumerate() {
            workload
                .add_subscriber(
                    Subscriber::with_weight(ClientId(1000 + i as u64), lat, weight).unwrap(),
                )
                .unwrap();
        }
        workload
    })
}

fn arb_problem() -> impl Strategy<Value = (RegionSet, InterRegionMatrix, TopicWorkload)> {
    arb_deployment().prop_flat_map(|(regions, inter)| {
        let n = regions.len();
        arb_workload(n).prop_map(move |w| (regions.clone(), inter.clone(), w))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// D1: the weighted percentile equals the paper's materialized list.
    #[test]
    fn weighted_percentile_matches_materialized(
        samples in proptest::collection::vec((0.0f64..500.0, 1u64..6), 1..12),
        ratio in 1.0f64..=100.0,
    ) {
        let samples: Vec<WeightedSample> = samples
            .into_iter()
            .map(|(time_ms, weight)| WeightedSample { time_ms, weight })
            .collect();
        let total: u64 = samples.iter().map(|s| s.weight).sum();
        let rank = (ratio / 100.0 * total as f64).ceil() as u64;
        let mut sorted = samples.clone();
        prop_assert_eq!(
            weighted_percentile(&mut sorted, rank),
            materialized_percentile(&samples, rank)
        );
    }

    /// The optimizer returns the cheapest feasible configuration — checked
    /// against independent exhaustive enumeration.
    #[test]
    fn optimizer_is_optimal((regions, inter, workload) in arb_problem(), max_t in 20.0f64..400.0) {
        let constraint = DeliveryConstraint::new(75.0, max_t).unwrap();
        let optimizer = Optimizer::new(&regions, &inter, &workload).unwrap();
        let solution = optimizer.solve(&constraint);
        let evaluator = TopicEvaluator::new(&regions, &inter, &workload).unwrap();
        let all = AssignmentVector::all(regions.len()).unwrap();
        let mut any_feasible = false;
        let mut min_percentile = f64::INFINITY;
        for config in enumerate_configurations(all, ModePolicy::Any) {
            let eval = evaluator.evaluate(config, &constraint);
            min_percentile = min_percentile.min(eval.percentile_ms());
            if eval.is_feasible(&constraint) {
                any_feasible = true;
                prop_assert!(
                    solution.evaluation().cost_dollars() <= eval.cost_dollars() + 1e-12,
                    "solution ${} beaten by {} at ${}",
                    solution.evaluation().cost_dollars(), config, eval.cost_dollars()
                );
            }
        }
        prop_assert_eq!(solution.is_feasible(), any_feasible);
        if !any_feasible {
            // Fallback rule: most latency-minimizing configuration.
            prop_assert!((solution.evaluation().percentile_ms() - min_percentile).abs() < 1e-9);
        }
    }

    /// Percentile and cost are monotone along the mode axis: routed cost ≥
    /// direct cost for the same assignment (the forwarding term is
    /// non-negative).
    #[test]
    fn routed_cost_dominates_direct((regions, inter, workload) in arb_problem()) {
        let evaluator = TopicEvaluator::new(&regions, &inter, &workload).unwrap();
        let constraint = DeliveryConstraint::new(75.0, 100.0).unwrap();
        let all = AssignmentVector::all(regions.len()).unwrap();
        for config in enumerate_configurations(all, ModePolicy::DirectOnly) {
            let routed = Configuration::new(config.assignment(), DeliveryMode::Routed);
            let direct_cost = evaluator.evaluate(config, &constraint).cost_dollars();
            let routed_cost = evaluator.evaluate(routed, &constraint).cost_dollars();
            prop_assert!(routed_cost >= direct_cost - 1e-15);
        }
    }

    /// Feasibility is monotone in the bound: if a configuration meets
    /// `max_T` it meets every looser bound, so the optimizer's cost is
    /// non-increasing in `max_T`.
    #[test]
    fn optimal_cost_monotone_in_bound((regions, inter, workload) in arb_problem()) {
        let optimizer = Optimizer::new(&regions, &inter, &workload).unwrap();
        let mut previous_cost = f64::INFINITY;
        for max_t in [30.0, 60.0, 120.0, 240.0, 480.0] {
            let constraint = DeliveryConstraint::new(75.0, max_t).unwrap();
            let solution = optimizer.solve(&constraint);
            if solution.is_feasible() {
                prop_assert!(solution.evaluation().cost_dollars() <= previous_cost + 1e-12);
                previous_cost = solution.evaluation().cost_dollars();
            }
        }
    }

    /// The delivery-time percentile is non-decreasing in the ratio: a
    /// stricter coverage requirement can only push the percentile up.
    /// (Note the tempting stronger claim — "adding a region never raises
    /// direct-delivery latency" — is FALSE: a subscriber may switch to a
    /// region nearer to itself but farther from the publisher. That
    /// non-monotonicity is precisely why the paper enumerates
    /// configurations instead of greedily growing them.)
    #[test]
    fn percentile_monotone_in_ratio((regions, inter, workload) in arb_problem()) {
        let evaluator = TopicEvaluator::new(&regions, &inter, &workload).unwrap();
        let all = AssignmentVector::all(regions.len()).unwrap();
        for mode in [DeliveryMode::Direct, DeliveryMode::Routed] {
            let config = Configuration::new(all, mode);
            let mut previous = 0.0f64;
            for ratio in [10.0, 30.0, 50.0, 75.0, 95.0, 100.0] {
                let constraint = DeliveryConstraint::new(ratio, 100.0).unwrap();
                let p = evaluator.evaluate(config, &constraint).percentile_ms();
                prop_assert!(p >= previous - 1e-12, "ratio {ratio}: {p} < {previous}");
                previous = p;
            }
        }
    }

    /// Bundling with ε = 0 never changes the optimizer's answer, and any ε
    /// preserves subscriber weight and message totals.
    #[test]
    fn bundling_preserves_totals((regions, inter, workload) in arb_problem(), eps in 0.0f64..20.0) {
        use multipub_core::scaling::{bundle_clients, BundleOptions};
        let bundled = bundle_clients(&workload, &BundleOptions { epsilon_ms: eps });
        prop_assert_eq!(bundled.subscriber_weight(), workload.subscriber_weight());
        prop_assert_eq!(bundled.total_messages(), workload.total_messages());
        prop_assert_eq!(bundled.total_deliveries(), workload.total_deliveries());
        let _ = (regions, inter);
    }
}
