//! Randomized cross-validation: for arbitrary populations, configurations
//! and rates, the discrete-event simulator must agree exactly with the
//! analytic evaluator (jitter disabled), and the heuristic solver must
//! stay within the exact solver's envelope.

use multipub_core::assignment::{AssignmentVector, Configuration, DeliveryMode};
use multipub_core::constraint::DeliveryConstraint;
use multipub_core::evaluate::TopicEvaluator;
use multipub_core::heuristic::{solve_heuristic, HeuristicOptions};
use multipub_core::ids::TopicId;
use multipub_core::optimizer::Optimizer;
use multipub_data::ec2;
use multipub_netsim::engine::Engine;
use multipub_netsim::jitter::Jitter;
use multipub_netsim::scenario::Scenario;
use multipub_sim::population::{Population, PopulationSpec};
use proptest::prelude::*;

fn arb_population() -> impl Strategy<Value = (Population, f64)> {
    // Region-count-10 placement vectors with small totals, plus a rate.
    let placements = proptest::collection::vec(0usize..3, 10);
    (placements.clone(), placements, 1u64..1000, 0.5f64..8.0).prop_map(
        |(mut pubs, mut subs, seed, rate)| {
            // Guarantee at least one publisher and one subscriber.
            if pubs.iter().sum::<usize>() == 0 {
                pubs[3] = 1;
            }
            if subs.iter().sum::<usize>() == 0 {
                subs[7] = 1;
            }
            let spec = PopulationSpec {
                pubs_per_region: pubs,
                subs_per_region: subs,
                rate_per_sec: rate,
                size_bytes: 700,
            };
            let inter = ec2::inter_region_latencies();
            (Population::generate(&spec, &inter, seed), rate)
        },
    )
}

fn arb_configuration() -> impl Strategy<Value = Configuration> {
    (1u32..1024, any::<bool>()).prop_map(|(mask, routed)| {
        let mode = if routed { DeliveryMode::Routed } else { DeliveryMode::Direct };
        Configuration::new(AssignmentVector::from_mask(mask, 10).unwrap(), mode)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn netsim_reproduces_the_analytic_model(
        (population, _rate) in arb_population(),
        configuration in arb_configuration(),
        ratio in 10.0f64..=100.0,
    ) {
        const DURATION_MS: f64 = 4_000.0;
        let regions = ec2::region_set();
        let inter = ec2::inter_region_latencies();
        let topic = population.scenario_topic(TopicId::new("t"), configuration, 5);
        // Use the scenario's own workload bridge: with fractional rates and
        // random phases, the per-publisher message count depends on the
        // phase, and `TopicScenario::workload` counts actual emissions.
        let workload = topic.workload(regions.len(), DURATION_MS);
        let evaluator = TopicEvaluator::new(&regions, &inter, &workload).unwrap();
        let constraint = DeliveryConstraint::new(ratio, 500.0).unwrap();
        let predicted = evaluator.evaluate(configuration, &constraint);

        let scenario = Scenario::new(regions.clone(), inter.clone(), vec![topic]);
        let report = Engine::new(scenario, Jitter::disabled(), 5).run(DURATION_MS);

        prop_assert_eq!(report.delivery_count(), workload.total_deliveries());
        let measured = report.percentile_ms(ratio);
        prop_assert!(
            (predicted.percentile_ms() - measured).abs() < 1e-6,
            "percentile: predicted {} vs measured {}",
            predicted.percentile_ms(), measured
        );
        let measured_cost = report.cost_dollars(&regions);
        prop_assert!(
            (predicted.cost_dollars() - measured_cost).abs()
                <= predicted.cost_dollars().abs() * 1e-9 + 1e-15,
            "cost: predicted {} vs measured {}",
            predicted.cost_dollars(), measured_cost
        );
    }

    #[test]
    fn heuristic_stays_within_the_exact_envelope(
        (population, _rate) in arb_population(),
        max_t in 60.0f64..400.0,
    ) {
        let regions = ec2::region_set();
        let inter = ec2::inter_region_latencies();
        let workload = population.workload(10.0);
        let constraint = DeliveryConstraint::new(75.0, max_t).unwrap();
        let exact = Optimizer::new(&regions, &inter, &workload).unwrap().solve(&constraint);
        let heuristic = solve_heuristic(
            &regions, &inter, &workload, &constraint, &HeuristicOptions::default(),
        ).unwrap();
        // The heuristic may be suboptimal but never impossibly good.
        if exact.is_feasible() && heuristic.is_feasible() {
            prop_assert!(
                heuristic.evaluation().cost_dollars()
                    >= exact.evaluation().cost_dollars() - 1e-12
            );
        }
        // If the exact solver says nothing is feasible, the heuristic
        // cannot claim otherwise (it searches a subset of configurations).
        if !exact.is_feasible() {
            prop_assert!(!heuristic.is_feasible());
        }
        // And it must evaluate far fewer configurations than 2·(2^10−1)−10.
        prop_assert!(heuristic.configurations_considered() < 600);
    }
}
