//! Shape assertions for the paper's figures (quick-scale populations):
//! who wins, in which order the curves sit, and where the regimes switch.
//! EXPERIMENTS.md records the full-scale numbers.

use multipub_data::ec2;
use multipub_sim::experiments::{exp1, exp2, exp3};

fn exp1_quick() -> exp1::Exp1Result {
    exp1::run(&exp1::Exp1Params {
        pubs_per_region: 3,
        subs_per_region: 3,
        step_ms: 10.0,
        max_t_start_ms: 100.0,
        max_t_end_ms: 260.0,
        ..Default::default()
    })
}

#[test]
fn figure3_ordering_all_regions_fast_one_region_cheap() {
    let result = exp1_quick();
    assert!(result.all_regions_delivery_ms < result.one_region_delivery_ms);
    assert!(result.all_regions_cost_per_day > result.one_region_cost_per_day);
}

#[test]
fn figure3_multipub_interpolates_between_the_baselines() {
    let result = exp1_quick();
    for row in &result.rows {
        assert!(row.cost_per_day <= result.all_regions_cost_per_day + 1e-9);
        assert!(row.cost_per_day >= result.one_region_cost_per_day - 1e-9);
        if row.feasible {
            assert!(row.delivery_ms <= row.max_t_ms);
        }
    }
    // Tight end: as fast as the all-regions deployment can be required.
    let first = result.rows.first().unwrap();
    assert!(first.delivery_ms <= result.one_region_delivery_ms);
    // Loose end: converged to the one-region deployment.
    let last = result.rows.last().unwrap();
    assert_eq!(last.regions_used, 1);
    assert!((last.cost_per_day - result.one_region_cost_per_day).abs() < 1e-9);
}

#[test]
fn figure3_region_count_decreases_with_the_bound() {
    let result = exp1_quick();
    // Not strictly monotone point-to-point (ties can reorder), but the
    // tight end must use strictly more regions than the loose end.
    let first = result.rows.first().unwrap();
    let last = result.rows.last().unwrap();
    assert!(first.regions_used > last.regions_used);
    // And MultiPub achieves real savings somewhere along the sweep.
    assert!(result.peak_saving_vs_all_regions() > 0.10, "expected >10% peak saving");
}

fn exp2_quick() -> exp2::Exp2Result {
    exp2::run(&exp2::Exp2Params {
        publishers: 20,
        asia_subscribers: 8,
        usa_subscribers: 8,
        step_ms: 10.0,
        ..Default::default()
    })
}

#[test]
fn figure4_routed_reaches_lower_delivery_floor() {
    let result = exp2_quick();
    let routed_floor = result.min_delivery_ms(|r| r.routed_only);
    let direct_floor = result.min_delivery_ms(|r| r.direct_only);
    assert!(
        routed_floor < direct_floor,
        "routed floor {routed_floor} must undercut direct floor {direct_floor} \
         thanks to optimized inter-cloud links"
    );
}

#[test]
fn figure4_multipub_is_the_lower_cost_envelope() {
    let result = exp2_quick();
    for row in &result.rows {
        assert!(row.multipub.cost_per_day <= row.direct_only.cost_per_day + 1e-9);
        assert!(row.multipub.cost_per_day <= row.routed_only.cost_per_day + 1e-9);
        // And never slower than required when a variant is feasible.
        if row.direct_only.feasible || row.routed_only.feasible {
            assert!(row.multipub.feasible);
        }
    }
}

#[test]
fn figure4_mode_switches_from_routed_to_direct_as_bound_relaxes() {
    let result = exp2_quick();
    // In the tight-bound regime where only routed is feasible, MultiPub
    // must pick routed.
    let tight = result.rows.iter().find(|r| r.routed_only.feasible && !r.direct_only.feasible);
    if let Some(row) = tight {
        assert_eq!(row.multipub.mode, multipub_core::assignment::DeliveryMode::Routed);
    }
    // At the loose end the paper observes direct delivery with one region.
    let last = result.rows.last().unwrap();
    assert_eq!(last.multipub.mode, multipub_core::assignment::DeliveryMode::Direct);
}

fn exp3_quick(home: multipub_core::ids::RegionId, end: f64) -> exp3::Exp3Result {
    exp3::run(&exp3::Exp3Params {
        publishers: 15,
        subscribers: 15,
        step_ms: 20.0,
        ..exp3::Exp3Params {
            max_t_end_ms: end,
            ..if home == ec2::regions::AP_NORTHEAST_1 {
                exp3::Exp3Params::asia()
            } else {
                exp3::Exp3Params::south_america()
            }
        }
    })
}

#[test]
fn figure5a_tokyo_cost_arbitrage() {
    let result = exp3_quick(ec2::regions::AP_NORTHEAST_1, 300.0);
    // Tight bounds need the local (expensive) region.
    let first_feasible = result.rows.iter().find(|r| r.feasible).unwrap();
    assert!(first_feasible.uses_home_region);
    // Loose bounds find a cheaper remote configuration.
    let last = result.rows.last().unwrap();
    assert!(last.feasible);
    assert!(last.cost_per_day < result.local_only_cost_per_day);
    assert!(result.peak_saving() > 0.2, "Tokyo peak saving {:.2}", result.peak_saving());
}

#[test]
fn figure5b_sao_paulo_saves_more_than_tokyo() {
    let tokyo = exp3_quick(ec2::regions::AP_NORTHEAST_1, 300.0);
    let sao_paulo = exp3_quick(ec2::regions::SA_EAST_1, 350.0);
    assert!(
        sao_paulo.peak_saving() > tokyo.peak_saving(),
        "São Paulo ({:.2}) should save more than Tokyo ({:.2}) — its egress is pricier",
        sao_paulo.peak_saving(),
        tokyo.peak_saving()
    );
    assert!(sao_paulo.peak_saving() > 0.4);
}

#[test]
fn figure5_cost_is_monotone_in_the_bound() {
    let result = exp3_quick(ec2::regions::SA_EAST_1, 350.0);
    let feasible: Vec<_> = result.rows.iter().filter(|r| r.feasible).collect();
    for pair in feasible.windows(2) {
        assert!(pair[1].cost_per_day <= pair[0].cost_per_day + 1e-9);
    }
}
