//! `cargo xtask` CLI entry point. All the actual work lives in the
//! `xtask` library crate so the golden-corpus integration tests can
//! drive the passes without spawning a process.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let mut json = false;
            for flag in args.iter().skip(1) {
                match flag.as_str() {
                    "--json" => json = true,
                    other => {
                        eprintln!("unknown lint flag `{other}`; try `cargo xtask help`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            xtask::lint(json)
        }
        Some("help") | None => {
            eprintln!("usage: cargo xtask lint [--json]");
            eprintln!();
            eprintln!("subcommands:");
            eprintln!("  lint   run the L1–L6 static analysis passes (DESIGN.md §9, §14)");
            eprintln!();
            eprintln!("flags:");
            eprintln!("  --json   print findings as a JSON array instead of text");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`; try `cargo xtask help`");
            ExitCode::FAILURE
        }
    }
}
