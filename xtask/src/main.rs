//! `cargo xtask` — workspace automation.
//!
//! `cargo xtask lint` runs the MultiPub-specific static analysis passes
//! over every library crate (see DESIGN.md §9):
//!
//! * **L1** panic-freedom: no `unwrap`/`expect`/`panic!`/indexing in
//!   non-test library code without a justified annotation,
//! * **L2** no blocking calls inside async fns (executor stalls),
//! * **L3** frame-tag exhaustiveness: `Frame::tag()`, `KNOWN_TAGS`,
//!   encode arms and decode arms must all agree,
//! * **L4** metric-name catalog: every name passed to `multipub_obs`
//!   comes from `crates/obs/src/metrics.rs`, and the README table
//!   matches it,
//! * **L5** bounded channels: no `unbounded_channel` in non-test
//!   library code (slow consumers must hit backpressure, not OOM).
//!
//! Escape hatch: `// lint:allow(<category>) <reason>` on the same or
//! previous line (`panic`, `indexing`, `blocking`, `metric`, `channel`), or
//! `// lint:allow-file(<category>) <reason>` for a whole file. The
//! reason is mandatory; empty justifications are themselves findings.

mod l1_panics;
mod l2_blocking;
mod l3_frames;
mod l4_metrics;
mod l5_channels;
mod lexer;
mod spans;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One lint finding.
#[derive(Debug)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Pass identifier (`L1`…`L5`).
    pub pass: &'static str,
    /// Finding category (matches the `lint:allow` category).
    pub category: &'static str,
    /// Human-readable description.
    pub message: String,
}

const VALID_ALLOW_CATEGORIES: [&str; 5] = ["panic", "indexing", "blocking", "metric", "channel"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("help") | None => {
            eprintln!("usage: cargo xtask lint");
            eprintln!();
            eprintln!("subcommands:");
            eprintln!("  lint   run the L1–L5 static analysis passes (DESIGN.md §9)");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`; try `cargo xtask help`");
            ExitCode::FAILURE
        }
    }
}

/// Workspace root: the parent of this crate's manifest dir, falling back
/// to the current directory.
fn workspace_root() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .and_then(|dir| dir.parent().map(Path::to_path_buf))
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."))
}

/// All `.rs` files under the workspace's library source trees
/// (`crates/*/src/**` and `xtask/src/**`), sorted for stable output.
fn source_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            walk_rs(&entry.path().join("src"), &mut files);
        }
    }
    walk_rs(&root.join("xtask").join("src"), &mut files);
    files.sort();
    files
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).display().to_string()
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let files = source_files(&root);
    if files.is_empty() {
        eprintln!("xtask lint: no source files found under {}", root.display());
        return ExitCode::FAILURE;
    }

    let mut findings: Vec<Finding> = Vec::new();
    let mut warnings: Vec<String> = Vec::new();
    let mut frame_tokens = None;
    let mut codec_tokens = None;
    let mut trace_tokens = None;
    let mut catalog_lexed = None;
    let mut analyzed = Vec::new();

    for path in &files {
        let Ok(source) = std::fs::read_to_string(path) else {
            warnings.push(format!("could not read {}", rel(&root, path)));
            continue;
        };
        let lexed = lexer::lex(&source);
        let name = rel(&root, path);
        if name.ends_with("broker/src/frame.rs") {
            frame_tokens = Some((name.clone(), lexed.tokens.clone()));
        }
        if name.ends_with("broker/src/codec.rs") {
            codec_tokens = Some((name.clone(), lexed.tokens.clone()));
        }
        if name.ends_with("obs/src/trace.rs") {
            trace_tokens = Some((name.clone(), lexed.tokens.clone()));
        }
        if name.ends_with("obs/src/metrics.rs") {
            catalog_lexed = Some((name.clone(), lexer::lex(&source)));
        }
        analyzed.push((name, lexed));
    }

    // L4 needs the catalog before the per-file sweep.
    let catalog = match &catalog_lexed {
        Some((name, lexed)) => Some(l4_metrics::parse_catalog(name, lexed, &mut findings)),
        None => {
            findings.push(Finding {
                file: "crates/obs/src/metrics.rs".to_string(),
                line: 1,
                pass: "L4",
                category: "metric",
                message: "metric catalog file is missing".to_string(),
            });
            None
        }
    };

    for (name, lexed) in &analyzed {
        let facts = spans::analyze(lexed);

        // Annotation hygiene: unknown categories and missing reasons are
        // findings in their own right.
        for allow in facts.allows.iter().chain(facts.file_allows.iter()) {
            if !VALID_ALLOW_CATEGORIES.contains(&allow.category.as_str()) {
                findings.push(Finding {
                    file: name.clone(),
                    line: allow.line,
                    pass: "meta",
                    category: "annotation",
                    message: format!(
                        "unknown lint:allow category `{}` (valid: {})",
                        allow.category,
                        VALID_ALLOW_CATEGORIES.join(", ")
                    ),
                });
            }
        }
        for allow in facts.unjustified() {
            findings.push(Finding {
                file: name.clone(),
                line: allow.line,
                pass: "meta",
                category: "annotation",
                message: format!(
                    "lint:allow({}) needs a real justification after the parentheses",
                    allow.category
                ),
            });
        }

        l1_panics::check(name, &lexed.tokens, &facts, &mut findings);
        l2_blocking::check(name, &lexed.tokens, &facts, &mut findings);
        l5_channels::check(name, &lexed.tokens, &facts, &mut findings);
        if let Some(catalog) = &catalog {
            // The catalog file itself declares, it does not consume.
            if !name.ends_with("obs/src/metrics.rs") {
                l4_metrics::check_file(name, &lexed.tokens, &facts, catalog, &mut findings);
            }
        }

        for allow in facts.allows.iter().chain(facts.file_allows.iter()) {
            if !allow.used.get() && VALID_ALLOW_CATEGORIES.contains(&allow.category.as_str()) {
                warnings.push(format!(
                    "{name}:{}: unused lint:allow({}) annotation",
                    allow.line, allow.category
                ));
            }
        }
    }

    match (&frame_tokens, &codec_tokens) {
        (Some((frame_name, frame)), Some((codec_name, codec))) => {
            l3_frames::check(frame_name, frame, codec_name, codec, &mut findings);
        }
        _ => {
            findings.push(Finding {
                file: "crates/broker/src".to_string(),
                line: 1,
                pass: "L3",
                category: "frame",
                message: "frame.rs / codec.rs not found; cannot check tag exhaustiveness"
                    .to_string(),
            });
        }
    }

    if let Some(catalog) = &catalog {
        // Trace stages must each have their per-stage latency histogram.
        match &trace_tokens {
            Some((trace_path, tokens)) => {
                l4_metrics::check_stage_metrics(trace_path, tokens, catalog, &mut findings);
            }
            None => warnings.push("obs/src/trace.rs not found; skipping stage check".to_string()),
        }
        let readme_path = root.join("README.md");
        match std::fs::read_to_string(&readme_path) {
            Ok(readme) => l4_metrics::check_readme("README.md", &readme, catalog, &mut findings),
            Err(_) => warnings.push("README.md not readable; skipping drift check".to_string()),
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    for finding in &findings {
        println!(
            "{}:{}: [{}.{}] {}",
            finding.file, finding.line, finding.pass, finding.category, finding.message
        );
    }
    for warning in &warnings {
        eprintln!("warning: {warning}");
    }
    let checked = analyzed.len();
    if findings.is_empty() {
        eprintln!(
            "xtask lint: {checked} files clean (L1 panics, L2 blocking, L3 frames, L4 metrics, \
             L5 channels)"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} finding(s) across {checked} files", findings.len());
        ExitCode::FAILURE
    }
}
