//! Pass L3 — frame-tag exhaustiveness for the wire protocol.
//!
//! Cross-checks three places that must agree for every `Frame` variant:
//!
//! * `frame.rs` — the `tag()` match (variant → tag byte) and the
//!   `KNOWN_TAGS` catalog constant,
//! * `codec.rs` — the `encode` match (every variant has an encode arm),
//! * `codec.rs` — the `decode_inner` match (every tag byte has a decode
//!   arm and no decode arm handles an undeclared tag).
//!
//! A variant with an encode arm but no decode arm (or vice versa) is a
//! silent wire-compat break; this pass turns it into a CI failure.

use crate::lexer::{Kind, Token};
use crate::spans::matching_brace;
use crate::Finding;

/// Variant→tag pairs and declared tags extracted from `frame.rs`.
struct FrameDecl {
    /// `(variant name, tag byte, line)` from the `tag()` match.
    tags: Vec<(String, u64, u32)>,
    /// Tag bytes listed in `KNOWN_TAGS`.
    known_tags: Vec<u64>,
    /// Whether a `KNOWN_TAGS` constant exists at all.
    has_known_tags: bool,
}

/// Runs the pass given the lexed tokens of `frame.rs` and `codec.rs`.
pub fn check(
    frame_path: &str,
    frame_tokens: &[Token],
    codec_path: &str,
    codec_tokens: &[Token],
    findings: &mut Vec<Finding>,
) {
    let decl = parse_frame_decl(frame_tokens);
    if decl.tags.is_empty() {
        findings.push(l3(frame_path, 1, "could not find the `fn tag` variant→byte match"));
        return;
    }

    // Tag bytes must be unique.
    for (idx, (variant, tag, line)) in decl.tags.iter().enumerate() {
        let duplicate = decl.tags.iter().take(idx).find(|(_, other, _)| other == tag);
        if let Some((first_variant, _, _)) = duplicate {
            findings.push(l3(
                frame_path,
                *line,
                &format!("tag {tag:#04x} assigned to both `{first_variant}` and `{variant}`"),
            ));
        }
    }

    // KNOWN_TAGS must exist and list exactly the declared tags.
    if !decl.has_known_tags {
        findings.push(l3(
            frame_path,
            1,
            "missing `KNOWN_TAGS` constant cataloguing every frame tag byte",
        ));
    } else {
        for (variant, tag, line) in &decl.tags {
            if !decl.known_tags.contains(tag) {
                findings.push(l3(
                    frame_path,
                    *line,
                    &format!("tag {tag:#04x} (`{variant}`) is not listed in `KNOWN_TAGS`"),
                ));
            }
        }
        for tag in &decl.known_tags {
            if !decl.tags.iter().any(|(_, t, _)| t == tag) {
                findings.push(l3(
                    frame_path,
                    1,
                    &format!("`KNOWN_TAGS` lists {tag:#04x} which no variant maps to in `tag()`"),
                ));
            }
        }
    }

    // Every variant must have an encode arm…
    let encode_variants = match_variants_in_fn(codec_tokens, "encode");
    for (variant, _, line) in &decl.tags {
        if !encode_variants.iter().any(|(v, _)| v == variant) {
            findings.push(l3(
                codec_path,
                *line,
                &format!("`Frame::{variant}` has no arm in the `encode` match"),
            ));
        }
    }

    // …and every tag byte a decode arm.
    let decode_tags = decode_arm_tags(codec_tokens);
    if decode_tags.is_empty() {
        findings.push(l3(codec_path, 1, "could not find the `decode_inner` tag match"));
        return;
    }
    for (variant, tag, line) in &decl.tags {
        if !decode_tags.iter().any(|(t, _)| t == tag) {
            findings.push(l3(
                codec_path,
                *line,
                &format!("tag {tag:#04x} (`Frame::{variant}`) has no arm in the decode match"),
            ));
        }
    }
    for (tag, line) in &decode_tags {
        if !decl.tags.iter().any(|(_, t, _)| t == tag) {
            findings.push(l3(
                codec_path,
                *line,
                &format!("decode arm for {tag:#04x} has no matching variant in `tag()`"),
            ));
        }
    }

    // `ConfigUpdate` is epoch-gated (make-before-break reconfiguration):
    // an encode or decode arm that drops the `epoch` field silently
    // reverts brokers to last-writer-wins config installs, so every
    // codec site must carry it.
    if let Some((_, tag, line)) = decl.tags.iter().find(|(v, _, _)| v == "ConfigUpdate") {
        if encode_arm_mentions(codec_tokens, "ConfigUpdate", "epoch") == Some(false) {
            findings.push(l3(
                codec_path,
                *line,
                "`Frame::ConfigUpdate` encode arm does not carry the `epoch` field",
            ));
        }
        if decode_arm_mentions(codec_tokens, *tag, "epoch") == Some(false) {
            findings.push(l3(
                codec_path,
                *line,
                "`Frame::ConfigUpdate` decode arm does not read the `epoch` field",
            ));
        }
    }
}

/// Whether `Frame::<variant>`'s arm in the `encode` match mentions
/// `ident` anywhere (pattern destructure or body). Returns `None` when
/// the arm does not exist — the missing-encode-arm check reports that
/// case.
fn encode_arm_mentions(tokens: &[Token], variant: &str, ident: &str) -> Option<bool> {
    let (open, close) = fn_body(tokens, "encode")?;
    let mut i = open;
    while i < close {
        let is_frame_path = tokens.get(i).is_some_and(|t| t.is_ident("Frame"))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(b':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(b':'))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident(variant));
        if is_frame_path {
            // Scan this arm: up to the next `Frame::` path (the next
            // arm's pattern) or the end of the match body.
            let mut j = i + 4;
            while j < close {
                if tokens.get(j).is_some_and(|t| t.is_ident("Frame")) {
                    return Some(false);
                }
                if tokens.get(j).is_some_and(|t| t.is_ident(ident)) {
                    return Some(true);
                }
                j += 1;
            }
            return Some(false);
        }
        i += 1;
    }
    None
}

/// Whether the decode arm for `tag` mentions `ident`. The arm spans
/// from its `0xNN =>` pattern to the next number-pattern arm at the
/// same brace depth (numbers inside nested braces — e.g. an inner
/// `match` on a mode byte — do not terminate the scan). Returns `None`
/// when no arm matches the tag — the missing-decode-arm check reports
/// that case.
fn decode_arm_mentions(tokens: &[Token], tag: u64, ident: &str) -> Option<bool> {
    let (open, close) = fn_body(tokens, "decode_inner").or_else(|| fn_body(tokens, "decode"))?;
    let mut i = open;
    while i < close {
        let is_arm = tokens.get(i).is_some_and(|t| t.kind == Kind::Number)
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(b'='))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(b'>'))
            && tokens.get(i).and_then(|t| parse_int(&t.text)) == Some(tag);
        if is_arm {
            let mut depth = 0i32;
            let mut j = i + 3;
            while j < close {
                let Some(token) = tokens.get(j) else { break };
                match token.kind {
                    Kind::Punct(b'{') | Kind::Punct(b'(') | Kind::Punct(b'[') => depth += 1,
                    Kind::Punct(b'}') | Kind::Punct(b')') | Kind::Punct(b']') => depth -= 1,
                    Kind::Number if depth == 0 => {
                        // The next same-level arm's tag pattern.
                        let next_is_arrow = tokens.get(j + 1).is_some_and(|t| t.is_punct(b'='))
                            && tokens.get(j + 2).is_some_and(|t| t.is_punct(b'>'));
                        if next_is_arrow {
                            return Some(false);
                        }
                    }
                    Kind::Ident if token.text == ident => return Some(true),
                    _ => {}
                }
                j += 1;
            }
            return Some(false);
        }
        i += 1;
    }
    None
}

fn l3(path: &str, line: u32, message: &str) -> Finding {
    Finding {
        file: path.to_string(),
        line,
        pass: "L3",
        category: "frame",
        message: message.to_string(),
    }
}

/// Parses an integer literal (`0x0D`, `13`, `0b1`, with `_`/suffixes).
fn parse_int(text: &str) -> Option<u64> {
    let cleaned: String = text.chars().filter(|c| *c != '_').collect();
    let lower = cleaned.to_ascii_lowercase();
    let (digits, radix) = if let Some(rest) = lower.strip_prefix("0x") {
        (rest, 16)
    } else if let Some(rest) = lower.strip_prefix("0o") {
        (rest, 8)
    } else if let Some(rest) = lower.strip_prefix("0b") {
        (rest, 2)
    } else {
        (lower.as_str(), 10)
    };
    // Strip a type suffix (`u8`, `u64`, …).
    let digits = digits.split(|c: char| c == 'u' || c == 'i').next().unwrap_or_default();
    u64::from_str_radix(digits, radix).ok()
}

/// Finds `fn name` and returns its body token range.
fn fn_body(tokens: &[Token], name: &str) -> Option<(usize, usize)> {
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if tokens.get(i).is_some_and(|t| t.is_ident("fn"))
            && tokens.get(i + 1).is_some_and(|t| t.is_ident(name))
        {
            let mut paren = 0i32;
            let mut bracket = 0i32;
            let mut j = i + 2;
            while let Some(token) = tokens.get(j) {
                match token.kind {
                    Kind::Punct(b'(') => paren += 1,
                    Kind::Punct(b')') => paren -= 1,
                    Kind::Punct(b'[') => bracket += 1,
                    Kind::Punct(b']') => bracket -= 1,
                    Kind::Punct(b'{') if paren == 0 && bracket == 0 => {
                        let close = matching_brace(tokens, j)?;
                        return Some((j, close));
                    }
                    Kind::Punct(b';') if paren == 0 && bracket == 0 => return None,
                    _ => {}
                }
                j += 1;
            }
            return None;
        }
        i += 1;
    }
    None
}

/// Extracts the frame declaration facts from `frame.rs` tokens.
fn parse_frame_decl(tokens: &[Token]) -> FrameDecl {
    let mut decl = FrameDecl { tags: Vec::new(), known_tags: Vec::new(), has_known_tags: false };
    if let Some((open, close)) = fn_body(tokens, "tag") {
        let mut i = open;
        while i < close {
            // `Frame :: Variant … => NUMBER`
            let is_frame_path = tokens.get(i).is_some_and(|t| t.is_ident("Frame"))
                && tokens.get(i + 1).is_some_and(|t| t.is_punct(b':'))
                && tokens.get(i + 2).is_some_and(|t| t.is_punct(b':'));
            if is_frame_path {
                if let Some(variant) = tokens.get(i + 3).filter(|t| t.kind == Kind::Ident) {
                    // Scan forward to the `=>` of this arm.
                    let mut j = i + 4;
                    while j < close {
                        let is_arrow = tokens.get(j).is_some_and(|t| t.is_punct(b'='))
                            && tokens.get(j + 1).is_some_and(|t| t.is_punct(b'>'));
                        if is_arrow {
                            if let Some(number) =
                                tokens.get(j + 2).filter(|t| t.kind == Kind::Number)
                            {
                                if let Some(value) = parse_int(&number.text) {
                                    decl.tags.push((variant.text.clone(), value, variant.line));
                                }
                            }
                            break;
                        }
                        j += 1;
                    }
                    i = j;
                }
            }
            i += 1;
        }
    }
    // `KNOWN_TAGS` constant: numbers between the initializer `=` and the
    // terminating `;` (the `;` and length inside the `[u8; N]` type
    // annotation must not be confused with them).
    if let Some(start) = tokens.iter().position(|t| t.is_ident("KNOWN_TAGS")) {
        decl.has_known_tags = true;
        let mut bracket = 0i32;
        let mut i = start;
        // Skip the type annotation up to the depth-0 `=`.
        while let Some(token) = tokens.get(i) {
            match token.kind {
                Kind::Punct(b'[') => bracket += 1,
                Kind::Punct(b']') => bracket -= 1,
                Kind::Punct(b'=') if bracket == 0 => break,
                Kind::Punct(b';') if bracket == 0 => return decl,
                _ => {}
            }
            i += 1;
        }
        while let Some(token) = tokens.get(i) {
            if token.is_punct(b';') && bracket == 0 {
                break;
            }
            match token.kind {
                Kind::Punct(b'[') => bracket += 1,
                Kind::Punct(b']') => bracket -= 1,
                Kind::Number => {
                    if let Some(value) = parse_int(&token.text) {
                        decl.known_tags.push(value);
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    decl
}

/// `Frame::Variant` patterns inside `fn name`'s body, with lines.
fn match_variants_in_fn(tokens: &[Token], name: &str) -> Vec<(String, u32)> {
    let mut variants = Vec::new();
    if let Some((open, close)) = fn_body(tokens, name) {
        let mut i = open;
        while i < close {
            let is_frame_path = tokens.get(i).is_some_and(|t| t.is_ident("Frame"))
                && tokens.get(i + 1).is_some_and(|t| t.is_punct(b':'))
                && tokens.get(i + 2).is_some_and(|t| t.is_punct(b':'));
            if is_frame_path {
                if let Some(variant) = tokens.get(i + 3).filter(|t| t.kind == Kind::Ident) {
                    if !variants.iter().any(|(v, _)| v == &variant.text) {
                        variants.push((variant.text.clone(), variant.line));
                    }
                }
                i += 3;
            }
            i += 1;
        }
    }
    variants
}

/// Tag-byte literals used as match-arm patterns (`0xNN => …`) in the
/// decode function. Only arms at the top level of the decode `match`
/// count: an arm body may itself match on payload bytes (a mode
/// discriminant, say), and those inner numeric arms are not tags.
fn decode_arm_tags(tokens: &[Token]) -> Vec<(u64, u32)> {
    let mut tags = Vec::new();
    let body = fn_body(tokens, "decode_inner").or_else(|| fn_body(tokens, "decode"));
    if let Some((open, close)) = body {
        // The tag match is the first `match` in the body; its arms live
        // at brace depth 1 relative to its opening brace.
        let mut i = open;
        while i < close && !tokens.get(i).is_some_and(|t| t.is_ident("match")) {
            i += 1;
        }
        while i < close && !tokens.get(i).is_some_and(|t| t.is_punct(b'{')) {
            i += 1;
        }
        let mut depth = 0i32;
        while i < close {
            let token = match tokens.get(i) {
                Some(token) => token,
                None => break,
            };
            if token.is_punct(b'{') {
                depth += 1;
            } else if token.is_punct(b'}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            let is_arm = depth == 1
                && token.kind == Kind::Number
                && tokens.get(i + 1).is_some_and(|t| t.is_punct(b'='))
                && tokens.get(i + 2).is_some_and(|t| t.is_punct(b'>'));
            if is_arm {
                if let Some(value) = parse_int(&token.text) {
                    tags.push((value, token.line));
                }
            }
            i += 1;
        }
    }
    tags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const FRAME_OK: &str = "impl Frame { pub fn tag(&self) -> u8 { match self { Frame::A { .. } => 0x01, Frame::B(_) => 0x02, } } }\npub const KNOWN_TAGS: [u8; 2] = [0x01, 0x02];";
    const CODEC_OK: &str = "fn encode(f: &Frame) { match f { Frame::A { x } => go(x), Frame::B(y) => go(y), } }\nfn decode_inner(tag: u8) { match tag { 0x01 => a(), 0x02 => b(), other => err(other), } }";

    fn run(frame_src: &str, codec_src: &str) -> Vec<Finding> {
        let frame = lex(frame_src);
        let codec = lex(codec_src);
        let mut findings = Vec::new();
        check("frame.rs", &frame.tokens, "codec.rs", &codec.tokens, &mut findings);
        findings
    }

    #[test]
    fn consistent_decl_passes() {
        assert!(run(FRAME_OK, CODEC_OK).is_empty());
    }

    #[test]
    fn missing_decode_arm_flagged() {
        let codec = "fn encode(f: &Frame) { match f { Frame::A { x } => go(x), Frame::B(y) => go(y), } }\nfn decode_inner(tag: u8) { match tag { 0x01 => a(), other => err(other), } }";
        let findings = run(FRAME_OK, codec);
        assert_eq!(findings.len(), 1);
        assert!(findings.first().is_some_and(|f| f.message.contains("no arm in the decode")));
    }

    #[test]
    fn missing_encode_arm_flagged() {
        let codec = "fn encode(f: &Frame) { match f { Frame::A { x } => go(x), } }\nfn decode_inner(tag: u8) { match tag { 0x01 => a(), 0x02 => b(), other => err(other), } }";
        let findings = run(FRAME_OK, codec);
        assert_eq!(findings.len(), 1);
        assert!(findings.first().is_some_and(|f| f.message.contains("encode")));
    }

    #[test]
    fn orphan_decode_arm_flagged() {
        let codec = "fn encode(f: &Frame) { match f { Frame::A { x } => go(x), Frame::B(y) => go(y), } }\nfn decode_inner(tag: u8) { match tag { 0x01 => a(), 0x02 => b(), 0x7F => mystery(), other => err(other), } }";
        let findings = run(FRAME_OK, codec);
        assert_eq!(findings.len(), 1);
        assert!(findings.first().is_some_and(|f| f.message.contains("0x7f")));
    }

    #[test]
    fn duplicate_tag_flagged() {
        let frame = "impl Frame { pub fn tag(&self) -> u8 { match self { Frame::A { .. } => 0x01, Frame::B(_) => 0x01, } } }\npub const KNOWN_TAGS: [u8; 2] = [0x01, 0x01];";
        let codec = "fn encode(f: &Frame) { match f { Frame::A { x } => go(x), Frame::B(y) => go(y), } }\nfn decode_inner(tag: u8) { match tag { 0x01 => a(), other => err(other), } }";
        let findings = run(frame, codec);
        assert!(findings.iter().any(|f| f.message.contains("assigned to both")));
    }

    #[test]
    fn missing_known_tags_flagged() {
        let frame =
            "impl Frame { pub fn tag(&self) -> u8 { match self { Frame::A { .. } => 0x01, } } }";
        let codec = "fn encode(f: &Frame) { match f { Frame::A { x } => go(x), } }\nfn decode_inner(tag: u8) { match tag { 0x01 => a(), other => err(other), } }";
        let findings = run(frame, codec);
        assert!(findings.iter().any(|f| f.message.contains("KNOWN_TAGS")));
    }

    #[test]
    fn stale_known_tags_flagged() {
        let frame = "impl Frame { pub fn tag(&self) -> u8 { match self { Frame::A { .. } => 0x01, } } }\npub const KNOWN_TAGS: [u8; 2] = [0x01, 0x02];";
        let findings = run(frame, CODEC_OK);
        assert!(findings.iter().any(|f| f.message.contains("no variant maps")));
    }

    const FRAME_CONFIG: &str = "impl Frame { pub fn tag(&self) -> u8 { match self { Frame::ConfigUpdate { .. } => 0x0A, } } }\npub const KNOWN_TAGS: [u8; 1] = [0x0A];";

    #[test]
    fn epochless_config_update_arms_flagged() {
        // Neither the encode arm nor the decode arm touches `epoch`; the
        // decode arm's inner match on the mode byte must not fool the
        // arm-boundary scan.
        let codec = "fn encode(f: &Frame) { match f { Frame::ConfigUpdate { topic, mask, mode } => go(topic, mask, mode), } }\nfn decode_inner(tag: u8) { match tag { 0x0A => { let mode = match r.u8() { 0 => d(), 1 => rt(), }; cfg(mode) } other => err(other), } }";
        let findings = run(FRAME_CONFIG, codec);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|f| f.message.contains("encode arm does not carry")));
        assert!(findings.iter().any(|f| f.message.contains("decode arm does not read")));
    }

    #[test]
    fn epoch_carrying_config_update_passes() {
        let codec = "fn encode(f: &Frame) { match f { Frame::ConfigUpdate { topic, mask, mode, epoch } => go(topic, mask, mode, epoch), } }\nfn decode_inner(tag: u8) { match tag { 0x0A => { let mode = match r.u8() { 0 => d(), 1 => rt(), }; let epoch = r.u64(); cfg(mode, epoch) } other => err(other), } }";
        let findings = run(FRAME_CONFIG, codec);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn decode_only_epoch_omission_flagged() {
        // The encode side carries the field; only decode dropped it.
        let codec = "fn encode(f: &Frame) { match f { Frame::ConfigUpdate { topic, mask, mode, epoch } => go(topic, mask, mode, epoch), } }\nfn decode_inner(tag: u8) { match tag { 0x0A => cfg(r.u32()), other => err(other), } }";
        let findings = run(FRAME_CONFIG, codec);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings.first().is_some_and(|f| f.message.contains("decode arm does not read")));
    }
}
