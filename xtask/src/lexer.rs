//! A minimal Rust token scanner.
//!
//! The lint passes need token-level structure — identifiers, punctuation,
//! string/char literals, comments with their text — but not a full AST.
//! `syn` is deliberately not used: the linter must build on a bare
//! toolchain with no registry access, and token patterns are sufficient
//! for every invariant we check (see DESIGN.md §9 for the accepted
//! imprecision and the annotation escape hatch).
//!
//! The scanner understands line/doc comments, nested block comments,
//! string literals with escapes, raw strings (`r#"…"#`), byte/C-string
//! prefixes, char literals vs. lifetimes, numbers (including hex and
//! float forms) and raw identifiers. Everything else is a one-byte
//! punctuation token.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `unwrap`, `Frame`, …).
    Ident,
    /// Numeric literal, raw text preserved (`0x0D`, `1.5e-9`, `42u64`).
    Number,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character literal (`'x'`, `'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Single punctuation byte (`.`, `(`, `[`, `!`, …).
    Punct(u8),
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: Kind,
    /// The token's text. For `Str` this is the *unquoted* content; for
    /// everything else the raw source slice.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    /// True when the token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == Kind::Ident && self.text == word
    }

    /// True when the token is the punctuation byte `ch`.
    pub fn is_punct(&self, ch: u8) -> bool {
        self.kind == Kind::Punct(ch)
    }
}

/// One comment with its source position — kept separately from the token
/// stream so the passes can match `lint:allow` annotations to lines.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// Tokenized source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn new(source: &'a str) -> Self {
        Cursor { bytes: source.as_bytes(), pos: 0, line: 1 }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let byte = self.peek()?;
        self.pos += 1;
        if byte == b'\n' {
            self.line += 1;
        }
        Some(byte)
    }

    fn slice(&self, start: usize, end: usize) -> &'a str {
        // Positions always come from prior scans of the same UTF-8
        // buffer, so the slice is in bounds and on char boundaries.
        self.bytes.get(start..end).and_then(|raw| std::str::from_utf8(raw).ok()).unwrap_or_default()
    }
}

fn is_ident_start(byte: u8) -> bool {
    byte.is_ascii_alphabetic() || byte == b'_' || byte >= 0x80
}

fn is_ident_continue(byte: u8) -> bool {
    byte.is_ascii_alphanumeric() || byte == b'_' || byte >= 0x80
}

/// Tokenizes `source`, splitting code tokens from comments.
pub fn lex(source: &str) -> Lexed {
    let mut cursor = Cursor::new(source);
    let mut out = Lexed::default();
    while let Some(byte) = cursor.peek() {
        let start = cursor.pos;
        let line = cursor.line;
        match byte {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cursor.bump();
            }
            b'/' if cursor.peek_at(1) == Some(b'/') => {
                while let Some(b) = cursor.peek() {
                    if b == b'\n' {
                        break;
                    }
                    cursor.bump();
                }
                out.comments
                    .push(Comment { text: cursor.slice(start, cursor.pos).to_string(), line });
            }
            b'/' if cursor.peek_at(1) == Some(b'*') => {
                cursor.bump();
                cursor.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (cursor.peek(), cursor.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cursor.bump();
                            cursor.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cursor.bump();
                            cursor.bump();
                        }
                        (Some(_), _) => {
                            cursor.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments
                    .push(Comment { text: cursor.slice(start, cursor.pos).to_string(), line });
            }
            b'"' => {
                let content = scan_string(&mut cursor);
                out.tokens.push(Token { kind: Kind::Str, text: content, line });
            }
            b'\'' => {
                scan_quote(&mut cursor, &mut out, line);
            }
            b'r' | b'b' | b'c' if starts_prefixed_literal(&cursor) => {
                let content = scan_prefixed_literal(&mut cursor);
                out.tokens.push(Token { kind: Kind::Str, text: content, line });
            }
            _ if byte.is_ascii_digit() => {
                scan_number(&mut cursor);
                out.tokens.push(Token {
                    kind: Kind::Number,
                    text: cursor.slice(start, cursor.pos).to_string(),
                    line,
                });
            }
            _ if is_ident_start(byte) => {
                while let Some(b) = cursor.peek() {
                    if !is_ident_continue(b) {
                        break;
                    }
                    cursor.bump();
                }
                out.tokens.push(Token {
                    kind: Kind::Ident,
                    text: cursor.slice(start, cursor.pos).to_string(),
                    line,
                });
            }
            _ => {
                cursor.bump();
                out.tokens.push(Token {
                    kind: Kind::Punct(byte),
                    text: (byte as char).to_string(),
                    line,
                });
            }
        }
    }
    out
}

/// Does the cursor sit on `r"`, `r#`, `b"`, `b'`, `br`, `rb`, `c"`, `cr`…
/// — i.e. a prefixed string/byte literal rather than an identifier?
fn starts_prefixed_literal(cursor: &Cursor<'_>) -> bool {
    let first = cursor.peek();
    let second = cursor.peek_at(1);
    let third = cursor.peek_at(2);
    match (first, second) {
        (Some(b'r'), Some(b'"')) | (Some(b'r'), Some(b'#')) => {
            // `r#ident` is a raw identifier, not a raw string: a raw
            // string hash run is always followed by `"` eventually, a raw
            // ident by an ident char. One hash + ident-start = raw ident.
            if second == Some(b'#') {
                matches!(third, Some(b'"') | Some(b'#'))
            } else {
                true
            }
        }
        (Some(b'b'), Some(b'"')) | (Some(b'b'), Some(b'\'')) => true,
        (Some(b'b'), Some(b'r')) => matches!(third, Some(b'"') | Some(b'#')),
        (Some(b'c'), Some(b'"')) => true,
        (Some(b'c'), Some(b'r')) => matches!(third, Some(b'"') | Some(b'#')),
        _ => false,
    }
}

/// Scans a literal that starts with one of the `r`/`b`/`c` prefixes.
fn scan_prefixed_literal(cursor: &mut Cursor<'_>) -> String {
    // Consume prefix letters.
    while let Some(b) = cursor.peek() {
        if b == b'"' || b == b'#' || b == b'\'' {
            break;
        }
        cursor.bump();
    }
    if cursor.peek() == Some(b'\'') {
        // b'x' byte char.
        cursor.bump();
        let mut text = String::new();
        while let Some(b) = cursor.peek() {
            if b == b'\\' {
                cursor.bump();
                cursor.bump();
                continue;
            }
            if b == b'\'' {
                cursor.bump();
                break;
            }
            text.push(b as char);
            cursor.bump();
        }
        return text;
    }
    // Count hashes for raw strings.
    let mut hashes = 0usize;
    while cursor.peek() == Some(b'#') {
        hashes += 1;
        cursor.bump();
    }
    if cursor.peek() == Some(b'"') {
        cursor.bump();
    }
    let content_start = cursor.pos;
    let content_end;
    if hashes == 0 && content_start > 0 {
        // Raw-or-plain string with no hashes: for `r"…"` there are no
        // escapes; for plain prefixed strings (`b"…"`, `c"…"`) escapes
        // exist, but `\"` is the only one that matters for finding the
        // end, so handle it uniformly.
        loop {
            match cursor.peek() {
                Some(b'\\') if hashes == 0 => {
                    cursor.bump();
                    cursor.bump();
                }
                Some(b'"') => {
                    content_end = cursor.pos;
                    cursor.bump();
                    break;
                }
                Some(_) => {
                    cursor.bump();
                }
                None => {
                    content_end = cursor.pos;
                    break;
                }
            }
        }
    } else {
        // Raw string: ends at `"` followed by `hashes` hashes.
        loop {
            match cursor.peek() {
                Some(b'"') => {
                    let mut matched = true;
                    for i in 0..hashes {
                        if cursor.peek_at(1 + i) != Some(b'#') {
                            matched = false;
                            break;
                        }
                    }
                    if matched {
                        content_end = cursor.pos;
                        cursor.bump();
                        for _ in 0..hashes {
                            cursor.bump();
                        }
                        break;
                    }
                    cursor.bump();
                }
                Some(_) => {
                    cursor.bump();
                }
                None => {
                    content_end = cursor.pos;
                    break;
                }
            }
        }
    }
    cursor.slice(content_start, content_end).to_string()
}

/// Scans a plain `"…"` string, returning the unescaped-ish content (escape
/// sequences are kept verbatim minus the backslash handling needed to find
/// the closing quote).
fn scan_string(cursor: &mut Cursor<'_>) -> String {
    cursor.bump(); // opening quote
    let start = cursor.pos;
    let end;
    loop {
        match cursor.peek() {
            Some(b'\\') => {
                cursor.bump();
                cursor.bump();
            }
            Some(b'"') => {
                end = cursor.pos;
                cursor.bump();
                break;
            }
            Some(_) => {
                cursor.bump();
            }
            None => {
                end = cursor.pos;
                break;
            }
        }
    }
    cursor.slice(start, end).to_string()
}

/// Scans `'…` — either a char literal or a lifetime.
fn scan_quote(cursor: &mut Cursor<'_>, out: &mut Lexed, line: u32) {
    let start = cursor.pos;
    cursor.bump(); // the quote
    match cursor.peek() {
        Some(b'\\') => {
            // Escaped char literal: consume escape then closing quote.
            cursor.bump();
            cursor.bump();
            // Unicode escapes: \u{…}
            if cursor.peek() == Some(b'{') {
                while let Some(b) = cursor.bump() {
                    if b == b'}' {
                        break;
                    }
                }
            }
            if cursor.peek() == Some(b'\'') {
                cursor.bump();
            }
            out.tokens.push(Token {
                kind: Kind::Char,
                text: cursor.slice(start, cursor.pos).to_string(),
                line,
            });
        }
        Some(b) if is_ident_start(b) => {
            // Could be 'a' (char) or 'a / 'static (lifetime).
            cursor.bump();
            let mut ident_len = 1usize;
            while let Some(next) = cursor.peek() {
                if !is_ident_continue(next) {
                    break;
                }
                cursor.bump();
                ident_len += 1;
            }
            if ident_len == 1 && cursor.peek() == Some(b'\'') {
                cursor.bump();
                out.tokens.push(Token {
                    kind: Kind::Char,
                    text: cursor.slice(start, cursor.pos).to_string(),
                    line,
                });
            } else {
                out.tokens.push(Token {
                    kind: Kind::Lifetime,
                    text: cursor.slice(start, cursor.pos).to_string(),
                    line,
                });
            }
        }
        Some(_) => {
            // Punctuation char literal like '(' or ' '.
            cursor.bump();
            if cursor.peek() == Some(b'\'') {
                cursor.bump();
            }
            out.tokens.push(Token {
                kind: Kind::Char,
                text: cursor.slice(start, cursor.pos).to_string(),
                line,
            });
        }
        None => {}
    }
}

/// Scans a numeric literal (int, float, hex/oct/bin, suffixes).
fn scan_number(cursor: &mut Cursor<'_>) {
    // Leading digits and any radix prefix / suffix letters.
    while let Some(b) = cursor.peek() {
        if b.is_ascii_alphanumeric() || b == b'_' {
            cursor.bump();
        } else if b == b'.' {
            // `1.5` is a float continuation, `1..n` is a range, `1.max()`
            // is a method call on an integer.
            match cursor.peek_at(1) {
                Some(next) if next.is_ascii_digit() => {
                    cursor.bump();
                }
                _ => break,
            }
        } else if (b == b'+' || b == b'-')
            && matches!(cursor.bytes.get(cursor.pos.wrapping_sub(1)), Some(b'e') | Some(b'E'))
            && cursor.peek_at(1).is_some_and(|n| n.is_ascii_digit())
        {
            // Exponent sign: 1e-9.
            cursor.bump();
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<Kind> {
        lex(source).tokens.iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let lexed = lex("fn main() { x.unwrap(); }");
        let idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["fn", "main", "x", "unwrap"]);
    }

    #[test]
    fn comments_are_split_out() {
        let lexed = lex("let a = 1; // lint:allow(panic) reason\n/* block */ let b = 2;");
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments.first().is_some_and(|c| c.text.contains("lint:allow")));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* a /* b */ c */ fn");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.tokens.len(), 1);
    }

    #[test]
    fn strings_hide_their_content() {
        let lexed = lex(r#"let s = "x.unwrap() // not a comment";"#);
        assert!(lexed.comments.is_empty());
        assert!(lexed.tokens.iter().any(|t| t.kind == Kind::Str));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn raw_strings() {
        let lexed = lex(r##"let s = r#"quote " inside"#; let t = 1;"##);
        let strings: Vec<&str> =
            lexed.tokens.iter().filter(|t| t.kind == Kind::Str).map(|t| t.text.as_str()).collect();
        assert_eq!(strings, ["quote \" inside"]);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("t")));
    }

    #[test]
    fn lifetimes_vs_chars() {
        assert!(kinds("'a'").contains(&Kind::Char));
        assert!(kinds("&'a str").contains(&Kind::Lifetime));
        assert!(kinds("'static").contains(&Kind::Lifetime));
        assert!(kinds(r"'\n'").contains(&Kind::Char));
        assert!(kinds(r"'\u{1F600}'").contains(&Kind::Char));
    }

    #[test]
    fn numbers_keep_raw_text() {
        let lexed = lex("0x0D 1.5e-9 42u64 1..10");
        let numbers: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(numbers, ["0x0D", "1.5e-9", "42u64", "1", "10"]);
    }

    #[test]
    fn line_numbers() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let lexed = lex(r##"b"hello world" b'\xFF' br#"raw"# "##);
        assert!(lexed.tokens.iter().all(|t| t.kind == Kind::Str));
    }
}
