//! `cargo xtask` — workspace automation.
//!
//! `cargo xtask lint` runs the MultiPub-specific static analysis passes
//! over every library crate (see DESIGN.md §9):
//!
//! * **L1** panic-freedom: no `unwrap`/`expect`/`panic!`/indexing in
//!   non-test library code without a justified annotation,
//! * **L2** no blocking calls inside async fns (executor stalls),
//! * **L3** frame-tag exhaustiveness: `Frame::tag()`, `KNOWN_TAGS`,
//!   encode arms and decode arms must all agree,
//! * **L4** metric-name catalog: every name passed to `multipub_obs`
//!   comes from `crates/obs/src/metrics.rs`, and the README table
//!   matches it,
//! * **L5** bounded channels: no `unbounded_channel` in non-test
//!   library code (slow consumers must hit backpressure, not OOM),
//! * **L6** lock-order discipline: every `Mutex`/`RwLock` declaration
//!   carries a `// lock:rank(name, N)` annotation, and no lexically
//!   visible nested acquisition takes a rank ≤ one already held
//!   (DESIGN.md §14; the `MULTIPUB_LOCK_WITNESS` runtime witness covers
//!   the call-graph nestings this pass cannot see).
//!
//! Escape hatch: `// lint:allow(<category>) <reason>` on the same or
//! previous line (`panic`, `indexing`, `blocking`, `metric`, `channel`,
//! `lockorder`), or `// lint:allow-file(<category>) <reason>` for a
//! whole file. The reason is mandatory; empty justifications are
//! themselves findings.
//!
//! The per-file sweep (lex → analyze → L1/L2/L5/L4/L6-scan) fans out
//! across threads; the cross-file passes (L3, L4 catalog drift, L6
//! rank graph) then run once over the gathered facts. `--json` prints
//! findings as a JSON array for tooling.

pub mod l1_panics;
pub mod l2_blocking;
pub mod l3_frames;
pub mod l4_metrics;
pub mod l5_channels;
pub mod l6_lockorder;
pub mod lexer;
pub mod spans;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One lint finding.
#[derive(Debug)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Pass identifier (`L1`…`L6`).
    pub pass: &'static str,
    /// Finding category (matches the `lint:allow` category).
    pub category: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// The categories `lint:allow` / `lint:allow-file` accept.
pub const VALID_ALLOW_CATEGORIES: [&str; 6] =
    ["panic", "indexing", "blocking", "metric", "channel", "lockorder"];

/// Everything one `lint` run produces, separated from printing so the
/// golden-corpus tests can assert on it directly.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Findings, sorted by `(file, line)`.
    pub findings: Vec<Finding>,
    /// Non-fatal notes (unreadable files, unused annotations).
    pub warnings: Vec<String>,
    /// Number of files analyzed.
    pub checked: usize,
}

/// Workspace root: the parent of this crate's manifest dir, falling back
/// to the current directory.
pub fn workspace_root() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .and_then(|dir| dir.parent().map(Path::to_path_buf))
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."))
}

/// All `.rs` files under the workspace's library source trees
/// (`crates/*/src/**` and `xtask/src/**`), sorted for stable output.
pub fn source_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            walk_rs(&entry.path().join("src"), &mut files);
        }
    }
    walk_rs(&root.join("xtask").join("src"), &mut files);
    files.sort();
    files
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).display().to_string()
}

/// Per-file results of the parallel phase.
struct FileReport {
    name: String,
    lexed: lexer::Lexed,
    facts: spans::FileFacts,
    lock_facts: l6_lockorder::FileLockFacts,
    findings: Vec<Finding>,
}

/// Runs every pass over in-memory `(workspace-relative name, source)`
/// pairs. `readme` is the README.md text for the L4 drift check (`None`
/// skips it with a warning). This is the whole linter minus file I/O —
/// the golden corpus drives it with synthetic workspaces.
pub fn run_passes(inputs: &[(String, String)], readme: Option<&str>) -> LintOutcome {
    let mut outcome = LintOutcome { checked: inputs.len(), ..LintOutcome::default() };
    let findings = &mut outcome.findings;

    // The L4 catalog gates the per-file metric checks, so parse it
    // before fanning out.
    let catalog = match inputs.iter().find(|(name, _)| name.ends_with("obs/src/metrics.rs")) {
        Some((name, source)) => {
            Some(l4_metrics::parse_catalog(name, &lexer::lex(source), findings))
        }
        None => {
            findings.push(Finding {
                file: "crates/obs/src/metrics.rs".to_string(),
                line: 1,
                pass: "L4",
                category: "metric",
                message: "metric catalog file is missing".to_string(),
            });
            None
        }
    };

    // Parallel per-file sweep. `FileFacts` is `Send` but not `Sync`
    // (allow-annotation use marks are `Cell`s), so each thread owns its
    // chunk's facts outright and hands them back when it joins; chunks
    // are contiguous, so joining in spawn order preserves file order.
    let threads = std::thread::available_parallelism().map_or(1, usize::from).min(8);
    let chunk_size = inputs.len().div_ceil(threads).max(1);
    let reports: Vec<FileReport> = std::thread::scope(|scope| {
        let catalog = catalog.as_ref();
        let handles: Vec<_> = inputs
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|(name, source)| check_one_file(name, source, catalog))
                        .collect::<Vec<FileReport>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| match handle.join() {
                Ok(reports) => reports,
                // A panicking pass is a linter bug; re-raise it with its
                // original message instead of a generic join error.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut reports = reports;
    for report in &mut reports {
        findings.append(&mut report.findings);
    }

    // Cross-file passes over the gathered facts.
    let find_tokens = |suffix: &str| {
        reports
            .iter()
            .find(|r| r.name.ends_with(suffix))
            .map(|r| (r.name.as_str(), r.lexed.tokens.as_slice()))
    };
    match (find_tokens("broker/src/frame.rs"), find_tokens("broker/src/codec.rs")) {
        (Some((frame_name, frame)), Some((codec_name, codec))) => {
            l3_frames::check(frame_name, frame, codec_name, codec, findings);
        }
        _ => {
            findings.push(Finding {
                file: "crates/broker/src".to_string(),
                line: 1,
                pass: "L3",
                category: "frame",
                message: "frame.rs / codec.rs not found; cannot check tag exhaustiveness"
                    .to_string(),
            });
        }
    }

    if let Some(catalog) = &catalog {
        // Trace stages must each have their per-stage latency histogram.
        match find_tokens("obs/src/trace.rs") {
            Some((trace_path, tokens)) => {
                l4_metrics::check_stage_metrics(trace_path, tokens, catalog, findings);
            }
            None => outcome
                .warnings
                .push("obs/src/trace.rs not found; skipping stage check".to_string()),
        }
        match readme {
            Some(readme) => l4_metrics::check_readme("README.md", readme, catalog, findings),
            None => {
                outcome.warnings.push("README.md not readable; skipping drift check".to_string())
            }
        }
    }

    // L6 rank graph across every file. Runs after the per-file sweep so
    // its `lint:allow(lockorder)` lookups are reflected in the unused-
    // annotation warnings below.
    let lock_files: Vec<(String, l6_lockorder::FileLockFacts, &spans::FileFacts)> =
        reports.iter().map(|r| (r.name.clone(), r.lock_facts.clone(), &r.facts)).collect();
    l6_lockorder::check_workspace(&lock_files, findings);

    for report in &reports {
        for allow in report.facts.allows.iter().chain(report.facts.file_allows.iter()) {
            if !allow.used.get() && VALID_ALLOW_CATEGORIES.contains(&allow.category.as_str()) {
                outcome.warnings.push(format!(
                    "{}:{}: unused lint:allow({}) annotation",
                    report.name, allow.line, allow.category
                ));
            }
        }
    }

    outcome.findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    outcome
}

/// Everything that only needs one file: lex, structural analysis, the
/// per-file passes, and annotation hygiene.
fn check_one_file(name: &str, source: &str, catalog: Option<&l4_metrics::Catalog>) -> FileReport {
    let lexed = lexer::lex(source);
    let facts = spans::analyze(&lexed);
    let mut findings = Vec::new();

    // Annotation hygiene: unknown categories and missing reasons are
    // findings in their own right.
    for allow in facts.allows.iter().chain(facts.file_allows.iter()) {
        if !VALID_ALLOW_CATEGORIES.contains(&allow.category.as_str()) {
            findings.push(Finding {
                file: name.to_string(),
                line: allow.line,
                pass: "meta",
                category: "annotation",
                message: format!(
                    "unknown lint:allow category `{}` (valid: {})",
                    allow.category,
                    VALID_ALLOW_CATEGORIES.join(", ")
                ),
            });
        }
    }
    for allow in facts.unjustified() {
        findings.push(Finding {
            file: name.to_string(),
            line: allow.line,
            pass: "meta",
            category: "annotation",
            message: format!(
                "lint:allow({}) needs a real justification after the parentheses",
                allow.category
            ),
        });
    }

    l1_panics::check(name, &lexed.tokens, &facts, &mut findings);
    l2_blocking::check(name, &lexed.tokens, &facts, &mut findings);
    l5_channels::check(name, &lexed.tokens, &facts, &mut findings);
    if let Some(catalog) = catalog {
        // The catalog file itself declares, it does not consume.
        if !name.ends_with("obs/src/metrics.rs") {
            l4_metrics::check_file(name, &lexed.tokens, &facts, catalog, &mut findings);
        }
    }
    let lock_facts = l6_lockorder::scan_file(name, &lexed, &facts, &mut findings);

    FileReport { name: name.to_string(), lexed, facts, lock_facts, findings }
}

/// Renders findings as a JSON array (objects with `file`, `line`,
/// `pass`, `category`, `message`), for `cargo xtask lint --json`.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, finding) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": {}, \"line\": {}, \"pass\": {}, \"category\": {}, \"message\": {}}}",
            json_string(&finding.file),
            finding.line,
            json_string(finding.pass),
            json_string(finding.category),
            json_string(&finding.message)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The `lint` subcommand: reads the workspace, runs the passes, prints
/// text or JSON (`--json`), and exits non-zero on any finding.
pub fn lint(json: bool) -> ExitCode {
    let root = workspace_root();
    let files = source_files(&root);
    if files.is_empty() {
        eprintln!("xtask lint: no source files found under {}", root.display());
        return ExitCode::FAILURE;
    }

    let mut inputs: Vec<(String, String)> = Vec::new();
    let mut io_warnings: Vec<String> = Vec::new();
    for path in &files {
        match std::fs::read_to_string(path) {
            Ok(source) => inputs.push((rel(&root, path), source)),
            Err(_) => io_warnings.push(format!("could not read {}", rel(&root, path))),
        }
    }
    let readme = std::fs::read_to_string(root.join("README.md")).ok();

    let mut outcome = run_passes(&inputs, readme.as_deref());
    outcome.warnings.splice(0..0, io_warnings);

    if json {
        print!("{}", render_json(&outcome.findings));
    } else {
        for finding in &outcome.findings {
            println!(
                "{}:{}: [{}.{}] {}",
                finding.file, finding.line, finding.pass, finding.category, finding.message
            );
        }
    }
    for warning in &outcome.warnings {
        eprintln!("warning: {warning}");
    }
    if outcome.findings.is_empty() {
        eprintln!(
            "xtask lint: {} files clean (L1 panics, L2 blocking, L3 frames, L4 metrics, \
             L5 channels, L6 lock order)",
            outcome.checked
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "xtask lint: {} finding(s) across {} files",
            outcome.findings.len(),
            outcome.checked
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_escapes() {
        let findings = vec![Finding {
            file: "a/b.rs".to_string(),
            line: 3,
            pass: "L1",
            category: "panic",
            message: "uses `unwrap` on \"input\"\\path".to_string(),
        }];
        let json = render_json(&findings);
        assert!(json.contains("\"file\": \"a/b.rs\""));
        assert!(json.contains("\"line\": 3"));
        assert!(json.contains("uses `unwrap` on \\\"input\\\"\\\\path"));
        assert_eq!(render_json(&[]), "[]\n");
    }

    #[test]
    fn run_passes_flags_and_sorts() {
        let inputs = vec![
            (
                "crates/z/src/lib.rs".to_string(),
                "fn f(v: &[u8]) { v.iter().next().unwrap(); }".to_string(),
            ),
            ("crates/a/src/lib.rs".to_string(), "struct S { m: Mutex<u32>, }".to_string()),
        ];
        let outcome = run_passes(&inputs, None);
        assert_eq!(outcome.checked, 2);
        let relevant: Vec<_> =
            outcome.findings.iter().filter(|f| f.pass == "L1" || f.pass == "L6").collect();
        assert_eq!(relevant.len(), 2);
        assert_eq!(relevant[0].pass, "L6");
        assert_eq!(relevant[1].pass, "L1");
    }
}
