//! Pass L1 — panic-freedom of non-test library code.
//!
//! Flags, outside `#[cfg(test)]`/`#[test]` spans:
//!
//! * `.unwrap()` / `.expect(…)` (and their `_err` variants),
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!`,
//! * slice/array/map indexing `x[i]` (which can panic on out-of-bounds)
//!   unless the index is the full-range `[..]`.
//!
//! `assert!`/`debug_assert!` are deliberately *not* flagged: stating an
//! invariant loudly is the behaviour we want — silently truncating would
//! be worse. Sites with a justified `// lint:allow(panic) reason` or
//! `// lint:allow(indexing) reason` annotation are accepted; the reason
//! is mandatory (see DESIGN.md §9).

use crate::lexer::{Kind, Token};
use crate::spans::FileFacts;
use crate::Finding;

const PANIC_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that may directly precede `[` without it being an index
/// operation (array expressions and patterns).
const NON_INDEX_KEYWORDS: [&str; 12] =
    ["return", "break", "let", "in", "as", "mut", "ref", "else", "match", "if", "while", "move"];

/// Runs the pass over one file's tokens.
pub fn check(path: &str, tokens: &[Token], facts: &FileFacts, findings: &mut Vec<Finding>) {
    for (i, token) in tokens.iter().enumerate() {
        if facts.in_test.get(i).copied().unwrap_or(false)
            || facts.in_attr.get(i).copied().unwrap_or(false)
        {
            continue;
        }
        match token.kind {
            Kind::Ident if PANIC_METHODS.contains(&token.text.as_str()) => {
                let after_dot = i > 0 && tokens.get(i - 1).is_some_and(|t| t.is_punct(b'.'));
                let called = tokens.get(i + 1).is_some_and(|t| t.is_punct(b'('));
                if after_dot && called && facts.allowed("panic", token.line).is_none() {
                    findings.push(Finding {
                        file: path.to_string(),
                        line: token.line,
                        pass: "L1",
                        category: "panic",
                        message: format!(
                            "`.{}()` in non-test library code; return a typed error or annotate \
                             `// lint:allow(panic) <reason>`",
                            token.text
                        ),
                    });
                }
            }
            Kind::Ident if PANIC_MACROS.contains(&token.text.as_str()) => {
                let is_macro = tokens.get(i + 1).is_some_and(|t| t.is_punct(b'!'));
                // `core::panic::Location` and similar paths are not macro
                // invocations; the `!` check covers that.
                if is_macro && facts.allowed("panic", token.line).is_none() {
                    findings.push(Finding {
                        file: path.to_string(),
                        line: token.line,
                        pass: "L1",
                        category: "panic",
                        message: format!(
                            "`{}!` in non-test library code; return a typed error or annotate \
                             `// lint:allow(panic) <reason>`",
                            token.text
                        ),
                    });
                }
            }
            Kind::Punct(b'[') => {
                if is_index_expr(tokens, i) && facts.allowed("indexing", token.line).is_none() {
                    findings.push(Finding {
                        file: path.to_string(),
                        line: token.line,
                        pass: "L1",
                        category: "indexing",
                        message: "indexing can panic out-of-bounds; use `.get(…)` or annotate \
                                  `// lint:allow(indexing) <reason>`"
                            .to_string(),
                    });
                }
            }
            _ => {}
        }
    }
}

/// Is the `[` at token `i` an index operation on the preceding
/// expression (as opposed to an array literal, type, pattern or
/// attribute)?
fn is_index_expr(tokens: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|p| tokens.get(p)) else {
        return false;
    };
    let prev_is_expr_end = match prev.kind {
        Kind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
        Kind::Punct(b')') | Kind::Punct(b']') => true,
        _ => false,
    };
    if !prev_is_expr_end {
        return false;
    }
    // `&x[..]` slices the whole range — cannot panic.
    let full_range = tokens.get(i + 1).is_some_and(|t| t.is_punct(b'.'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(b'.'))
        && tokens.get(i + 3).is_some_and(|t| t.is_punct(b']'));
    !full_range
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::spans::analyze;

    fn run(source: &str) -> Vec<Finding> {
        let lexed = lex(source);
        let facts = analyze(&lexed);
        let mut findings = Vec::new();
        check("test.rs", &lexed.tokens, &facts, &mut findings);
        findings
    }

    #[test]
    fn unwrap_flagged() {
        let findings = run("fn f() { x.unwrap(); }");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings.first().map(|f| f.category), Some("panic"));
    }

    #[test]
    fn unwrap_in_test_mod_exempt() {
        assert!(run("#[cfg(test)] mod tests { fn t() { x.unwrap(); } }").is_empty());
    }

    #[test]
    fn unwrap_or_not_flagged() {
        assert!(run("fn f() { x.unwrap_or(0); x.unwrap_or_default(); }").is_empty());
    }

    #[test]
    fn panic_macro_flagged_but_assert_is_not() {
        assert_eq!(run("fn f() { panic!(\"boom\"); }").len(), 1);
        assert!(run("fn f() { assert!(a == b); debug_assert_eq!(a, b); }").is_empty());
    }

    #[test]
    fn allowed_with_reason_is_accepted() {
        let source = "fn f() {\n// lint:allow(panic) mask validated by the constructor above\nx.unwrap();\n}";
        assert!(run(source).is_empty());
    }

    #[test]
    fn indexing_flagged() {
        assert_eq!(run("fn f() { let y = v[0]; }").len(), 1);
    }

    #[test]
    fn array_literals_types_and_full_range_not_flagged() {
        assert!(run("fn f(a: [u8; 4]) { let b = [0u8; 16]; let c = &v[..]; }").is_empty());
        assert!(run("fn f() -> [f64; 2] { return [0.0, 1.0]; }").is_empty());
    }

    #[test]
    fn vec_macro_not_flagged() {
        assert!(run("fn f() { let v = vec![0; 10]; }").is_empty());
    }

    #[test]
    fn expect_flagged() {
        assert_eq!(run("fn f() { x.expect(\"reason\"); }").len(), 1);
    }
}
