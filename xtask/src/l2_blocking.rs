//! Pass L2 — no blocking calls inside async fns, workspace-wide (every
//! library crate's sources, not just the broker and cli).
//!
//! Flags, inside `async fn` bodies / `async` blocks outside test code:
//!
//! * `std::thread::sleep` (use `tokio::time::sleep`),
//! * blocking `std::net` socket types (`TcpStream`, `TcpListener`,
//!   `UdpSocket`) — use the `tokio::net` equivalents,
//! * blocking `std::fs` filesystem calls (`fs::read`, `fs::File::open`,
//!   …) — use `tokio::fs` or move the I/O to `spawn_blocking`,
//! * `block_on(…)` (nested runtimes deadlock),
//! * a synchronous mutex guard (`.lock()` / `.read()` / `.write()` with
//!   no arguments, i.e. `std::sync` or `parking_lot`) held across an
//!   `.await` point. `tokio::sync` acquisitions are recognised by the
//!   immediately following `.await` and exempted.
//!
//! The guard-across-await check is a token-level heuristic over Rust's
//! temporary-lifetime rules: a guard temporary lives to the end of its
//! full statement (including `for`/`match`/`if let` scrutinee extension),
//! and a `let`-bound guard lives to the end of its enclosing block.
//! False positives are silenced with `// lint:allow(blocking) <reason>`.

use crate::lexer::{Kind, Token};
use crate::spans::{matching_brace, FileFacts};
use crate::Finding;

const GUARD_METHODS: [&str; 3] = ["lock", "read", "write"];
const BLOCKING_NET_TYPES: [&str; 3] = ["TcpStream", "TcpListener", "UdpSocket"];

/// Runs the pass over one file's tokens.
pub fn check(path: &str, tokens: &[Token], facts: &FileFacts, findings: &mut Vec<Finding>) {
    for (i, token) in tokens.iter().enumerate() {
        if !facts.in_async(i)
            || facts.in_test.get(i).copied().unwrap_or(false)
            || facts.in_attr.get(i).copied().unwrap_or(false)
        {
            continue;
        }
        if token.kind != Kind::Ident {
            continue;
        }
        let path_prefix = |steps_back: usize, word: &str| -> bool {
            // `word :: … :: token` — check the ident `steps_back` path
            // segments before this one.
            let offset = steps_back * 3;
            i.checked_sub(offset).is_some_and(|j| {
                tokens.get(j).is_some_and(|t| t.is_ident(word))
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct(b':'))
                    && tokens.get(j + 2).is_some_and(|t| t.is_punct(b':'))
            })
        };
        match token.text.as_str() {
            "sleep" if path_prefix(1, "thread") => {
                if facts.allowed("blocking", token.line).is_none() {
                    findings.push(finding(
                        path,
                        token.line,
                        "`std::thread::sleep` blocks the async executor; use \
                         `tokio::time::sleep`",
                    ));
                }
            }
            "block_on" if tokens.get(i + 1).is_some_and(|t| t.is_punct(b'(')) => {
                if facts.allowed("blocking", token.line).is_none() {
                    findings.push(finding(
                        path,
                        token.line,
                        "`block_on` inside an async context can deadlock the runtime",
                    ));
                }
            }
            t if BLOCKING_NET_TYPES.contains(&t)
                && path_prefix(1, "net")
                && path_prefix(2, "std") =>
            {
                if facts.allowed("blocking", token.line).is_none() {
                    findings.push(finding(
                        path,
                        token.line,
                        &format!("blocking `std::net::{t}` in async code; use `tokio::net::{t}`"),
                    ));
                }
            }
            // `fs::<anything>` (`std::fs::read`, `fs::File::open` via the
            // `File` segment…) — `tokio::fs` is exempted by its prefix.
            _ if path_prefix(1, "fs") && !path_prefix(2, "tokio") => {
                if facts.allowed("blocking", token.line).is_none() {
                    findings.push(finding(
                        path,
                        token.line,
                        "blocking `std::fs` call in async code; use `tokio::fs` or \
                         `spawn_blocking`",
                    ));
                }
            }
            t if GUARD_METHODS.contains(&t) => {
                check_guard_across_await(path, tokens, facts, i, findings);
            }
            _ => {}
        }
    }
}

fn finding(path: &str, line: u32, message: &str) -> Finding {
    Finding {
        file: path.to_string(),
        line,
        pass: "L2",
        category: "blocking",
        message: format!("{message}; annotate `// lint:allow(blocking) <reason>` if intended"),
    }
}

/// `i` points at a `lock`/`read`/`write` ident inside an async span.
/// Flags the site when the call is a zero-argument guard acquisition
/// whose guard is provably live across a later `.await`.
fn check_guard_across_await(
    path: &str,
    tokens: &[Token],
    facts: &FileFacts,
    i: usize,
    findings: &mut Vec<Finding>,
) {
    let is_method_call = i > 0
        && tokens.get(i - 1).is_some_and(|t| t.is_punct(b'.'))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct(b'('))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(b')'));
    if !is_method_call {
        // `.read(&mut buf)`, `write!(…)`, free fns etc. are not guard
        // acquisitions.
        return;
    }
    // `.lock().await` — a tokio/async mutex; holding those across awaits
    // is exactly what they are for.
    let awaited_immediately = tokens.get(i + 3).is_some_and(|t| t.is_punct(b'.'))
        && tokens.get(i + 4).is_some_and(|t| t.is_ident("await"));
    if awaited_immediately {
        return;
    }
    let Some(line) = tokens.get(i).map(|t| t.line) else { return };
    if facts.allowed("blocking", line).is_some() {
        return;
    }
    let span_end = facts
        .async_spans
        .iter()
        .filter(|s| s.contains(i))
        .map(|s| s.end)
        .min()
        .unwrap_or(tokens.len());
    let region_end = guard_live_region(tokens, i, span_end);
    // Scan for a `.await` after the acquisition within the live region.
    let mut k = i + 3;
    while k < region_end.min(span_end) {
        let is_await = tokens.get(k).is_some_and(|t| t.is_punct(b'.'))
            && tokens.get(k + 1).is_some_and(|t| t.is_ident("await"));
        if is_await {
            findings.push(finding(
                path,
                line,
                "synchronous lock guard held across `.await`; scope the guard so it drops \
                 first, or use `tokio::sync`",
            ));
            return;
        }
        k += 1;
    }
}

/// End (exclusive) of the token region in which the guard acquired by
/// the zero-argument `.lock()`/`.read()`/`.write()` call at `i` is live,
/// bounded by `limit`. Token-level heuristic over Rust's
/// temporary-lifetime rules, shared by L2 (guard across `.await`) and
/// L6 (nested acquisition while held):
///
/// * `let g = m.lock();` (incl. `.unwrap()`/`.expect(…)`/`.await`
///   chains) — guard named, lives to the end of the enclosing block,
/// * `let x = m.lock().clone();` — guard is a temporary dropped at the
///   end of the `let` statement,
/// * `for`/`match`/`if let`/`while let` scrutinee temporaries live
///   through the body (and `else` chain),
/// * plain `if`/`while` condition temporaries drop at the body `{`,
/// * anything else — temporary dropped at the end of its statement.
pub(crate) fn guard_live_region(tokens: &[Token], i: usize, limit: usize) -> usize {
    let stmt_start = statement_start(tokens, i);
    let first = tokens.get(stmt_start);
    if first.is_some_and(|t| t.is_ident("let")) && binds_guard(tokens, i) {
        // A named guard lives to the end of the enclosing block — unless
        // it is dropped or shadowed, which the heuristic does not track;
        // annotate those sites.
        enclosing_block_end(tokens, i, limit)
    } else if first.is_some_and(|t| t.is_ident("let")) {
        expression_statement_end(tokens, i, limit)
    } else {
        match first.map(|t| t.text.as_str()) {
            Some("for") | Some("match") | Some("loop") => {
                block_statement_end(tokens, stmt_start, limit)
            }
            Some("if") | Some("while") => {
                let is_let = tokens.get(stmt_start + 1).is_some_and(|t| t.is_ident("let"));
                if is_let {
                    block_statement_end(tokens, stmt_start, limit)
                } else {
                    first_depth0_brace(tokens, stmt_start, limit)
                }
            }
            _ => expression_statement_end(tokens, i, limit),
        }
    }
}

/// Is the value bound by a `let … = ….lock…;` statement the guard itself?
/// True for `….lock();`, the std form `….lock().unwrap();` /
/// `….lock().expect("…");`, and the async form `….lock().await;` —
/// false when further method calls consume the guard before binding
/// (`….lock().clone();`).
fn binds_guard(tokens: &[Token], i: usize) -> bool {
    if tokens.get(i + 3).is_some_and(|t| t.is_punct(b';')) {
        return true;
    }
    let via_await = tokens.get(i + 3).is_some_and(|t| t.is_punct(b'.'))
        && tokens.get(i + 4).is_some_and(|t| t.is_ident("await"))
        && tokens.get(i + 5).is_some_and(|t| t.is_punct(b';'));
    if via_await {
        return true;
    }
    let via_unwrap = tokens.get(i + 3).is_some_and(|t| t.is_punct(b'.'))
        && tokens.get(i + 4).is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"));
    if via_unwrap {
        // Skip the call's argument list to see if `;` follows.
        let open = i + 5;
        if tokens.get(open).is_some_and(|t| t.is_punct(b'(')) {
            let mut depth = 0i32;
            let mut j = open;
            while let Some(token) = tokens.get(j) {
                match token.kind {
                    Kind::Punct(b'(') => depth += 1,
                    Kind::Punct(b')') => {
                        depth -= 1;
                        if depth == 0 {
                            return tokens.get(j + 1).is_some_and(|t| t.is_punct(b';'));
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
    false
}

/// Walks backwards from `i` to the first token of the enclosing
/// statement (just past the previous `;`, `{`, `}` or depth-0 `,`).
/// Shared with L6, which uses it to find the binding a lock type
/// annotates.
pub(crate) fn statement_start(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j > 0 {
        let Some(token) = tokens.get(j - 1) else { break };
        match token.kind {
            Kind::Punct(b')') | Kind::Punct(b']') => depth += 1,
            Kind::Punct(b'(') | Kind::Punct(b'[') => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            Kind::Punct(b';') | Kind::Punct(b'{') | Kind::Punct(b'}') if depth == 0 => {
                return j;
            }
            Kind::Punct(b',') if depth == 0 => return j,
            _ => {}
        }
        j -= 1;
    }
    j
}

/// End (exclusive) of a block-shaped statement (`for`/`match`/`if let`):
/// the matching `}` of its first depth-0 brace, following `else` chains.
fn block_statement_end(tokens: &[Token], stmt_start: usize, limit: usize) -> usize {
    let mut open = first_depth0_brace(tokens, stmt_start, limit);
    loop {
        let Some(close) = tokens
            .get(open)
            .filter(|t| t.is_punct(b'{'))
            .and(Some(open))
            .and_then(|o| matching_brace(tokens, o))
        else {
            return limit;
        };
        // `} else {` / `} else if … {` continues the chain.
        if tokens.get(close + 1).is_some_and(|t| t.is_ident("else")) {
            open = first_depth0_brace(tokens, close + 2, limit);
            continue;
        }
        return (close + 1).min(limit);
    }
}

/// Index of the first `{` at paren/bracket depth 0 at or after `start`.
fn first_depth0_brace(tokens: &[Token], start: usize, limit: usize) -> usize {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut j = start;
    while j < limit {
        match tokens.get(j).map(|t| t.kind) {
            Some(Kind::Punct(b'(')) => paren += 1,
            Some(Kind::Punct(b')')) => paren -= 1,
            Some(Kind::Punct(b'[')) => bracket += 1,
            Some(Kind::Punct(b']')) => bracket -= 1,
            Some(Kind::Punct(b'{')) if paren == 0 && bracket == 0 => return j,
            Some(_) => {}
            None => break,
        }
        j += 1;
    }
    limit
}

/// End (exclusive) of a plain expression statement containing token `i`:
/// the `;` at all-zero depth, or where the enclosing block closes.
fn expression_statement_end(tokens: &[Token], i: usize, limit: usize) -> usize {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    let mut j = i;
    while j < limit {
        match tokens.get(j).map(|t| t.kind) {
            Some(Kind::Punct(b'(')) => paren += 1,
            Some(Kind::Punct(b')')) => {
                paren -= 1;
                if paren < 0 {
                    return j;
                }
            }
            Some(Kind::Punct(b'[')) => bracket += 1,
            Some(Kind::Punct(b']')) => {
                bracket -= 1;
                if bracket < 0 {
                    return j;
                }
            }
            Some(Kind::Punct(b'{')) => brace += 1,
            Some(Kind::Punct(b'}')) => {
                brace -= 1;
                if brace < 0 {
                    return j;
                }
            }
            Some(Kind::Punct(b';')) if paren == 0 && bracket == 0 && brace == 0 => {
                return j + 1;
            }
            Some(Kind::Punct(b',')) if paren == 0 && bracket == 0 && brace == 0 => {
                return j + 1;
            }
            Some(_) => {}
            None => break,
        }
        j += 1;
    }
    limit
}

/// End (exclusive) of the block enclosing token `i` — where a `let`-bound
/// guard is dropped.
fn enclosing_block_end(tokens: &[Token], i: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < limit {
        match tokens.get(j).map(|t| t.kind) {
            Some(Kind::Punct(b'{')) => depth += 1,
            Some(Kind::Punct(b'}')) => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            Some(_) => {}
            None => break,
        }
        j += 1;
    }
    limit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::spans::analyze;

    fn run(source: &str) -> Vec<Finding> {
        let lexed = lex(source);
        let facts = analyze(&lexed);
        let mut findings = Vec::new();
        check("test.rs", &lexed.tokens, &facts, &mut findings);
        findings
    }

    #[test]
    fn thread_sleep_in_async_flagged() {
        assert_eq!(run("async fn f() { std::thread::sleep(d); }").len(), 1);
        assert_eq!(run("async fn f() { thread::sleep(d); }").len(), 1);
    }

    #[test]
    fn tokio_sleep_ok_everywhere() {
        assert!(run("async fn f() { tokio::time::sleep(d).await; }").is_empty());
        assert!(run("fn f() { std::thread::sleep(d); }").is_empty());
    }

    #[test]
    fn block_on_in_async_flagged() {
        assert_eq!(run("async fn f() { rt.block_on(fut); }").len(), 1);
    }

    #[test]
    fn std_net_in_async_flagged_tokio_net_ok() {
        assert_eq!(run("async fn f() { let s = std::net::TcpStream::connect(a); }").len(), 1);
        assert!(run("async fn f() { let s = tokio::net::TcpStream::connect(a).await; }").is_empty());
    }

    #[test]
    fn tokio_mutex_lock_await_ok() {
        assert!(run("async fn f() { let g = m.lock().await; g.push(1); h().await; }").is_empty());
    }

    #[test]
    fn sync_guard_across_await_in_same_statement_flagged() {
        assert_eq!(run("async fn f() { state.lock().push(fetch().await); }").len(), 1);
    }

    #[test]
    fn let_bound_guard_across_await_flagged() {
        let source = "async fn f() { let g = state.lock(); g.push(1); fetch().await; }";
        assert_eq!(run(source).len(), 1);
    }

    #[test]
    fn guard_dropped_before_await_ok() {
        let source = "async fn f() { { let g = state.lock(); g.push(1); } fetch().await; }";
        assert!(run(source).is_empty());
    }

    #[test]
    fn plain_if_condition_guard_ok() {
        let source = "async fn f() { if state.lock().is_empty() { fetch().await; } }";
        assert!(run(source).is_empty());
    }

    #[test]
    fn for_loop_scrutinee_guard_flagged() {
        let source = "async fn f() { for x in state.lock().iter() { handle(x).await; } }";
        assert_eq!(run(source).len(), 1);
    }

    #[test]
    fn cloned_out_of_guard_before_await_ok() {
        let source = "async fn f() { let v = state.lock().clone(); handle(v).await; }";
        assert!(run(source).is_empty());
    }

    #[test]
    fn std_mutex_unwrap_bound_guard_flagged() {
        let source = "async fn f() { let g = state.lock().unwrap(); fetch().await; }";
        assert_eq!(run(source).len(), 1);
    }

    #[test]
    fn sync_code_not_checked() {
        assert!(run("fn f() { let g = state.lock(); g.push(1); }").is_empty());
    }

    #[test]
    fn write_with_args_not_a_guard() {
        assert!(run("async fn f() { sock.write(&buf); flush().await; }").is_empty());
    }
}
