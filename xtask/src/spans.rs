//! Structural analysis over the token stream: attributes, `#[cfg(test)]`
//! spans, async-fn/async-block spans, and `lint:allow` annotations.

use crate::lexer::{Comment, Kind, Lexed, Token};

/// A half-open token-index range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First token index.
    pub start: usize,
    /// One past the last token index.
    pub end: usize,
}

impl Span {
    /// True when token index `i` is inside the span.
    pub fn contains(&self, i: usize) -> bool {
        self.start <= i && i < self.end
    }
}

/// Per-file structural facts the passes consume.
#[derive(Debug)]
pub struct FileFacts {
    /// Token indices that are inside attribute brackets (`#[…]`).
    pub in_attr: Vec<bool>,
    /// Token indices inside test-only code (`#[cfg(test)]` items,
    /// `#[test]`/`#[tokio::test]` functions).
    pub in_test: Vec<bool>,
    /// Spans of async fn bodies and async blocks.
    pub async_spans: Vec<Span>,
    /// `lint:allow(category)` annotations by line, with their reason.
    pub allows: Vec<Allow>,
    /// File-wide `lint:allow-file(category)` annotations.
    pub file_allows: Vec<Allow>,
}

/// One `lint:allow` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The category in parentheses (`panic`, `indexing`, `blocking`,
    /// `metric`).
    pub category: String,
    /// The justification text after the closing parenthesis.
    pub reason: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// Whether any finding actually used this annotation.
    pub used: std::cell::Cell<bool>,
}

/// Extracts all structural facts from a lexed file.
pub fn analyze(lexed: &Lexed) -> FileFacts {
    let tokens = &lexed.tokens;
    let in_attr = mark_attrs(tokens);
    let in_test = mark_test_spans(tokens, &in_attr);
    let async_spans = find_async_spans(tokens);
    let (allows, file_allows) = collect_allows(&lexed.comments);
    FileFacts { in_attr, in_test, async_spans, allows, file_allows }
}

/// Marks every token that sits inside `#[…]` / `#![…]` attribute brackets
/// (including the `#`, `!` and the brackets themselves).
fn mark_attrs(tokens: &[Token]) -> Vec<bool> {
    let mut marks = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        let is_hash = tokens.get(i).is_some_and(|t| t.is_punct(b'#'));
        if is_hash {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.is_punct(b'!')) {
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| t.is_punct(b'[')) {
                // Find the matching `]`.
                let mut depth = 0i32;
                let mut k = j;
                while let Some(token) = tokens.get(k) {
                    match token.kind {
                        Kind::Punct(b'[') => depth += 1,
                        Kind::Punct(b']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                for slot in marks.iter_mut().take((k + 1).min(tokens.len())).skip(i) {
                    *slot = true;
                }
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    marks
}

/// Is the attribute starting at token `hash` (a `#`) a test marker —
/// `#[cfg(test)]`, `#[cfg(any(test, …))]`, `#[test]`, `#[tokio::test]`,
/// `#[proptest]` and friends?
fn attr_is_test(tokens: &[Token], hash: usize, attr_end: usize) -> bool {
    let mut idents: Vec<&str> = Vec::new();
    for token in tokens.iter().take(attr_end).skip(hash) {
        if token.kind == Kind::Ident {
            idents.push(token.text.as_str());
        }
    }
    match idents.first() {
        Some(&"cfg") => idents.iter().any(|w| *w == "test") && !idents.iter().any(|w| *w == "not"),
        Some(&"test") | Some(&"proptest") => true,
        Some(_) => idents.last().is_some_and(|w| *w == "test"),
        None => false,
    }
}

/// Marks tokens belonging to items annotated with a test attribute.
fn mark_test_spans(tokens: &[Token], in_attr: &[bool]) -> Vec<bool> {
    let mut marks = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        let is_hash = tokens.get(i).is_some_and(|t| t.is_punct(b'#'))
            && in_attr.get(i).copied().unwrap_or(false);
        if is_hash {
            // Find end of this attribute.
            let mut end = i + 1;
            while end < tokens.len() && in_attr.get(end).copied().unwrap_or(false) {
                // Stop at the next `#` that starts a new attribute.
                if tokens.get(end).is_some_and(|t| t.is_punct(b'#')) {
                    break;
                }
                end += 1;
            }
            if attr_is_test(tokens, i, end) {
                // Skip any further attributes, then mark the item.
                let mut j = end;
                while j < tokens.len() && in_attr.get(j).copied().unwrap_or(false) {
                    j += 1;
                }
                let item_end = item_body_end(tokens, j);
                for slot in marks.iter_mut().take(item_end.min(tokens.len())).skip(i) {
                    *slot = true;
                }
                i = item_end;
                continue;
            }
            i = end;
            continue;
        }
        i += 1;
    }
    marks
}

/// Given the first token of an item, returns one past its last token:
/// either the matching `}` of its first depth-0 brace block, or the first
/// depth-0 `;`.
fn item_body_end(tokens: &[Token], start: usize) -> usize {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut i = start;
    while let Some(token) = tokens.get(i) {
        match token.kind {
            Kind::Punct(b'(') => paren += 1,
            Kind::Punct(b')') => paren -= 1,
            Kind::Punct(b'[') => bracket += 1,
            Kind::Punct(b']') => bracket -= 1,
            Kind::Punct(b';') if paren == 0 && bracket == 0 => return i + 1,
            Kind::Punct(b'{') if paren == 0 && bracket == 0 => {
                return matching_brace(tokens, i).map_or(tokens.len(), |close| close + 1);
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

/// Index of the `}` matching the `{` at `open`.
pub fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = open;
    while let Some(token) = tokens.get(i) {
        match token.kind {
            Kind::Punct(b'{') => depth += 1,
            Kind::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Finds the body spans of `async fn`s and `async`/`async move` blocks.
fn find_async_spans(tokens: &[Token]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens.get(i).is_some_and(|t| t.is_ident("async")) {
            let mut j = i + 1;
            // `async unsafe fn`, `async move`, `async fn`, `async {`.
            while tokens.get(j).is_some_and(|t| t.is_ident("unsafe") || t.is_ident("move")) {
                j += 1;
            }
            let body_open = if tokens.get(j).is_some_and(|t| t.is_ident("fn")) {
                // Scan to the fn body `{` (depth 0 w.r.t. parens/brackets).
                let mut paren = 0i32;
                let mut bracket = 0i32;
                let mut k = j;
                loop {
                    match tokens.get(k).map(|t| t.kind) {
                        Some(Kind::Punct(b'(')) => paren += 1,
                        Some(Kind::Punct(b')')) => paren -= 1,
                        Some(Kind::Punct(b'[')) => bracket += 1,
                        Some(Kind::Punct(b']')) => bracket -= 1,
                        Some(Kind::Punct(b'{')) if paren == 0 && bracket == 0 => break Some(k),
                        Some(Kind::Punct(b';')) if paren == 0 && bracket == 0 => break None,
                        Some(_) => {}
                        None => break None,
                    }
                    k += 1;
                }
            } else if tokens.get(j).is_some_and(|t| t.is_punct(b'{')) {
                Some(j)
            } else {
                None
            };
            if let Some(open) = body_open {
                if let Some(close) = matching_brace(tokens, open) {
                    spans.push(Span { start: open, end: close + 1 });
                    // Do not skip past the body: nested async blocks
                    // inside get their own spans.
                }
            }
        }
        i += 1;
    }
    spans
}

/// Parses `lint:allow(category) reason` / `lint:allow-file(category)
/// reason` annotations out of comments.
fn collect_allows(comments: &[Comment]) -> (Vec<Allow>, Vec<Allow>) {
    let mut allows = Vec::new();
    let mut file_allows = Vec::new();
    for comment in comments {
        // Only plain `//` comments carry annotations: doc comments
        // (`///`, `//!`) merely *talk about* the syntax.
        let is_plain = comment.text.starts_with("//")
            && !comment.text.starts_with("///")
            && !comment.text.starts_with("//!");
        let trimmed = comment.text.trim_start_matches('/').trim_start();
        if !is_plain || !trimmed.starts_with("lint:allow") {
            continue;
        }
        let mut rest = trimmed;
        while let Some(pos) = rest.find("lint:allow") {
            let after = rest.get(pos + "lint:allow".len()..).unwrap_or_default();
            let (is_file, after) = match after.strip_prefix("-file") {
                Some(stripped) => (true, stripped),
                None => (false, after),
            };
            let Some(after) = after.strip_prefix('(') else {
                rest = rest.get(pos + 1..).unwrap_or_default();
                continue;
            };
            let Some(close) = after.find(')') else {
                rest = rest.get(pos + 1..).unwrap_or_default();
                continue;
            };
            let category = after.get(..close).unwrap_or_default().trim().to_string();
            let reason = after
                .get(close + 1..)
                .unwrap_or_default()
                .trim_matches(|c: char| c.is_whitespace() || c == ':' || c == '-')
                .trim()
                .to_string();
            let allow =
                Allow { category, reason, line: comment.line, used: std::cell::Cell::new(false) };
            if is_file {
                file_allows.push(allow);
            } else {
                allows.push(allow);
            }
            rest = after.get(close..).unwrap_or_default();
        }
    }
    (allows, file_allows)
}

impl FileFacts {
    /// Looks up an allow annotation covering `category` at `line`: a
    /// same-line or previous-line `lint:allow`, or a file-wide
    /// `lint:allow-file`. Marks the annotation used. Returns the reason,
    /// or `None` when the site is not allowed.
    pub fn allowed(&self, category: &str, line: u32) -> Option<&Allow> {
        let site = self
            .allows
            .iter()
            .find(|a| a.category == category && (a.line == line || a.line + 1 == line));
        if let Some(allow) = site {
            allow.used.set(true);
            return Some(allow);
        }
        if let Some(allow) = self.file_allows.iter().find(|a| a.category == category) {
            allow.used.set(true);
            return Some(allow);
        }
        None
    }

    /// Annotations whose reason is missing or too short to be a real
    /// justification.
    pub fn unjustified(&self) -> impl Iterator<Item = &Allow> {
        self.allows.iter().chain(self.file_allows.iter()).filter(|a| a.reason.len() < 10)
    }

    /// True when token `i` is inside an async body.
    pub fn in_async(&self, i: usize) -> bool {
        self.async_spans.iter().any(|s| s.contains(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn attrs_are_marked() {
        let lexed = lex("#[derive(Debug)] struct S { a: [u8; 4] }");
        let facts = analyze(&lexed);
        let derive = lexed.tokens.iter().position(|t| t.is_ident("derive"));
        let s = lexed.tokens.iter().position(|t| t.is_ident("S"));
        assert!(derive.and_then(|i| facts.in_attr.get(i).copied()).unwrap_or(false));
        assert!(!s.and_then(|i| facts.in_attr.get(i).copied()).unwrap_or(true));
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let source = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}";
        let lexed = lex(source);
        let facts = analyze(&lexed);
        let unwrap = lexed.tokens.iter().position(|t| t.is_ident("unwrap"));
        let lib = lexed.tokens.iter().position(|t| t.is_ident("lib"));
        assert!(unwrap.and_then(|i| facts.in_test.get(i).copied()).unwrap_or(false));
        assert!(!lib.and_then(|i| facts.in_test.get(i).copied()).unwrap_or(true));
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let source = "#[cfg(not(test))]\nfn prod() { x.unwrap(); }";
        let lexed = lex(source);
        let facts = analyze(&lexed);
        let unwrap = lexed.tokens.iter().position(|t| t.is_ident("unwrap"));
        assert!(!unwrap.and_then(|i| facts.in_test.get(i).copied()).unwrap_or(true));
    }

    #[test]
    fn tokio_test_fn_is_marked() {
        let source = "#[tokio::test]\nasync fn t() { x.unwrap(); }\nfn prod() {}";
        let lexed = lex(source);
        let facts = analyze(&lexed);
        let unwrap = lexed.tokens.iter().position(|t| t.is_ident("unwrap"));
        let prod = lexed.tokens.iter().position(|t| t.is_ident("prod"));
        assert!(unwrap.and_then(|i| facts.in_test.get(i).copied()).unwrap_or(false));
        assert!(!prod.and_then(|i| facts.in_test.get(i).copied()).unwrap_or(true));
    }

    #[test]
    fn async_fn_and_block_spans() {
        let source = "async fn f() { g().await; } fn sync_fn() {} async move { h().await }";
        let lexed = lex(source);
        let facts = analyze(&lexed);
        assert_eq!(facts.async_spans.len(), 2);
        let g = lexed.tokens.iter().position(|t| t.is_ident("g"));
        let sync_fn = lexed.tokens.iter().position(|t| t.is_ident("sync_fn"));
        assert!(g.is_some_and(|i| facts.in_async(i)));
        assert!(!sync_fn.is_some_and(|i| facts.in_async(i)));
    }

    #[test]
    fn allow_annotations() {
        let source = "// lint:allow(panic) the mask is validated at construction time\nlet x = v[0];\n// lint:allow-file(indexing) hot-path kernel, bounds checked in ctor\n";
        let lexed = lex(source);
        let facts = analyze(&lexed);
        assert!(facts.allowed("panic", 2).is_some());
        assert!(facts.allowed("indexing", 40).is_some());
        assert!(facts.allowed("blocking", 2).is_none());
        assert_eq!(facts.unjustified().count(), 0);
    }

    #[test]
    fn unjustified_allow_detected() {
        let lexed = lex("// lint:allow(panic) ok\nlet x = 1;");
        let facts = analyze(&lexed);
        assert_eq!(facts.unjustified().count(), 1);
    }
}
