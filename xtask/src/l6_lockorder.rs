//! Pass L6 — lock-order discipline (DESIGN.md §14).
//!
//! Deadlock-freedom across the workspace's ~15 locks is a checked
//! property: every lock carries a numeric rank, and ranks must be
//! strictly increasing in acquisition order on any one thread. This
//! pass proves the visible half of that statically; the runtime witness
//! in `multipub-sync` (armed with `MULTIPUB_LOCK_WITNESS=1`) catches
//! the nestings that thread through function calls and closures.
//!
//! Per file ([`scan_file`]):
//!
//! * every `Mutex<…>` / `RwLock<…>` declaration in non-test library
//!   code must carry a `// lock:rank(name, N)` annotation on the same
//!   line or in the comment block directly above (a missing rank is a
//!   finding),
//! * ranked constructor calls `Mutex::new(N, "name", …)` are collected
//!   so their literals can be checked against the annotations,
//! * every zero-argument `.lock()`/`.read()`/`.write()` acquisition
//!   whose receiver field is a declared lock is collected, together
//!   with any further acquisitions inside the guard's live region
//!   (the same temporary-lifetime heuristic L2 uses for its
//!   guard-across-await check).
//!
//! Across the workspace ([`check_workspace`]):
//!
//! * one lock name must always have one rank (declarations and
//!   constructors must agree),
//! * a nested acquisition of rank ≤ a held rank is a finding — equal
//!   ranks are reserved for never-nested families (per-shard maps,
//!   trace-ring slots), so nesting them is exactly the violation,
//! * edges excused with `// lint:allow(lockorder) <reason>` are then
//!   checked for cycles: two individually-excused edges that close a
//!   loop are reported even though each one was allowed.
//!
//! Receivers are resolved per crate by field name (`self.state.lock()`
//! resolves through the crate's `state: Mutex<…>` declaration);
//! acquisitions through unresolvable receivers (`stdout().lock()`,
//! locals) are skipped — the runtime witness covers those.
//!
//! `crates/sync/src` is exempt: it defines the ranked wrappers
//! themselves, so its `Mutex<T>` mentions are the primitives, not lock
//! instances.

use crate::l2_blocking::guard_live_region;
use crate::lexer::{Comment, Kind, Lexed, Token};
use crate::spans::FileFacts;
use crate::Finding;

/// One ranked lock declaration (`field: Mutex<…>, // lock:rank(name, N)`).
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// Binding the lock is declared under (struct field, `let`, `static`).
    pub field: String,
    /// The annotation's lock name (workspace-unique per rank).
    pub name: String,
    /// The annotation's rank.
    pub rank: u16,
    /// 1-based declaration line.
    pub line: u32,
}

/// One ranked constructor call (`Mutex::new(N, "name", …)`).
#[derive(Debug, Clone)]
pub struct CtorSite {
    /// The constructor's name literal.
    pub name: String,
    /// The constructor's rank literal.
    pub rank: u16,
    /// 1-based call line.
    pub line: u32,
}

/// One lexically nested acquisition: `inner_field` acquired while the
/// guard of `outer_field` is still live.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Receiver field of the lock already held.
    pub outer_field: String,
    /// Receiver field of the lock being acquired under it.
    pub inner_field: String,
    /// 1-based line of the inner acquisition.
    pub line: u32,
}

/// Everything L6 extracts from one file.
#[derive(Debug, Default, Clone)]
pub struct FileLockFacts {
    /// Crate the file belongs to (`crates/<name>/…` → `<name>`).
    pub crate_name: String,
    /// Ranked declarations.
    pub decls: Vec<LockDecl>,
    /// Ranked constructor calls.
    pub ctors: Vec<CtorSite>,
    /// Nested acquisitions.
    pub edges: Vec<LockEdge>,
}

const LOCK_TYPES: [&str; 2] = ["Mutex", "RwLock"];
const GUARD_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Crate name of a workspace-relative path (`crates/obs/src/… → obs`),
/// or the first path segment (`xtask/src/… → xtask`).
pub fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("").to_string(),
        Some(first) => first.to_string(),
        None => String::new(),
    }
}

/// Scans one file for lock declarations, ranked constructors and nested
/// acquisitions. Missing-annotation findings are reported here; rank
/// consistency and ordering are checked later in [`check_workspace`].
pub fn scan_file(
    path: &str,
    lexed: &Lexed,
    facts: &FileFacts,
    findings: &mut Vec<Finding>,
) -> FileLockFacts {
    let mut out = FileLockFacts { crate_name: crate_of(path), ..FileLockFacts::default() };
    if out.crate_name == "sync" {
        // The ranked primitives themselves; see module docs.
        return out;
    }
    let tokens = &lexed.tokens;
    let annotations = collect_rank_annotations(&lexed.comments);
    let comment_lines: std::collections::BTreeSet<u32> =
        lexed.comments.iter().map(|c| c.line).collect();

    for (i, token) in tokens.iter().enumerate() {
        if facts.in_test.get(i).copied().unwrap_or(false)
            || facts.in_attr.get(i).copied().unwrap_or(false)
            || token.kind != Kind::Ident
        {
            continue;
        }
        match token.text.as_str() {
            t if LOCK_TYPES.contains(&t) && tokens.get(i + 1).is_some_and(|p| p.is_punct(b'<')) => {
                scan_decl(
                    path,
                    tokens,
                    i,
                    token,
                    &annotations,
                    &comment_lines,
                    facts,
                    &mut out,
                    findings,
                );
            }
            "new" if is_ranked_ctor(tokens, i) => {
                if let Some(ctor) = parse_ctor(tokens, i) {
                    out.ctors.push(ctor);
                }
            }
            t if GUARD_METHODS.contains(&t) => {
                scan_acquisition(tokens, facts, i, &mut out);
            }
            _ => {}
        }
    }
    out
}

/// Handles one `Mutex<`/`RwLock<` type occurrence at token `i`: find the
/// covering `lock:rank` annotation and the declared binding name.
#[allow(clippy::too_many_arguments)]
fn scan_decl(
    path: &str,
    tokens: &[Token],
    i: usize,
    token: &Token,
    annotations: &[(u32, String, u16)],
    comment_lines: &std::collections::BTreeSet<u32>,
    facts: &FileFacts,
    out: &mut FileLockFacts,
    findings: &mut Vec<Finding>,
) {
    let line = token.line;
    let Some((name, rank)) = covering_annotation(annotations, comment_lines, line) else {
        if facts.allowed("lockorder", line).is_none() {
            findings.push(l6(
                path,
                line,
                &format!(
                    "`{}` declaration has no `// lock:rank(name, N)` annotation (same line or \
                     the comment block above); see DESIGN.md §14 for how to pick a rank",
                    token.text
                ),
            ));
        }
        return;
    };
    let field = binding_name(tokens, i).unwrap_or_default();
    out.decls.push(LockDecl { field, name, rank, line });
}

/// The `(name, rank)` of the annotation covering a declaration at
/// `line`: on the same line, or in the contiguous run of comment lines
/// directly above it. Nearest annotation wins.
fn covering_annotation(
    annotations: &[(u32, String, u16)],
    comment_lines: &std::collections::BTreeSet<u32>,
    line: u32,
) -> Option<(String, u16)> {
    let mut best: Option<&(u32, String, u16)> = None;
    for ann in annotations {
        let covers = ann.0 == line
            || (ann.0 < line && ((ann.0 + 1)..line).all(|l| comment_lines.contains(&l)));
        if covers && best.is_none_or(|b| ann.0 > b.0) {
            best = Some(ann);
        }
    }
    best.map(|(_, name, rank)| (name.clone(), *rank))
}

/// Walks back to the start of the declaration statement and returns the
/// binding ident: the first ident followed by a single `:` (a struct
/// field or `let`/`static` type ascription).
fn binding_name(tokens: &[Token], i: usize) -> Option<String> {
    let start = crate::l2_blocking::statement_start(tokens, i);
    let mut j = start;
    while j < i {
        let is_binding = tokens.get(j).is_some_and(|t| t.kind == Kind::Ident)
            && tokens.get(j + 1).is_some_and(|t| t.is_punct(b':'))
            && !tokens.get(j + 2).is_some_and(|t| t.is_punct(b':'));
        if is_binding {
            return tokens.get(j).map(|t| t.text.clone());
        }
        j += 1;
    }
    None
}

/// Is token `i` (`new`) a ranked constructor — `Mutex::new(` /
/// `RwLock::new(` with a number literal then a string literal?
fn is_ranked_ctor(tokens: &[Token], i: usize) -> bool {
    i >= 3
        && tokens.get(i - 1).is_some_and(|t| t.is_punct(b':'))
        && tokens.get(i - 2).is_some_and(|t| t.is_punct(b':'))
        && tokens
            .get(i - 3)
            .is_some_and(|t| t.kind == Kind::Ident && LOCK_TYPES.contains(&t.text.as_str()))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct(b'('))
        && tokens.get(i + 2).is_some_and(|t| t.kind == Kind::Number)
        && tokens.get(i + 3).is_some_and(|t| t.is_punct(b','))
        && tokens.get(i + 4).is_some_and(|t| t.kind == Kind::Str)
}

fn parse_ctor(tokens: &[Token], i: usize) -> Option<CtorSite> {
    let rank = tokens.get(i + 2)?.text.replace('_', "").parse::<u16>().ok()?;
    let name = tokens.get(i + 4)?.text.clone();
    let line = tokens.get(i)?.line;
    Some(CtorSite { name, rank, line })
}

/// Handles one `lock`/`read`/`write` ident: when it is a zero-argument
/// guard acquisition with a resolvable receiver field, records every
/// further resolvable acquisition inside the guard's live region.
fn scan_acquisition(tokens: &[Token], facts: &FileFacts, i: usize, out: &mut FileLockFacts) {
    let Some(outer_field) = acquisition_receiver(tokens, i) else { return };
    let region_end = guard_live_region(tokens, i, tokens.len());
    let mut k = i + 3;
    while k < region_end {
        if let Some(token) = tokens.get(k) {
            if token.kind == Kind::Ident
                && GUARD_METHODS.contains(&token.text.as_str())
                && !facts.in_test.get(k).copied().unwrap_or(false)
            {
                if let Some(inner_field) = acquisition_receiver(tokens, k) {
                    out.edges.push(LockEdge {
                        outer_field: outer_field.clone(),
                        inner_field,
                        line: token.line,
                    });
                }
            }
        }
        k += 1;
    }
}

/// The receiver field ident of a zero-argument `.lock()`/`.read()`/
/// `.write()` method call at token `i`, or `None` when the call shape
/// does not match or the receiver is not a plain ident.
fn acquisition_receiver(tokens: &[Token], i: usize) -> Option<String> {
    let is_call = i >= 2
        && tokens.get(i - 1).is_some_and(|t| t.is_punct(b'.'))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct(b'('))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(b')'));
    if !is_call {
        return None;
    }
    tokens.get(i - 2).filter(|t| t.kind == Kind::Ident).map(|t| t.text.clone())
}

/// Parses `lock:rank(name, N)` annotations out of comments (any comment
/// flavour — rank annotations are documentation as much as directives).
fn collect_rank_annotations(comments: &[Comment]) -> Vec<(u32, String, u16)> {
    let mut out = Vec::new();
    for comment in comments {
        let mut rest = comment.text.as_str();
        while let Some(pos) = rest.find("lock:rank(") {
            rest = rest.get(pos + "lock:rank(".len()..).unwrap_or_default();
            let Some(close) = rest.find(')') else { break };
            let inner = rest.get(..close).unwrap_or_default();
            if let Some((name, rank)) = inner.split_once(',') {
                let name = name.trim();
                let rank = rank.trim().replace('_', "");
                let name_ok = !name.is_empty()
                    && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.');
                if let (true, Ok(rank)) = (name_ok, rank.parse::<u16>()) {
                    out.push((comment.line, name.to_string(), rank));
                }
            }
            rest = rest.get(close..).unwrap_or_default();
        }
    }
    out
}

/// Cross-file checks over every scanned file: rank-map consistency,
/// constructor drift, nested-acquisition order, and cycles through
/// excused edges. `files` pairs each file's lock facts with its path and
/// structural facts (for `lint:allow(lockorder)` lookups).
pub fn check_workspace(files: &[(String, FileLockFacts, &FileFacts)], findings: &mut Vec<Finding>) {
    // Workspace rank map: one name, one rank.
    let mut rank_map: std::collections::BTreeMap<&str, (u16, &str, u32)> =
        std::collections::BTreeMap::new();
    for (path, facts, _) in files {
        for decl in &facts.decls {
            match rank_map.get(decl.name.as_str()) {
                Some((rank, first_path, first_line)) if *rank != decl.rank => {
                    findings.push(l6(
                        path,
                        decl.line,
                        &format!(
                            "lock `{}` re-declared with rank {} but has rank {rank} at \
                             {first_path}:{first_line}",
                            decl.name, decl.rank
                        ),
                    ));
                }
                Some(_) => {}
                None => {
                    rank_map.insert(&decl.name, (decl.rank, path, decl.line));
                }
            }
        }
    }

    // Constructor drift: `Mutex::new(N, "name", …)` literals must match
    // the declared annotation.
    for (path, facts, _) in files {
        for ctor in &facts.ctors {
            match rank_map.get(ctor.name.as_str()) {
                Some((rank, _, _)) if *rank != ctor.rank => {
                    findings.push(l6(
                        path,
                        ctor.line,
                        &format!(
                            "constructor ranks `{}` at {} but its `lock:rank` annotation says \
                             {rank}",
                            ctor.name, ctor.rank
                        ),
                    ));
                }
                Some(_) => {}
                None => {
                    findings.push(l6(
                        path,
                        ctor.line,
                        &format!(
                            "constructor names lock `{}` (rank {}) but no declaration carries \
                             that `lock:rank` annotation",
                            ctor.name, ctor.rank
                        ),
                    ));
                }
            }
        }
    }

    // Per-crate receiver resolution: field ident → lock name. A field
    // name mapping to two different locks in one crate is unresolvable;
    // skip its edges rather than guess.
    let mut field_maps: std::collections::BTreeMap<&str, std::collections::BTreeMap<&str, &str>> =
        std::collections::BTreeMap::new();
    let mut ambiguous: std::collections::BTreeSet<(&str, &str)> = std::collections::BTreeSet::new();
    for (_, facts, _) in files {
        for decl in &facts.decls {
            if decl.field.is_empty() {
                continue;
            }
            let map = field_maps.entry(facts.crate_name.as_str()).or_default();
            match map.get(decl.field.as_str()) {
                Some(existing) if **existing != *decl.name => {
                    ambiguous.insert((facts.crate_name.as_str(), decl.field.as_str()));
                }
                _ => {
                    map.insert(&decl.field, &decl.name);
                }
            }
        }
    }

    // Order check per edge; excused edges go into the cycle graph.
    let mut excused: std::collections::BTreeSet<(&str, &str)> = std::collections::BTreeSet::new();
    let mut legal: std::collections::BTreeSet<(&str, &str)> = std::collections::BTreeSet::new();
    for (path, lock_facts, file_facts) in files {
        let Some(map) = field_maps.get(lock_facts.crate_name.as_str()) else { continue };
        for edge in &lock_facts.edges {
            let crate_name = lock_facts.crate_name.as_str();
            if ambiguous.contains(&(crate_name, edge.outer_field.as_str()))
                || ambiguous.contains(&(crate_name, edge.inner_field.as_str()))
            {
                continue;
            }
            let (Some(outer), Some(inner)) =
                (map.get(edge.outer_field.as_str()), map.get(edge.inner_field.as_str()))
            else {
                continue;
            };
            let (Some((outer_rank, ..)), Some((inner_rank, ..))) =
                (rank_map.get(*outer), rank_map.get(*inner))
            else {
                continue;
            };
            if inner_rank > outer_rank {
                legal.insert((outer, inner));
                continue;
            }
            if file_facts.allowed("lockorder", edge.line).is_some() {
                excused.insert((outer, inner));
                continue;
            }
            let detail = if inner_rank == outer_rank && inner == outer {
                "two locks of one never-nested family on one thread".to_string()
            } else {
                format!("rank {inner_rank} must exceed every held rank")
            };
            findings.push(l6(
                path,
                edge.line,
                &format!(
                    "`{inner}` (rank {inner_rank}) acquired while `{outer}` (rank {outer_rank}) \
                     is held — {detail}",
                ),
            ));
        }
    }

    // Cycles: legal edges strictly increase rank, so any cycle must pass
    // through an excused edge — report those loops even though each edge
    // was individually allowed.
    if !excused.is_empty() {
        let mut graph: std::collections::BTreeMap<&str, Vec<&str>> =
            std::collections::BTreeMap::new();
        for (from, to) in legal.iter().chain(excused.iter()) {
            graph.entry(from).or_default().push(to);
        }
        for cycle in find_cycles(&graph) {
            findings.push(l6(
                "workspace",
                0,
                &format!(
                    "lock-order cycle through `lint:allow(lockorder)` edges: {}",
                    cycle.join(" -> ")
                ),
            ));
        }
    }
}

/// Elementary cycles reachable in the edge graph, each reported once
/// from its lexicographically smallest node.
fn find_cycles(graph: &std::collections::BTreeMap<&str, Vec<&str>>) -> Vec<Vec<String>> {
    let mut cycles: std::collections::BTreeSet<Vec<String>> = std::collections::BTreeSet::new();
    for start in graph.keys() {
        let mut stack: Vec<&str> = vec![start];
        dfs(graph, start, start, &mut stack, &mut cycles);
    }
    cycles.into_iter().collect()
}

fn dfs<'a>(
    graph: &std::collections::BTreeMap<&'a str, Vec<&'a str>>,
    start: &'a str,
    node: &'a str,
    stack: &mut Vec<&'a str>,
    cycles: &mut std::collections::BTreeSet<Vec<String>>,
) {
    for next in graph.get(node).map(Vec::as_slice).unwrap_or_default() {
        if *next == start {
            // Canonicalize: only record the rotation starting at the
            // smallest node, so each cycle is reported once.
            if stack.iter().min() == Some(&start) {
                let mut cycle: Vec<String> = stack.iter().map(|s| (*s).to_string()).collect();
                cycle.push(start.to_string());
                cycles.insert(cycle);
            }
        } else if !stack.contains(next) && *next > start {
            stack.push(next);
            dfs(graph, start, next, stack, cycles);
            stack.pop();
        }
    }
}

fn l6(path: &str, line: u32, message: &str) -> Finding {
    Finding {
        file: path.to_string(),
        line,
        pass: "L6",
        category: "lockorder",
        message: format!(
            "{message}; annotate `// lint:allow(lockorder) <reason>` if the order is safe"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::spans::analyze;

    fn scan(path: &str, source: &str) -> (FileLockFacts, Vec<Finding>) {
        let lexed = lex(source);
        let facts = analyze(&lexed);
        let mut findings = Vec::new();
        let lock_facts = scan_file(path, &lexed, &facts, &mut findings);
        (lock_facts, findings)
    }

    fn check(sources: &[(&str, &str)]) -> Vec<Finding> {
        let mut findings = Vec::new();
        let analyzed: Vec<_> = sources
            .iter()
            .map(|(path, source)| {
                let lexed = lex(source);
                let facts = analyze(&lexed);
                (path.to_string(), lexed, facts)
            })
            .collect();
        let files: Vec<_> = analyzed
            .iter()
            .map(|(path, lexed, facts)| {
                let lock_facts = scan_file(path, lexed, facts, &mut findings);
                (path.clone(), lock_facts, facts)
            })
            .collect();
        check_workspace(&files, &mut findings);
        findings
    }

    #[test]
    fn unannotated_declaration_flagged() {
        let (_, findings) = scan("crates/a/src/lib.rs", "struct S { state: Mutex<u32>, }");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("lock:rank"));
    }

    #[test]
    fn annotated_declaration_parsed() {
        let (facts, findings) = scan(
            "crates/a/src/lib.rs",
            "struct S { state: Mutex<u32>, // lock:rank(a.state, 10)\n }",
        );
        assert!(findings.is_empty());
        assert_eq!(facts.decls.len(), 1);
        assert_eq!(facts.decls[0].field, "state");
        assert_eq!(facts.decls[0].name, "a.state");
        assert_eq!(facts.decls[0].rank, 10);
    }

    #[test]
    fn doc_comment_block_above_covers() {
        let source =
            "struct S {\n/// The queue.\n/// lock:rank(a.q, 7)\n/// More docs.\nq: Mutex<u32>,\n}";
        let (facts, findings) = scan("crates/a/src/lib.rs", source);
        assert!(findings.is_empty());
        assert_eq!(facts.decls[0].name, "a.q");
    }

    #[test]
    fn allow_suppresses_missing_annotation() {
        let source = "struct S {\n// lint:allow(lockorder) third-party type we cannot annotate\nstate: Mutex<u32>,\n}";
        let (_, findings) = scan("crates/a/src/lib.rs", source);
        assert!(findings.is_empty());
    }

    #[test]
    fn test_code_and_sync_crate_exempt() {
        let (_, findings) =
            scan("crates/a/src/lib.rs", "#[cfg(test)]\nmod tests { struct S { m: Mutex<u32>, } }");
        assert!(findings.is_empty());
        let (_, findings) = scan("crates/sync/src/lib.rs", "struct S { m: Mutex<u32>, }");
        assert!(findings.is_empty());
    }

    #[test]
    fn ranked_ctor_collected_and_drift_flagged() {
        let findings = check(&[(
            "crates/a/src/lib.rs",
            "struct S { state: Mutex<u32>, // lock:rank(a.state, 10)\n }\n\
             fn f() -> S { S { state: Mutex::new(11, \"a.state\", 0) } }",
        )]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("annotation says 10"), "{}", findings[0].message);
    }

    #[test]
    fn ctor_matching_annotation_clean() {
        let findings = check(&[(
            "crates/a/src/lib.rs",
            "struct S { state: Mutex<u32>, // lock:rank(a.state, 10)\n }\n\
             fn f() -> S { S { state: Mutex::new(10, \"a.state\", 0) } }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn increasing_nested_acquisition_clean() {
        let findings = check(&[(
            "crates/a/src/lib.rs",
            "struct S { low: Mutex<u32>, // lock:rank(a.low, 10)\n\
             high: Mutex<u32>, // lock:rank(a.high, 20)\n }\n\
             impl S { fn f(&self) { let g = self.low.lock(); let h = self.high.lock(); } }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn inverted_nested_acquisition_flagged() {
        let findings = check(&[(
            "crates/a/src/lib.rs",
            "struct S { low: Mutex<u32>, // lock:rank(a.low, 10)\n\
             high: Mutex<u32>, // lock:rank(a.high, 20)\n }\n\
             impl S { fn f(&self) { let g = self.high.lock(); let h = self.low.lock(); } }",
        )]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0]
            .message
            .contains("`a.low` (rank 10) acquired while `a.high` (rank 20)"));
    }

    #[test]
    fn same_rank_family_nesting_flagged() {
        let findings = check(&[(
            "crates/a/src/lib.rs",
            "struct S { topics: Mutex<u32>, // lock:rank(a.shard, 70)\n }\n\
             fn f(a: &S, b: &S) { let g = a.topics.lock(); let h = b.topics.lock(); }",
        )]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("never-nested family"), "{}", findings[0].message);
    }

    #[test]
    fn scoped_guard_produces_no_edge() {
        let findings = check(&[(
            "crates/a/src/lib.rs",
            "struct S { low: Mutex<u32>, // lock:rank(a.low, 10)\n\
             high: Mutex<u32>, // lock:rank(a.high, 20)\n }\n\
             impl S { fn f(&self) { { let g = self.high.lock(); } let h = self.low.lock(); } }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn allow_excuses_an_edge() {
        let findings = check(&[(
            "crates/a/src/lib.rs",
            "struct S { low: Mutex<u32>, // lock:rank(a.low, 10)\n\
             high: Mutex<u32>, // lock:rank(a.high, 20)\n }\n\
             impl S { fn f(&self) { let g = self.high.lock();\n\
             // lint:allow(lockorder) a.low is only probed under try_lock here\n\
             let h = self.low.lock(); } }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn excused_cycle_still_reported() {
        let findings = check(&[(
            "crates/a/src/lib.rs",
            "struct S { low: Mutex<u32>, // lock:rank(a.low, 10)\n\
             high: Mutex<u32>, // lock:rank(a.high, 20)\n }\n\
             impl S { fn f(&self) { let g = self.low.lock(); let h = self.high.lock(); }\n\
             fn g(&self) { let g = self.high.lock();\n\
             // lint:allow(lockorder) reversed probe, protected by a try_lock upstream\n\
             let h = self.low.lock(); } }",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("cycle"), "{}", findings[0].message);
        assert!(
            findings[0].message.contains("a.high -> a.low -> a.high"),
            "{}",
            findings[0].message
        );
    }

    #[test]
    fn conflicting_ranks_for_one_name_flagged() {
        let findings = check(&[
            ("crates/a/src/lib.rs", "struct S { q: Mutex<u32>, // lock:rank(a.q, 10)\n }"),
            ("crates/a/src/other.rs", "struct T { q2: Mutex<u32>, // lock:rank(a.q, 11)\n }"),
        ]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("re-declared with rank 11"));
    }

    #[test]
    fn unresolvable_receivers_are_skipped() {
        let findings = check(&[(
            "crates/a/src/lib.rs",
            "fn f() { let out = stdout().lock(); let x = local.lock(); }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn tokio_annotation_only_lock_participates_statically() {
        // `.lock().await` acquisitions still resolve and order-check.
        let findings = check(&[(
            "crates/a/src/lib.rs",
            "struct S { conns: Mutex<u32>, // lock:rank(a.conns, 20)\n\
             addrs: Mutex<u32>, // lock:rank(a.addrs, 10)\n }\n\
             impl S { async fn f(&self) { let g = self.conns.lock().await; \
             let a = self.addrs.lock(); } }",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`a.addrs` (rank 10)"));
    }
}
