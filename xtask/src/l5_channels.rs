//! Pass L5 — no unbounded channels in non-test library code.
//!
//! Flags every `unbounded_channel` identifier (the tokio mpsc
//! constructor) outside test code and attributes. Unbounded queues are
//! how a slow consumer turns into an out-of-memory kill; DESIGN.md §10
//! requires every production channel to be bounded (`mpsc::channel` with
//! an explicit capacity, or the broker's `FlowQueue`). Deliberate
//! exceptions are annotated `// lint:allow(channel) <reason>`.

use crate::lexer::Token;
use crate::spans::FileFacts;
use crate::Finding;

/// Runs the pass over one file's tokens.
pub fn check(path: &str, tokens: &[Token], facts: &FileFacts, findings: &mut Vec<Finding>) {
    for (i, token) in tokens.iter().enumerate() {
        if facts.in_test.get(i).copied().unwrap_or(false)
            || facts.in_attr.get(i).copied().unwrap_or(false)
        {
            continue;
        }
        if !token.is_ident("unbounded_channel") {
            continue;
        }
        if facts.allowed("channel", token.line).is_none() {
            findings.push(Finding {
                file: path.to_string(),
                line: token.line,
                pass: "L5",
                category: "channel",
                message: "unbounded channel in library code; use a bounded `mpsc::channel` \
                          with an explicit capacity (DESIGN.md §10), or annotate \
                          `// lint:allow(channel) <reason>` if intended"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::spans::analyze;

    fn run(source: &str) -> Vec<Finding> {
        let lexed = lex(source);
        let facts = analyze(&lexed);
        let mut findings = Vec::new();
        check("test.rs", &lexed.tokens, &facts, &mut findings);
        findings
    }

    #[test]
    fn unbounded_channel_flagged() {
        assert_eq!(run("fn f() { let (tx, rx) = mpsc::unbounded_channel(); }").len(), 1);
        assert_eq!(
            run("fn f() { let (tx, rx) = tokio::sync::mpsc::unbounded_channel(); }").len(),
            1
        );
    }

    #[test]
    fn bounded_channel_ok() {
        assert!(run("fn f() { let (tx, rx) = mpsc::channel(64); }").is_empty());
    }

    #[test]
    fn test_code_exempt() {
        let source = "#[cfg(test)] mod tests { fn f() { mpsc::unbounded_channel(); } }";
        assert!(run(source).is_empty());
    }

    #[test]
    fn allow_annotation_respected() {
        let source = "fn f() {\n    // lint:allow(channel) drained synchronously same tick\n    \
                      let (tx, rx) = mpsc::unbounded_channel();\n}";
        assert!(run(source).is_empty());
    }

    #[test]
    fn string_literal_mention_not_flagged() {
        assert!(run("fn f() { let s = \"unbounded_channel\"; }").is_empty());
    }
}
