//! Pass L4 — single metric-name catalog, no drift.
//!
//! Every metric name passed to `multipub_obs`'s `counter!` / `gauge!` /
//! `histogram!` / `timer!` macros must come from the catalog in
//! `crates/obs/src/metrics.rs`:
//!
//! * call sites must reference a catalog constant, not a string literal
//!   (string literals drift silently when a metric is renamed),
//! * the referenced constant must exist in the catalog,
//! * catalog values must be unique and follow the
//!   `multipub_<crate>_<name>` convention,
//! * the README metrics table and the catalog must agree in both
//!   directions: no documented-but-gone metric, no shipped-but-
//!   undocumented metric.
//!
//! `event!` is exempt — its second argument is a log target, not a
//! metric name.

use crate::lexer::{Kind, Lexed, Token};
use crate::spans::FileFacts;
use crate::Finding;

const METRIC_MACROS: [&str; 4] = ["counter", "gauge", "histogram", "timer"];

/// The parsed metric catalog.
pub struct Catalog {
    /// `(const name, metric name, line)` triples from `metrics.rs`.
    pub entries: Vec<(String, String, u32)>,
    /// Path of the catalog file, for findings.
    pub path: String,
}

/// Parses the catalog out of `crates/obs/src/metrics.rs` tokens:
/// `pub const NAME: &str = "multipub_…";` items.
pub fn parse_catalog(path: &str, lexed: &Lexed, findings: &mut Vec<Finding>) -> Catalog {
    let tokens = &lexed.tokens;
    let mut entries: Vec<(String, String, u32)> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens.get(i).is_some_and(|t| t.is_ident("const")) {
            if let Some(name) = tokens.get(i + 1).filter(|t| t.kind == Kind::Ident) {
                // Scan this item for `= "…" ;`.
                let mut j = i + 2;
                while j < tokens.len() {
                    let Some(token) = tokens.get(j) else { break };
                    if token.is_punct(b';') {
                        break;
                    }
                    if token.kind == Kind::Str && token.text.starts_with("multipub_") {
                        entries.push((name.text.clone(), token.text.clone(), name.line));
                        break;
                    }
                    j += 1;
                }
            }
        }
        i += 1;
    }
    for (idx, (const_name, value, line)) in entries.iter().enumerate() {
        if let Some((other, _, _)) = entries.iter().take(idx).find(|(_, v, _)| v == value) {
            findings.push(l4(
                path,
                *line,
                &format!("metric `{value}` declared twice (`{other}` and `{const_name}`)"),
            ));
        }
        let well_formed =
            value.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
                && value.split('_').count() >= 3;
        if !well_formed {
            findings.push(l4(
                path,
                *line,
                &format!("metric `{value}` does not follow `multipub_<crate>_<name>`"),
            ));
        }
    }
    Catalog { entries, path: path.to_string() }
}

/// Checks one workspace file's metric-macro call sites against the
/// catalog.
pub fn check_file(
    path: &str,
    tokens: &[Token],
    facts: &FileFacts,
    catalog: &Catalog,
    findings: &mut Vec<Finding>,
) {
    for (i, token) in tokens.iter().enumerate() {
        if facts.in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        if token.kind != Kind::Ident || !METRIC_MACROS.contains(&token.text.as_str()) {
            continue;
        }
        let is_macro_call = tokens.get(i + 1).is_some_and(|t| t.is_punct(b'!'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(b'('));
        if !is_macro_call {
            continue;
        }
        let Some(arg) = tokens.get(i + 3) else { continue };
        match arg.kind {
            Kind::Str => {
                if facts.allowed("metric", arg.line).is_none() {
                    findings.push(l4(
                        path,
                        arg.line,
                        &format!(
                            "metric name `\"{}\"` is a string literal; use a \
                             `multipub_obs::metrics` catalog const",
                            arg.text
                        ),
                    ));
                }
            }
            Kind::Ident => {
                // Resolve `metrics::FOO` / `multipub_obs::metrics::FOO` /
                // bare `FOO` to the final path segment.
                let mut j = i + 3;
                let mut last = arg;
                while tokens.get(j + 1).is_some_and(|t| t.is_punct(b':'))
                    && tokens.get(j + 2).is_some_and(|t| t.is_punct(b':'))
                {
                    let Some(next) = tokens.get(j + 3).filter(|t| t.kind == Kind::Ident) else {
                        break;
                    };
                    last = next;
                    j += 3;
                }
                let declared = catalog.entries.iter().any(|(name, _, _)| *name == last.text);
                if !declared && facts.allowed("metric", arg.line).is_none() {
                    findings.push(l4(
                        path,
                        arg.line,
                        &format!(
                            "`{}` is not declared in the `multipub_obs::metrics` catalog",
                            last.text
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Cross-checks the trace stage list in `crates/obs/src/trace.rs`
/// against the catalog: every stage in `STAGE_NAMES` must have a
/// `multipub_broker_stage_<stage>_ms` histogram, so a stage added to the
/// tracer cannot ship without its per-stage latency metric (and, via
/// [`check_readme`], its README row).
pub fn check_stage_metrics(
    trace_path: &str,
    tokens: &[Token],
    catalog: &Catalog,
    findings: &mut Vec<Finding>,
) {
    let stages = parse_stage_names(tokens);
    if stages.is_empty() {
        findings.push(l4(
            trace_path,
            1,
            "`STAGE_NAMES` not found (expected `pub const STAGE_NAMES: [&str; N] = [\"…\"]`)",
        ));
        return;
    }
    for (stage, line) in &stages {
        let expected = format!("multipub_broker_stage_{stage}_ms");
        if !catalog.entries.iter().any(|(_, value, _)| *value == expected) {
            findings.push(l4(
                trace_path,
                *line,
                &format!("trace stage `{stage}` has no `{expected}` histogram in the catalog"),
            ));
        }
    }
}

/// Extracts the string elements of the `STAGE_NAMES` array literal:
/// every `Kind::Str` token between the `=` after `STAGE_NAMES` and the
/// closing `;`. Scanning starts at the `=` so the `;` inside the
/// `[&str; N]` type annotation does not end the item early.
fn parse_stage_names(tokens: &[Token]) -> Vec<(String, u32)> {
    let mut stages = Vec::new();
    let Some(start) = tokens.iter().position(|t| t.is_ident("STAGE_NAMES")) else {
        return stages;
    };
    let Some(eq) = tokens.iter().skip(start).position(|t| t.is_punct(b'=')) else {
        return stages;
    };
    for token in tokens.iter().skip(start + eq + 1) {
        if token.is_punct(b';') {
            break;
        }
        if token.kind == Kind::Str {
            stages.push((token.text.clone(), token.line));
        }
    }
    stages
}

/// Cross-checks the README metrics documentation against the catalog, in
/// both directions.
pub fn check_readme(
    readme_path: &str,
    readme: &str,
    catalog: &Catalog,
    findings: &mut Vec<Finding>,
) {
    // Words in the README that look like metric names.
    for (offset, line) in readme.lines().enumerate() {
        let line_no = offset as u32 + 1;
        for word in metric_words(line) {
            if !catalog.entries.iter().any(|(_, value, _)| value == word) {
                findings.push(l4(
                    readme_path,
                    line_no,
                    &format!("README documents `{word}` which is not in the metrics catalog"),
                ));
            }
        }
    }
    for (const_name, value, line) in &catalog.entries {
        if !readme.contains(value.as_str()) {
            findings.push(l4(
                &catalog.path,
                *line,
                &format!(
                    "`{const_name}` (`{value}`) is not documented in the README metrics table"
                ),
            ));
        }
    }
}

/// Extracts `multipub_…`-shaped words from a text line.
fn metric_words(line: &str) -> Vec<&str> {
    let mut words = Vec::new();
    let mut rest = line;
    while let Some(pos) = rest.find("multipub_") {
        let tail = rest.get(pos..).unwrap_or_default();
        let end =
            tail.find(|c: char| !(c.is_ascii_alphanumeric() || c == '_')).unwrap_or(tail.len());
        let word = tail.get(..end).unwrap_or_default();
        // Crate names (`multipub_obs`) and prose mentions with fewer than
        // three segments are not metric names.
        if word.split('_').count() >= 3 {
            words.push(word);
        }
        rest = tail.get(end.max(1)..).unwrap_or_default();
    }
    words
}

fn l4(path: &str, line: u32, message: &str) -> Finding {
    Finding {
        file: path.to_string(),
        line,
        pass: "L4",
        category: "metric",
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::spans::analyze;

    const CATALOG_SRC: &str = r#"
pub const BROKER_PUBLISHES_TOTAL: &str = "multipub_broker_publishes_total";
pub const CORE_SOLVE_MS: &str = "multipub_core_solve_ms";
"#;

    fn catalog(findings: &mut Vec<Finding>) -> Catalog {
        parse_catalog("metrics.rs", &lex(CATALOG_SRC), findings)
    }

    #[test]
    fn catalog_parses() {
        let mut findings = Vec::new();
        let cat = catalog(&mut findings);
        assert!(findings.is_empty());
        assert_eq!(cat.entries.len(), 2);
    }

    #[test]
    fn duplicate_value_flagged() {
        let source = r#"
pub const A: &str = "multipub_x_y_total";
pub const B: &str = "multipub_x_y_total";
"#;
        let mut findings = Vec::new();
        parse_catalog("metrics.rs", &lex(source), &mut findings);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn malformed_name_flagged() {
        let source = r#"pub const A: &str = "multipub_total";"#;
        let mut findings = Vec::new();
        parse_catalog("metrics.rs", &lex(source), &mut findings);
        assert_eq!(findings.len(), 1);
    }

    fn run_file(source: &str) -> Vec<Finding> {
        let mut findings = Vec::new();
        let cat = catalog(&mut findings);
        let lexed = lex(source);
        let facts = analyze(&lexed);
        check_file("caller.rs", &lexed.tokens, &facts, &cat, &mut findings);
        findings
    }

    #[test]
    fn string_literal_call_site_flagged() {
        let source =
            r#"fn f() { multipub_obs::counter!("multipub_broker_publishes_total").inc(); }"#;
        assert_eq!(run_file(source).len(), 1);
    }

    #[test]
    fn catalog_const_call_site_ok() {
        let source = "fn f() { multipub_obs::counter!(multipub_obs::metrics::BROKER_PUBLISHES_TOTAL).inc(); }";
        assert!(run_file(source).is_empty());
        let bare = "fn f() { multipub_obs::timer!(CORE_SOLVE_MS); }";
        assert!(run_file(bare).is_empty());
    }

    #[test]
    fn unknown_const_flagged() {
        let source = "fn f() { multipub_obs::counter!(metrics::NOT_A_METRIC).inc(); }";
        assert_eq!(run_file(source).len(), 1);
    }

    #[test]
    fn test_code_exempt() {
        let source = r#"#[cfg(test)] mod tests { fn t() { multipub_obs::counter!("multipub_test_adhoc_total").inc(); } }"#;
        assert!(run_file(source).is_empty());
    }

    #[test]
    fn event_macro_ignored() {
        let source = r#"fn f() { multipub_obs::event!(Info, "broker", msg = "x"); }"#;
        assert!(run_file(source).is_empty());
    }

    const STAGE_CATALOG_SRC: &str = r#"
pub const BROKER_STAGE_ADMISSION_MS: &str = "multipub_broker_stage_admission_ms";
pub const BROKER_STAGE_MATCH_MS: &str = "multipub_broker_stage_match_ms";
"#;

    #[test]
    fn stage_names_all_covered_ok() {
        let mut findings = Vec::new();
        let cat = parse_catalog("metrics.rs", &lex(STAGE_CATALOG_SRC), &mut findings);
        let trace = r#"pub const STAGE_NAMES: [&str; 2] = ["admission", "match"];"#;
        check_stage_metrics("trace.rs", &lex(trace).tokens, &cat, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn missing_stage_metric_flagged() {
        let mut findings = Vec::new();
        let cat = parse_catalog("metrics.rs", &lex(STAGE_CATALOG_SRC), &mut findings);
        let trace = r#"pub const STAGE_NAMES: [&str; 3] = ["admission", "match", "teleport"];"#;
        check_stage_metrics("trace.rs", &lex(trace).tokens, &cat, &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("multipub_broker_stage_teleport_ms"));
    }

    #[test]
    fn absent_stage_names_flagged() {
        let mut findings = Vec::new();
        let cat = parse_catalog("metrics.rs", &lex(STAGE_CATALOG_SRC), &mut findings);
        check_stage_metrics("trace.rs", &lex("pub fn unrelated() {}").tokens, &cat, &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("STAGE_NAMES"));
    }

    #[test]
    fn readme_drift_both_directions() {
        let mut findings = Vec::new();
        let cat = catalog(&mut findings);
        let readme = "| `multipub_broker_publishes_total` | publishes |\n| `multipub_gone_metric_total` | stale |\n";
        check_readme("README.md", readme, &cat, &mut findings);
        assert!(findings.iter().any(|f| f.message.contains("multipub_gone_metric_total")));
        assert!(findings.iter().any(|f| f.message.contains("CORE_SOLVE_MS")));
        assert_eq!(findings.len(), 2);
    }
}
