//! Golden known-bad corpus: every lint pass must fire on its bad
//! fixture, and every `lint:allow` form must suppress it. The fixtures
//! live under `tests/fixtures/` (outside the `src/` trees the real
//! sweep scans) and are fed to [`xtask::run_passes`] as a synthetic
//! workspace, so these tests exercise the same driver `cargo xtask
//! lint` uses — catalog gating, parallel sweep, cross-file passes and
//! all.

use xtask::{run_passes, Finding, LintOutcome};

/// Runs the full pass battery over `(workspace-relative name, source)`
/// pairs.
fn run(files: &[(&str, &str)]) -> LintOutcome {
    let inputs: Vec<(String, String)> =
        files.iter().map(|(name, source)| (name.to_string(), source.to_string())).collect();
    run_passes(&inputs, None)
}

/// The outcome's findings for one pass, ignoring the structural noise a
/// synthetic workspace always produces (missing frame.rs / metric
/// catalog for the passes under test elsewhere).
fn findings_for<'a>(outcome: &'a LintOutcome, pass: &str) -> Vec<&'a Finding> {
    outcome.findings.iter().filter(|f| f.pass == pass).collect()
}

#[test]
fn l1_fires_on_bad_and_allow_suppresses() {
    let bad = run(&[("crates/fixture/src/lib.rs", include_str!("fixtures/l1_bad.rs"))]);
    let flagged = findings_for(&bad, "L1");
    assert_eq!(flagged.len(), 2, "{flagged:?}");
    assert!(flagged.iter().any(|f| f.category == "indexing"));
    assert!(flagged.iter().any(|f| f.category == "panic"));

    let ok = run(&[("crates/fixture/src/lib.rs", include_str!("fixtures/l1_allowed.rs"))]);
    assert!(findings_for(&ok, "L1").is_empty(), "{:?}", ok.findings);
    assert!(findings_for(&ok, "meta").is_empty(), "allow reasons must be accepted");
}

#[test]
fn l2_fires_on_bad_and_allow_suppresses() {
    let bad = run(&[("crates/fixture/src/lib.rs", include_str!("fixtures/l2_bad.rs"))]);
    let flagged = findings_for(&bad, "L2");
    assert_eq!(flagged.len(), 3, "{flagged:?}");
    assert!(flagged.iter().any(|f| f.message.contains("thread::sleep")));
    assert!(flagged.iter().any(|f| f.message.contains("std::fs")));
    assert!(flagged.iter().any(|f| f.message.contains("across `.await`")));

    let ok = run(&[("crates/fixture/src/lib.rs", include_str!("fixtures/l2_allowed.rs"))]);
    assert!(findings_for(&ok, "L2").is_empty(), "{:?}", ok.findings);
    assert!(findings_for(&ok, "meta").is_empty(), "allow reasons must be accepted");
}

#[test]
fn l3_fires_on_mismatched_frame_and_codec() {
    let bad = run(&[
        ("crates/broker/src/frame.rs", include_str!("fixtures/l3_bad_frame.rs")),
        ("crates/broker/src/codec.rs", include_str!("fixtures/l3_bad_codec.rs")),
    ]);
    let flagged = findings_for(&bad, "L3");
    assert_eq!(flagged.len(), 4, "{flagged:?}");
    assert!(flagged.iter().any(|f| f.message.contains("not listed in `KNOWN_TAGS`")));
    assert!(flagged.iter().any(|f| f.message.contains("no arm in the `encode` match")));
    assert!(flagged.iter().any(|f| f.message.contains("no arm in the decode match")));
    assert!(flagged.iter().any(|f| f.message.contains("no matching variant")));
}

#[test]
fn l3_fires_on_epochless_config_update_codec() {
    let bad = run(&[
        ("crates/broker/src/frame.rs", include_str!("fixtures/l3_bad_epoch_frame.rs")),
        ("crates/broker/src/codec.rs", include_str!("fixtures/l3_bad_epoch_codec.rs")),
    ]);
    let flagged = findings_for(&bad, "L3");
    assert_eq!(flagged.len(), 2, "{flagged:?}");
    assert!(flagged.iter().any(|f| f.message.contains("encode arm does not carry the `epoch`")));
    assert!(flagged.iter().any(|f| f.message.contains("decode arm does not read the `epoch`")));
}

#[test]
fn l4_fires_on_bad_and_allow_suppresses() {
    let catalog = ("crates/obs/src/metrics.rs", include_str!("fixtures/l4_catalog.rs"));
    let bad = run(&[catalog, ("crates/fixture/src/lib.rs", include_str!("fixtures/l4_bad.rs"))]);
    let flagged = findings_for(&bad, "L4");
    assert_eq!(flagged.len(), 2, "{flagged:?}");
    assert!(flagged.iter().any(|f| f.message.contains("string literal")));
    assert!(flagged.iter().any(|f| f.message.contains("UNDECLARED_METRIC")));

    let ok = run(&[catalog, ("crates/fixture/src/lib.rs", include_str!("fixtures/l4_allowed.rs"))]);
    assert!(findings_for(&ok, "L4").is_empty(), "{:?}", ok.findings);
    assert!(findings_for(&ok, "meta").is_empty(), "allow reasons must be accepted");
}

#[test]
fn l5_fires_on_bad_and_allow_file_suppresses() {
    let bad = run(&[("crates/fixture/src/lib.rs", include_str!("fixtures/l5_bad.rs"))]);
    let flagged = findings_for(&bad, "L5");
    assert_eq!(flagged.len(), 1, "{flagged:?}");
    assert!(flagged[0].message.contains("unbounded channel"));

    // `l5_allowed.rs` uses the file-wide `lint:allow-file` form.
    let ok = run(&[("crates/fixture/src/lib.rs", include_str!("fixtures/l5_allowed.rs"))]);
    assert!(findings_for(&ok, "L5").is_empty(), "{:?}", ok.findings);
    assert!(findings_for(&ok, "meta").is_empty(), "allow reasons must be accepted");
}

#[test]
fn l6_fires_on_bad_and_allow_suppresses() {
    let bad = run(&[("crates/fixture/src/lib.rs", include_str!("fixtures/l6_bad.rs"))]);
    let flagged = findings_for(&bad, "L6");
    assert_eq!(flagged.len(), 3, "{flagged:?}");
    assert!(flagged.iter().any(|f| f.message.contains("no `// lock:rank(name, N)` annotation")));
    assert!(flagged
        .iter()
        .any(|f| f.message.contains("`fixture.low` (rank 10) acquired while `fixture.high`")));
    assert!(flagged.iter().any(|f| f.message.contains("constructor ranks `fixture.low` at 15")));

    let ok = run(&[("crates/fixture/src/lib.rs", include_str!("fixtures/l6_allowed.rs"))]);
    assert!(findings_for(&ok, "L6").is_empty(), "{:?}", ok.findings);
    assert!(findings_for(&ok, "meta").is_empty(), "allow reasons must be accepted");
}

#[test]
fn unknown_allow_category_is_a_finding() {
    let outcome = run(&[(
        "crates/fixture/src/lib.rs",
        "// lint:allow(racecondition) not a category the linter knows about\npub fn f() {}\n",
    )]);
    let flagged = findings_for(&outcome, "meta");
    assert_eq!(flagged.len(), 1, "{flagged:?}");
    assert!(flagged[0].message.contains("unknown lint:allow category"));
    assert!(flagged[0].message.contains("lockorder"), "valid-category list must include L6's");
}

#[test]
fn unused_allow_is_warned() {
    let outcome = run(&[(
        "crates/fixture/src/lib.rs",
        "// lint:allow(lockorder) nothing here actually locks anything at all\npub fn f() {}\n",
    )]);
    assert!(
        outcome.warnings.iter().any(|w| w.contains("unused lint:allow(lockorder)")),
        "{:?}",
        outcome.warnings
    );
}
