//! Golden fixture: codec missing the `Ping` encode arm and the `0x03`
//! decode arm, plus a decode arm for an undeclared tag.

use super::Frame;

pub fn encode(frame: &Frame) -> Vec<u8> {
    match frame {
        Frame::Publish => vec![0x01],
        Frame::Subscribe => vec![0x02],
    }
}

pub fn decode_inner(tag: u8) -> Option<Frame> {
    match tag {
        0x01 => Some(Frame::Publish),
        0x02 => Some(Frame::Subscribe),
        0x7F => None,
        _ => None,
    }
}
