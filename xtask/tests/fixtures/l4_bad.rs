//! Golden fixture: L4 must flag the raw string-literal metric name and
//! the const that is not in the catalog.

pub fn record(publishes: u64) {
    counter!("multipub_broker_raw_total", publishes);
    counter!(UNDECLARED_METRIC, 1);
    counter!(BROKER_PUBLISHES, publishes);
}
