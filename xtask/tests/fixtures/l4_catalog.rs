//! Golden fixture: stands in for `crates/obs/src/metrics.rs` — the
//! metric-name catalog the L4 fixtures resolve against.

pub const BROKER_PUBLISHES: &str = "multipub_broker_publishes_total";
pub const BROKER_DELIVERIES: &str = "multipub_broker_deliveries_total";
