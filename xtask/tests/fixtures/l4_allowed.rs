//! Golden fixture: the same off-catalog metric names as `l4_bad.rs`,
//! each silenced by a justified `lint:allow(metric)` annotation.

pub fn record(publishes: u64) {
    // lint:allow(metric) experimental name, graduates to the catalog next release
    counter!("multipub_broker_raw_total", publishes);
    // lint:allow(metric) declared by the embedding application, not this crate
    counter!(UNDECLARED_METRIC, 1);
}
