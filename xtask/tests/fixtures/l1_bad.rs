//! Golden fixture: L1 must flag the `unwrap` and the slice indexing.

pub fn first_byte(buf: &[u8], fallback: Option<u8>) -> u8 {
    let head = buf[0];
    head.checked_add(fallback.unwrap()).unwrap_or(head)
}
