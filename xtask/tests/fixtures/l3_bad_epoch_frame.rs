//! Golden fixture: a frame declaration with a `ConfigUpdate` variant
//! whose codec (see `l3_bad_epoch_codec.rs`) drops the `epoch` field
//! from both the encode and the decode arm — the wire-level regression
//! the L3 epoch check exists to catch.

pub enum Frame {
    Publish,
    ConfigUpdate,
}

impl Frame {
    pub fn tag(&self) -> u8 {
        match self {
            Frame::Publish => 0x01,
            Frame::ConfigUpdate => 0x0A,
        }
    }
}

pub const KNOWN_TAGS: [u8; 2] = [0x01, 0x0A];
