//! Golden fixture: the same panics as `l1_bad.rs`, each silenced by a
//! justified `lint:allow` annotation.

pub fn first_byte(buf: &[u8], fallback: Option<u8>) -> u8 {
    // lint:allow(indexing) caller guarantees the buffer is non-empty by construction
    let head = buf[0];
    // lint:allow(panic) fallback is always Some here; validated by the dispatcher
    head.checked_add(fallback.unwrap()).unwrap_or(head)
}
