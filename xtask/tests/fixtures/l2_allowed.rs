//! Golden fixture: the same blocking sites as `l2_bad.rs`, each
//! silenced by a justified `lint:allow(blocking)` annotation.

pub async fn startup(state: &std::sync::Mutex<Vec<u8>>) {
    // lint:allow(blocking) one-shot startup path, runtime has no other tasks yet
    std::thread::sleep(std::time::Duration::from_millis(5));
    // lint:allow(blocking) tiny config file read once before serving begins
    let config = std::fs::read_to_string("config.toml");
    // lint:allow(blocking) guard covers only a yield, never real I/O latency
    let mut guard = state.lock().unwrap();
    tokio::task::yield_now().await;
    guard.extend(config.into_iter().flat_map(String::into_bytes));
}
