//! Golden fixture: every variant has its encode and decode arm, but the
//! `ConfigUpdate` arms are epoch-less — a lagging deploy would silently
//! fall back to last-writer-wins config installs. The inner match on
//! the mode byte checks that nested arms do not confuse the scan.

use super::Frame;

pub fn encode(frame: &Frame) -> Vec<u8> {
    match frame {
        Frame::Publish => vec![0x01],
        Frame::ConfigUpdate { topic, mask, mode } => config_bytes(topic, mask, mode),
    }
}

pub fn decode_inner(tag: u8) -> Option<Frame> {
    match tag {
        0x01 => Some(Frame::Publish),
        0x0A => {
            let mode = match read_u8() {
                0 => direct(),
                _ => routed(),
            };
            Some(config_update(mode))
        }
        _ => None,
    }
}
