//! Golden fixture: a rank-annotated lock pair whose reversed probe is
//! excused with `lint:allow(lockorder)` — L6 must stay silent.

use multipub_sync::Mutex;

pub struct State {
    low: Mutex<u32>,  // lock:rank(fixture.low, 10)
    high: Mutex<u32>, // lock:rank(fixture.high, 20)
}

impl State {
    pub fn probe(&self) {
        let high = self.high.lock();
        // lint:allow(lockorder) reversed probe; the caller serializes on fixture.gate first
        let low = self.low.lock();
        drop((high, low));
    }
}
