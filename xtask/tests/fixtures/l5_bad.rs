//! Golden fixture: L5 must flag the unbounded channel.

pub fn wire() -> (tokio::sync::mpsc::UnboundedSender<u8>, tokio::sync::mpsc::UnboundedReceiver<u8>) {
    tokio::sync::mpsc::unbounded_channel()
}
