//! Golden fixture: a frame declaration whose `KNOWN_TAGS` misses a tag
//! and whose codec (see `l3_bad_codec.rs`) drops arms.

pub enum Frame {
    Publish,
    Subscribe,
    Ping,
}

impl Frame {
    pub fn tag(&self) -> u8 {
        match self {
            Frame::Publish => 0x01,
            Frame::Subscribe => 0x02,
            Frame::Ping => 0x03,
        }
    }
}

pub const KNOWN_TAGS: [u8; 2] = [0x01, 0x02];
