//! Golden fixture: L6 must flag the unannotated declaration, the
//! inverted nested acquisition, and the constructor whose rank drifted
//! from its annotation.

use multipub_sync::Mutex;

pub struct State {
    low: Mutex<u32>,  // lock:rank(fixture.low, 10)
    high: Mutex<u32>, // lock:rank(fixture.high, 20)
    naked: Mutex<u32>,
}

impl State {
    pub fn inverted(&self) {
        let high = self.high.lock();
        let low = self.low.lock();
        drop((high, low));
    }
}

pub fn drifted() -> Mutex<u32> {
    Mutex::new(15, "fixture.low", 0)
}
