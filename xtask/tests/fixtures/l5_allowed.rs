//! Golden fixture: the same unbounded channel as `l5_bad.rs`, silenced
//! by a file-wide `lint:allow-file(channel)` annotation — this fixture
//! doubles as the allow-file form's regression test.

// lint:allow-file(channel) control-plane plumbing with a statically bounded sender set

pub fn wire() -> (tokio::sync::mpsc::UnboundedSender<u8>, tokio::sync::mpsc::UnboundedReceiver<u8>) {
    tokio::sync::mpsc::unbounded_channel()
}
