//! Golden fixture: L2 must flag the blocking sleep, the blocking
//! filesystem read, and the sync guard held across an `.await`.

pub async fn startup(state: &std::sync::Mutex<Vec<u8>>) {
    std::thread::sleep(std::time::Duration::from_millis(5));
    let config = std::fs::read_to_string("config.toml");
    let mut guard = state.lock().unwrap();
    tokio::task::yield_now().await;
    guard.extend(config.into_iter().flat_map(String::into_bytes));
}
