//! The assignment matrix and reconfiguration planning.
//!
//! The mapping of topics to regions is a bit matrix (paper §III.A2):
//! rows are topics, columns are regions. [`AssignmentMatrix`] stores one
//! [`Configuration`] per topic (the row plus its delivery mode) and
//! [`ReconfigurationPlan`] computes, for a row change, exactly which
//! clients must act (paper §III.A5): subscribers whose closest serving
//! region changes must resubscribe, and publishers must re-steer whenever
//! the serving set or mode changes.

use crate::assignment::{Configuration, DeliveryMode};
use crate::delivery::closest_region;
use crate::error::Error;
use crate::ids::{ClientId, RegionId, TopicId};
use crate::workload::TopicWorkload;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The topics × regions assignment matrix with per-topic delivery modes.
///
/// ```
/// use multipub_core::prelude::*;
/// use multipub_core::topics::AssignmentMatrix;
/// # fn main() -> Result<(), multipub_core::Error> {
/// let mut matrix = AssignmentMatrix::new(10);
/// let config = Configuration::new(
///     AssignmentVector::from_mask(0b10001, 10)?, DeliveryMode::Routed);
/// matrix.set(TopicId::new("chat"), config)?;
/// assert_eq!(matrix.get(&TopicId::new("chat")), Some(config));
/// assert_eq!(matrix.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssignmentMatrix {
    n_regions: usize,
    rows: BTreeMap<TopicId, Configuration>,
}

impl AssignmentMatrix {
    /// An empty matrix over `n_regions` regions.
    pub fn new(n_regions: usize) -> Self {
        AssignmentMatrix { n_regions, rows: BTreeMap::new() }
    }

    /// Number of regions (columns).
    pub fn n_regions(&self) -> usize {
        self.n_regions
    }

    /// Number of topics with an installed row.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no topic has a row yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Installs (or replaces) a topic's row, returning the previous
    /// configuration if any.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAssignment`] if the configuration
    /// references regions outside the matrix.
    pub fn set(
        &mut self,
        topic: TopicId,
        configuration: Configuration,
    ) -> Result<Option<Configuration>, Error> {
        let valid = if self.n_regions >= 32 { u32::MAX } else { (1u32 << self.n_regions) - 1 };
        if configuration.assignment().mask() & !valid != 0 {
            return Err(Error::InvalidAssignment {
                mask: configuration.assignment().mask(),
                n_regions: self.n_regions,
            });
        }
        Ok(self.rows.insert(topic, configuration))
    }

    /// The row for a topic, if installed.
    pub fn get(&self, topic: &TopicId) -> Option<Configuration> {
        self.rows.get(topic).copied()
    }

    /// Removes a topic's row.
    pub fn remove(&mut self, topic: &TopicId) -> Option<Configuration> {
        self.rows.remove(topic)
    }

    /// Iterates over `(topic, configuration)` rows in topic order.
    pub fn iter(&self) -> impl Iterator<Item = (&TopicId, Configuration)> {
        self.rows.iter().map(|(t, c)| (t, *c))
    }

    /// The topics currently served by `region` — the column view that a
    /// region manager needs.
    pub fn topics_served_by(&self, region: RegionId) -> Vec<&TopicId> {
        self.rows.iter().filter(|(_, c)| c.assignment().contains(region)).map(|(t, _)| t).collect()
    }
}

/// The client notifications required by one row change (paper §III.A5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigurationPlan {
    /// Subscribers that must resubscribe, with their moves.
    pub subscriber_moves: Vec<(ClientId, RegionId, RegionId)>,
    /// Publishers whose publish target set changes.
    pub publisher_changes: Vec<ClientId>,
    /// Regions added to the serving set.
    pub added_regions: Vec<RegionId>,
    /// Regions removed from the serving set.
    pub removed_regions: Vec<RegionId>,
    /// Whether the delivery mode changed.
    pub mode_changed: bool,
}

impl ReconfigurationPlan {
    /// Computes the plan for moving `workload`'s clients from `old` to
    /// `new`.
    pub fn compute(workload: &TopicWorkload, old: Configuration, new: Configuration) -> Self {
        let mut subscriber_moves = Vec::new();
        for subscriber in workload.subscribers() {
            let from = closest_region(subscriber.latencies(), old.assignment());
            let to = closest_region(subscriber.latencies(), new.assignment());
            if from != to {
                subscriber_moves.push((subscriber.id(), from, to));
            }
        }

        let mut publisher_changes = Vec::new();
        for publisher in workload.publishers() {
            let old_targets = publish_targets(publisher.latencies(), old);
            let new_targets = publish_targets(publisher.latencies(), new);
            if old_targets != new_targets {
                publisher_changes.push(publisher.id());
            }
        }

        let added_regions =
            new.assignment().iter().filter(|r| !old.assignment().contains(*r)).collect();
        let removed_regions =
            old.assignment().iter().filter(|r| !new.assignment().contains(*r)).collect();

        ReconfigurationPlan {
            subscriber_moves,
            publisher_changes,
            added_regions,
            removed_regions,
            mode_changed: old.mode() != new.mode(),
        }
    }

    /// Total number of clients that must be notified.
    pub fn notified_clients(&self) -> usize {
        self.subscriber_moves.len() + self.publisher_changes.len()
    }

    /// Whether the change is a no-op for every client.
    pub fn is_noop(&self) -> bool {
        self.notified_clients() == 0
            && self.added_regions.is_empty()
            && self.removed_regions.is_empty()
            && !self.mode_changed
    }
}

/// The set of regions a publisher sends to under a configuration, as a
/// bitmask: every serving region under direct delivery, only the closest
/// one under routed delivery.
fn publish_targets(latencies: &[f64], configuration: Configuration) -> u32 {
    match configuration.mode() {
        DeliveryMode::Direct => configuration.assignment().mask(),
        DeliveryMode::Routed => 1u32 << closest_region(latencies, configuration.assignment()).0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::AssignmentVector;
    use crate::workload::{MessageBatch, Publisher, Subscriber};

    fn config(mask: u32, mode: DeliveryMode) -> Configuration {
        Configuration::new(AssignmentVector::from_mask(mask, 3).unwrap(), mode)
    }

    fn workload() -> TopicWorkload {
        let mut w = TopicWorkload::new(3);
        w.add_publisher(
            Publisher::new(ClientId(0), vec![5.0, 50.0, 90.0], MessageBatch::uniform(1, 1))
                .unwrap(),
        )
        .unwrap();
        w.add_subscriber(Subscriber::new(ClientId(1), vec![4.0, 60.0, 99.0]).unwrap()).unwrap();
        w.add_subscriber(Subscriber::new(ClientId(2), vec![80.0, 6.0, 70.0]).unwrap()).unwrap();
        w
    }

    #[test]
    fn matrix_set_get_remove() {
        let mut m = AssignmentMatrix::new(3);
        let t = TopicId::new("a");
        assert!(m.is_empty());
        assert_eq!(m.set(t.clone(), config(0b101, DeliveryMode::Direct)).unwrap(), None);
        assert_eq!(m.get(&t), Some(config(0b101, DeliveryMode::Direct)));
        let old = m.set(t.clone(), config(0b001, DeliveryMode::Direct)).unwrap();
        assert_eq!(old, Some(config(0b101, DeliveryMode::Direct)));
        assert_eq!(m.remove(&t), Some(config(0b001, DeliveryMode::Direct)));
        assert!(m.get(&t).is_none());
    }

    #[test]
    fn matrix_rejects_out_of_range_regions() {
        let mut m = AssignmentMatrix::new(2);
        let bad = Configuration::new(
            AssignmentVector::from_mask(0b100, 3).unwrap(),
            DeliveryMode::Direct,
        );
        assert!(m.set(TopicId::new("t"), bad).is_err());
    }

    #[test]
    fn column_view_lists_serving_topics() {
        let mut m = AssignmentMatrix::new(3);
        m.set(TopicId::new("a"), config(0b001, DeliveryMode::Direct)).unwrap();
        m.set(TopicId::new("b"), config(0b011, DeliveryMode::Routed)).unwrap();
        let served = m.topics_served_by(RegionId(1));
        assert_eq!(served.len(), 1);
        assert_eq!(served[0].as_str(), "b");
        assert_eq!(m.topics_served_by(RegionId(0)).len(), 2);
        assert!(m.topics_served_by(RegionId(2)).is_empty());
    }

    #[test]
    fn plan_moves_subscribers_whose_region_changes() {
        let w = workload();
        // Region 1 removed: subscriber 2 (home R1) must move to R0.
        let plan = ReconfigurationPlan::compute(
            &w,
            config(0b011, DeliveryMode::Direct),
            config(0b001, DeliveryMode::Direct),
        );
        assert_eq!(plan.subscriber_moves, vec![(ClientId(2), RegionId(1), RegionId(0))]);
        assert_eq!(plan.removed_regions, vec![RegionId(1)]);
        assert!(plan.added_regions.is_empty());
        assert!(!plan.mode_changed);
    }

    #[test]
    fn plan_flags_publishers_on_direct_mask_growth() {
        let w = workload();
        let plan = ReconfigurationPlan::compute(
            &w,
            config(0b001, DeliveryMode::Direct),
            config(0b011, DeliveryMode::Direct),
        );
        // Direct: the publisher must now also send to region 1.
        assert_eq!(plan.publisher_changes, vec![ClientId(0)]);
        assert_eq!(plan.added_regions, vec![RegionId(1)]);
    }

    #[test]
    fn plan_routed_publisher_unchanged_when_home_stays() {
        let w = workload();
        // Routed: the publisher's closest region (R0) is in both sets, so
        // it keeps publishing to R0 only.
        let plan = ReconfigurationPlan::compute(
            &w,
            config(0b001, DeliveryMode::Routed),
            config(0b011, DeliveryMode::Routed),
        );
        assert!(plan.publisher_changes.is_empty());
        // But the subscriber near R1 moves.
        assert_eq!(plan.subscriber_moves.len(), 1);
    }

    #[test]
    fn plan_mode_change_resteers_publishers() {
        let w = workload();
        let plan = ReconfigurationPlan::compute(
            &w,
            config(0b011, DeliveryMode::Routed),
            config(0b011, DeliveryMode::Direct),
        );
        assert!(plan.mode_changed);
        assert_eq!(plan.publisher_changes, vec![ClientId(0)]);
        // Same regions → no subscriber moves.
        assert!(plan.subscriber_moves.is_empty());
        assert!(!plan.is_noop());
    }

    #[test]
    fn identical_configs_are_a_noop() {
        let w = workload();
        let c = config(0b011, DeliveryMode::Routed);
        let plan = ReconfigurationPlan::compute(&w, c, c);
        assert!(plan.is_noop());
        assert_eq!(plan.notified_clients(), 0);
    }
}
