//! Cloud regions and their outgoing-bandwidth cost rates.
//!
//! The MultiPub cost model (paper §III.E) only considers bandwidth: inbound
//! traffic is free, while outgoing traffic is billed per byte at two
//! different rates — `α(R)` towards another cloud region and `β(R)` towards
//! any Internet client. Rates differ widely between regions (Table I of the
//! paper), which is what makes region selection a cost optimization.

use crate::error::Error;
use crate::ids::RegionId;
use serde::{Deserialize, Serialize};

/// Number of bytes in a gigabyte as billed by cloud providers (10^9).
pub const BYTES_PER_GB: f64 = 1_000_000_000.0;

/// Maximum number of regions supported by the `u32` bitmask representation
/// of assignment vectors.
pub const MAX_REGIONS: usize = 32;

/// A single cloud region with its outgoing-bandwidth prices.
///
/// ```
/// use multipub_core::region::Region;
/// let tokyo = Region::new("ap-northeast-1", "Tokyo", 0.09, 0.14);
/// assert_eq!(tokyo.name(), "ap-northeast-1");
/// assert!(tokyo.internet_cost_per_gb() > tokyo.inter_region_cost_per_gb());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    name: String,
    location: String,
    inter_region_cost_per_gb: f64,
    internet_cost_per_gb: f64,
}

impl Region {
    /// Creates a region.
    ///
    /// `inter_region_cost_per_gb` is the `$EC2` column of the paper's
    /// Table I (cost of 1 GB sent to another cloud region, the `α` rate);
    /// `internet_cost_per_gb` is the `$Inet` column (cost of 1 GB sent to
    /// any Internet node, the `β` rate).
    pub fn new(
        name: impl Into<String>,
        location: impl Into<String>,
        inter_region_cost_per_gb: f64,
        internet_cost_per_gb: f64,
    ) -> Self {
        Region {
            name: name.into(),
            location: location.into(),
            inter_region_cost_per_gb,
            internet_cost_per_gb,
        }
    }

    /// Provider name of the region (e.g. `us-east-1`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Human-readable location (e.g. `N. Virginia`).
    pub fn location(&self) -> &str {
        &self.location
    }

    /// Price in dollars of sending 1 GB to another cloud region (`α`-rate).
    pub fn inter_region_cost_per_gb(&self) -> f64 {
        self.inter_region_cost_per_gb
    }

    /// Price in dollars of sending 1 GB to an Internet client (`β`-rate).
    pub fn internet_cost_per_gb(&self) -> f64 {
        self.internet_cost_per_gb
    }

    fn validate(&self) -> Result<(), Error> {
        for rate in [self.inter_region_cost_per_gb, self.internet_cost_per_gb] {
            if !rate.is_finite() || rate < 0.0 {
                return Err(Error::InvalidCostRate { value: rate });
            }
        }
        Ok(())
    }
}

/// An ordered, validated set of cloud regions.
///
/// The position of a region in the set is its [`RegionId`]; the same index
/// addresses the region's row/column in the latency matrices and its bit in
/// assignment vectors.
///
/// ```
/// use multipub_core::region::{Region, RegionSet};
/// # fn main() -> Result<(), multipub_core::Error> {
/// let set = RegionSet::new(vec![
///     Region::new("us-east-1", "N. Virginia", 0.02, 0.09),
///     Region::new("sa-east-1", "Sao Paulo", 0.16, 0.25),
/// ])?;
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.cheapest_internet_region().index(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionSet {
    regions: Vec<Region>,
}

impl RegionSet {
    /// Creates a region set from 1–32 regions.
    ///
    /// # Errors
    ///
    /// Returns [`Error::RegionCount`] when the vector is empty or larger
    /// than [`MAX_REGIONS`], and [`Error::InvalidCostRate`] when any region
    /// has a negative or non-finite price.
    pub fn new(regions: Vec<Region>) -> Result<Self, Error> {
        if regions.is_empty() || regions.len() > MAX_REGIONS {
            return Err(Error::RegionCount { got: regions.len() });
        }
        for region in &regions {
            region.validate()?;
        }
        Ok(RegionSet { regions })
    }

    /// Number of regions in the set (`N_R^total` in the paper).
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Returns `true` if the set holds no regions. Always `false` for a
    /// successfully constructed set; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The region at the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn region(&self, id: RegionId) -> &Region {
        // lint:allow(indexing) documented panic contract: callers index with ids minted by this RegionSet
        &self.regions[id.index()]
    }

    /// The region at the given id, or `None` if out of bounds.
    pub fn get(&self, id: RegionId) -> Option<&Region> {
        self.regions.get(id.index())
    }

    /// Looks a region up by provider name.
    pub fn by_name(&self, name: &str) -> Option<RegionId> {
        self.regions.iter().position(|r| r.name() == name).map(|i| RegionId(i as u8))
    }

    /// Iterates over `(RegionId, &Region)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (RegionId, &Region)> {
        self.regions.iter().enumerate().map(|(i, r)| (RegionId(i as u8), r))
    }

    /// All region ids in order.
    pub fn ids(&self) -> impl Iterator<Item = RegionId> + '_ {
        (0..self.regions.len()).map(|i| RegionId(i as u8))
    }

    /// Cost in dollars of one outgoing byte from `region` to another cloud
    /// region — the `α(R)` rate of the paper.
    pub fn alpha_per_byte(&self, region: RegionId) -> f64 {
        self.region(region).inter_region_cost_per_gb() / BYTES_PER_GB
    }

    /// Cost in dollars of one outgoing byte from `region` to an Internet
    /// client — the `β(R)` rate of the paper.
    pub fn beta_per_byte(&self, region: RegionId) -> f64 {
        self.region(region).internet_cost_per_gb() / BYTES_PER_GB
    }

    /// The region with the lowest Internet egress price (ties broken by
    /// lowest id). This is the natural anchor for the *One Region*
    /// baseline and for pruning heuristics.
    pub fn cheapest_internet_region(&self) -> RegionId {
        let mut best = RegionId(0);
        for (id, region) in self.iter() {
            if region.internet_cost_per_gb() < self.region(best).internet_cost_per_gb() {
                best = id;
            }
        }
        best
    }
}

impl AsRef<[Region]> for RegionSet {
    fn as_ref(&self) -> &[Region] {
        &self.regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_regions() -> RegionSet {
        RegionSet::new(vec![
            Region::new("us-east-1", "N. Virginia", 0.02, 0.09),
            Region::new("sa-east-1", "Sao Paulo", 0.16, 0.25),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_empty_set() {
        assert_eq!(RegionSet::new(vec![]), Err(Error::RegionCount { got: 0 }));
    }

    #[test]
    fn rejects_more_than_32_regions() {
        let regions: Vec<Region> =
            (0..33).map(|i| Region::new(format!("r{i}"), "x", 0.01, 0.02)).collect();
        assert_eq!(RegionSet::new(regions), Err(Error::RegionCount { got: 33 }));
    }

    #[test]
    fn rejects_negative_cost() {
        let err = RegionSet::new(vec![Region::new("r", "x", -0.5, 0.1)]);
        assert_eq!(err, Err(Error::InvalidCostRate { value: -0.5 }));
    }

    #[test]
    fn rejects_nan_cost() {
        let err = RegionSet::new(vec![Region::new("r", "x", 0.1, f64::NAN)]);
        assert!(matches!(err, Err(Error::InvalidCostRate { .. })));
    }

    #[test]
    fn per_byte_rates_match_per_gb_prices() {
        let set = two_regions();
        assert!((set.alpha_per_byte(RegionId(0)) * BYTES_PER_GB - 0.02).abs() < 1e-12);
        assert!((set.beta_per_byte(RegionId(1)) * BYTES_PER_GB - 0.25).abs() < 1e-12);
    }

    #[test]
    fn lookup_by_name() {
        let set = two_regions();
        assert_eq!(set.by_name("sa-east-1"), Some(RegionId(1)));
        assert_eq!(set.by_name("nope"), None);
    }

    #[test]
    fn cheapest_region_prefers_lowest_internet_rate() {
        let set = two_regions();
        assert_eq!(set.cheapest_internet_region(), RegionId(0));
    }

    #[test]
    fn cheapest_region_breaks_ties_by_id() {
        let set = RegionSet::new(vec![
            Region::new("a", "x", 0.05, 0.09),
            Region::new("b", "y", 0.01, 0.09),
        ])
        .unwrap();
        assert_eq!(set.cheapest_internet_region(), RegionId(0));
    }

    #[test]
    fn iteration_yields_dense_ids() {
        let set = two_regions();
        let ids: Vec<_> = set.ids().collect();
        assert_eq!(ids, vec![RegionId(0), RegionId(1)]);
        assert_eq!(set.iter().count(), 2);
    }
}
