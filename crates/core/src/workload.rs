//! Topic workloads: publishers, subscribers and observed message traffic.
//!
//! A [`TopicWorkload`] captures what the region managers observed during one
//! collection interval (paper §III.A3): who published and subscribed, how
//! many messages each publisher sent and how many bytes they amounted to,
//! plus each client's latency row towards every region.

use crate::error::Error;
use crate::ids::ClientId;
use crate::latency::validate_latency_row;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Aggregated statistics about the messages a publisher sent during one
/// observation interval.
///
/// The model equations only need the message *count* (`N_M^P`, which weighs
/// delivery times) and the *total bytes* (`Σ Ω(M_j^P)`, which drives cost),
/// so that is all we store; [`MessageBatch::record`] can accumulate
/// per-message sizes as they are observed.
///
/// ```
/// use multipub_core::workload::MessageBatch;
/// let mut batch = MessageBatch::empty();
/// batch.record(1024);
/// batch.record(2048);
/// assert_eq!(batch.count(), 2);
/// assert_eq!(batch.total_bytes(), 3072);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MessageBatch {
    count: u64,
    total_bytes: u64,
}

impl MessageBatch {
    /// A batch with no messages.
    pub fn empty() -> Self {
        MessageBatch::default()
    }

    /// A batch of `count` messages of identical `size_bytes`.
    pub fn uniform(count: u64, size_bytes: u64) -> Self {
        MessageBatch { count, total_bytes: count * size_bytes }
    }

    /// A batch described by explicit per-message sizes.
    pub fn from_sizes(sizes: impl IntoIterator<Item = u64>) -> Self {
        let mut batch = MessageBatch::empty();
        for size in sizes {
            batch.record(size);
        }
        batch
    }

    /// Records one observed message of `size_bytes`.
    pub fn record(&mut self, size_bytes: u64) {
        self.count += 1;
        self.total_bytes += size_bytes;
    }

    /// Number of messages (`N_M^P`).
    pub fn count(self) -> u64 {
        self.count
    }

    /// Total payload bytes (`Σ_j Ω(M_j^P)`).
    pub fn total_bytes(self) -> u64 {
        self.total_bytes
    }

    /// Merges another batch into this one (used by client bundling).
    pub fn merge(&mut self, other: MessageBatch) {
        self.count += other.count;
        self.total_bytes += other.total_bytes;
    }
}

/// A publisher of the topic: its identity, its latency row towards every
/// region, and the messages it sent in the observation interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Publisher {
    id: ClientId,
    /// One-way latency in ms towards each region (`L[P][·]`).
    latencies: Vec<f64>,
    batch: MessageBatch,
}

impl Publisher {
    /// Creates a publisher.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidLatency`] for negative/NaN/infinite entries.
    /// The row length is validated against the workload's region count when
    /// the publisher is added via [`TopicWorkload::add_publisher`].
    pub fn new(id: ClientId, latencies: Vec<f64>, batch: MessageBatch) -> Result<Self, Error> {
        validate_latency_row(&latencies, latencies.len())?;
        Ok(Publisher { id, latencies, batch })
    }

    /// The publisher's client id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// One-way latency row towards every region, in milliseconds.
    pub fn latencies(&self) -> &[f64] {
        &self.latencies
    }

    /// Message statistics for the observation interval.
    pub fn batch(&self) -> MessageBatch {
        self.batch
    }

    /// Replaces the message statistics (used between collection intervals).
    pub fn set_batch(&mut self, batch: MessageBatch) {
        self.batch = batch;
    }
}

/// A subscriber of the topic.
///
/// `weight` counts how many real subscribers this entry stands for; it is 1
/// for ordinary subscribers and larger for the *virtual clients* produced by
/// proportional bundling (paper §V.F, implemented in [`crate::scaling`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subscriber {
    id: ClientId,
    latencies: Vec<f64>,
    weight: u64,
}

impl Subscriber {
    /// Creates a subscriber with weight 1.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidLatency`] for negative/NaN/infinite entries.
    pub fn new(id: ClientId, latencies: Vec<f64>) -> Result<Self, Error> {
        Self::with_weight(id, latencies, 1)
    }

    /// Creates a (possibly virtual) subscriber standing for `weight` real
    /// subscribers.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ZeroWeight`] when `weight == 0` and
    /// [`Error::InvalidLatency`] for invalid latency entries.
    pub fn with_weight(id: ClientId, latencies: Vec<f64>, weight: u64) -> Result<Self, Error> {
        if weight == 0 {
            return Err(Error::ZeroWeight);
        }
        validate_latency_row(&latencies, latencies.len())?;
        Ok(Subscriber { id, latencies, weight })
    }

    /// The subscriber's client id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// One-way latency row towards every region, in milliseconds.
    pub fn latencies(&self) -> &[f64] {
        &self.latencies
    }

    /// Number of real subscribers this entry represents.
    pub fn weight(&self) -> u64 {
        self.weight
    }
}

/// Everything the controller knows about one topic for one observation
/// interval: its publishers (with traffic) and subscribers (with weights).
///
/// ```
/// use multipub_core::workload::{TopicWorkload, Publisher, Subscriber, MessageBatch};
/// use multipub_core::ids::ClientId;
/// # fn main() -> Result<(), multipub_core::Error> {
/// let mut w = TopicWorkload::new(3);
/// w.add_publisher(Publisher::new(
///     ClientId(0), vec![5.0, 50.0, 90.0], MessageBatch::uniform(10, 512),
/// )?)?;
/// w.add_subscriber(Subscriber::new(ClientId(1), vec![80.0, 8.0, 60.0])?)?;
/// assert_eq!(w.total_messages(), 10);
/// assert_eq!(w.subscriber_weight(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicWorkload {
    n_regions: usize,
    publishers: Vec<Publisher>,
    subscribers: Vec<Subscriber>,
}

impl TopicWorkload {
    /// Creates an empty workload over `n_regions` regions. Latency rows of
    /// all added clients must have exactly this many entries.
    pub fn new(n_regions: usize) -> Self {
        TopicWorkload { n_regions, publishers: Vec::new(), subscribers: Vec::new() }
    }

    /// Number of regions all latency rows are indexed by.
    pub fn n_regions(&self) -> usize {
        self.n_regions
    }

    /// Adds a publisher.
    ///
    /// # Errors
    ///
    /// * [`Error::LatencyDimension`] if the latency row width differs from
    ///   [`TopicWorkload::n_regions`].
    /// * [`Error::DuplicateClient`] if the id is already a publisher.
    pub fn add_publisher(&mut self, publisher: Publisher) -> Result<(), Error> {
        validate_latency_row(publisher.latencies(), self.n_regions)?;
        if self.publishers.iter().any(|p| p.id() == publisher.id()) {
            return Err(Error::DuplicateClient { id: publisher.id().0 });
        }
        self.publishers.push(publisher);
        Ok(())
    }

    /// Adds a subscriber.
    ///
    /// # Errors
    ///
    /// * [`Error::LatencyDimension`] if the latency row width differs from
    ///   [`TopicWorkload::n_regions`].
    /// * [`Error::DuplicateClient`] if the id is already a subscriber.
    pub fn add_subscriber(&mut self, subscriber: Subscriber) -> Result<(), Error> {
        validate_latency_row(subscriber.latencies(), self.n_regions)?;
        if self.subscribers.iter().any(|s| s.id() == subscriber.id()) {
            return Err(Error::DuplicateClient { id: subscriber.id().0 });
        }
        self.subscribers.push(subscriber);
        Ok(())
    }

    /// The topic's publishers (`ℙ`).
    pub fn publishers(&self) -> &[Publisher] {
        &self.publishers
    }

    /// The topic's subscribers (`𝕊`).
    pub fn subscribers(&self) -> &[Subscriber] {
        &self.subscribers
    }

    /// Mutable access to publishers, e.g. to refresh message batches
    /// between collection intervals.
    pub fn publishers_mut(&mut self) -> &mut [Publisher] {
        &mut self.publishers
    }

    /// Number of publisher entries (`N_P`).
    pub fn publisher_count(&self) -> usize {
        self.publishers.len()
    }

    /// Number of subscriber entries (bundled entries count once).
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Total number of real subscribers (`N_S`), i.e. the sum of weights.
    pub fn subscriber_weight(&self) -> u64 {
        self.subscribers.iter().map(|s| s.weight()).sum()
    }

    /// Total messages sent by all publishers (`Σ_k N_M^{P_k}`).
    pub fn total_messages(&self) -> u64 {
        self.publishers.iter().map(|p| p.batch().count()).sum()
    }

    /// Total deliveries in the interval (`|𝔻_C| = N_S × Σ_k N_M^{P_k}`).
    pub fn total_deliveries(&self) -> u64 {
        self.subscriber_weight() * self.total_messages()
    }

    /// Validates that the workload can be optimized (at least one
    /// publisher and one subscriber).
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyWorkload`] otherwise.
    pub fn ensure_non_empty(&self) -> Result<(), Error> {
        if self.publishers.is_empty() || self.subscribers.is_empty() {
            return Err(Error::EmptyWorkload);
        }
        Ok(())
    }

    /// All distinct client ids appearing in the workload.
    pub fn client_ids(&self) -> HashSet<ClientId> {
        self.publishers
            .iter()
            .map(|p| p.id())
            .chain(self.subscribers.iter().map(|s| s.id()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_accumulates() {
        let mut b = MessageBatch::from_sizes([100, 200, 300]);
        assert_eq!(b.count(), 3);
        assert_eq!(b.total_bytes(), 600);
        b.merge(MessageBatch::uniform(2, 50));
        assert_eq!(b.count(), 5);
        assert_eq!(b.total_bytes(), 700);
    }

    #[test]
    fn uniform_batch() {
        let b = MessageBatch::uniform(60, 1024);
        assert_eq!(b.count(), 60);
        assert_eq!(b.total_bytes(), 61_440);
    }

    #[test]
    fn publisher_rejects_bad_latency() {
        let err = Publisher::new(ClientId(0), vec![1.0, f64::NAN], MessageBatch::empty());
        assert!(matches!(err, Err(Error::InvalidLatency { .. })));
    }

    #[test]
    fn subscriber_rejects_zero_weight() {
        assert_eq!(Subscriber::with_weight(ClientId(0), vec![1.0], 0), Err(Error::ZeroWeight));
    }

    #[test]
    fn workload_rejects_wrong_width() {
        let mut w = TopicWorkload::new(3);
        let p = Publisher::new(ClientId(0), vec![1.0, 2.0], MessageBatch::empty()).unwrap();
        assert_eq!(w.add_publisher(p), Err(Error::LatencyDimension { expected: 3, got: 2 }));
    }

    #[test]
    fn workload_rejects_duplicate_ids_per_role() {
        let mut w = TopicWorkload::new(1);
        w.add_subscriber(Subscriber::new(ClientId(5), vec![1.0]).unwrap()).unwrap();
        let dup = Subscriber::new(ClientId(5), vec![2.0]).unwrap();
        assert_eq!(w.add_subscriber(dup), Err(Error::DuplicateClient { id: 5 }));
        // The same id may be both publisher and subscriber, though.
        let p = Publisher::new(ClientId(5), vec![1.0], MessageBatch::empty()).unwrap();
        assert!(w.add_publisher(p).is_ok());
    }

    #[test]
    fn totals_account_for_weights() {
        let mut w = TopicWorkload::new(2);
        w.add_publisher(
            Publisher::new(ClientId(0), vec![1.0, 2.0], MessageBatch::uniform(4, 100)).unwrap(),
        )
        .unwrap();
        w.add_publisher(
            Publisher::new(ClientId(1), vec![1.0, 2.0], MessageBatch::uniform(6, 100)).unwrap(),
        )
        .unwrap();
        w.add_subscriber(Subscriber::with_weight(ClientId(2), vec![1.0, 2.0], 3).unwrap()).unwrap();
        w.add_subscriber(Subscriber::new(ClientId(3), vec![1.0, 2.0]).unwrap()).unwrap();
        assert_eq!(w.total_messages(), 10);
        assert_eq!(w.subscriber_weight(), 4);
        assert_eq!(w.total_deliveries(), 40);
        assert_eq!(w.subscriber_count(), 2);
    }

    #[test]
    fn empty_workload_detected() {
        let w = TopicWorkload::new(2);
        assert_eq!(w.ensure_non_empty(), Err(Error::EmptyWorkload));
    }

    #[test]
    fn client_ids_union() {
        let mut w = TopicWorkload::new(1);
        w.add_publisher(Publisher::new(ClientId(1), vec![0.0], MessageBatch::empty()).unwrap())
            .unwrap();
        w.add_subscriber(Subscriber::new(ClientId(1), vec![0.0]).unwrap()).unwrap();
        w.add_subscriber(Subscriber::new(ClientId(2), vec![0.0]).unwrap()).unwrap();
        assert_eq!(w.client_ids().len(), 2);
    }
}
