//! The MultiPub configuration optimizer (paper §IV).
//!
//! For each topic, the controller enumerates every configuration — each
//! non-empty subset of the allowed regions, with direct and (for
//! multi-region subsets) routed delivery — evaluates its delivery-time
//! percentile and bandwidth cost against the last observation interval, and
//! picks (paper §IV.B):
//!
//! 1. among all configurations meeting the delivery constraint, the one
//!    with the **lowest cost**;
//! 2. ties broken per [`TieBreaking`] (by default **fewest regions**, then
//!    lowest percentile — see the [`TieBreaking`] docs for why this
//!    deviates from the paper's §IV.B wording);
//! 3. if *no* configuration is feasible, the one with the lowest
//!    delivery-time percentile irrespective of cost.
//!
//! Topics are independent (§IV.C), so [`solve_topics`] solves many topics
//! in parallel with scoped threads.

use crate::assignment::{
    enumerate_configurations, AssignmentVector, Configuration, DeliveryMode, ModePolicy,
};
use crate::constraint::DeliveryConstraint;
use crate::error::Error;
use crate::evaluate::{ConfigEvaluation, EvalScratch, TopicEvaluator};
use crate::latency::InterRegionMatrix;
use crate::region::RegionSet;
use crate::workload::TopicWorkload;
use serde::{Deserialize, Serialize};

/// The optimizer's answer for one topic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    evaluation: ConfigEvaluation,
    feasible: bool,
    configurations_considered: u64,
}

impl Solution {
    /// Assembles a solution from its parts — used by the alternative
    /// solvers ([`crate::heuristic`]) so they can return the same shape.
    pub(crate) fn from_parts(
        evaluation: ConfigEvaluation,
        feasible: bool,
        configurations_considered: u64,
    ) -> Self {
        Solution { evaluation, feasible, configurations_considered }
    }

    /// The selected configuration.
    pub fn configuration(&self) -> Configuration {
        self.evaluation.configuration()
    }

    /// Percentile and cost of the selected configuration.
    pub fn evaluation(&self) -> &ConfigEvaluation {
        &self.evaluation
    }

    /// Whether the selected configuration meets the delivery constraint.
    /// When `false`, the solution is the most latency-minimizing
    /// configuration instead (§IV.B).
    pub fn is_feasible(&self) -> bool {
        self.feasible
    }

    /// How many configurations the solver evaluated.
    pub fn configurations_considered(&self) -> u64 {
        self.configurations_considered
    }
}

/// How ties between equal-cost feasible configurations are broken.
///
/// The paper's §IV.B text orders ties by *lowest percentile, then fewest
/// regions*; its Figure 3c, however, shows MultiPub converging to a
/// **single** region for loose bounds even though several equal-cost
/// multi-region configurations have strictly lower percentiles (all US/EU
/// regions share the same $0.09/GB rate, so their direct-delivery
/// configurations tie exactly). [`TieBreaking::FewestRegions`] reproduces
/// the figures and avoids paying for idle servers; `LowestPercentile`
/// follows the text verbatim. See DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TieBreaking {
    /// Equal cost → fewest regions, then lowest percentile (default;
    /// matches the paper's observed behaviour in Fig. 3c).
    #[default]
    FewestRegions,
    /// Equal cost → lowest percentile, then fewest regions (the paper's
    /// §IV.B wording).
    LowestPercentile,
}

/// Relative tolerance when comparing two costs or percentiles.
///
/// Equal-cost configurations (e.g. any subset of the $0.09/GB US/EU
/// regions under direct delivery) compute the *same* total through
/// different float summation orders, which differ by a few ulps. Without a
/// tolerance those phantom differences would defeat the tie-breaking
/// rules; a 1e-9 relative band treats them as the ties they really are
/// while never confusing genuinely different prices.
const TIE_EPSILON: f64 = 1e-9;

/// Three-way comparison with a relative tolerance band.
fn approx_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    let scale = a.abs().max(b.abs());
    if (a - b).abs() <= scale * TIE_EPSILON {
        std::cmp::Ordering::Equal
    } else {
        a.total_cmp(&b)
    }
}

/// Lexicographic preference for feasible configurations: lowest cost
/// first, ties broken per [`TieBreaking`].
fn better_feasible(a: &ConfigEvaluation, b: &ConfigEvaluation, tie: TieBreaking) -> bool {
    let by_cost = approx_cmp(a.cost_dollars(), b.cost_dollars());
    let by_percentile = approx_cmp(a.percentile_ms(), b.percentile_ms());
    let by_regions = a.region_count().cmp(&b.region_count());
    let order = match tie {
        TieBreaking::FewestRegions => by_cost.then(by_regions).then(by_percentile),
        TieBreaking::LowestPercentile => by_cost.then(by_percentile).then(by_regions),
    };
    order == std::cmp::Ordering::Less
}

/// Lexicographic preference when nothing is feasible:
/// (percentile, cost, region count).
fn better_infeasible(a: &ConfigEvaluation, b: &ConfigEvaluation) -> bool {
    approx_cmp(a.percentile_ms(), b.percentile_ms())
        .then(approx_cmp(a.cost_dollars(), b.cost_dollars()))
        .then(a.region_count().cmp(&b.region_count()))
        == std::cmp::Ordering::Less
}

/// Brute-force optimal configuration search for a single topic.
///
/// See the crate-level docs for a complete example.
#[derive(Debug)]
pub struct Optimizer<'a> {
    evaluator: TopicEvaluator<'a>,
    allowed: AssignmentVector,
    policy: ModePolicy,
    tie_breaking: TieBreaking,
}

impl<'a> Optimizer<'a> {
    /// Creates an optimizer considering **all** regions under
    /// [`ModePolicy::Any`].
    ///
    /// # Errors
    ///
    /// * [`Error::EmptyWorkload`] when the workload has no publishers or no
    ///   subscribers.
    /// * [`Error::LatencyDimension`] when region set, inter-region matrix
    ///   and workload disagree on the region count.
    pub fn new(
        regions: &'a RegionSet,
        inter: &'a InterRegionMatrix,
        workload: &'a TopicWorkload,
    ) -> Result<Self, Error> {
        workload.ensure_non_empty()?;
        let evaluator = TopicEvaluator::new(regions, inter, workload)?;
        let allowed = AssignmentVector::all(regions.len())?;
        Ok(Optimizer {
            evaluator,
            allowed,
            policy: ModePolicy::Any,
            tie_breaking: TieBreaking::default(),
        })
    }

    /// Selects how equal-cost ties are broken (see [`TieBreaking`]).
    pub fn with_tie_breaking(mut self, tie_breaking: TieBreaking) -> Self {
        self.tie_breaking = tie_breaking;
        self
    }

    /// Restricts the delivery modes the solver may use (MultiPub-D /
    /// MultiPub-R of experiment 2).
    pub fn with_policy(mut self, policy: ModePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Restricts the search to a subset of regions — the hook used by the
    /// pruning heuristics of [`crate::scaling`] (§V.F).
    pub fn with_allowed_regions(mut self, allowed: AssignmentVector) -> Self {
        self.allowed = allowed;
        self
    }

    /// The underlying evaluator.
    pub fn evaluator(&self) -> &TopicEvaluator<'a> {
        &self.evaluator
    }

    /// The regions the solver may assign.
    pub fn allowed_regions(&self) -> AssignmentVector {
        self.allowed
    }

    /// The mode policy in force.
    pub fn policy(&self) -> ModePolicy {
        self.policy
    }

    /// Runs the exhaustive search and returns the optimal solution under
    /// the paper's selection rules.
    pub fn solve(&self, constraint: &DeliveryConstraint) -> Solution {
        let _solve_timer = multipub_obs::timer!(multipub_obs::metrics::CORE_SOLVE_MS);
        multipub_obs::counter!(multipub_obs::metrics::CORE_SOLVES_TOTAL).inc();
        let mut scratch = EvalScratch::default();
        let mut best_feasible: Option<ConfigEvaluation> = None;
        let mut best_any: Option<ConfigEvaluation> = None;
        let mut considered = 0u64;

        for config in enumerate_configurations(self.allowed, self.policy) {
            let eval = self.evaluator.evaluate_into(config, constraint, &mut scratch);
            considered += 1;
            if eval.is_feasible(constraint)
                && best_feasible
                    .as_ref()
                    .is_none_or(|b| better_feasible(&eval, b, self.tie_breaking))
            {
                best_feasible = Some(eval);
            }
            if best_any.as_ref().is_none_or(|b| better_infeasible(&eval, b)) {
                best_any = Some(eval);
            }
        }

        multipub_obs::counter!(multipub_obs::metrics::CORE_CONFIGS_EVALUATED_TOTAL).add(considered);
        match best_feasible {
            Some(evaluation) => {
                Solution { evaluation, feasible: true, configurations_considered: considered }
            }
            None => Solution {
                // lint:allow(panic) AssignmentVector is non-empty by construction, so the enumeration yields at least one configuration
                evaluation: best_any.expect("at least one configuration exists"),
                feasible: false,
                configurations_considered: considered,
            },
        }
    }

    /// The *One Region* baseline (paper §II-B1): the cheapest single region
    /// (ties broken by delivery-time percentile), **ignoring** the
    /// constraint when picking. The returned feasibility still records
    /// whether the pick happens to meet the constraint.
    pub fn solve_one_region(&self, constraint: &DeliveryConstraint) -> Solution {
        let mut scratch = EvalScratch::default();
        let mut best: Option<ConfigEvaluation> = None;
        let mut considered = 0u64;
        for region in self.allowed.iter() {
            let assignment = AssignmentVector::single(region, self.evaluator.regions().len())
                // lint:allow(panic) every region iterated out of `allowed` was bounds-checked against the same region count when `allowed` was built
                .expect("allowed regions are in bounds");
            let config = Configuration::new(assignment, DeliveryMode::Direct);
            let eval = self.evaluator.evaluate_into(config, constraint, &mut scratch);
            considered += 1;
            if best.as_ref().is_none_or(|b| better_feasible(&eval, b, self.tie_breaking)) {
                best = Some(eval);
            }
        }
        // lint:allow(panic) AssignmentVector is non-empty by construction, so the loop above ran at least once
        let evaluation = best.expect("allowed region set is non-empty");
        Solution {
            feasible: evaluation.is_feasible(constraint),
            evaluation,
            configurations_considered: considered,
        }
    }

    /// The *All Regions* baseline (paper §II-B2): every allowed region
    /// serves the topic, with the given delivery mode.
    pub fn solve_all_regions(
        &self,
        mode: DeliveryMode,
        constraint: &DeliveryConstraint,
    ) -> Solution {
        let config = Configuration::new(self.allowed, mode);
        let evaluation = self.evaluator.evaluate(config, constraint);
        Solution {
            feasible: evaluation.is_feasible(constraint),
            evaluation,
            configurations_considered: 1,
        }
    }
}

/// Amortized solving across a `max_T` sweep.
///
/// For a fixed ratio, a configuration's delivery-time percentile `D̃_C`
/// does **not** depend on the bound `max_T` — only the feasibility test
/// `D̃_C ≤ max_T` does (Eq. 6). A sweep over bounds (the x-axis of the
/// paper's Figures 3–5) therefore needs each configuration evaluated only
/// once; every sweep point is then a linear scan over the cached
/// evaluations. This turns an `O(points × 2^N × pairs log pairs)` sweep
/// into `O(2^N × pairs log pairs + points × 2^N)`.
///
/// ```
/// use multipub_core::prelude::*;
/// use multipub_core::optimizer::SweepSolver;
/// # fn main() -> Result<(), multipub_core::Error> {
/// # let regions = RegionSet::new(vec![
/// #     Region::new("a", "A", 0.02, 0.09),
/// #     Region::new("b", "B", 0.09, 0.14),
/// # ])?;
/// # let inter = InterRegionMatrix::from_rows(vec![vec![0.0, 40.0], vec![40.0, 0.0]])?;
/// # let mut workload = TopicWorkload::new(2);
/// # workload.add_publisher(Publisher::new(
/// #     ClientId(0), vec![5.0, 60.0], MessageBatch::uniform(10, 1024))?)?;
/// # workload.add_subscriber(Subscriber::new(ClientId(1), vec![60.0, 5.0])?)?;
/// let sweep = SweepSolver::new(&regions, &inter, &workload, 75.0)?;
/// for max_t in [100.0, 150.0, 200.0] {
///     let solution = sweep.solve_at(max_t)?;
///     println!("{max_t} ms -> {}", solution.configuration());
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SweepSolver {
    evaluations: Vec<ConfigEvaluation>,
    ratio_percent: f64,
    tie_breaking: TieBreaking,
}

impl SweepSolver {
    /// Evaluates every configuration once at the given delivery ratio.
    ///
    /// # Errors
    ///
    /// Same construction errors as [`Optimizer::new`], plus
    /// [`Error::InvalidRatio`] for a ratio outside `(0, 100]`.
    pub fn new(
        regions: &RegionSet,
        inter: &InterRegionMatrix,
        workload: &TopicWorkload,
        ratio_percent: f64,
    ) -> Result<Self, Error> {
        Self::with_options(regions, inter, workload, ratio_percent, ModePolicy::Any, None)
    }

    /// Like [`SweepSolver::new`] with a mode policy and region restriction.
    ///
    /// # Errors
    ///
    /// Same as [`SweepSolver::new`].
    pub fn with_options(
        regions: &RegionSet,
        inter: &InterRegionMatrix,
        workload: &TopicWorkload,
        ratio_percent: f64,
        policy: ModePolicy,
        allowed: Option<AssignmentVector>,
    ) -> Result<Self, Error> {
        workload.ensure_non_empty()?;
        let evaluator = TopicEvaluator::new(regions, inter, workload)?;
        // The percentile depends on the ratio only; any finite bound works.
        let probe = DeliveryConstraint::new(ratio_percent, 1.0)?;
        let allowed = match allowed {
            Some(mask) => mask,
            None => AssignmentVector::all(regions.len())?,
        };
        let mut scratch = EvalScratch::default();
        let evaluations = enumerate_configurations(allowed, policy)
            .map(|config| evaluator.evaluate_into(config, &probe, &mut scratch))
            .collect();
        Ok(SweepSolver { evaluations, ratio_percent, tie_breaking: TieBreaking::default() })
    }

    /// Selects how equal-cost ties are broken (see [`TieBreaking`]).
    pub fn with_tie_breaking(mut self, tie_breaking: TieBreaking) -> Self {
        self.tie_breaking = tie_breaking;
        self
    }

    /// Number of cached configuration evaluations.
    pub fn configurations(&self) -> usize {
        self.evaluations.len()
    }

    /// The ratio the percentiles were computed at.
    pub fn ratio_percent(&self) -> f64 {
        self.ratio_percent
    }

    /// Solves for one bound, exactly like [`Optimizer::solve`] with
    /// `<ratio, max_t_ms>`, but in one linear scan.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidBound`] for a non-positive or non-finite
    /// bound.
    pub fn solve_at(&self, max_t_ms: f64) -> Result<Solution, Error> {
        let constraint = DeliveryConstraint::new(self.ratio_percent, max_t_ms)?;
        let mut best_feasible: Option<&ConfigEvaluation> = None;
        let mut best_any: Option<&ConfigEvaluation> = None;
        for eval in &self.evaluations {
            if eval.is_feasible(&constraint)
                && best_feasible.is_none_or(|b| better_feasible(eval, b, self.tie_breaking))
            {
                best_feasible = Some(eval);
            }
            if best_any.is_none_or(|b| better_infeasible(eval, b)) {
                best_any = Some(eval);
            }
        }
        let (evaluation, feasible) = match best_feasible {
            Some(eval) => (*eval, true),
            // lint:allow(panic) the cached evaluations cover a non-empty AssignmentVector enumeration, so the list is never empty
            None => (*best_any.expect("at least one configuration exists"), false),
        };
        Ok(Solution {
            evaluation,
            feasible,
            configurations_considered: self.evaluations.len() as u64,
        })
    }
}

/// A topic to be solved by [`solve_topics`]: its workload snapshot and its
/// delivery constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicProblem {
    /// The observation-interval snapshot for the topic.
    pub workload: TopicWorkload,
    /// The topic's delivery constraint `<ratio_T, max_T>`.
    pub constraint: DeliveryConstraint,
}

/// Solves many topics in parallel. Topics are independent optimization
/// problems (§IV.C), so this is an embarrassingly parallel fan-out over
/// scoped threads (design decision **D4**).
///
/// Results are returned in input order.
///
/// # Errors
///
/// Returns the first construction error (empty workload, dimension
/// mismatch) encountered; all topics are validated before any is solved.
pub fn solve_topics(
    regions: &RegionSet,
    inter: &InterRegionMatrix,
    topics: &[TopicProblem],
) -> Result<Vec<Solution>, Error> {
    // Build (and thereby validate) every optimizer up front so the
    // parallel phase below cannot fail: `Optimizer::new` performs the
    // empty-workload and dimension checks and surfaces them as typed
    // errors before any thread is spawned.
    let optimizers = topics
        .iter()
        .map(|topic| Optimizer::new(regions, inter, &topic.workload))
        .collect::<Result<Vec<_>, Error>>()?;
    if optimizers.is_empty() {
        return Ok(Vec::new());
    }
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get()).min(topics.len());
    let chunk_len = topics.len().div_ceil(threads);
    let mut results = Vec::with_capacity(topics.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = optimizers
            .chunks(chunk_len)
            .zip(topics.chunks(chunk_len))
            .map(|(optimizer_chunk, topic_chunk)| {
                scope.spawn(move || {
                    optimizer_chunk
                        .iter()
                        .zip(topic_chunk)
                        .map(|(optimizer, topic)| optimizer.solve(&topic.constraint))
                        .collect::<Vec<Solution>>()
                })
            })
            .collect();
        for handle in handles {
            // lint:allow(panic) a solver-thread panic is already a bug; re-raising it on the caller beats silently dropping that chunk's solutions
            results.extend(handle.join().expect("solver thread panicked"));
        }
    });
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClientId, RegionId};
    use crate::region::Region;
    use crate::workload::{MessageBatch, Publisher, Subscriber};

    /// Two regions: region 0 cheap, region 1 fast-but-expensive for the
    /// subscriber population.
    fn setup() -> (RegionSet, InterRegionMatrix) {
        let regions = RegionSet::new(vec![
            Region::new("cheap", "A", 0.02, 0.09),
            Region::new("pricey", "B", 0.16, 0.25),
        ])
        .unwrap();
        let inter = InterRegionMatrix::from_rows(vec![vec![0.0, 50.0], vec![50.0, 0.0]]).unwrap();
        (regions, inter)
    }

    /// Publisher and subscribers all near the expensive region 1:
    /// serving locally is fast (10 ms) but costly; serving from region 0 is
    /// slow (140 ms) but cheap.
    fn local_expensive_workload() -> TopicWorkload {
        let mut w = TopicWorkload::new(2);
        w.add_publisher(
            Publisher::new(ClientId(0), vec![70.0, 5.0], MessageBatch::uniform(10, 1000)).unwrap(),
        )
        .unwrap();
        for i in 0..4u64 {
            w.add_subscriber(Subscriber::new(ClientId(1 + i), vec![70.0, 5.0]).unwrap()).unwrap();
        }
        w
    }

    #[test]
    fn tight_bound_selects_fast_expensive_region() {
        let (regions, inter) = setup();
        let w = local_expensive_workload();
        let opt = Optimizer::new(&regions, &inter, &w).unwrap();
        let constraint = DeliveryConstraint::new(95.0, 20.0).unwrap();
        let solution = opt.solve(&constraint);
        assert!(solution.is_feasible());
        assert!(solution.configuration().assignment().contains(RegionId(1)));
        assert_eq!(solution.configuration().region_count(), 1);
    }

    #[test]
    fn loose_bound_selects_cheap_remote_region() {
        let (regions, inter) = setup();
        let w = local_expensive_workload();
        let opt = Optimizer::new(&regions, &inter, &w).unwrap();
        let constraint = DeliveryConstraint::new(95.0, 200.0).unwrap();
        let solution = opt.solve(&constraint);
        assert!(solution.is_feasible());
        // Serving everyone from the cheap region: 70+70 = 140 ms ≤ 200.
        assert_eq!(
            solution.configuration().assignment(),
            AssignmentVector::single(RegionId(0), 2).unwrap()
        );
    }

    #[test]
    fn impossible_bound_falls_back_to_latency_minimizer() {
        let (regions, inter) = setup();
        let w = local_expensive_workload();
        let opt = Optimizer::new(&regions, &inter, &w).unwrap();
        let constraint = DeliveryConstraint::new(95.0, 1.0).unwrap();
        let solution = opt.solve(&constraint);
        assert!(!solution.is_feasible());
        // Fastest possible: local region 1 at 10 ms.
        assert_eq!(solution.evaluation().percentile_ms(), 10.0);
    }

    #[test]
    fn considered_count_matches_formula() {
        let (regions, inter) = setup();
        let w = local_expensive_workload();
        let opt = Optimizer::new(&regions, &inter, &w).unwrap();
        let constraint = DeliveryConstraint::new(95.0, 100.0).unwrap();
        let solution = opt.solve(&constraint);
        assert_eq!(solution.configurations_considered(), crate::assignment::configuration_count(2));
    }

    #[test]
    fn optimal_cost_is_minimal_over_feasible_configs() {
        let (regions, inter) = setup();
        let w = local_expensive_workload();
        let opt = Optimizer::new(&regions, &inter, &w).unwrap();
        let constraint = DeliveryConstraint::new(95.0, 150.0).unwrap();
        let solution = opt.solve(&constraint);
        assert!(solution.is_feasible());
        // Exhaustively verify optimality.
        for config in enumerate_configurations(AssignmentVector::all(2).unwrap(), ModePolicy::Any) {
            let eval = opt.evaluator().evaluate(config, &constraint);
            if eval.is_feasible(&constraint) {
                assert!(eval.cost_dollars() >= solution.evaluation().cost_dollars());
            }
        }
    }

    #[test]
    fn one_region_baseline_picks_cheapest() {
        let (regions, inter) = setup();
        let w = local_expensive_workload();
        let opt = Optimizer::new(&regions, &inter, &w).unwrap();
        let constraint = DeliveryConstraint::new(95.0, 20.0).unwrap();
        let baseline = opt.solve_one_region(&constraint);
        // Cheapest single region is region 0 even though it violates 20 ms.
        assert_eq!(
            baseline.configuration().assignment(),
            AssignmentVector::single(RegionId(0), 2).unwrap()
        );
        assert!(!baseline.is_feasible());
    }

    #[test]
    fn all_regions_baseline_uses_every_region() {
        let (regions, inter) = setup();
        let w = local_expensive_workload();
        let opt = Optimizer::new(&regions, &inter, &w).unwrap();
        let constraint = DeliveryConstraint::new(95.0, 20.0).unwrap();
        let baseline = opt.solve_all_regions(DeliveryMode::Routed, &constraint);
        assert_eq!(baseline.configuration().region_count(), 2);
        assert_eq!(baseline.configuration().mode(), DeliveryMode::Routed);
    }

    #[test]
    fn policy_restriction_is_respected() {
        let (regions, inter) = setup();
        let w = local_expensive_workload();
        let constraint = DeliveryConstraint::new(95.0, 100.0).unwrap();
        let direct_only = Optimizer::new(&regions, &inter, &w)
            .unwrap()
            .with_policy(ModePolicy::DirectOnly)
            .solve(&constraint);
        assert_eq!(direct_only.configuration().mode(), DeliveryMode::Direct);
    }

    #[test]
    fn allowed_region_restriction_is_respected() {
        let (regions, inter) = setup();
        let w = local_expensive_workload();
        let constraint = DeliveryConstraint::new(95.0, 10.0).unwrap();
        let only_cheap = AssignmentVector::single(RegionId(0), 2).unwrap();
        let solution = Optimizer::new(&regions, &inter, &w)
            .unwrap()
            .with_allowed_regions(only_cheap)
            .solve(&constraint);
        assert!(solution.configuration().assignment().is_subset_of(only_cheap));
        assert!(!solution.is_feasible());
    }

    /// Two regions with identical prices and a workload where both (and
    /// their union, under direct delivery) cost exactly the same.
    #[test]
    fn tie_breaking_modes_differ_on_equal_cost_configs() {
        let regions = RegionSet::new(vec![
            Region::new("r0", "A", 0.02, 0.09),
            Region::new("r1", "B", 0.02, 0.09),
        ])
        .unwrap();
        let inter = InterRegionMatrix::from_rows(vec![vec![0.0, 50.0], vec![50.0, 0.0]]).unwrap();
        let mut w = TopicWorkload::new(2);
        w.add_publisher(
            Publisher::new(ClientId(0), vec![10.0, 30.0], MessageBatch::uniform(10, 1000)).unwrap(),
        )
        .unwrap();
        w.add_subscriber(Subscriber::new(ClientId(1), vec![10.0, 60.0]).unwrap()).unwrap();
        w.add_subscriber(Subscriber::new(ClientId(2), vec![60.0, 10.0]).unwrap()).unwrap();
        let constraint = DeliveryConstraint::new(100.0, 1000.0).unwrap();

        // Default: fewest regions wins the cost tie.
        let fewest = Optimizer::new(&regions, &inter, &w).unwrap().solve(&constraint);
        assert_eq!(fewest.configuration().region_count(), 1);

        // Paper-text ordering: the lower-percentile two-region config wins.
        let fastest = Optimizer::new(&regions, &inter, &w)
            .unwrap()
            .with_tie_breaking(TieBreaking::LowestPercentile)
            .solve(&constraint);
        assert_eq!(fastest.configuration().region_count(), 2);
        assert!(fastest.evaluation().percentile_ms() < fewest.evaluation().percentile_ms());
        assert_eq!(fastest.evaluation().cost_dollars(), fewest.evaluation().cost_dollars());
    }

    #[test]
    fn empty_workload_rejected() {
        let (regions, inter) = setup();
        let w = TopicWorkload::new(2);
        assert!(matches!(Optimizer::new(&regions, &inter, &w), Err(Error::EmptyWorkload)));
    }

    #[test]
    fn solve_topics_parallel_matches_sequential() {
        let (regions, inter) = setup();
        let topics: Vec<TopicProblem> = (0..8)
            .map(|i| TopicProblem {
                workload: local_expensive_workload(),
                constraint: DeliveryConstraint::new(95.0, 20.0 + 30.0 * i as f64).unwrap(),
            })
            .collect();
        let parallel = solve_topics(&regions, &inter, &topics).unwrap();
        for (topic, solution) in topics.iter().zip(&parallel) {
            let sequential =
                Optimizer::new(&regions, &inter, &topic.workload).unwrap().solve(&topic.constraint);
            assert_eq!(&sequential, solution);
        }
    }

    #[test]
    fn sweep_solver_matches_full_solves_point_by_point() {
        let (regions, inter) = setup();
        let w = local_expensive_workload();
        let sweep = SweepSolver::new(&regions, &inter, &w, 95.0).unwrap();
        assert_eq!(sweep.configurations() as u64, crate::assignment::configuration_count(2));
        let optimizer = Optimizer::new(&regions, &inter, &w).unwrap();
        for max_t in [1.0, 15.0, 50.0, 140.0, 200.0, 500.0] {
            let constraint = DeliveryConstraint::new(95.0, max_t).unwrap();
            let full = optimizer.solve(&constraint);
            let fast = sweep.solve_at(max_t).unwrap();
            assert_eq!(fast.configuration(), full.configuration(), "max_t {max_t}");
            assert_eq!(fast.is_feasible(), full.is_feasible(), "max_t {max_t}");
            assert_eq!(
                fast.evaluation().percentile_ms(),
                full.evaluation().percentile_ms(),
                "max_t {max_t}"
            );
            assert_eq!(
                fast.evaluation().cost_dollars(),
                full.evaluation().cost_dollars(),
                "max_t {max_t}"
            );
        }
    }

    #[test]
    fn sweep_solver_respects_policy_and_allowed_regions() {
        let (regions, inter) = setup();
        let w = local_expensive_workload();
        let only_cheap = AssignmentVector::single(RegionId(0), 2).unwrap();
        let sweep = SweepSolver::with_options(
            &regions,
            &inter,
            &w,
            95.0,
            ModePolicy::DirectOnly,
            Some(only_cheap),
        )
        .unwrap();
        assert_eq!(sweep.configurations(), 1);
        let solution = sweep.solve_at(10.0).unwrap();
        assert!(solution.configuration().assignment().is_subset_of(only_cheap));
        assert!(!solution.is_feasible());
    }

    #[test]
    fn sweep_solver_rejects_bad_inputs() {
        let (regions, inter) = setup();
        let w = local_expensive_workload();
        assert!(SweepSolver::new(&regions, &inter, &w, 0.0).is_err());
        let sweep = SweepSolver::new(&regions, &inter, &w, 95.0).unwrap();
        assert!(sweep.solve_at(-1.0).is_err());
        assert!(SweepSolver::new(&regions, &inter, &TopicWorkload::new(2), 95.0).is_err());
    }

    #[test]
    fn solve_topics_on_empty_input_returns_empty() {
        // Regression: the chunked fan-out used to compute a chunk size of
        // zero for an empty topic list and panic inside `chunks(0)`.
        let (regions, inter) = setup();
        assert_eq!(solve_topics(&regions, &inter, &[]).unwrap(), Vec::new());
    }

    #[test]
    fn solve_topics_validates_everything_first() {
        let (regions, inter) = setup();
        let topics = vec![TopicProblem {
            workload: TopicWorkload::new(2),
            constraint: DeliveryConstraint::new(95.0, 100.0).unwrap(),
        }];
        assert!(solve_topics(&regions, &inter, &topics).is_err());
    }
}
