//! Handling clients experiencing high latencies (paper §IV.D).
//!
//! The delivery constraint protects a *percentile* of deliveries, so a
//! client whose connection degrades can end up with **all** of its
//! deliveries above `max_T` without making the chosen configuration
//! infeasible. The controller periodically scans for such *stragglers* and
//! checks whether force-adding a region to the topic's assignment would
//! meet — or significantly improve — their delivery times. Forced regions
//! are tracked and retracted once no straggler needs them anymore.

// lint:allow-file(indexing) mitigation scan shares the evaluator's invariants: subscriber indices are enumerated from the workload itself and region ids are bounded by the dimension checks at `TopicEvaluator::new`

use crate::assignment::Configuration;
use crate::constraint::DeliveryConstraint;
use crate::evaluate::TopicEvaluator;
use crate::ids::RegionId;
use serde::{Deserialize, Serialize};

/// Tuning knobs for the straggler scan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MitigationPolicy {
    /// Minimum relative improvement of a straggler's best delivery time for
    /// a forced region to be worth adding even when the bound still cannot
    /// be met (e.g. `0.2` = 20 % faster). The paper asks for the needs to
    /// be "met (if possible), or improved significantly".
    pub min_improvement: f64,
}

impl Default for MitigationPolicy {
    fn default() -> Self {
        MitigationPolicy { min_improvement: 0.2 }
    }
}

/// A straggler found by [`find_stragglers`]: a subscriber whose *every*
/// delivery in the interval exceeded the bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Straggler {
    /// Index of the subscriber within the workload's subscriber list.
    pub subscriber_index: usize,
    /// The straggler's best (fastest) delivery time under the current
    /// configuration, in milliseconds.
    pub best_delivery_ms: f64,
}

/// The outcome of one mitigation round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MitigationOutcome {
    /// Regions force-added this round (possibly empty).
    pub added: Vec<RegionId>,
    /// Stragglers that remain unhelped even after additions.
    pub unresolved: Vec<Straggler>,
    /// The configuration after applying the additions.
    pub configuration: Configuration,
}

/// Fastest delivery a subscriber can observe under `configuration`,
/// across all publishers with traffic. `None` when no publisher sent
/// anything.
fn best_delivery_for_subscriber(
    evaluator: &TopicEvaluator<'_>,
    subscriber_index: usize,
    configuration: Configuration,
) -> Option<f64> {
    use crate::assignment::DeliveryMode;
    use crate::delivery::closest_region;
    let workload = evaluator.workload();
    let sub = &workload.subscribers()[subscriber_index];
    let assignment = configuration.assignment();
    let sub_region = closest_region(sub.latencies(), assignment);
    let sub_lat = sub.latencies()[sub_region.index()];
    let mut best: Option<f64> = None;
    for publisher in workload.publishers() {
        if publisher.batch().count() == 0 {
            continue;
        }
        let time = match configuration.mode() {
            DeliveryMode::Direct => publisher.latencies()[sub_region.index()] + sub_lat,
            DeliveryMode::Routed => {
                let home = closest_region(publisher.latencies(), assignment);
                publisher.latencies()[home.index()]
                    + evaluator.inter().latency(home, sub_region)
                    + sub_lat
            }
        };
        best = Some(best.map_or(time, |b: f64| b.min(time)));
    }
    best
}

/// Scans for subscribers whose **best** delivery time under
/// `configuration` already exceeds the bound — every message they receive
/// is late, yet the percentile constraint cannot see them.
pub fn find_stragglers(
    evaluator: &TopicEvaluator<'_>,
    configuration: Configuration,
    constraint: &DeliveryConstraint,
) -> Vec<Straggler> {
    let mut out = Vec::new();
    for index in 0..evaluator.workload().subscriber_count() {
        if let Some(best) = best_delivery_for_subscriber(evaluator, index, configuration) {
            if best > constraint.max_ms() {
                out.push(Straggler { subscriber_index: index, best_delivery_ms: best });
            }
        }
    }
    out
}

/// One mitigation round (§IV.D): for every straggler, tries force-adding
/// each unused region and keeps the addition that best serves the
/// straggler, provided it meets the bound or improves the straggler's best
/// delivery by at least [`MitigationPolicy::min_improvement`].
///
/// Returns the (possibly unchanged) configuration, the regions added, and
/// any stragglers that could not be helped.
pub fn mitigate(
    evaluator: &TopicEvaluator<'_>,
    configuration: Configuration,
    constraint: &DeliveryConstraint,
    policy: &MitigationPolicy,
) -> MitigationOutcome {
    let n_regions = evaluator.regions().len();
    let mut current = configuration;
    let mut added = Vec::new();
    let mut unresolved = Vec::new();

    for straggler in find_stragglers(evaluator, current, constraint) {
        // Re-check under the configuration as amended so far.
        let Some(best_now) =
            best_delivery_for_subscriber(evaluator, straggler.subscriber_index, current)
        else {
            continue;
        };
        if best_now <= constraint.max_ms() {
            continue; // an earlier addition already fixed this one
        }
        let mut best_candidate: Option<(f64, RegionId)> = None;
        for idx in 0..n_regions {
            let region = RegionId(idx as u8);
            if current.assignment().contains(region) {
                continue;
            }
            let trial = Configuration::new(current.assignment().with(region), current.mode());
            let Some(best_with) =
                best_delivery_for_subscriber(evaluator, straggler.subscriber_index, trial)
            else {
                continue;
            };
            let meets = best_with <= constraint.max_ms();
            let improves = best_with <= best_now * (1.0 - policy.min_improvement);
            if (meets || improves) && best_candidate.is_none_or(|(b, _)| best_with < b) {
                best_candidate = Some((best_with, region));
            }
        }
        match best_candidate {
            Some((_, region)) => {
                current = Configuration::new(current.assignment().with(region), current.mode());
                added.push(region);
            }
            None => unresolved.push(straggler),
        }
    }

    MitigationOutcome { added, unresolved, configuration: current }
}

/// Retraction pass: removes forced regions that no longer help any
/// straggler — i.e. dropping the region leaves every subscriber that was
/// within the bound still within the bound. Returns the regions retained.
pub fn retract_unneeded(
    evaluator: &TopicEvaluator<'_>,
    base: Configuration,
    forced: &[RegionId],
    constraint: &DeliveryConstraint,
) -> Vec<RegionId> {
    let mut retained: Vec<RegionId> = forced.to_vec();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..retained.len() {
            let candidate = retained[i];
            // Configuration with every retained forced region except `candidate`.
            let mut assignment = base.assignment();
            for &r in &retained {
                if r != candidate {
                    assignment = assignment.with(r);
                }
            }
            let without = Configuration::new(assignment, base.mode());
            let with = Configuration::new(assignment.with(candidate), base.mode());
            let needed = (0..evaluator.workload().subscriber_count()).any(|idx| {
                let ok_with = best_delivery_for_subscriber(evaluator, idx, with)
                    .is_some_and(|b| b <= constraint.max_ms());
                let ok_without = best_delivery_for_subscriber(evaluator, idx, without)
                    .is_some_and(|b| b <= constraint.max_ms());
                ok_with && !ok_without
            });
            if !needed {
                retained.remove(i);
                changed = true;
                break;
            }
        }
    }
    retained
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{AssignmentVector, DeliveryMode};
    use crate::constraint::DeliveryConstraint;
    use crate::ids::ClientId;
    use crate::latency::InterRegionMatrix;
    use crate::region::{Region, RegionSet};
    use crate::workload::{MessageBatch, Publisher, Subscriber, TopicWorkload};

    fn regions2() -> (RegionSet, InterRegionMatrix) {
        (
            RegionSet::new(vec![
                Region::new("r0", "A", 0.02, 0.09),
                Region::new("r1", "B", 0.09, 0.14),
            ])
            .unwrap(),
            InterRegionMatrix::from_rows(vec![vec![0.0, 30.0], vec![30.0, 0.0]]).unwrap(),
        )
    }

    /// One publisher near R0; one healthy subscriber near R0; one straggler
    /// near R1 (far from R0).
    fn straggler_workload() -> TopicWorkload {
        let mut w = TopicWorkload::new(2);
        w.add_publisher(
            Publisher::new(ClientId(0), vec![5.0, 60.0], MessageBatch::uniform(10, 100)).unwrap(),
        )
        .unwrap();
        w.add_subscriber(Subscriber::new(ClientId(1), vec![5.0, 60.0]).unwrap()).unwrap();
        w.add_subscriber(Subscriber::new(ClientId(2), vec![90.0, 4.0]).unwrap()).unwrap();
        w
    }

    #[test]
    fn detects_straggler_under_single_region() {
        let (regions, inter) = regions2();
        let w = straggler_workload();
        let eval = TopicEvaluator::new(&regions, &inter, &w).unwrap();
        let config = Configuration::new(
            AssignmentVector::single(RegionId(0), 2).unwrap(),
            DeliveryMode::Direct,
        );
        let constraint = DeliveryConstraint::new(75.0, 50.0).unwrap();
        let stragglers = find_stragglers(&eval, config, &constraint);
        assert_eq!(stragglers.len(), 1);
        assert_eq!(stragglers[0].subscriber_index, 1);
        // 5 (pub→R0) + 90 (R0→sub) = 95 ms.
        assert_eq!(stragglers[0].best_delivery_ms, 95.0);
    }

    #[test]
    fn mitigation_adds_the_helpful_region() {
        let (regions, inter) = regions2();
        let w = straggler_workload();
        let eval = TopicEvaluator::new(&regions, &inter, &w).unwrap();
        let config = Configuration::new(
            AssignmentVector::single(RegionId(0), 2).unwrap(),
            DeliveryMode::Direct,
        );
        let constraint = DeliveryConstraint::new(75.0, 70.0).unwrap();
        let outcome = mitigate(&eval, config, &constraint, &MitigationPolicy::default());
        assert_eq!(outcome.added, vec![RegionId(1)]);
        assert!(outcome.unresolved.is_empty());
        // Straggler now served by R1: 60 (pub→R1) + 4 = 64 ≤ 70.
        assert!(outcome.configuration.assignment().contains(RegionId(1)));
    }

    #[test]
    fn mitigation_reports_unhelpable_stragglers() {
        let (regions, inter) = regions2();
        let mut w = straggler_workload();
        // Replace the straggler with one that is far from everything.
        let far = Subscriber::new(ClientId(9), vec![500.0, 500.0]).unwrap();
        w.add_subscriber(far).unwrap();
        let eval = TopicEvaluator::new(&regions, &inter, &w).unwrap();
        let config = Configuration::new(AssignmentVector::all(2).unwrap(), DeliveryMode::Direct);
        let constraint = DeliveryConstraint::new(75.0, 70.0).unwrap();
        let outcome = mitigate(&eval, config, &constraint, &MitigationPolicy::default());
        // All regions already assigned: nothing to add. The original
        // "straggler" is now served locally (64 ms ≤ 70), so only the far
        // subscriber remains unresolved.
        assert!(outcome.added.is_empty());
        assert_eq!(outcome.unresolved.len(), 1);
        assert_eq!(outcome.unresolved[0].best_delivery_ms, 505.0);
    }

    #[test]
    fn no_stragglers_no_change() {
        let (regions, inter) = regions2();
        let w = straggler_workload();
        let eval = TopicEvaluator::new(&regions, &inter, &w).unwrap();
        let config = Configuration::new(AssignmentVector::all(2).unwrap(), DeliveryMode::Direct);
        let constraint = DeliveryConstraint::new(75.0, 200.0).unwrap();
        let outcome = mitigate(&eval, config, &constraint, &MitigationPolicy::default());
        assert!(outcome.added.is_empty());
        assert!(outcome.unresolved.is_empty());
        assert_eq!(outcome.configuration, config);
    }

    #[test]
    fn retraction_drops_region_once_unneeded() {
        let (regions, inter) = regions2();
        // Straggler recovered: now close to R0 as well.
        let mut w = TopicWorkload::new(2);
        w.add_publisher(
            Publisher::new(ClientId(0), vec![5.0, 60.0], MessageBatch::uniform(10, 100)).unwrap(),
        )
        .unwrap();
        w.add_subscriber(Subscriber::new(ClientId(1), vec![5.0, 60.0]).unwrap()).unwrap();
        w.add_subscriber(Subscriber::new(ClientId(2), vec![8.0, 4.0]).unwrap()).unwrap();
        let eval = TopicEvaluator::new(&regions, &inter, &w).unwrap();
        let base = Configuration::new(
            AssignmentVector::single(RegionId(0), 2).unwrap(),
            DeliveryMode::Direct,
        );
        let constraint = DeliveryConstraint::new(75.0, 70.0).unwrap();
        let retained = retract_unneeded(&eval, base, &[RegionId(1)], &constraint);
        assert!(retained.is_empty());
    }

    #[test]
    fn retraction_keeps_needed_region() {
        let (regions, inter) = regions2();
        let w = straggler_workload();
        let eval = TopicEvaluator::new(&regions, &inter, &w).unwrap();
        let base = Configuration::new(
            AssignmentVector::single(RegionId(0), 2).unwrap(),
            DeliveryMode::Direct,
        );
        let constraint = DeliveryConstraint::new(75.0, 70.0).unwrap();
        let retained = retract_unneeded(&eval, base, &[RegionId(1)], &constraint);
        assert_eq!(retained, vec![RegionId(1)]);
    }
}
