//! Delivery-time equations (paper Eq. 1–2) and the delivery-time
//! percentile `D̃_C` (Eq. 5–6).
//!
//! For a publication from publisher `P` to subscriber `S`:
//!
//! * **Direct** (Eq. 1): `D = L[P][R^S] + L[R^S][S]` — the publisher sends
//!   straight to the subscriber's region.
//! * **Routed** (Eq. 2): `D = L[P][R^P] + L^R[R^P][R^S] + L[R^S][S]` — the
//!   publisher sends to its own closest region, which forwards across the
//!   inter-cloud link.
//!
//! The constraint check needs the `n^T`-th smallest delivery time out of
//! all `N_S × Σ N_M` deliveries of the interval. Instead of materializing
//! that list (the paper's approach), we compute the same value from the
//! `N_P × N_S` pair latencies, each weighted by
//! `N_M^P × weight(S)` — design decision **D1** in DESIGN.md. A
//! materializing reference implementation is kept for differential testing.

// lint:allow-file(indexing) Eq. 1-2 hot-path kernel: region indices come from AssignmentVector/closest_region, both bounded by the same region count as every latency vector (checked at TopicEvaluator construction)

use crate::assignment::AssignmentVector;
use crate::ids::RegionId;
use crate::latency::InterRegionMatrix;

/// The closest (latency-wise) region to a client among the regions of an
/// assignment; ties broken by lowest region id.
///
/// This is `R^S` / `R^P` of the paper (§III.C).
///
/// # Panics
///
/// Panics if `latencies` is narrower than the highest region in the
/// assignment.
///
/// ```
/// use multipub_core::delivery::closest_region;
/// use multipub_core::assignment::AssignmentVector;
/// use multipub_core::ids::RegionId;
/// # fn main() -> Result<(), multipub_core::Error> {
/// let assignment = AssignmentVector::from_mask(0b110, 3)?;
/// // Region 0 is closest overall but not assigned.
/// assert_eq!(closest_region(&[1.0, 9.0, 4.0], assignment), RegionId(2));
/// # Ok(())
/// # }
/// ```
pub fn closest_region(latencies: &[f64], assignment: AssignmentVector) -> RegionId {
    let mut best: Option<(f64, RegionId)> = None;
    for region in assignment.iter() {
        let lat = latencies[region.index()];
        match best {
            Some((b, _)) if b <= lat => {}
            _ => best = Some((lat, region)),
        }
    }
    // lint:allow(panic) AssignmentVector rejects empty masks at construction, so the loop above always sets `best`
    best.expect("assignment vectors are non-empty by construction").1
}

/// Direct delivery time (Eq. 1): publisher → subscriber's region →
/// subscriber.
pub fn direct_delivery_ms(
    publisher_latencies: &[f64],
    subscriber_latencies: &[f64],
    subscriber_region: RegionId,
) -> f64 {
    publisher_latencies[subscriber_region.index()] + subscriber_latencies[subscriber_region.index()]
}

/// Routed delivery time (Eq. 2): publisher → its own region → subscriber's
/// region → subscriber. When `publisher_region == subscriber_region` the
/// inter-region hop is zero and this reduces to Eq. 1.
pub fn routed_delivery_ms(
    publisher_latencies: &[f64],
    subscriber_latencies: &[f64],
    publisher_region: RegionId,
    subscriber_region: RegionId,
    inter: &InterRegionMatrix,
) -> f64 {
    publisher_latencies[publisher_region.index()]
        + inter.latency(publisher_region, subscriber_region)
        + subscriber_latencies[subscriber_region.index()]
}

/// One delivery-time sample with a multiplicity: `weight` deliveries all
/// experienced `time_ms`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedSample {
    /// Delivery time in milliseconds.
    pub time_ms: f64,
    /// How many (message, subscriber) deliveries share this time.
    pub weight: u64,
}

/// The `rank`-th smallest delivery time (1-based) of a weighted sample
/// multiset — the delivery-time percentile `D̃_C` of Eq. 6.
///
/// `samples` is reordered in place. Returns 0.0 when `rank` is 0 (an empty
/// interval is trivially feasible) and the overall maximum when `rank`
/// exceeds the total weight.
pub fn weighted_percentile(samples: &mut [WeightedSample], rank: u64) -> f64 {
    if rank == 0 || samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable_by(|a, b| a.time_ms.total_cmp(&b.time_ms));
    let mut cumulative = 0u64;
    for sample in samples.iter() {
        cumulative += sample.weight;
        if cumulative >= rank {
            return sample.time_ms;
        }
    }
    // lint:allow(panic) rank <= total weight, so the cumulative scan only falls through when the last sample was reached
    samples.last().expect("samples non-empty").time_ms
}

/// Reference implementation of the percentile that materializes every
/// delivery time, exactly as the paper describes building `𝔻_C`
/// (§IV.A). Quadratic in memory; used only for differential testing and as
/// an ablation bench baseline.
pub fn materialized_percentile(samples: &[WeightedSample], rank: u64) -> f64 {
    if rank == 0 {
        return 0.0;
    }
    let mut all: Vec<f64> = Vec::new();
    for sample in samples {
        for _ in 0..sample.weight {
            all.push(sample.time_ms);
        }
    }
    if all.is_empty() {
        return 0.0;
    }
    all.sort_unstable_by(f64::total_cmp);
    let idx = (rank as usize).min(all.len()) - 1;
    all[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::AssignmentVector;

    fn sample_inter() -> InterRegionMatrix {
        InterRegionMatrix::from_rows(vec![
            vec![0.0, 40.0, 90.0],
            vec![40.0, 0.0, 120.0],
            vec![90.0, 120.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn closest_region_ignores_unassigned() {
        let a = AssignmentVector::from_mask(0b100, 3).unwrap();
        assert_eq!(closest_region(&[0.0, 1.0, 50.0], a), RegionId(2));
    }

    #[test]
    fn closest_region_breaks_ties_by_id() {
        let a = AssignmentVector::from_mask(0b111, 3).unwrap();
        assert_eq!(closest_region(&[5.0, 5.0, 5.0], a), RegionId(0));
    }

    #[test]
    fn direct_matches_equation_1() {
        // L[P][R^S] = 30, L[R^S][S] = 12.
        let d = direct_delivery_ms(&[10.0, 30.0], &[40.0, 12.0], RegionId(1));
        assert_eq!(d, 42.0);
    }

    #[test]
    fn routed_matches_equation_2() {
        let inter = sample_inter();
        // L[P][R^P]=10 + L^R[0][2]=90 + L[R^S][S]=7.
        let d = routed_delivery_ms(
            &[10.0, 50.0, 80.0],
            &[99.0, 99.0, 7.0],
            RegionId(0),
            RegionId(2),
            &inter,
        );
        assert_eq!(d, 107.0);
    }

    #[test]
    fn routed_same_region_reduces_to_direct() {
        let inter = sample_inter();
        let pubs = [10.0, 50.0, 80.0];
        let subs = [9.0, 99.0, 7.0];
        let routed = routed_delivery_ms(&pubs, &subs, RegionId(0), RegionId(0), &inter);
        let direct = direct_delivery_ms(&pubs, &subs, RegionId(0));
        assert_eq!(routed, direct);
    }

    #[test]
    fn weighted_percentile_basic() {
        let mut s = vec![
            WeightedSample { time_ms: 10.0, weight: 3 },
            WeightedSample { time_ms: 20.0, weight: 2 },
            WeightedSample { time_ms: 30.0, weight: 1 },
        ];
        // Sorted multiset: 10,10,10,20,20,30. Rank 4 → 20.
        assert_eq!(weighted_percentile(&mut s, 4), 20.0);
        assert_eq!(weighted_percentile(&mut s, 1), 10.0);
        assert_eq!(weighted_percentile(&mut s, 6), 30.0);
    }

    #[test]
    fn weighted_percentile_rank_overflow_returns_max() {
        let mut s = vec![WeightedSample { time_ms: 5.0, weight: 2 }];
        assert_eq!(weighted_percentile(&mut s, 100), 5.0);
    }

    #[test]
    fn weighted_percentile_rank_zero() {
        let mut s = vec![WeightedSample { time_ms: 5.0, weight: 2 }];
        assert_eq!(weighted_percentile(&mut s, 0), 0.0);
        let mut empty: Vec<WeightedSample> = vec![];
        assert_eq!(weighted_percentile(&mut empty, 3), 0.0);
    }

    #[test]
    fn weighted_matches_materialized() {
        let samples = vec![
            WeightedSample { time_ms: 42.0, weight: 5 },
            WeightedSample { time_ms: 13.0, weight: 1 },
            WeightedSample { time_ms: 99.0, weight: 4 },
            WeightedSample { time_ms: 42.0, weight: 2 },
        ];
        let total: u64 = samples.iter().map(|s| s.weight).sum();
        for rank in 1..=total {
            let mut w = samples.clone();
            assert_eq!(
                weighted_percentile(&mut w, rank),
                materialized_percentile(&samples, rank),
                "rank {rank}"
            );
        }
    }
}
