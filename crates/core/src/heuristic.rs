//! Heuristic configuration search for extra-large deployments.
//!
//! The exact solver is exponential in the region count; the paper's
//! future-work section (§VII) proposes heuristic approaches for larger
//! systems. This module implements a **beam search** over the
//! configuration lattice: start from the best single-region
//! configurations, repeatedly try adding one region (under both delivery
//! modes), keep the `beam_width` best candidates, and stop when no
//! expansion improves on the incumbent. With `beam_width = 1` this is
//! plain greedy hill-climbing.
//!
//! Complexity: `O(beam_width × N_R²)` evaluations instead of
//! `O(2^{N_R})`. The search is *not* guaranteed optimal — delivery time is
//! not monotone in the assignment (see the property tests) — but on the
//! EC2-style deployments of the evaluation it finds the exact optimum or
//! lands within a few percent, at a fraction of the time (see the
//! `ablations` bench).

use crate::assignment::{AssignmentVector, Configuration, DeliveryMode};
use crate::constraint::DeliveryConstraint;
use crate::error::Error;
use crate::evaluate::{ConfigEvaluation, EvalScratch, TopicEvaluator};
use crate::latency::InterRegionMatrix;
use crate::optimizer::Solution;
use crate::region::RegionSet;
use crate::workload::TopicWorkload;
use serde::{Deserialize, Serialize};

/// Tuning knobs for the beam search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeuristicOptions {
    /// How many candidate configurations survive each expansion round.
    pub beam_width: usize,
    /// Upper bound on expansion rounds (and thereby on the region count of
    /// explored configurations). Defaults to the region count.
    pub max_rounds: Option<usize>,
}

impl Default for HeuristicOptions {
    fn default() -> Self {
        HeuristicOptions { beam_width: 3, max_rounds: None }
    }
}

/// Ranks candidates: feasible-and-cheap first; among infeasible ones,
/// fastest first (mirrors the exact solver's §IV.B rules).
fn candidate_key(eval: &ConfigEvaluation, constraint: &DeliveryConstraint) -> (u8, f64, f64, u32) {
    if eval.is_feasible(constraint) {
        (0, eval.cost_dollars(), eval.percentile_ms(), eval.region_count())
    } else {
        (1, eval.percentile_ms(), eval.cost_dollars(), eval.region_count())
    }
}

fn better(a: &ConfigEvaluation, b: &ConfigEvaluation, constraint: &DeliveryConstraint) -> bool {
    candidate_key(a, constraint) < candidate_key(b, constraint)
}

/// Beam-search heuristic solve.
///
/// Returns a [`Solution`] shaped exactly like the exact solver's, with
/// `configurations_considered` counting heuristic evaluations.
///
/// # Errors
///
/// Same construction errors as [`crate::optimizer::Optimizer::new`].
pub fn solve_heuristic(
    regions: &RegionSet,
    inter: &InterRegionMatrix,
    workload: &TopicWorkload,
    constraint: &DeliveryConstraint,
    options: &HeuristicOptions,
) -> Result<Solution, Error> {
    workload.ensure_non_empty()?;
    let evaluator = TopicEvaluator::new(regions, inter, workload)?;
    let beam_width = options.beam_width.max(1);
    let max_rounds = options.max_rounds.unwrap_or(regions.len());
    let mut scratch = EvalScratch::default();
    let mut considered = 0u64;

    // Seed: every single-region configuration.
    let mut beam: Vec<ConfigEvaluation> = Vec::new();
    for region in regions.ids() {
        let assignment = AssignmentVector::single(region, regions.len())?;
        let config = Configuration::new(assignment, DeliveryMode::Direct);
        let eval = evaluator.evaluate_into(config, constraint, &mut scratch);
        considered += 1;
        beam.push(eval);
    }
    beam.sort_by(|a, b| {
        candidate_key(a, constraint)
            .partial_cmp(&candidate_key(b, constraint))
            // lint:allow(panic) candidate keys are sums of finite latencies and costs, so partial_cmp never sees NaN
            .expect("finite keys")
    });
    beam.truncate(beam_width);
    // lint:allow(indexing) the beam is seeded with one candidate per region and the region set is non-empty
    let mut incumbent = beam[0];

    for _ in 0..max_rounds {
        let mut expansions: Vec<ConfigEvaluation> = Vec::new();
        for seed in &beam {
            for region in regions.ids() {
                if seed.configuration().assignment().contains(region) {
                    continue;
                }
                let grown = seed.configuration().assignment().with(region);
                for mode in [DeliveryMode::Direct, DeliveryMode::Routed] {
                    let config = Configuration::new(grown, mode);
                    let eval = evaluator.evaluate_into(config, constraint, &mut scratch);
                    considered += 1;
                    expansions.push(eval);
                }
            }
        }
        if expansions.is_empty() {
            break;
        }
        expansions.sort_by(|a, b| {
            candidate_key(a, constraint)
                .partial_cmp(&candidate_key(b, constraint))
                // lint:allow(panic) candidate keys are sums of finite latencies and costs, so partial_cmp never sees NaN
                .expect("finite keys")
        });
        expansions.dedup_by_key(|e| e.configuration());
        expansions.truncate(beam_width);
        // lint:allow(indexing) the `expansions.is_empty()` break above guarantees at least one entry
        if !better(&expansions[0], &incumbent, constraint) {
            break; // no expansion beats the incumbent: stop climbing
        }
        // lint:allow(indexing) the `expansions.is_empty()` break above guarantees at least one entry
        incumbent = expansions[0];
        beam = expansions;
    }

    Ok(Solution::from_parts(incumbent, incumbent.is_feasible(constraint), considered))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;
    use crate::optimizer::Optimizer;
    use crate::region::Region;
    use crate::workload::{MessageBatch, Publisher, Subscriber};

    fn deployment() -> (RegionSet, InterRegionMatrix) {
        let regions = RegionSet::new(vec![
            Region::new("cheap", "A", 0.02, 0.09),
            Region::new("mid", "B", 0.09, 0.14),
            Region::new("pricey", "C", 0.16, 0.25),
        ])
        .unwrap();
        let inter = InterRegionMatrix::from_rows(vec![
            vec![0.0, 40.0, 90.0],
            vec![40.0, 0.0, 60.0],
            vec![90.0, 60.0, 0.0],
        ])
        .unwrap();
        (regions, inter)
    }

    fn workload() -> TopicWorkload {
        let mut w = TopicWorkload::new(3);
        w.add_publisher(
            Publisher::new(ClientId(0), vec![10.0, 55.0, 95.0], MessageBatch::uniform(10, 1000))
                .unwrap(),
        )
        .unwrap();
        w.add_subscriber(Subscriber::new(ClientId(1), vec![8.0, 60.0, 99.0]).unwrap()).unwrap();
        w.add_subscriber(Subscriber::new(ClientId(2), vec![70.0, 9.0, 65.0]).unwrap()).unwrap();
        w.add_subscriber(Subscriber::new(ClientId(3), vec![95.0, 62.0, 7.0]).unwrap()).unwrap();
        w
    }

    #[test]
    fn heuristic_result_is_valid_and_never_beats_exact() {
        let (regions, inter) = deployment();
        let w = workload();
        for max_t in [40.0, 80.0, 150.0, 400.0] {
            let constraint = DeliveryConstraint::new(90.0, max_t).unwrap();
            let exact = Optimizer::new(&regions, &inter, &w).unwrap().solve(&constraint);
            let heuristic =
                solve_heuristic(&regions, &inter, &w, &constraint, &HeuristicOptions::default())
                    .unwrap();
            if exact.is_feasible() && heuristic.is_feasible() {
                assert!(
                    heuristic.evaluation().cost_dollars()
                        >= exact.evaluation().cost_dollars() - 1e-12,
                    "heuristic cannot be cheaper than the optimum at max_t {max_t}"
                );
            }
        }
    }

    #[test]
    fn heuristic_matches_exact_on_small_instances() {
        // With beam width ≥ region count the search covers enough of the
        // lattice to find the optimum on this 3-region instance.
        let (regions, inter) = deployment();
        let w = workload();
        let options = HeuristicOptions { beam_width: 8, max_rounds: None };
        for max_t in [40.0, 100.0, 200.0, 500.0] {
            let constraint = DeliveryConstraint::new(90.0, max_t).unwrap();
            let exact = Optimizer::new(&regions, &inter, &w).unwrap().solve(&constraint);
            let heuristic = solve_heuristic(&regions, &inter, &w, &constraint, &options).unwrap();
            assert_eq!(heuristic.is_feasible(), exact.is_feasible(), "max_t {max_t}");
            if exact.is_feasible() {
                assert!(
                    (heuristic.evaluation().cost_dollars() - exact.evaluation().cost_dollars())
                        .abs()
                        < 1e-12,
                    "max_t {max_t}: heuristic ${} vs exact ${}",
                    heuristic.evaluation().cost_dollars(),
                    exact.evaluation().cost_dollars()
                );
            }
        }
    }

    #[test]
    fn heuristic_considers_far_fewer_configurations_at_scale() {
        let (regions, inter) = deployment();
        let w = workload();
        let constraint = DeliveryConstraint::new(90.0, 100.0).unwrap();
        let exact = Optimizer::new(&regions, &inter, &w).unwrap().solve(&constraint);
        let heuristic = solve_heuristic(
            &regions,
            &inter,
            &w,
            &constraint,
            &HeuristicOptions { beam_width: 1, max_rounds: None },
        )
        .unwrap();
        // 3 regions: exact = 11; greedy = 3 seeds + ≤ 2 rounds × 4.
        assert!(heuristic.configurations_considered() <= exact.configurations_considered());
    }

    #[test]
    fn rejects_empty_workload() {
        let (regions, inter) = deployment();
        let w = TopicWorkload::new(3);
        let constraint = DeliveryConstraint::new(90.0, 100.0).unwrap();
        assert!(solve_heuristic(&regions, &inter, &w, &constraint, &HeuristicOptions::default())
            .is_err());
    }
}
