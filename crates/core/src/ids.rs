//! Identifier newtypes for regions, clients and topics.
//!
//! Newtypes keep the three index spaces statically distinct
//! (a [`RegionId`] can never be passed where a [`ClientId`] is expected)
//! while remaining plain `Copy` integers at runtime.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a cloud region within a [`crate::region::RegionSet`].
///
/// Regions are dense indices `0..n_regions`; the same index addresses the
/// region's row/column in the latency matrices and its bit in an
/// [`crate::assignment::AssignmentVector`].
///
/// ```
/// use multipub_core::ids::RegionId;
/// let r = RegionId(3);
/// assert_eq!(r.index(), 3);
/// assert_eq!(r.to_string(), "R3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u8);

impl RegionId {
    /// The zero-based index of the region.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl From<u8> for RegionId {
    fn from(value: u8) -> Self {
        RegionId(value)
    }
}

/// Identifier of a client (publisher or subscriber) of the pub/sub service.
///
/// Client ids are opaque: they identify a client across topics and
/// reconfiguration rounds but carry no positional meaning.
///
/// ```
/// use multipub_core::ids::ClientId;
/// assert_eq!(ClientId(7).to_string(), "C7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl From<u64> for ClientId {
    fn from(value: u64) -> Self {
        ClientId(value)
    }
}

/// Name of a pub/sub topic.
///
/// Topics are independent optimization problems (paper §IV.C), so the id is
/// only used for bookkeeping, subscription matching and reporting.
///
/// ```
/// use multipub_core::ids::TopicId;
/// let t = TopicId::new("game/region-chat");
/// assert_eq!(t.as_str(), "game/region-chat");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TopicId(String);

impl TopicId {
    /// Creates a topic id from any string-like value.
    pub fn new(name: impl Into<String>) -> Self {
        TopicId(name.into())
    }

    /// The topic name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TopicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TopicId {
    fn from(value: &str) -> Self {
        TopicId::new(value)
    }
}

impl From<String> for TopicId {
    fn from(value: String) -> Self {
        TopicId(value)
    }
}

impl AsRef<str> for TopicId {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_id_roundtrip() {
        let r: RegionId = 4u8.into();
        assert_eq!(r, RegionId(4));
        assert_eq!(r.index(), 4);
    }

    #[test]
    fn client_id_display() {
        assert_eq!(ClientId(0).to_string(), "C0");
        assert_eq!(ClientId(u64::MAX).to_string(), format!("C{}", u64::MAX));
    }

    #[test]
    fn topic_id_conversions() {
        let a: TopicId = "chat".into();
        let b = TopicId::new(String::from("chat"));
        assert_eq!(a, b);
        assert_eq!(a.as_ref(), "chat");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(RegionId(1));
        set.insert(RegionId(1));
        assert_eq!(set.len(), 1);
        assert!(RegionId(0) < RegionId(1));
        assert!(ClientId(2) > ClientId(1));
    }
}
