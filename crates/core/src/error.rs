//! Error type for model construction and validation.

use std::fmt;

/// Errors produced when constructing or validating MultiPub model objects.
///
/// All constructors in this crate validate their inputs (dimensions,
/// ranges, non-emptiness) and report violations through this type rather
/// than panicking.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A latency vector or matrix row had the wrong number of columns.
    LatencyDimension {
        /// Number of regions the model expects.
        expected: usize,
        /// Number of entries actually provided.
        got: usize,
    },
    /// A latency value was negative, NaN or infinite.
    InvalidLatency {
        /// The offending value.
        value: f64,
    },
    /// An inter-region matrix had a non-zero diagonal entry
    /// (`L^R[i][i]` must be 0).
    NonZeroDiagonal {
        /// The region index with the non-zero self-latency.
        region: usize,
        /// The offending value.
        value: f64,
    },
    /// An inter-region matrix was not square.
    NotSquare {
        /// Number of rows provided.
        rows: usize,
        /// Length of the offending row.
        row_len: usize,
    },
    /// A region set was empty or exceeded the 32-region limit imposed by
    /// the bitmask representation of assignment vectors.
    RegionCount {
        /// Number of regions provided.
        got: usize,
    },
    /// A cost rate (per-GB price) was negative, NaN or infinite.
    InvalidCostRate {
        /// The offending value.
        value: f64,
    },
    /// A delivery-constraint ratio was outside `(0, 100]`.
    InvalidRatio {
        /// The offending ratio (percent).
        value: f64,
    },
    /// A delivery-constraint bound was not a positive finite number.
    InvalidBound {
        /// The offending bound (milliseconds).
        value: f64,
    },
    /// A client id was added twice to the same topic role.
    DuplicateClient {
        /// The duplicated client id.
        id: u64,
    },
    /// An assignment vector was empty (at least one region must serve a
    /// topic) or referenced regions outside the region set.
    InvalidAssignment {
        /// The offending bitmask.
        mask: u32,
        /// Number of regions in the model.
        n_regions: usize,
    },
    /// A subscriber weight of zero was provided (weights count the number
    /// of real subscribers a virtual subscriber stands for).
    ZeroWeight,
    /// The workload has no publishers or no subscribers, so there is
    /// nothing to optimize.
    EmptyWorkload,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::LatencyDimension { expected, got } => {
                write!(f, "latency vector has {got} entries, expected {expected}")
            }
            Error::InvalidLatency { value } => {
                write!(f, "latency must be finite and non-negative, got {value}")
            }
            Error::NonZeroDiagonal { region, value } => {
                write!(f, "inter-region latency L^R[{region}][{region}] must be 0, got {value}")
            }
            Error::NotSquare { rows, row_len } => {
                write!(f, "inter-region matrix with {rows} rows has a row of length {row_len}")
            }
            Error::RegionCount { got } => {
                write!(f, "region set must contain between 1 and 32 regions, got {got}")
            }
            Error::InvalidCostRate { value } => {
                write!(f, "cost rate must be finite and non-negative, got {value}")
            }
            Error::InvalidRatio { value } => {
                write!(f, "delivery ratio must be within (0, 100], got {value}")
            }
            Error::InvalidBound { value } => {
                write!(f, "delivery bound must be positive and finite, got {value}")
            }
            Error::DuplicateClient { id } => {
                write!(f, "client C{id} was added twice to the same role")
            }
            Error::InvalidAssignment { mask, n_regions } => {
                write!(
                    f,
                    "assignment mask {mask:#b} is empty or references regions outside 0..{n_regions}"
                )
            }
            Error::ZeroWeight => write!(f, "subscriber weight must be at least 1"),
            Error::EmptyWorkload => {
                write!(f, "workload needs at least one publisher and one subscriber")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = Error::LatencyDimension { expected: 10, got: 9 };
        let s = e.to_string();
        assert!(s.contains("10"));
        assert!(s.contains('9'));
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(Error::ZeroWeight);
        assert!(!e.to_string().is_empty());
    }
}
