//! Evaluation of one configuration against a topic workload: the
//! delivery-time percentile `D̃_C` and the bandwidth cost `Z_C`.
//!
//! [`TopicEvaluator`] precomputes, once per solve, a latency-sorted region
//! preference list for every client (design decision **D2** in DESIGN.md),
//! so that "closest serving region" becomes a scan of the preference list
//! against the assignment bitmask instead of an argmin per configuration.

// lint:allow-file(indexing) hot-path kernel evaluated thousands of times per solve: every slice access is bounded by the region-count equality checks in `TopicEvaluator::new` and by `preference_list` covering exactly 0..n_regions

use crate::assignment::{AssignmentVector, Configuration, DeliveryMode};
use crate::constraint::DeliveryConstraint;
use crate::delivery::{weighted_percentile, WeightedSample};
use crate::error::Error;
use crate::ids::RegionId;
use crate::latency::InterRegionMatrix;
use crate::region::RegionSet;
use crate::workload::TopicWorkload;
use serde::{Deserialize, Serialize};

/// The outcome of evaluating one configuration: its delivery-time
/// percentile and its bandwidth cost for the observation interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfigEvaluation {
    configuration: Configuration,
    percentile_ms: f64,
    cost_dollars: f64,
}

impl ConfigEvaluation {
    /// The evaluated configuration.
    pub fn configuration(&self) -> Configuration {
        self.configuration
    }

    /// The delivery-time percentile `D̃_C` in milliseconds (Eq. 6).
    pub fn percentile_ms(&self) -> f64 {
        self.percentile_ms
    }

    /// The bandwidth cost `Z_C` in dollars for the interval (Eq. 3–4).
    pub fn cost_dollars(&self) -> f64 {
        self.cost_dollars
    }

    /// Number of serving regions.
    pub fn region_count(&self) -> u32 {
        self.configuration.region_count()
    }

    /// Whether this evaluation satisfies `constraint`.
    pub fn is_feasible(&self, constraint: &DeliveryConstraint) -> bool {
        constraint.is_met_by(self.percentile_ms)
    }
}

/// Reusable scratch buffers for [`TopicEvaluator::evaluate_into`], letting
/// the optimizer evaluate thousands of configurations without
/// re-allocating.
#[derive(Debug, Default)]
pub struct EvalScratch {
    samples: Vec<WeightedSample>,
    sub_regions: Vec<RegionId>,
    sub_counts: Vec<u64>,
}

/// Evaluates configurations for one topic against one workload snapshot.
///
/// ```
/// use multipub_core::prelude::*;
/// # fn main() -> Result<(), multipub_core::Error> {
/// let regions = RegionSet::new(vec![
///     Region::new("a", "A", 0.02, 0.09),
///     Region::new("b", "B", 0.09, 0.14),
/// ])?;
/// let inter = InterRegionMatrix::from_rows(vec![vec![0.0, 40.0], vec![40.0, 0.0]])?;
/// let mut w = TopicWorkload::new(2);
/// w.add_publisher(Publisher::new(
///     ClientId(0), vec![5.0, 60.0], MessageBatch::uniform(10, 1024))?)?;
/// w.add_subscriber(Subscriber::new(ClientId(1), vec![60.0, 5.0])?)?;
/// let eval = TopicEvaluator::new(&regions, &inter, &w)?;
/// let constraint = DeliveryConstraint::new(100.0, 200.0)?;
/// let both = Configuration::new(AssignmentVector::all(2)?, DeliveryMode::Routed);
/// let result = eval.evaluate(both, &constraint);
/// // 5 (pub→R0) + 40 (R0→R1) + 5 (R1→sub) = 50 ms.
/// assert_eq!(result.percentile_ms(), 50.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TopicEvaluator<'a> {
    regions: &'a RegionSet,
    inter: &'a InterRegionMatrix,
    workload: &'a TopicWorkload,
    /// Latency-sorted region indices per publisher.
    pub_prefs: Vec<Vec<u8>>,
    /// Latency-sorted region indices per subscriber.
    sub_prefs: Vec<Vec<u8>>,
    total_deliveries: u64,
}

impl<'a> TopicEvaluator<'a> {
    /// Builds an evaluator, precomputing per-client region preference lists.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LatencyDimension`] when the region set, the
    /// inter-region matrix and the workload disagree on the number of
    /// regions.
    pub fn new(
        regions: &'a RegionSet,
        inter: &'a InterRegionMatrix,
        workload: &'a TopicWorkload,
    ) -> Result<Self, Error> {
        let n = regions.len();
        if inter.len() != n {
            return Err(Error::LatencyDimension { expected: n, got: inter.len() });
        }
        if workload.n_regions() != n {
            return Err(Error::LatencyDimension { expected: n, got: workload.n_regions() });
        }
        let pub_prefs =
            workload.publishers().iter().map(|p| preference_list(p.latencies())).collect();
        let sub_prefs =
            workload.subscribers().iter().map(|s| preference_list(s.latencies())).collect();
        Ok(TopicEvaluator {
            regions,
            inter,
            workload,
            pub_prefs,
            sub_prefs,
            total_deliveries: workload.total_deliveries(),
        })
    }

    /// The region set this evaluator works over.
    pub fn regions(&self) -> &RegionSet {
        self.regions
    }

    /// The inter-region latency matrix.
    pub fn inter(&self) -> &InterRegionMatrix {
        self.inter
    }

    /// The workload snapshot being evaluated.
    pub fn workload(&self) -> &TopicWorkload {
        self.workload
    }

    /// Total deliveries `|𝔻_C|` in the interval.
    pub fn total_deliveries(&self) -> u64 {
        self.total_deliveries
    }

    /// Evaluates one configuration, allocating fresh scratch space.
    pub fn evaluate(
        &self,
        configuration: Configuration,
        constraint: &DeliveryConstraint,
    ) -> ConfigEvaluation {
        let mut scratch = EvalScratch::default();
        self.evaluate_into(configuration, constraint, &mut scratch)
    }

    /// Evaluates one configuration reusing caller-provided scratch buffers.
    pub fn evaluate_into(
        &self,
        configuration: Configuration,
        constraint: &DeliveryConstraint,
        scratch: &mut EvalScratch,
    ) -> ConfigEvaluation {
        let assignment = configuration.assignment();
        let subs = self.workload.subscribers();
        let pubs = self.workload.publishers();

        // Closest serving region and per-region weights for subscribers.
        scratch.sub_regions.clear();
        scratch.sub_counts.clear();
        scratch.sub_counts.resize(self.regions.len(), 0);
        for (sub, prefs) in subs.iter().zip(&self.sub_prefs) {
            let region = closest_in_prefs(prefs, assignment);
            scratch.sub_regions.push(region);
            scratch.sub_counts[region.index()] += sub.weight();
        }

        // Delivery-time samples, one per (publisher, subscriber) pair,
        // weighted by message count × subscriber weight.
        scratch.samples.clear();
        let mut total_bytes = 0u64;
        let mut forwarding_cost = 0.0f64;
        let extra_hops = assignment.count().saturating_sub(1) as f64;
        for (publisher, prefs) in pubs.iter().zip(&self.pub_prefs) {
            let batch = publisher.batch();
            total_bytes += batch.total_bytes();
            let pub_home = match configuration.mode() {
                DeliveryMode::Routed => Some(closest_in_prefs(prefs, assignment)),
                DeliveryMode::Direct => None,
            };
            if let Some(home) = pub_home {
                forwarding_cost +=
                    batch.total_bytes() as f64 * extra_hops * self.regions.alpha_per_byte(home);
            }
            if batch.count() == 0 {
                continue;
            }
            let pub_lat = publisher.latencies();
            for (sub, &sub_region) in subs.iter().zip(scratch.sub_regions.iter()) {
                let sub_lat = sub.latencies()[sub_region.index()];
                let time_ms = match pub_home {
                    // Eq. 1: direct delivery.
                    None => pub_lat[sub_region.index()] + sub_lat,
                    // Eq. 2: routed delivery via the publisher's region.
                    Some(home) => {
                        pub_lat[home.index()] + self.inter.latency(home, sub_region) + sub_lat
                    }
                };
                scratch
                    .samples
                    .push(WeightedSample { time_ms, weight: batch.count() * sub.weight() });
            }
        }

        let rank = constraint.rank(self.total_deliveries);
        let percentile_ms = weighted_percentile(&mut scratch.samples, rank);

        let fanout_rate = crate::cost::fanout_rate_per_byte(self.regions, &scratch.sub_counts);
        let cost_dollars = total_bytes as f64 * fanout_rate + forwarding_cost;

        ConfigEvaluation { configuration, percentile_ms, cost_dollars }
    }

    /// The delivery time a specific subscriber entry would observe for the
    /// *worst* publisher under `configuration` — used by the §IV.D
    /// mitigation scan to decide whether a client's needs can be met.
    ///
    /// Returns `None` when the workload has no publishers with traffic.
    pub fn worst_delivery_for_subscriber(
        &self,
        subscriber_index: usize,
        configuration: Configuration,
    ) -> Option<f64> {
        let assignment = configuration.assignment();
        let sub = &self.workload.subscribers()[subscriber_index];
        let sub_region = closest_in_prefs(&self.sub_prefs[subscriber_index], assignment);
        let sub_lat = sub.latencies()[sub_region.index()];
        let mut worst: Option<f64> = None;
        for (publisher, prefs) in self.workload.publishers().iter().zip(&self.pub_prefs) {
            if publisher.batch().count() == 0 {
                continue;
            }
            let time = match configuration.mode() {
                DeliveryMode::Direct => publisher.latencies()[sub_region.index()] + sub_lat,
                DeliveryMode::Routed => {
                    let home = closest_in_prefs(prefs, assignment);
                    publisher.latencies()[home.index()]
                        + self.inter.latency(home, sub_region)
                        + sub_lat
                }
            };
            worst = Some(worst.map_or(time, |w: f64| w.max(time)));
        }
        worst
    }
}

/// Region indices sorted by increasing latency (ties by index), the
/// preference list of design decision D2.
pub(crate) fn preference_list(latencies: &[f64]) -> Vec<u8> {
    let mut order: Vec<u8> = (0..latencies.len() as u8).collect();
    order.sort_by(|&a, &b| latencies[a as usize].total_cmp(&latencies[b as usize]).then(a.cmp(&b)));
    order
}

/// First region of a preference list that is present in the assignment.
pub(crate) fn closest_in_prefs(prefs: &[u8], assignment: AssignmentVector) -> RegionId {
    for &idx in prefs {
        let region = RegionId(idx);
        if assignment.contains(region) {
            return region;
        }
    }
    // lint:allow(panic) AssignmentVector rejects empty masks and out-of-range bits at construction, and prefs lists every region index, so the scan always hits
    unreachable!("assignment vectors are non-empty and within the region count")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delivery::closest_region;
    use crate::ids::ClientId;
    use crate::region::Region;
    use crate::workload::{MessageBatch, Publisher, Subscriber};

    fn regions3() -> RegionSet {
        RegionSet::new(vec![
            Region::new("r0", "A", 0.02, 0.09),
            Region::new("r1", "B", 0.09, 0.14),
            Region::new("r2", "C", 0.16, 0.25),
        ])
        .unwrap()
    }

    fn inter3() -> InterRegionMatrix {
        InterRegionMatrix::from_rows(vec![
            vec![0.0, 40.0, 90.0],
            vec![40.0, 0.0, 120.0],
            vec![90.0, 120.0, 0.0],
        ])
        .unwrap()
    }

    fn workload3() -> TopicWorkload {
        let mut w = TopicWorkload::new(3);
        w.add_publisher(
            Publisher::new(ClientId(0), vec![10.0, 60.0, 100.0], MessageBatch::uniform(5, 1000))
                .unwrap(),
        )
        .unwrap();
        w.add_publisher(
            Publisher::new(ClientId(1), vec![95.0, 55.0, 12.0], MessageBatch::uniform(3, 2000))
                .unwrap(),
        )
        .unwrap();
        w.add_subscriber(Subscriber::new(ClientId(2), vec![8.0, 66.0, 99.0]).unwrap()).unwrap();
        w.add_subscriber(Subscriber::new(ClientId(3), vec![70.0, 9.0, 80.0]).unwrap()).unwrap();
        w.add_subscriber(Subscriber::with_weight(ClientId(4), vec![88.0, 77.0, 6.0], 2).unwrap())
            .unwrap();
        w
    }

    #[test]
    fn preference_list_sorted_by_latency() {
        assert_eq!(preference_list(&[30.0, 10.0, 20.0]), vec![1, 2, 0]);
        // Ties broken by index.
        assert_eq!(preference_list(&[5.0, 5.0]), vec![0, 1]);
    }

    #[test]
    fn closest_in_prefs_matches_argmin() {
        let lats = [33.0, 11.0, 22.0];
        let prefs = preference_list(&lats);
        for mask in 1u32..8 {
            let a = AssignmentVector::from_mask(mask, 3).unwrap();
            assert_eq!(closest_in_prefs(&prefs, a), closest_region(&lats, a), "mask {mask}");
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let r = regions3();
        let inter2 = InterRegionMatrix::zeros(2).unwrap();
        let w = workload3();
        assert!(TopicEvaluator::new(&r, &inter2, &w).is_err());
        let w2 = TopicWorkload::new(2);
        let inter = inter3();
        assert!(TopicEvaluator::new(&r, &inter, &w2).is_err());
    }

    #[test]
    fn direct_percentile_hand_checked() {
        let r = regions3();
        let inter = inter3();
        let w = workload3();
        let eval = TopicEvaluator::new(&r, &inter, &w).unwrap();
        let config = Configuration::new(AssignmentVector::all(3).unwrap(), DeliveryMode::Direct);
        let c100 = DeliveryConstraint::new(100.0, 1000.0).unwrap();
        // All-regions direct: every subscriber is served by its closest region.
        // Pair times: P0→S2: 10+8=18 (w 5), P0→S3: 60+9=69 (w 5),
        // P0→S4: 100+6=106 (w 10), P1→S2: 95+8=103 (w 3),
        // P1→S3: 55+9=64 (w 3), P1→S4: 12+6=18 (w 6).
        // Total deliveries = (5+3)×4 = 32. Max = 106.
        let out = eval.evaluate(config, &c100);
        assert_eq!(out.percentile_ms(), 106.0);
        // Median-ish rank: ceil(0.5×32)=16 → sorted cumulative:
        // 18(w11) → 11, 64(w3) → 14, 69(w5) → 19 ≥ 16 → 69.
        let c50 = DeliveryConstraint::new(50.0, 1000.0).unwrap();
        assert_eq!(eval.evaluate(config, &c50).percentile_ms(), 69.0);
    }

    #[test]
    fn routed_percentile_hand_checked() {
        let r = regions3();
        let inter = inter3();
        let w = workload3();
        let eval = TopicEvaluator::new(&r, &inter, &w).unwrap();
        let config = Configuration::new(AssignmentVector::all(3).unwrap(), DeliveryMode::Routed);
        let c100 = DeliveryConstraint::new(100.0, 1000.0).unwrap();
        // P0 home = R0 (10), P1 home = R2 (12).
        // P0→S2 (R0): 10+0+8=18; P0→S3 (R1): 10+40+9=59; P0→S4 (R2): 10+90+6=106.
        // P1→S2 (R0): 12+90+8=110; P1→S3 (R1): 12+120+9=141; P1→S4 (R2): 12+0+6=18.
        let out = eval.evaluate(config, &c100);
        assert_eq!(out.percentile_ms(), 141.0);
    }

    #[test]
    fn cost_matches_cost_module() {
        let r = regions3();
        let inter = inter3();
        let w = workload3();
        let eval = TopicEvaluator::new(&r, &inter, &w).unwrap();
        let constraint = DeliveryConstraint::new(75.0, 100.0).unwrap();
        for mask in 1u32..8 {
            for mode in [DeliveryMode::Direct, DeliveryMode::Routed] {
                let config =
                    Configuration::new(AssignmentVector::from_mask(mask, 3).unwrap(), mode);
                let out = eval.evaluate(config, &constraint);
                let reference = crate::cost::topic_cost_dollars(&r, &w, config);
                assert!(
                    (out.cost_dollars() - reference).abs() < 1e-15,
                    "mask {mask} mode {mode}: {} vs {reference}",
                    out.cost_dollars()
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_gives_identical_results() {
        let r = regions3();
        let inter = inter3();
        let w = workload3();
        let eval = TopicEvaluator::new(&r, &inter, &w).unwrap();
        let constraint = DeliveryConstraint::new(75.0, 100.0).unwrap();
        let mut scratch = EvalScratch::default();
        for mask in 1u32..8 {
            let config = Configuration::new(
                AssignmentVector::from_mask(mask, 3).unwrap(),
                DeliveryMode::Routed,
            );
            let a = eval.evaluate(config, &constraint);
            let b = eval.evaluate_into(config, &constraint, &mut scratch);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn worst_delivery_for_subscriber_direct() {
        let r = regions3();
        let inter = inter3();
        let w = workload3();
        let eval = TopicEvaluator::new(&r, &inter, &w).unwrap();
        let config = Configuration::new(AssignmentVector::all(3).unwrap(), DeliveryMode::Direct);
        // S4 (index 2) is served by R2; worst publisher is P0 at 100+6.
        assert_eq!(eval.worst_delivery_for_subscriber(2, config), Some(106.0));
    }

    #[test]
    fn empty_traffic_yields_zero_percentile_and_cost() {
        let r = regions3();
        let inter = inter3();
        let mut w = TopicWorkload::new(3);
        w.add_publisher(
            Publisher::new(ClientId(0), vec![1.0, 2.0, 3.0], MessageBatch::empty()).unwrap(),
        )
        .unwrap();
        w.add_subscriber(Subscriber::new(ClientId(1), vec![1.0, 2.0, 3.0]).unwrap()).unwrap();
        let eval = TopicEvaluator::new(&r, &inter, &w).unwrap();
        let constraint = DeliveryConstraint::new(95.0, 10.0).unwrap();
        let config = Configuration::new(AssignmentVector::all(3).unwrap(), DeliveryMode::Direct);
        let out = eval.evaluate(config, &constraint);
        assert_eq!(out.percentile_ms(), 0.0);
        assert_eq!(out.cost_dollars(), 0.0);
        assert!(out.is_feasible(&constraint));
    }
}
