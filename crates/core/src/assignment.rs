//! Assignment vectors, delivery modes and configuration enumeration.
//!
//! The mapping of a topic to regions is a bit vector (paper §III.A2): bit
//! `i` is set iff region `i` serves the topic. Together with a delivery
//! mode this forms a *configuration*. With `N` regions there are
//! `2·(2^N − 1) − N` distinct configurations: every non-empty subset can use
//! direct or routed delivery, except single-region subsets where the two
//! modes coincide (paper §IV).

use crate::error::Error;
use crate::ids::RegionId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How publications reach the regions serving a topic (paper §II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeliveryMode {
    /// Each publisher sends every publication to **all** serving regions
    /// itself (paper Fig. 1b). Two hops: publisher → region → subscriber.
    Direct,
    /// Each publisher sends to its **closest** serving region, which
    /// forwards to the other serving regions over (often faster)
    /// inter-cloud links (paper Fig. 1c). Up to three hops, plus
    /// inter-region egress cost `α`.
    Routed,
}

impl fmt::Display for DeliveryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeliveryMode::Direct => f.write_str("direct"),
            DeliveryMode::Routed => f.write_str("routed"),
        }
    }
}

/// Which delivery modes the optimizer may consider.
///
/// `DirectOnly` and `RoutedOnly` implement the paper's *MultiPub-D* and
/// *MultiPub-R* variants (experiment 2). Single-region assignments are
/// mode-less (no forwarding happens) and are admitted under every policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModePolicy {
    /// Consider both direct and routed delivery (standard MultiPub).
    Any,
    /// Only direct delivery (MultiPub-D).
    DirectOnly,
    /// Only routed delivery for multi-region assignments (MultiPub-R).
    RoutedOnly,
}

impl ModePolicy {
    /// Whether a configuration with the given mode and region count is
    /// admitted under this policy.
    pub fn admits(self, mode: DeliveryMode, n_regions: u32) -> bool {
        if n_regions <= 1 {
            // Single-region configurations have no forwarding step; they are
            // canonically represented as Direct and allowed everywhere.
            return mode == DeliveryMode::Direct;
        }
        match self {
            ModePolicy::Any => true,
            ModePolicy::DirectOnly => mode == DeliveryMode::Direct,
            ModePolicy::RoutedOnly => mode == DeliveryMode::Routed,
        }
    }
}

/// A non-empty set of regions serving a topic, as a bitmask over at most
/// 32 regions.
///
/// ```
/// use multipub_core::assignment::AssignmentVector;
/// use multipub_core::ids::RegionId;
/// # fn main() -> Result<(), multipub_core::Error> {
/// let v = AssignmentVector::from_regions([RegionId(0), RegionId(4)], 10)?;
/// assert!(v.contains(RegionId(4)));
/// assert!(!v.contains(RegionId(1)));
/// assert_eq!(v.count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AssignmentVector(u32);

impl AssignmentVector {
    /// Builds an assignment from a raw bitmask.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAssignment`] if the mask is zero (a topic
    /// must be served by at least one region) or sets bits at or above
    /// `n_regions`.
    pub fn from_mask(mask: u32, n_regions: usize) -> Result<Self, Error> {
        let valid = if n_regions >= 32 { u32::MAX } else { (1u32 << n_regions) - 1 };
        if mask == 0 || mask & !valid != 0 {
            return Err(Error::InvalidAssignment { mask, n_regions });
        }
        Ok(AssignmentVector(mask))
    }

    /// Builds an assignment containing exactly the given regions.
    ///
    /// # Errors
    ///
    /// Same as [`AssignmentVector::from_mask`].
    pub fn from_regions(
        regions: impl IntoIterator<Item = RegionId>,
        n_regions: usize,
    ) -> Result<Self, Error> {
        let mut mask = 0u32;
        for r in regions {
            mask |= 1u32 << r.0;
        }
        Self::from_mask(mask, n_regions)
    }

    /// The assignment using a single region.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAssignment`] if the region is out of bounds.
    pub fn single(region: RegionId, n_regions: usize) -> Result<Self, Error> {
        Self::from_mask(1u32 << region.0, n_regions)
    }

    /// The assignment using **all** `n_regions` regions.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAssignment`] when `n_regions` is 0 and
    /// [`Error::RegionCount`] when it exceeds 32.
    pub fn all(n_regions: usize) -> Result<Self, Error> {
        if n_regions > crate::region::MAX_REGIONS {
            return Err(Error::RegionCount { got: n_regions });
        }
        if n_regions == 0 {
            return Err(Error::InvalidAssignment { mask: 0, n_regions });
        }
        let mask = if n_regions == 32 { u32::MAX } else { (1u32 << n_regions) - 1 };
        Ok(AssignmentVector(mask))
    }

    /// Raw bitmask, bit `i` ↔ region `i`.
    pub fn mask(self) -> u32 {
        self.0
    }

    /// Whether the given region serves the topic.
    pub fn contains(self, region: RegionId) -> bool {
        self.0 & (1u32 << region.0) != 0
    }

    /// Number of serving regions (`N_R` in the paper).
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Returns a copy with `region`'s bit set.
    pub fn with(self, region: RegionId) -> AssignmentVector {
        AssignmentVector(self.0 | (1u32 << region.0))
    }

    /// Returns a copy with `region`'s bit cleared, or `None` if that would
    /// leave the assignment empty.
    pub fn without(self, region: RegionId) -> Option<AssignmentVector> {
        let mask = self.0 & !(1u32 << region.0);
        if mask == 0 {
            None
        } else {
            Some(AssignmentVector(mask))
        }
    }

    /// Whether every region of `self` is also in `other`.
    pub fn is_subset_of(self, other: AssignmentVector) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterates over the serving regions in increasing id order.
    pub fn iter(self) -> Regions {
        Regions { remaining: self.0 }
    }
}

impl fmt::Display for AssignmentVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the regions of an [`AssignmentVector`], in id order.
#[derive(Debug, Clone)]
pub struct Regions {
    remaining: u32,
}

impl Iterator for Regions {
    type Item = RegionId;

    fn next(&mut self) -> Option<RegionId> {
        if self.remaining == 0 {
            return None;
        }
        let bit = self.remaining.trailing_zeros();
        self.remaining &= self.remaining - 1;
        Some(RegionId(bit as u8))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Regions {}

/// A full configuration for a topic: serving regions plus delivery mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Configuration {
    assignment: AssignmentVector,
    mode: DeliveryMode,
}

impl Configuration {
    /// Creates a configuration. Single-region assignments are canonicalized
    /// to [`DeliveryMode::Direct`] since no forwarding takes place.
    pub fn new(assignment: AssignmentVector, mode: DeliveryMode) -> Self {
        let mode = if assignment.count() <= 1 { DeliveryMode::Direct } else { mode };
        Configuration { assignment, mode }
    }

    /// The serving regions.
    pub fn assignment(&self) -> AssignmentVector {
        self.assignment
    }

    /// The delivery mode.
    pub fn mode(&self) -> DeliveryMode {
        self.mode
    }

    /// Number of serving regions.
    pub fn region_count(&self) -> u32 {
        self.assignment.count()
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.assignment, self.mode)
    }
}

/// A monotonically-increasing per-topic configuration version.
///
/// Every committed reconfiguration of a topic advances its epoch by one;
/// brokers and clients reject configuration updates carrying an epoch
/// older than the one they hold, so a delayed or replayed update can
/// never roll a topic back to a retired placement. Epoch 0 is reserved
/// for the implicit bootstrap configuration (all regions, routed) that
/// exists before the controller ever places the topic.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Epoch(u64);

impl Epoch {
    /// The pre-placement bootstrap epoch.
    pub const INITIAL: Epoch = Epoch(0);

    /// Wraps a raw epoch counter (e.g. one read off the wire).
    pub fn new(value: u64) -> Self {
        Epoch(value)
    }

    /// The raw counter value.
    pub fn get(self) -> u64 {
        self.0
    }

    /// The epoch after this one.
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }

    /// Whether an update carrying `incoming` supersedes state held at
    /// this epoch (strictly newer; equal epochs are idempotent replays).
    pub fn superseded_by(self, incoming: Epoch) -> bool {
        incoming > self
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A [`Configuration`] paired with the [`Epoch`] at which it was
/// committed.
///
/// [`Configuration`] itself stays epoch-free on purpose: the optimizer
/// compares candidate configurations by value (assignment + mode), and an
/// embedded version counter would make every freshly-enumerated candidate
/// unequal to the installed one. The controller tracks the pair instead
/// and only mints a new epoch when the configuration actually changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VersionedConfiguration {
    configuration: Configuration,
    epoch: Epoch,
}

impl VersionedConfiguration {
    /// Pairs a configuration with its commit epoch.
    pub fn new(configuration: Configuration, epoch: Epoch) -> Self {
        VersionedConfiguration { configuration, epoch }
    }

    /// The configuration.
    pub fn configuration(&self) -> Configuration {
        self.configuration
    }

    /// The epoch the configuration was committed at.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The versioned successor: `configuration` committed at the next
    /// epoch after this one.
    pub fn succeeded_by(&self, configuration: Configuration) -> VersionedConfiguration {
        VersionedConfiguration { configuration, epoch: self.epoch.next() }
    }
}

impl fmt::Display for VersionedConfiguration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.configuration, self.epoch)
    }
}

/// Enumerates every configuration over a set of allowed regions under a
/// [`ModePolicy`].
///
/// The iteration order is: for each non-empty submask of `allowed` (in
/// increasing numeric order), the direct configuration (if admitted)
/// followed by the routed one (if admitted and multi-region).
///
/// ```
/// use multipub_core::assignment::{enumerate_configurations, ModePolicy, AssignmentVector};
/// # fn main() -> Result<(), multipub_core::Error> {
/// let all = AssignmentVector::all(3)?;
/// let configs: Vec<_> = enumerate_configurations(all, ModePolicy::Any).collect();
/// // 2·(2^3 − 1) − 3 = 11 configurations.
/// assert_eq!(configs.len(), 11);
/// # Ok(())
/// # }
/// ```
pub fn enumerate_configurations(
    allowed: AssignmentVector,
    policy: ModePolicy,
) -> ConfigurationIter {
    ConfigurationIter {
        allowed: allowed.mask(),
        current: 0,
        emit_routed_for: None,
        policy,
        done: false,
    }
}

/// Iterator produced by [`enumerate_configurations`].
#[derive(Debug, Clone)]
pub struct ConfigurationIter {
    allowed: u32,
    /// The submask most recently emitted (0 before the first).
    current: u32,
    /// Pending routed configuration for the given mask.
    emit_routed_for: Option<u32>,
    policy: ModePolicy,
    done: bool,
}

impl ConfigurationIter {
    /// Advances `current` to the next non-empty submask of `allowed` in
    /// increasing numeric order, returning it, or `None` when exhausted.
    fn next_submask(&mut self) -> Option<u32> {
        // Enumerate submasks in increasing order: ((current - allowed) & allowed)
        // yields the numerically next submask of `allowed` above `current`.
        if self.done {
            return None;
        }
        let next = self.current.wrapping_sub(self.allowed) & self.allowed;
        if next == 0 {
            // Wrapped around (only happens after emitting `allowed` itself).
            self.done = true;
            return None;
        }
        self.current = next;
        Some(next)
    }
}

impl Iterator for ConfigurationIter {
    type Item = Configuration;

    fn next(&mut self) -> Option<Configuration> {
        loop {
            if let Some(mask) = self.emit_routed_for.take() {
                let assignment = AssignmentVector(mask);
                if self.policy.admits(DeliveryMode::Routed, assignment.count()) {
                    return Some(Configuration::new(assignment, DeliveryMode::Routed));
                }
                // Routed not admitted; fall through to the next submask.
            }
            let mask = self.next_submask()?;
            let assignment = AssignmentVector(mask);
            let n = assignment.count();
            if n >= 2 {
                self.emit_routed_for = Some(mask);
            }
            if self.policy.admits(DeliveryMode::Direct, n) {
                return Some(Configuration::new(assignment, DeliveryMode::Direct));
            }
            // Direct not admitted (RoutedOnly multi-region); loop to emit routed.
        }
    }
}

/// Number of configurations the optimizer must consider for `n` allowed
/// regions under [`ModePolicy::Any`]: `2·(2^n − 1) − n`.
pub fn configuration_count(n_regions: u32) -> u64 {
    2 * ((1u64 << n_regions) - 1) - n_regions as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_mask_validates() {
        assert!(AssignmentVector::from_mask(0, 4).is_err());
        assert!(AssignmentVector::from_mask(0b10000, 4).is_err());
        assert!(AssignmentVector::from_mask(0b1010, 4).is_ok());
    }

    #[test]
    fn all_and_single() {
        let all = AssignmentVector::all(10).unwrap();
        assert_eq!(all.count(), 10);
        let one = AssignmentVector::single(RegionId(9), 10).unwrap();
        assert_eq!(one.count(), 1);
        assert!(one.is_subset_of(all));
        assert!(AssignmentVector::single(RegionId(10), 10).is_err());
    }

    #[test]
    fn all_32_regions() {
        let all = AssignmentVector::all(32).unwrap();
        assert_eq!(all.count(), 32);
        assert_eq!(all.mask(), u32::MAX);
    }

    #[test]
    fn with_and_without() {
        let v = AssignmentVector::single(RegionId(1), 4).unwrap();
        let v2 = v.with(RegionId(3));
        assert_eq!(v2.count(), 2);
        assert_eq!(v2.without(RegionId(3)), Some(v));
        assert_eq!(v.without(RegionId(1)), None);
    }

    #[test]
    fn iter_in_order() {
        let v = AssignmentVector::from_mask(0b1011, 4).unwrap();
        let ids: Vec<_> = v.iter().collect();
        assert_eq!(ids, vec![RegionId(0), RegionId(1), RegionId(3)]);
        assert_eq!(v.iter().len(), 3);
    }

    #[test]
    fn display_formats() {
        let v = AssignmentVector::from_mask(0b101, 3).unwrap();
        assert_eq!(v.to_string(), "{R0,R2}");
        let c = Configuration::new(v, DeliveryMode::Routed);
        assert_eq!(c.to_string(), "{R0,R2} routed");
    }

    #[test]
    fn single_region_config_is_canonically_direct() {
        let v = AssignmentVector::single(RegionId(0), 2).unwrap();
        let c = Configuration::new(v, DeliveryMode::Routed);
        assert_eq!(c.mode(), DeliveryMode::Direct);
    }

    #[test]
    fn enumeration_count_matches_formula() {
        for n in 1..=10u32 {
            let allowed = AssignmentVector::all(n as usize).unwrap();
            let count = enumerate_configurations(allowed, ModePolicy::Any).count() as u64;
            assert_eq!(count, configuration_count(n), "n = {n}");
        }
    }

    #[test]
    fn enumeration_has_no_duplicates() {
        use std::collections::HashSet;
        let allowed = AssignmentVector::all(6).unwrap();
        let configs: Vec<_> = enumerate_configurations(allowed, ModePolicy::Any).collect();
        let set: HashSet<_> = configs.iter().collect();
        assert_eq!(set.len(), configs.len());
    }

    #[test]
    fn enumeration_respects_allowed_mask() {
        let allowed = AssignmentVector::from_mask(0b101, 3).unwrap();
        for c in enumerate_configurations(allowed, ModePolicy::Any) {
            assert!(c.assignment().is_subset_of(allowed));
        }
        let count = enumerate_configurations(allowed, ModePolicy::Any).count();
        // Submasks of {R0,R2}: {R0}, {R2}, {R0,R2}×2 modes = 4.
        assert_eq!(count, 4);
    }

    #[test]
    fn direct_only_policy() {
        let allowed = AssignmentVector::all(3).unwrap();
        let configs: Vec<_> = enumerate_configurations(allowed, ModePolicy::DirectOnly).collect();
        assert!(configs.iter().all(|c| c.mode() == DeliveryMode::Direct));
        // Every non-empty subset once: 2^3 − 1 = 7.
        assert_eq!(configs.len(), 7);
    }

    #[test]
    fn routed_only_policy() {
        let allowed = AssignmentVector::all(3).unwrap();
        let configs: Vec<_> = enumerate_configurations(allowed, ModePolicy::RoutedOnly).collect();
        // Multi-region subsets routed (4) + single regions (3) = 7.
        assert_eq!(configs.len(), 7);
        for c in &configs {
            if c.region_count() >= 2 {
                assert_eq!(c.mode(), DeliveryMode::Routed);
            } else {
                assert_eq!(c.mode(), DeliveryMode::Direct);
            }
        }
    }

    #[test]
    fn single_allowed_region() {
        let allowed = AssignmentVector::single(RegionId(2), 5).unwrap();
        let configs: Vec<_> = enumerate_configurations(allowed, ModePolicy::Any).collect();
        assert_eq!(configs.len(), 1);
        assert_eq!(configs[0].region_count(), 1);
    }

    #[test]
    fn count_formula_examples() {
        assert_eq!(configuration_count(1), 1);
        assert_eq!(configuration_count(2), 4);
        assert_eq!(configuration_count(10), 2036);
    }

    #[test]
    fn epoch_ordering_and_succession() {
        let e0 = Epoch::INITIAL;
        let e1 = e0.next();
        assert_eq!(e0.get(), 0);
        assert_eq!(e1.get(), 1);
        assert!(e0 < e1);
        assert!(e0.superseded_by(e1));
        assert!(!e1.superseded_by(e1), "equal epochs are idempotent replays, not supersessions");
        assert!(!e1.superseded_by(e0), "a stale epoch never supersedes");
        assert_eq!(Epoch::new(7).to_string(), "e7");
    }

    #[test]
    fn versioned_configuration_mints_monotonic_epochs() {
        let a = Configuration::new(
            AssignmentVector::single(RegionId(0), 2).unwrap(),
            DeliveryMode::Direct,
        );
        let b =
            Configuration::new(AssignmentVector::from_mask(0b11, 2).unwrap(), DeliveryMode::Routed);
        let v1 = VersionedConfiguration::new(a, Epoch::INITIAL.next());
        let v2 = v1.succeeded_by(b);
        assert_eq!(v1.epoch().get(), 1);
        assert_eq!(v2.epoch().get(), 2);
        assert_eq!(v2.configuration(), b);
        // The configuration itself stays epoch-free: candidates compare
        // equal to the installed value regardless of version history.
        assert_eq!(v2.configuration(), Configuration::new(b.assignment(), b.mode()));
        assert_eq!(v2.to_string(), "{R0,R1} routed@e2");
    }
}
