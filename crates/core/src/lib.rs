//! # multipub-core
//!
//! Core model and optimizer of **MultiPub**, a latency- and cost-aware
//! global-scale cloud publish/subscribe middleware (Gascon-Samson, Kienzle,
//! Kemme — ICDCS 2017).
//!
//! Topic-based pub/sub decouples publishers from subscribers: publishers tag
//! each publication with a topic, and the middleware disseminates it to every
//! subscriber of that topic. When clients are spread across the world, the
//! middleware can serve a topic from one or several cloud *regions*. Region
//! choice trades **delivery latency** against **outgoing-bandwidth cost**,
//! which varies widely between regions (see the EC2 table in
//! `multipub-data`).
//!
//! For every topic `T`, MultiPub picks the cheapest *configuration* — a set
//! of regions plus a delivery mode ([`assignment::DeliveryMode::Direct`] or
//! [`assignment::DeliveryMode::Routed`]) — whose delivery-time percentile satisfies the
//! per-topic constraint `<ratio_T, max_T>` ("`ratio_T` percent of messages
//! delivered within `max_T` milliseconds"). If no configuration is feasible,
//! it picks the most latency-minimizing one.
//!
//! ## Crate map
//!
//! * [`region`] — cloud regions and their bandwidth cost rates (α, β).
//! * [`latency`] — the client↔region matrix `L` and inter-region matrix `L^R`.
//! * [`workload`] — publishers, subscribers and their observed message logs.
//! * [`assignment`] — region bitmasks and configuration enumeration.
//! * [`delivery`] — delivery-time equations (paper Eq. 1–2) and the
//!   delivery-time percentile (Eq. 5–6).
//! * [`cost`] — the bandwidth cost model (Eq. 3–4).
//! * [`evaluate`] — evaluation of a single configuration against a workload.
//! * [`optimizer`] — brute-force optimal search with the paper's
//!   tie-breaking rules, plus the *One Region* and *All Regions* baselines.
//! * [`mitigation`] — high-latency client handling (paper §IV.D).
//! * [`scaling`] — region pruning and proportional client bundling
//!   heuristics for extra-large settings (paper §V.F).
//! * [`topics`] — the topics × regions assignment matrix and
//!   reconfiguration planning (paper §III.A2, §III.A5).
//! * [`heuristic`] — beam-search solving for extra-large region counts
//!   (the paper's §VII future work).
//!
//! ## Quickstart
//!
//! ```
//! use multipub_core::prelude::*;
//!
//! # fn main() -> Result<(), multipub_core::Error> {
//! // Two regions: a cheap one and an expensive one.
//! let regions = RegionSet::new(vec![
//!     Region::new("us-east-1", "N. Virginia", 0.02, 0.09),
//!     Region::new("ap-northeast-1", "Tokyo", 0.09, 0.14),
//! ])?;
//! // One-way inter-region latency (ms).
//! let inter = InterRegionMatrix::from_rows(vec![
//!     vec![0.0, 80.0],
//!     vec![80.0, 0.0],
//! ])?;
//!
//! // A publisher near us-east-1 that sent 60 messages of 1 KiB,
//! // and one subscriber near each region.
//! let mut topic = TopicWorkload::new(2);
//! topic.add_publisher(Publisher::new(
//!     ClientId(0), vec![10.0, 90.0], MessageBatch::uniform(60, 1024),
//! )?)?;
//! topic.add_subscriber(Subscriber::new(ClientId(1), vec![12.0, 95.0])?)?;
//! topic.add_subscriber(Subscriber::new(ClientId(2), vec![92.0, 9.0])?)?;
//!
//! // 95 % of messages within 120 ms.
//! let constraint = DeliveryConstraint::new(95.0, 120.0)?;
//! let solution = Optimizer::new(&regions, &inter, &topic)?.solve(&constraint);
//!
//! assert!(solution.is_feasible());
//! println!(
//!     "chosen regions: {:?}, mode {:?}, cost ${:.4}",
//!     solution.configuration().assignment(),
//!     solution.configuration().mode(),
//!     solution.evaluation().cost_dollars(),
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod assignment;
pub mod constraint;
pub mod cost;
pub mod delivery;
pub mod error;
pub mod evaluate;
pub mod heuristic;
pub mod ids;
pub mod latency;
pub mod mitigation;
pub mod optimizer;
pub mod region;
pub mod scaling;
pub mod topics;
pub mod workload;

pub use error::Error;

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::assignment::{AssignmentVector, Configuration, DeliveryMode, ModePolicy};
    pub use crate::constraint::DeliveryConstraint;
    pub use crate::error::Error;
    pub use crate::evaluate::{ConfigEvaluation, TopicEvaluator};
    pub use crate::ids::{ClientId, RegionId, TopicId};
    pub use crate::latency::InterRegionMatrix;
    pub use crate::optimizer::{Optimizer, Solution};
    pub use crate::region::{Region, RegionSet};
    pub use crate::workload::{MessageBatch, Publisher, Subscriber, TopicWorkload};
}
