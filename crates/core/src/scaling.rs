//! Heuristics for extra-large settings (paper §V.F): region pruning and
//! proportional client bundling.
//!
//! The solver is exponential in the number of regions and (via the
//! percentile sort) log-linear in the number of publisher×subscriber
//! pairs. The paper suggests two mitigations, both implemented here:
//!
//! * **Pruning** removes expensive regions that are home to few or no
//!   clients from the search space, shrinking the exponent.
//! * **Proportional bundling** merges clients with near-identical latency
//!   vectors into weighted *virtual clients*, shrinking the pair count
//!   while preserving the percentile (each virtual subscriber carries the
//!   weight of the subscribers it replaced).
//!
//! Both trade optimality for speed; the `pruning_ablation` bench
//! quantifies the trade-off.

use crate::assignment::AssignmentVector;
use crate::delivery::closest_region;
use crate::error::Error;
use crate::ids::RegionId;
use crate::region::RegionSet;
use crate::workload::{Subscriber, TopicWorkload};
use serde::{Deserialize, Serialize};

/// Options for [`prune_regions`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PruneOptions {
    /// A region is kept if at least this many clients (publishers +
    /// subscriber weight) are *closest* to it.
    pub min_home_clients: u64,
    /// Always keep the globally cheapest-egress region, so a cheap
    /// fallback configuration always exists.
    pub keep_cheapest: bool,
}

impl Default for PruneOptions {
    fn default() -> Self {
        PruneOptions { min_home_clients: 1, keep_cheapest: true }
    }
}

/// Selects the subset of regions worth searching: regions that are home to
/// at least [`PruneOptions::min_home_clients`] clients, plus (optionally)
/// the cheapest region. "Home" is the client's closest region among all
/// regions.
///
/// # Errors
///
/// Returns [`Error::EmptyWorkload`] if the workload has no clients at all
/// (there would be no basis for pruning).
pub fn prune_regions(
    regions: &RegionSet,
    workload: &TopicWorkload,
    options: &PruneOptions,
) -> Result<AssignmentVector, Error> {
    if workload.publisher_count() == 0 && workload.subscriber_count() == 0 {
        return Err(Error::EmptyWorkload);
    }
    let all = AssignmentVector::all(regions.len())?;
    let mut home_clients = vec![0u64; regions.len()];
    for publisher in workload.publishers() {
        // lint:allow(indexing) home_clients is sized to regions.len(); closest_region returns an id below that count
        home_clients[closest_region(publisher.latencies(), all).index()] += 1;
    }
    for subscriber in workload.subscribers() {
        // lint:allow(indexing) home_clients is sized to regions.len(); closest_region returns an id below that count
        home_clients[closest_region(subscriber.latencies(), all).index()] += subscriber.weight();
    }
    let mut keep: Vec<RegionId> =
        // lint:allow(indexing) home_clients is sized to regions.len() and RegionId indices come from the same RegionSet
        regions.ids().filter(|r| home_clients[r.index()] >= options.min_home_clients).collect();
    if options.keep_cheapest {
        let cheapest = regions.cheapest_internet_region();
        if !keep.contains(&cheapest) {
            keep.push(cheapest);
        }
    }
    if keep.is_empty() {
        // Degenerate: threshold too high and cheapest not kept. Fall back
        // to the single most popular region.
        let most_popular =
            // lint:allow(indexing) ids stay below regions.len() lint:allow(panic) RegionSet rejects empty sets, so max_by_key sees at least one id
            regions.ids().max_by_key(|r| home_clients[r.index()]).expect("region set is non-empty");
        keep.push(most_popular);
    }
    multipub_obs::counter!(multipub_obs::metrics::CORE_REGIONS_PRUNED_TOTAL)
        .add((regions.len() - keep.len()) as u64);
    AssignmentVector::from_regions(keep, regions.len())
}

/// Options for [`bundle_clients`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BundleOptions {
    /// Two clients are bundled when every entry of their latency rows
    /// differs by at most this many milliseconds (L∞ distance).
    pub epsilon_ms: f64,
}

impl Default for BundleOptions {
    fn default() -> Self {
        BundleOptions { epsilon_ms: 5.0 }
    }
}

fn within_epsilon(a: &[f64], b: &[f64], epsilon: f64) -> bool {
    a.iter().zip(b).all(|(x, y)| (x - y).abs() <= epsilon)
}

/// Proportional bundling (§V.F): greedily clusters subscribers (and
/// publishers) whose latency rows are within
/// [`BundleOptions::epsilon_ms`] of a cluster representative, replacing
/// each cluster by one *virtual client*:
///
/// * virtual subscribers carry the summed **weight** of their members, so
///   `N_S^R` counts and percentile weights are preserved up to ε;
/// * virtual publishers carry the **merged message batch** of their
///   members, preserving total message count and bytes exactly.
///
/// The representative keeps the first member's id and latency row.
pub fn bundle_clients(workload: &TopicWorkload, options: &BundleOptions) -> TopicWorkload {
    let mut bundled = TopicWorkload::new(workload.n_regions());

    // Subscribers: sum weights within a cluster.
    let mut sub_reps: Vec<Subscriber> = Vec::new();
    for sub in workload.subscribers() {
        match sub_reps
            .iter_mut()
            .find(|rep| within_epsilon(rep.latencies(), sub.latencies(), options.epsilon_ms))
        {
            Some(rep) => {
                *rep = Subscriber::with_weight(
                    rep.id(),
                    rep.latencies().to_vec(),
                    rep.weight() + sub.weight(),
                )
                // lint:allow(panic) both merged weights came from valid subscribers, so the sum is positive
                .expect("non-zero weight");
            }
            None => sub_reps.push(sub.clone()),
        }
    }
    for rep in sub_reps {
        // lint:allow(panic) representatives are clones/merges of entries the source workload already accepted
        bundled.add_subscriber(rep).expect("validated by source workload");
    }

    // Publishers: merge batches within a cluster.
    let mut pub_reps: Vec<crate::workload::Publisher> = Vec::new();
    for publisher in workload.publishers() {
        match pub_reps
            .iter_mut()
            .find(|rep| within_epsilon(rep.latencies(), publisher.latencies(), options.epsilon_ms))
        {
            Some(rep) => {
                let mut merged = rep.batch();
                merged.merge(publisher.batch());
                rep.set_batch(merged);
            }
            None => pub_reps.push(publisher.clone()),
        }
    }
    for rep in pub_reps {
        // lint:allow(panic) representatives are clones/merges of entries the source workload already accepted
        bundled.add_publisher(rep).expect("validated by source workload");
    }

    bundled
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;
    use crate::region::Region;
    use crate::workload::{MessageBatch, Publisher};

    fn regions3() -> RegionSet {
        RegionSet::new(vec![
            Region::new("cheap", "A", 0.02, 0.09),
            Region::new("mid", "B", 0.09, 0.14),
            Region::new("pricey", "C", 0.16, 0.25),
        ])
        .unwrap()
    }

    fn clustered_workload() -> TopicWorkload {
        let mut w = TopicWorkload::new(3);
        // Two publishers near region 0 with near-identical rows.
        w.add_publisher(
            Publisher::new(ClientId(0), vec![5.0, 50.0, 90.0], MessageBatch::uniform(10, 100))
                .unwrap(),
        )
        .unwrap();
        w.add_publisher(
            Publisher::new(ClientId(1), vec![6.0, 51.0, 91.0], MessageBatch::uniform(20, 100))
                .unwrap(),
        )
        .unwrap();
        // Three subscribers near region 0, one near region 1.
        for (i, base) in [(2u64, 4.0), (3, 5.5), (4, 6.5)] {
            w.add_subscriber(
                Subscriber::new(ClientId(i), vec![base, 48.0 + base, 88.0 + base]).unwrap(),
            )
            .unwrap();
        }
        w.add_subscriber(Subscriber::new(ClientId(5), vec![55.0, 4.0, 70.0]).unwrap()).unwrap();
        w
    }

    #[test]
    fn prune_keeps_home_regions_and_cheapest() {
        let regions = regions3();
        let w = clustered_workload();
        let allowed = prune_regions(&regions, &w, &PruneOptions::default()).unwrap();
        // Region 2 is nobody's home; regions 0 and 1 are.
        assert!(allowed.contains(RegionId(0)));
        assert!(allowed.contains(RegionId(1)));
        assert!(!allowed.contains(RegionId(2)));
    }

    #[test]
    fn prune_threshold_filters_small_regions() {
        let regions = regions3();
        let w = clustered_workload();
        let options = PruneOptions { min_home_clients: 2, keep_cheapest: false };
        let allowed = prune_regions(&regions, &w, &options).unwrap();
        // Region 1 is home to only one subscriber.
        assert!(allowed.contains(RegionId(0)));
        assert!(!allowed.contains(RegionId(1)));
    }

    #[test]
    fn prune_always_yields_non_empty() {
        let regions = regions3();
        let w = clustered_workload();
        let options = PruneOptions { min_home_clients: 1_000_000, keep_cheapest: false };
        let allowed = prune_regions(&regions, &w, &options).unwrap();
        assert!(allowed.count() >= 1);
    }

    #[test]
    fn prune_rejects_empty_workload() {
        let regions = regions3();
        let w = TopicWorkload::new(3);
        assert!(prune_regions(&regions, &w, &PruneOptions::default()).is_err());
    }

    #[test]
    fn bundling_preserves_totals() {
        let w = clustered_workload();
        let bundled = bundle_clients(&w, &BundleOptions { epsilon_ms: 5.0 });
        assert!(bundled.subscriber_count() < w.subscriber_count());
        assert_eq!(bundled.subscriber_weight(), w.subscriber_weight());
        assert_eq!(bundled.total_messages(), w.total_messages());
        assert_eq!(bundled.total_deliveries(), w.total_deliveries());
        let bytes = |wl: &TopicWorkload| -> u64 {
            wl.publishers().iter().map(|p| p.batch().total_bytes()).sum()
        };
        assert_eq!(bytes(&bundled), bytes(&w));
    }

    #[test]
    fn bundling_with_zero_epsilon_is_identity_for_distinct_rows() {
        let w = clustered_workload();
        let bundled = bundle_clients(&w, &BundleOptions { epsilon_ms: 0.0 });
        assert_eq!(bundled.subscriber_count(), w.subscriber_count());
        assert_eq!(bundled.publisher_count(), w.publisher_count());
    }

    #[test]
    fn bundled_solution_close_to_exact() {
        use crate::constraint::DeliveryConstraint;
        use crate::latency::InterRegionMatrix;
        use crate::optimizer::Optimizer;
        let regions = regions3();
        let inter = InterRegionMatrix::from_rows(vec![
            vec![0.0, 40.0, 90.0],
            vec![40.0, 0.0, 120.0],
            vec![90.0, 120.0, 0.0],
        ])
        .unwrap();
        let w = clustered_workload();
        let bundled = bundle_clients(&w, &BundleOptions { epsilon_ms: 5.0 });
        let constraint = DeliveryConstraint::new(75.0, 100.0).unwrap();
        let exact = Optimizer::new(&regions, &inter, &w).unwrap().solve(&constraint);
        let approx = Optimizer::new(&regions, &inter, &bundled).unwrap().solve(&constraint);
        // Same assignment decision on this clearly separated workload.
        assert_eq!(exact.configuration(), approx.configuration());
        // Percentile may differ by at most 2×ε (publisher + subscriber side).
        assert!(
            (exact.evaluation().percentile_ms() - approx.evaluation().percentile_ms()).abs()
                <= 10.0
        );
    }
}
