//! Latency matrices: client↔region (`L`) and inter-region (`L^R`).
//!
//! All latencies are expected **one-way** delivery times in milliseconds
//! (paper §III.C). Entry `L[C][R]` holds the latency between client `C` and
//! region `R` in either direction; `L^R[Ri][Rj]` holds the latency between
//! two cloud regions, with a zero diagonal.

use crate::error::Error;
use crate::ids::RegionId;
use serde::{Deserialize, Serialize};

/// Validates that a slice of latencies has the expected width and that all
/// entries are finite and non-negative.
pub(crate) fn validate_latency_row(row: &[f64], expected: usize) -> Result<(), Error> {
    if row.len() != expected {
        return Err(Error::LatencyDimension { expected, got: row.len() });
    }
    for &value in row {
        if !value.is_finite() || value < 0.0 {
            return Err(Error::InvalidLatency { value });
        }
    }
    Ok(())
}

/// One-way latencies between every pair of cloud regions (`L^R`).
///
/// The matrix does not need to be symmetric (routes can be asymmetric), but
/// the diagonal must be zero: a region reaches itself instantly.
///
/// ```
/// use multipub_core::latency::InterRegionMatrix;
/// use multipub_core::ids::RegionId;
/// # fn main() -> Result<(), multipub_core::Error> {
/// let m = InterRegionMatrix::from_rows(vec![
///     vec![0.0, 40.0],
///     vec![42.0, 0.0],
/// ])?;
/// assert_eq!(m.latency(RegionId(0), RegionId(1)), 40.0);
/// assert_eq!(m.latency(RegionId(1), RegionId(0)), 42.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterRegionMatrix {
    n: usize,
    /// Row-major `n × n` matrix.
    values: Vec<f64>,
}

impl InterRegionMatrix {
    /// Builds the matrix from square row data.
    ///
    /// # Errors
    ///
    /// * [`Error::RegionCount`] if there are no rows or more than 32.
    /// * [`Error::NotSquare`] if any row length differs from the row count.
    /// * [`Error::InvalidLatency`] for negative/NaN/infinite entries.
    /// * [`Error::NonZeroDiagonal`] if `rows[i][i] != 0`.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, Error> {
        let n = rows.len();
        if n == 0 || n > crate::region::MAX_REGIONS {
            return Err(Error::RegionCount { got: n });
        }
        let mut values = Vec::with_capacity(n * n);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n {
                return Err(Error::NotSquare { rows: n, row_len: row.len() });
            }
            validate_latency_row(row, n)?;
            // lint:allow(indexing) validate_latency_row just confirmed row.len() == n and i enumerates 0..n
            if row[i] != 0.0 {
                // lint:allow(indexing) same bounds as the check one line up: row.len() == n and i < n
                return Err(Error::NonZeroDiagonal { region: i, value: row[i] });
            }
            values.extend_from_slice(row);
        }
        Ok(InterRegionMatrix { n, values })
    }

    /// A zero matrix for `n` regions — useful when modelling a single
    /// data-centre deployment or in tests.
    ///
    /// # Errors
    ///
    /// Returns [`Error::RegionCount`] for `n == 0` or `n > 32`.
    pub fn zeros(n: usize) -> Result<Self, Error> {
        if n == 0 || n > crate::region::MAX_REGIONS {
            return Err(Error::RegionCount { got: n });
        }
        Ok(InterRegionMatrix { n, values: vec![0.0; n * n] })
    }

    /// Number of regions covered by the matrix.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false` for a constructed matrix; provided for completeness.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// One-way latency in milliseconds from region `from` to region `to`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of bounds.
    pub fn latency(&self, from: RegionId, to: RegionId) -> f64 {
        assert!(from.index() < self.n && to.index() < self.n, "region id out of bounds");
        // lint:allow(indexing) the assert above is the documented bounds check; values holds n*n entries
        self.values[from.index() * self.n + to.index()]
    }

    /// The full row of latencies out of `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of bounds.
    pub fn row(&self, from: RegionId) -> &[f64] {
        // lint:allow(indexing) values holds n*n entries, so rows below the asserted bound always slice cleanly
        &self.values[from.index() * self.n..(from.index() + 1) * self.n]
    }

    /// Restricts the matrix to a subset of regions, renumbering them in the
    /// order given. Used by the pruning heuristics of [`crate::scaling`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::RegionCount`] if `keep` is empty, and
    /// [`Error::InvalidAssignment`] if an id is out of bounds.
    pub fn restrict(&self, keep: &[RegionId]) -> Result<Self, Error> {
        if keep.is_empty() {
            return Err(Error::RegionCount { got: 0 });
        }
        for id in keep {
            if id.index() >= self.n {
                return Err(Error::InvalidAssignment { mask: 1 << id.0, n_regions: self.n });
            }
        }
        let m = keep.len();
        let mut values = Vec::with_capacity(m * m);
        for &from in keep {
            for &to in keep {
                values.push(self.latency(from, to));
            }
        }
        Ok(InterRegionMatrix { n: m, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InterRegionMatrix {
        InterRegionMatrix::from_rows(vec![
            vec![0.0, 40.0, 90.0],
            vec![40.0, 0.0, 120.0],
            vec![90.0, 120.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn lookup_matches_rows() {
        let m = sample();
        assert_eq!(m.latency(RegionId(0), RegionId(2)), 90.0);
        assert_eq!(m.row(RegionId(1)), &[40.0, 0.0, 120.0]);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn rejects_non_square() {
        let err = InterRegionMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0]]);
        assert_eq!(err, Err(Error::NotSquare { rows: 2, row_len: 1 }));
    }

    #[test]
    fn rejects_nonzero_diagonal() {
        let err = InterRegionMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.5]]);
        assert_eq!(err, Err(Error::NonZeroDiagonal { region: 1, value: 0.5 }));
    }

    #[test]
    fn rejects_negative_latency() {
        let err = InterRegionMatrix::from_rows(vec![vec![0.0, -1.0], vec![1.0, 0.0]]);
        assert_eq!(err, Err(Error::InvalidLatency { value: -1.0 }));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(InterRegionMatrix::from_rows(vec![]), Err(Error::RegionCount { got: 0 }));
    }

    #[test]
    fn asymmetric_routes_are_allowed() {
        let m = InterRegionMatrix::from_rows(vec![vec![0.0, 10.0], vec![30.0, 0.0]]).unwrap();
        assert_eq!(m.latency(RegionId(0), RegionId(1)), 10.0);
        assert_eq!(m.latency(RegionId(1), RegionId(0)), 30.0);
    }

    #[test]
    fn zeros_matrix() {
        let m = InterRegionMatrix::zeros(4).unwrap();
        assert_eq!(m.latency(RegionId(3), RegionId(0)), 0.0);
    }

    #[test]
    fn restrict_renumbers() {
        let m = sample();
        let r = m.restrict(&[RegionId(2), RegionId(0)]).unwrap();
        assert_eq!(r.len(), 2);
        // New region 0 is old region 2.
        assert_eq!(r.latency(RegionId(0), RegionId(1)), 90.0);
        assert_eq!(r.latency(RegionId(0), RegionId(0)), 0.0);
    }

    #[test]
    fn restrict_rejects_out_of_bounds() {
        let m = sample();
        assert!(m.restrict(&[RegionId(9)]).is_err());
        assert!(m.restrict(&[]).is_err());
    }
}
