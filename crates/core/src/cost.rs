//! The bandwidth cost model (paper Eq. 3–4).
//!
//! Inbound cloud traffic is free. Costs arise from:
//!
//! * every serving region `R_i` sending each publication to its
//!   `N_S^{R_i}` local subscribers at the Internet rate `β(R_i)` —
//!   Eq. 3, identical for both modes;
//! * with routed delivery, the publisher's region `R^P` forwarding each
//!   publication to the other `N_R − 1` serving regions at the
//!   inter-region rate `α(R^P)` — the extra term of Eq. 4.
//!
//! With direct delivery the publisher's *own* uplink carries the fan-out to
//! all regions, which costs the cloud operator nothing (inbound is free) —
//! that asymmetry is exactly what MultiPub exploits.

use crate::assignment::{AssignmentVector, Configuration, DeliveryMode};
use crate::delivery::closest_region;
use crate::region::RegionSet;
use crate::workload::TopicWorkload;

/// Per-region subscriber weights `N_S^{R_i}` for a given assignment:
/// entry `i` is the number of (real) subscribers whose closest serving
/// region is region `i`. Entries for non-serving regions are 0.
pub fn subscriber_counts(workload: &TopicWorkload, assignment: AssignmentVector) -> Vec<u64> {
    let mut counts = vec![0u64; workload.n_regions()];
    for sub in workload.subscribers() {
        let region = closest_region(sub.latencies(), assignment);
        // lint:allow(indexing) counts is sized to the region count closest_region draws from
        counts[region.index()] += sub.weight();
    }
    counts
}

/// The cost in dollars of delivering **one byte** published on the topic to
/// all subscribers: `Σ_i N_S^{R_i} × β(R_i)`.
///
/// Multiplying by the total published bytes yields `Z_Direct` (Eq. 3).
pub fn fanout_rate_per_byte(regions: &RegionSet, subscriber_counts: &[u64]) -> f64 {
    // lint:allow(indexing) callers size subscriber_counts to regions.len(), the same set ids() enumerates
    regions.ids().map(|r| subscriber_counts[r.index()] as f64 * regions.beta_per_byte(r)).sum()
}

/// `Z_Direct` (Eq. 3): total cost of the fan-out from serving regions to
/// their local subscribers, over all messages of the interval.
pub fn direct_cost_dollars(
    regions: &RegionSet,
    workload: &TopicWorkload,
    assignment: AssignmentVector,
) -> f64 {
    let counts = subscriber_counts(workload, assignment);
    let rate = fanout_rate_per_byte(regions, &counts);
    let total_bytes: u64 = workload.publishers().iter().map(|p| p.batch().total_bytes()).sum();
    total_bytes as f64 * rate
}

/// The extra forwarding term of Eq. 4:
/// `Σ_P Σ_j (N_R − 1) × Ω(M_j^P) × α(R^P)`.
///
/// Zero when a single region serves the topic.
pub fn routed_forwarding_cost_dollars(
    regions: &RegionSet,
    workload: &TopicWorkload,
    assignment: AssignmentVector,
) -> f64 {
    let extra_hops = assignment.count().saturating_sub(1) as f64;
    if extra_hops == 0.0 {
        return 0.0;
    }
    workload
        .publishers()
        .iter()
        .map(|p| {
            let home = closest_region(p.latencies(), assignment);
            p.batch().total_bytes() as f64 * extra_hops * regions.alpha_per_byte(home)
        })
        .sum()
}

/// Total bandwidth cost `Z_C` in dollars of serving the topic's interval
/// traffic under `configuration` (Eq. 3 for direct, Eq. 4 for routed).
///
/// ```
/// use multipub_core::prelude::*;
/// use multipub_core::cost::topic_cost_dollars;
/// # fn main() -> Result<(), multipub_core::Error> {
/// let regions = RegionSet::new(vec![
///     Region::new("a", "A", 0.02, 0.09),
///     Region::new("b", "B", 0.09, 0.14),
/// ])?;
/// let mut w = TopicWorkload::new(2);
/// w.add_publisher(Publisher::new(
///     ClientId(0), vec![5.0, 50.0], MessageBatch::uniform(1, 1_000_000_000),
/// )?)?;
/// w.add_subscriber(Subscriber::new(ClientId(1), vec![5.0, 50.0])?)?;
/// w.add_subscriber(Subscriber::new(ClientId(2), vec![50.0, 5.0])?)?;
/// let both = AssignmentVector::all(2)?;
/// // 1 GB × (0.09 + 0.14) to the two local subscribers...
/// let direct = topic_cost_dollars(
///     &regions, &w, Configuration::new(both, DeliveryMode::Direct));
/// assert!((direct - 0.23).abs() < 1e-9);
/// // ...plus 1 GB × 0.02 forwarded from the publisher's region.
/// let routed = topic_cost_dollars(
///     &regions, &w, Configuration::new(both, DeliveryMode::Routed));
/// assert!((routed - 0.25).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn topic_cost_dollars(
    regions: &RegionSet,
    workload: &TopicWorkload,
    configuration: Configuration,
) -> f64 {
    let direct = direct_cost_dollars(regions, workload, configuration.assignment());
    match configuration.mode() {
        DeliveryMode::Direct => direct,
        DeliveryMode::Routed => {
            direct + routed_forwarding_cost_dollars(regions, workload, configuration.assignment())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;
    use crate::region::Region;
    use crate::workload::{MessageBatch, Publisher, Subscriber};

    fn regions() -> RegionSet {
        RegionSet::new(vec![
            Region::new("cheap", "A", 0.02, 0.09),
            Region::new("pricey", "B", 0.16, 0.25),
        ])
        .unwrap()
    }

    fn workload() -> TopicWorkload {
        let mut w = TopicWorkload::new(2);
        // Publisher near region 0, 10 messages × 1 KB.
        w.add_publisher(
            Publisher::new(ClientId(0), vec![5.0, 80.0], MessageBatch::uniform(10, 1000)).unwrap(),
        )
        .unwrap();
        // Two subscribers near region 0, one (weight 3) near region 1.
        w.add_subscriber(Subscriber::new(ClientId(1), vec![4.0, 70.0]).unwrap()).unwrap();
        w.add_subscriber(Subscriber::new(ClientId(2), vec![6.0, 75.0]).unwrap()).unwrap();
        w.add_subscriber(Subscriber::with_weight(ClientId(3), vec![90.0, 3.0], 3).unwrap())
            .unwrap();
        w
    }

    #[test]
    fn counts_respect_assignment_and_weights() {
        let w = workload();
        let both = AssignmentVector::all(2).unwrap();
        assert_eq!(subscriber_counts(&w, both), vec![2, 3]);
        let only0 = AssignmentVector::single(crate::ids::RegionId(0), 2).unwrap();
        assert_eq!(subscriber_counts(&w, only0), vec![5, 0]);
    }

    #[test]
    fn direct_cost_matches_hand_computation() {
        let r = regions();
        let w = workload();
        let both = AssignmentVector::all(2).unwrap();
        // bytes = 10 000; rate = 2×0.09/GB + 3×0.25/GB.
        let expected = 10_000.0 * (2.0 * 0.09 + 3.0 * 0.25) / 1e9;
        let got = direct_cost_dollars(&r, &w, both);
        assert!((got - expected).abs() < 1e-15, "{got} vs {expected}");
    }

    #[test]
    fn routed_adds_forwarding_from_home_region() {
        let r = regions();
        let w = workload();
        let both = AssignmentVector::all(2).unwrap();
        // Publisher home = region 0 (5 ms). One extra hop × α(0)=0.02/GB.
        let expected = 10_000.0 * 1.0 * 0.02 / 1e9;
        let got = routed_forwarding_cost_dollars(&r, &w, both);
        assert!((got - expected).abs() < 1e-15);
    }

    #[test]
    fn single_region_routed_equals_direct() {
        let r = regions();
        let w = workload();
        let one = AssignmentVector::single(crate::ids::RegionId(1), 2).unwrap();
        assert_eq!(routed_forwarding_cost_dollars(&r, &w, one), 0.0);
        let direct = topic_cost_dollars(&r, &w, Configuration::new(one, DeliveryMode::Direct));
        let routed = topic_cost_dollars(&r, &w, Configuration::new(one, DeliveryMode::Routed));
        assert_eq!(direct, routed);
    }

    #[test]
    fn routed_cost_never_below_direct_for_same_assignment() {
        let r = regions();
        let w = workload();
        for mask in 1u32..4 {
            let a = AssignmentVector::from_mask(mask, 2).unwrap();
            let d = topic_cost_dollars(&r, &w, Configuration::new(a, DeliveryMode::Direct));
            let rt = topic_cost_dollars(&r, &w, Configuration::new(a, DeliveryMode::Routed));
            assert!(rt >= d);
        }
    }

    #[test]
    fn no_messages_no_cost() {
        let r = regions();
        let mut w = TopicWorkload::new(2);
        w.add_publisher(
            Publisher::new(ClientId(0), vec![1.0, 2.0], MessageBatch::empty()).unwrap(),
        )
        .unwrap();
        w.add_subscriber(Subscriber::new(ClientId(1), vec![1.0, 2.0]).unwrap()).unwrap();
        let both = AssignmentVector::all(2).unwrap();
        assert_eq!(topic_cost_dollars(&r, &w, Configuration::new(both, DeliveryMode::Routed)), 0.0);
    }
}
