//! Per-topic delivery-time constraints `<ratio_T, max_T>`.

use crate::error::Error;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A per-topic delivery constraint (paper §II-A).
///
/// `DeliveryConstraint::new(95.0, 200.0)` requires 95 % of all publication
/// deliveries on the topic to complete within 200 ms.
///
/// ```
/// use multipub_core::constraint::DeliveryConstraint;
/// # fn main() -> Result<(), multipub_core::Error> {
/// let c = DeliveryConstraint::new(75.0, 150.0)?;
/// assert!(c.is_met_by(150.0));
/// assert!(!c.is_met_by(150.1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeliveryConstraint {
    ratio_percent: f64,
    max_ms: f64,
}

impl DeliveryConstraint {
    /// Creates a constraint requiring `ratio_percent` % of messages to be
    /// delivered within `max_ms` milliseconds.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidRatio`] unless `0 < ratio_percent <= 100`.
    /// * [`Error::InvalidBound`] unless `max_ms` is positive and finite.
    pub fn new(ratio_percent: f64, max_ms: f64) -> Result<Self, Error> {
        if !(ratio_percent > 0.0 && ratio_percent <= 100.0) {
            return Err(Error::InvalidRatio { value: ratio_percent });
        }
        if !(max_ms > 0.0 && max_ms.is_finite()) {
            return Err(Error::InvalidBound { value: max_ms });
        }
        Ok(DeliveryConstraint { ratio_percent, max_ms })
    }

    /// The required percentile (`ratio_T`), in percent.
    pub fn ratio_percent(self) -> f64 {
        self.ratio_percent
    }

    /// The delivery-time bound (`max_T`), in milliseconds.
    pub fn max_ms(self) -> f64 {
        self.max_ms
    }

    /// Returns a copy with a different bound, keeping the ratio. Handy for
    /// the `max_T` sweeps of the paper's experiments.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidBound`] unless `max_ms` is positive and finite.
    pub fn with_max_ms(self, max_ms: f64) -> Result<Self, Error> {
        Self::new(self.ratio_percent, max_ms)
    }

    /// Whether a delivery-time percentile satisfies the bound (Eq. 6:
    /// `D̃_C <= max_T`).
    pub fn is_met_by(self, percentile_ms: f64) -> bool {
        percentile_ms <= self.max_ms
    }

    /// The 1-based rank `n^T = ceil(ratio/100 × total)` of the percentile
    /// entry within a sorted list of `total` delivery times (Eq. 5).
    ///
    /// Returns 0 when `total` is 0 (no messages → trivially feasible).
    pub fn rank(self, total: u64) -> u64 {
        (self.ratio_percent / 100.0 * total as f64).ceil() as u64
    }
}

impl fmt::Display for DeliveryConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}%, {} ms>", self.ratio_percent, self.max_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_ratio() {
        assert!(DeliveryConstraint::new(0.0, 100.0).is_err());
        assert!(DeliveryConstraint::new(-5.0, 100.0).is_err());
        assert!(DeliveryConstraint::new(100.5, 100.0).is_err());
        assert!(DeliveryConstraint::new(f64::NAN, 100.0).is_err());
        assert!(DeliveryConstraint::new(100.0, 100.0).is_ok());
    }

    #[test]
    fn validates_bound() {
        assert!(DeliveryConstraint::new(95.0, 0.0).is_err());
        assert!(DeliveryConstraint::new(95.0, -1.0).is_err());
        assert!(DeliveryConstraint::new(95.0, f64::INFINITY).is_err());
    }

    #[test]
    fn rank_uses_ceiling() {
        let c = DeliveryConstraint::new(75.0, 100.0).unwrap();
        // ceil(0.75 × 10) = 8 → the 8th smallest value.
        assert_eq!(c.rank(10), 8);
        // ceil(0.75 × 4) = 3.
        assert_eq!(c.rank(4), 3);
        assert_eq!(c.rank(0), 0);
        let full = DeliveryConstraint::new(100.0, 100.0).unwrap();
        assert_eq!(full.rank(7), 7);
    }

    #[test]
    fn rank_is_monotone_in_total() {
        let c = DeliveryConstraint::new(95.0, 100.0).unwrap();
        let mut prev = 0;
        for total in 0..1000 {
            let r = c.rank(total);
            assert!(r >= prev);
            assert!(r <= total);
            prev = r;
        }
    }

    #[test]
    fn with_max_ms_keeps_ratio() {
        let c = DeliveryConstraint::new(75.0, 100.0).unwrap();
        let d = c.with_max_ms(180.0).unwrap();
        assert_eq!(d.ratio_percent(), 75.0);
        assert_eq!(d.max_ms(), 180.0);
    }

    #[test]
    fn display_format() {
        let c = DeliveryConstraint::new(95.0, 200.0).unwrap();
        assert_eq!(c.to_string(), "<95%, 200 ms>");
    }
}
