//! Property tests for the histogram invariants: bucket containment,
//! quantile monotonicity, merge additivity, and agreement between the
//! bucketed quantile and the exact ceiling-rank percentile.

use multipub_obs::histogram::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, Histogram, HistogramSnapshot,
};
use multipub_obs::quantile::{ceiling_rank, percentile_exact};
use proptest::prelude::*;

fn snapshot_of(values: &[f64]) -> HistogramSnapshot {
    let histogram = Histogram::new();
    for &value in values {
        histogram.record(value);
    }
    histogram.snapshot()
}

proptest! {
    /// A recorded value always falls in a bucket whose bounds contain it.
    #[test]
    fn recorded_value_falls_in_containing_bucket(value in -1.0e3f64..1.0e9) {
        let index = bucket_index(value);
        prop_assert!(value > bucket_lower_bound(index), "index {index}");
        prop_assert!(value <= bucket_upper_bound(index), "index {index}");
    }

    /// Quantiles are monotone in q.
    #[test]
    fn quantiles_are_monotone_in_q(
        values in proptest::collection::vec(0.0f64..1.0e7, 1..200),
        mut qs in proptest::collection::vec(0.0f64..=100.0, 2..10),
    ) {
        let snapshot = snapshot_of(&values);
        qs.sort_unstable_by(f64::total_cmp);
        let estimates: Vec<f64> = qs.iter().map(|q| snapshot.quantile(*q)).collect();
        for pair in estimates.windows(2) {
            prop_assert!(pair[0] <= pair[1], "{estimates:?}");
        }
    }

    /// merge(a, b) has count(a) + count(b) observations, bucket by bucket.
    #[test]
    fn merge_count_is_sum_of_counts(
        a in proptest::collection::vec(0.0f64..1.0e7, 0..100),
        b in proptest::collection::vec(0.0f64..1.0e7, 0..100),
    ) {
        let snapshot_a = snapshot_of(&a);
        let snapshot_b = snapshot_of(&b);
        let merged = snapshot_a.merge(&snapshot_b);
        prop_assert_eq!(merged.count(), snapshot_a.count() + snapshot_b.count());
        prop_assert_eq!(merged.buckets().iter().sum::<u64>(), (a.len() + b.len()) as u64);
        prop_assert!((merged.sum_ms() - (snapshot_a.sum_ms() + snapshot_b.sum_ms())).abs() < 1e-6);
    }

    /// The bucketed quantile brackets the exact ceiling-rank percentile
    /// from above, within one bucket factor (2^(1/4)).
    #[test]
    fn histogram_quantile_brackets_exact_percentile(
        values in proptest::collection::vec(0.001f64..1.0e6, 1..100),
        q in 0.1f64..100.0,
    ) {
        let snapshot = snapshot_of(&values);
        let mut sorted = values.clone();
        let exact = percentile_exact(&mut sorted, q);
        let estimate = snapshot.quantile(q);
        prop_assert!(estimate >= exact, "estimate {estimate} < exact {exact}");
        prop_assert!(estimate <= exact * 1.19, "estimate {estimate} > exact {exact} × 2^¼");
    }

    /// The ceiling rank is monotone in the ratio and always in [1, n].
    #[test]
    fn ceiling_rank_is_monotone_and_bounded(
        count in 1u64..10_000,
        lo in 0.0f64..=100.0,
        hi in 0.0f64..=100.0,
    ) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let rank_lo = ceiling_rank(lo, count);
        let rank_hi = ceiling_rank(hi, count);
        prop_assert!(rank_lo <= rank_hi);
        prop_assert!((1..=count).contains(&rank_lo));
        prop_assert!((1..=count).contains(&rank_hi));
    }
}
