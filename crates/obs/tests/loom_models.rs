//! Exhaustive loom models of the obs crate's lock-free paths.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`; a normal `cargo test`
//! sees an empty test binary. The CI loom job appends the loom
//! dependency to this crate's manifest transiently (it is not declared
//! in `Cargo.toml` so the workspace builds on a bare toolchain) and
//! runs:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p multipub-obs --test loom_models --release
//! ```
//!
//! Each `loom::model` closure is executed once per possible thread
//! interleaving of the `crate::sync` primitives, exhaustively. The
//! interesting interleavings are:
//!
//! * registry registration: the read-then-upgrade-to-write dance in
//!   `Registry::counter` must hand every racing thread a handle to the
//!   *same* underlying counter (no lost registrations),
//! * counter/gauge/histogram recording racing a snapshot: totals must
//!   be exact once all writers join, and a concurrent snapshot sees
//!   only values that some prefix of the writes could have produced
//!   (`Histogram::snapshot` documents itself as approximately
//!   consistent under concurrent recording — the models pin down what
//!   "approximately" is allowed to mean),
//! * timer RAII: drops racing on one histogram all land.

#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;
use multipub_obs::{Histogram, HistogramTimer, Registry};

/// Two threads race to register and bump the same counter name: the
/// read-miss → write-lock upgrade in `Registry::counter` must not
/// create two counters (a lost update would drop one thread's
/// increments).
#[test]
fn registry_registration_race_yields_one_counter() {
    loom::model(|| {
        let registry = Arc::new(Registry::new());
        let writer = {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                registry.counter("multipub_loom_race_total").inc();
            })
        };
        registry.counter("multipub_loom_race_total").inc();
        writer.join().expect("writer thread");
        assert_eq!(registry.counter("multipub_loom_race_total").get(), 2);
    });
}

/// Registering two *different* metrics concurrently must keep both.
#[test]
fn concurrent_distinct_registrations_both_survive() {
    loom::model(|| {
        let registry = Arc::new(Registry::new());
        let writer = {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                registry.counter("multipub_loom_a_total").inc();
            })
        };
        registry.gauge("multipub_loom_b_active").set(7);
        writer.join().expect("writer thread");
        assert_eq!(registry.counter("multipub_loom_a_total").get(), 1);
        assert_eq!(registry.gauge("multipub_loom_b_active").get(), 7);
    });
}

/// A snapshot taken while a writer is mid-flight sees a prefix of the
/// writer's increments (0 or 1 here), and the final state is exact.
#[test]
fn snapshot_races_with_counter_increments() {
    loom::model(|| {
        let registry = Arc::new(Registry::new());
        let counter = registry.counter("multipub_loom_snap_total");
        let writer = {
            let counter = Arc::clone(&counter);
            thread::spawn(move || {
                counter.inc();
            })
        };
        let observed = registry.snapshot();
        let mid = observed.counters.get("multipub_loom_snap_total").copied().unwrap_or(0);
        assert!(mid <= 1, "snapshot saw {mid} increments of 1");
        writer.join().expect("writer thread");
        assert_eq!(counter.get(), 1);
    });
}

/// Gauge add/sub from two threads cancel exactly.
#[test]
fn gauge_add_sub_race_cancels() {
    loom::model(|| {
        let registry = Arc::new(Registry::new());
        let gauge = registry.gauge("multipub_loom_conns_active");
        let adder = {
            let gauge = Arc::clone(&gauge);
            thread::spawn(move || {
                gauge.add(1);
            })
        };
        gauge.sub(1);
        adder.join().expect("adder thread");
        assert_eq!(gauge.get(), 0);
    });
}

/// Two racing `record` calls on one histogram: a mid-flight snapshot
/// sees at most one observation in each field (never a torn value like
/// a double-counted bucket), and once the writer joins, count, bucket
/// total and max all converge exactly.
#[test]
fn histogram_concurrent_record_and_snapshot() {
    loom::model(|| {
        let histogram = Arc::new(Histogram::new());
        let writer = {
            let histogram = Arc::clone(&histogram);
            thread::spawn(move || {
                histogram.record(1.0);
            })
        };
        let snapshot = histogram.snapshot();
        assert!(snapshot.count() <= 1, "mid-flight count beyond the single write");
        assert!(
            snapshot.buckets().iter().sum::<u64>() <= 1,
            "mid-flight bucket total beyond the single write"
        );
        writer.join().expect("writer thread");
        histogram.record(2_000_000_000.0); // overflow bucket
        let done = histogram.snapshot();
        assert_eq!(done.count(), 2);
        assert_eq!(done.buckets().iter().sum::<u64>(), 2);
        assert!(done.max_ms() >= 2_000_000_000.0 - 1.0);
    });
}

/// Timer RAII: two timers dropped by racing threads both record.
#[test]
fn timer_drops_race_and_both_record() {
    loom::model(|| {
        let histogram = Arc::new(Histogram::new());
        let dropper = {
            let histogram = Arc::clone(&histogram);
            thread::spawn(move || {
                drop(HistogramTimer::new(Arc::clone(&histogram)));
            })
        };
        drop(HistogramTimer::new(Arc::clone(&histogram)));
        dropper.join().expect("dropper thread");
        assert_eq!(histogram.count(), 2);
    });
}
