//! Ceiling-rank percentile math, shared between the simulator's exact
//! reports and the histogram's bucketed quantiles.
//!
//! The paper's Eq. 5 defines the delivery percentile as the value at
//! the **ceiling rank**: for a population of `n` samples and a ratio
//! `r` percent, the rank is `ceil(r/100 × n)`, clamped to `[1, n]`.
//! Both [`percentile_exact`] (over raw samples) and
//! [`crate::HistogramSnapshot::quantile`] (over bucket counts) use the
//! same [`ceiling_rank`] so the sim and live paths agree on percentile
//! semantics.

/// The 1-based ceiling rank of the `ratio_percent`-th percentile in a
/// population of `count` samples (Eq. 5). Returns 0 when `count` is 0.
///
/// Out-of-range or non-finite ratios are clamped: anything at or below
/// zero ranks first, anything at or above 100 ranks last.
pub fn ceiling_rank(ratio_percent: f64, count: u64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = (ratio_percent / 100.0 * count as f64).ceil();
    // `as u64` saturates: negatives and NaN become 0, huge values u64::MAX.
    (rank as u64).clamp(1, count)
}

/// Exact ceiling-rank percentile over raw samples; sorts `values` in
/// place (total order, so NaN samples sort last). Returns 0.0 for an
/// empty slice.
pub fn percentile_exact(values: &mut [f64], ratio_percent: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_unstable_by(f64::total_cmp);
    let rank = ceiling_rank(ratio_percent, values.len() as u64) as usize;
    // lint:allow(indexing) ceiling_rank returns 1..=len for the non-empty slice checked above
    values[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceiling_rank_matches_eq5() {
        // ceil(0.75 × 4) = 3.
        assert_eq!(ceiling_rank(75.0, 4), 3);
        assert_eq!(ceiling_rank(100.0, 4), 4);
        assert_eq!(ceiling_rank(1.0, 4), 1);
        // Clamping.
        assert_eq!(ceiling_rank(0.0, 4), 1);
        assert_eq!(ceiling_rank(-5.0, 4), 1);
        assert_eq!(ceiling_rank(250.0, 4), 4);
        assert_eq!(ceiling_rank(f64::NAN, 4), 1);
        assert_eq!(ceiling_rank(95.0, 0), 0);
    }

    #[test]
    fn percentile_exact_matches_sim_report_pins() {
        // The same cases `SimReport::percentile_ms` pins in netsim.
        let mut values = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_exact(&mut values, 75.0), 30.0);
        assert_eq!(percentile_exact(&mut values, 100.0), 40.0);
        assert_eq!(percentile_exact(&mut values, 1.0), 10.0);
    }

    #[test]
    fn percentile_exact_sorts_unsorted_input() {
        let mut values = [40.0, 10.0, 30.0, 20.0];
        assert_eq!(percentile_exact(&mut values, 50.0), 20.0);
        assert_eq!(values, [10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn percentile_exact_empty_is_zero() {
        assert_eq!(percentile_exact(&mut [], 95.0), 0.0);
    }
}
