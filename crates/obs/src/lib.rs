//! Observability layer for the MultiPub workspace: metrics, latency
//! histograms and structured logging, with **zero external
//! dependencies** (std only).
//!
//! MultiPub's controller re-optimizes topics continuously from live
//! measurements (§III.A4–A5 of the paper); the percentile constraint
//! `<ratio_T, max_T>` makes tail latency a first-class signal. This
//! crate is the measurement substrate for that: every crate in the
//! workspace records into one global, lock-free registry, and the
//! binaries expose it as Prometheus text or a JSON snapshot.
//!
//! # Metrics
//!
//! Metrics are named `multipub_<crate>_<name>` and are registered on
//! first use. The hot path is a single relaxed atomic operation; the
//! [`counter!`], [`gauge!`] and [`histogram!`] macros cache the
//! registry lookup in a per-call-site static:
//!
//! ```
//! multipub_obs::counter!("multipub_example_requests_total").inc();
//! multipub_obs::histogram!("multipub_example_latency_ms").record(1.25);
//! let _timer = multipub_obs::timer!("multipub_example_solve_ms");
//! // ... timed section; the elapsed milliseconds are recorded on drop.
//! ```
//!
//! # Logging
//!
//! [`event!`] emits leveled, structured key=value lines to stderr,
//! filtered by the `MULTIPUB_LOG` environment variable (e.g.
//! `MULTIPUB_LOG=info`, `MULTIPUB_LOG=broker=debug,warn`):
//!
//! ```
//! multipub_obs::event!(Info, "example", msg = "client connected", client_id = 7);
//! ```
//!
//! # Exposition
//!
//! [`Registry::render_prometheus`] produces the Prometheus text format
//! (histograms include cumulative `_bucket` series plus
//! p50/p90/p99/p999 quantile lines); [`Registry::render_json`]
//! produces a JSON snapshot suitable for in-band transport (the
//! broker's `StatsSnapshot` frame).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod histogram;
pub mod log;
pub mod metrics;
pub mod quantile;
pub mod registry;
mod sync;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot, HistogramTimer};
pub use log::{Level, LogFilter};
#[cfg(not(loom))]
pub use registry::registry;
pub use registry::{Counter, Gauge, Registry, RegistrySnapshot};

/// Returns a `&'static` handle to a named counter on the global
/// registry, caching the lookup in a per-call-site static.
///
/// ```
/// multipub_obs::counter!("multipub_example_frames_total").add(3);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// Returns a `&'static` handle to a named gauge on the global
/// registry, caching the lookup in a per-call-site static.
///
/// ```
/// multipub_obs::gauge!("multipub_example_connections").add(1);
/// multipub_obs::gauge!("multipub_example_connections").sub(1);
/// ```
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// Returns a `&'static` handle to a named histogram on the global
/// registry, caching the lookup in a per-call-site static.
///
/// ```
/// multipub_obs::histogram!("multipub_example_delivery_ms").record(42.0);
/// ```
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::registry().histogram($name))
    }};
}

/// Starts an RAII scoped timer against a named histogram on the global
/// registry; the elapsed wall-time in milliseconds is recorded when the
/// returned guard drops.
///
/// ```
/// {
///     let _timer = multipub_obs::timer!("multipub_example_round_ms");
///     // ... timed work ...
/// } // recorded here
/// ```
#[macro_export]
macro_rules! timer {
    ($name:expr) => {
        $crate::HistogramTimer::new(::std::sync::Arc::clone($crate::histogram!($name)))
    };
}

/// Emits a leveled, structured log event to stderr if `MULTIPUB_LOG`
/// enables `$level` for `$target`.
///
/// The first argument is a [`Level`] variant name (`Error`, `Warn`,
/// `Info`, `Debug`, `Trace`), the second the target string (by
/// convention the crate or subsystem name), followed by `key = value`
/// fields rendered with [`std::fmt::Display`]:
///
/// ```
/// multipub_obs::event!(Warn, "broker", msg = "peer unreachable", region = 3);
/// ```
#[macro_export]
macro_rules! event {
    ($level:ident, $target:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        let level = $crate::Level::$level;
        if $crate::log::log_enabled(level, $target) {
            $crate::log::log_emit(level, $target, &[
                $( (stringify!($key), ::std::string::ToString::to_string(&$value)) ),*
            ]);
        }
    }};
}
