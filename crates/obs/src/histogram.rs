//! Log-bucketed latency histogram with atomic recording and
//! ceiling-rank quantile export.
//!
//! Values (milliseconds, `f64`) land in geometric buckets whose upper
//! bounds grow by `2^(1/4)` per bucket — four sub-buckets per octave,
//! bounding the relative quantile error at ≈19 % per octave / 4 ≈ 4.4 %.
//! The finite bounds span 1 µs to ≈4.7 h; larger values fall into an
//! overflow bucket whose representative is the observed maximum.
//! Recording is a handful of relaxed atomic adds plus a binary search
//! over 136 bounds, so histograms are safe on broker hot paths.

use std::sync::OnceLock;
use std::time::Instant;

use crate::quantile::ceiling_rank;
use crate::sync::{Arc, AtomicU64, Ordering};

/// Number of finite geometric buckets.
const FINITE_BUCKETS: usize = 136;

/// Total bucket count, including the overflow (`+Inf`) bucket.
pub const BUCKET_COUNT: usize = FINITE_BUCKETS + 1;

/// Upper bound of the first bucket, in milliseconds (1 µs).
const FIRST_BOUND_MS: f64 = 0.001;

/// Finite bucket upper bounds, strictly increasing.
fn bounds() -> &'static [f64; FINITE_BUCKETS] {
    static BOUNDS: OnceLock<[f64; FINITE_BUCKETS]> = OnceLock::new();
    BOUNDS.get_or_init(|| {
        let ratio = 2f64.powf(0.25);
        let mut bounds = [0.0; FINITE_BUCKETS];
        let mut bound = FIRST_BOUND_MS;
        for slot in bounds.iter_mut() {
            *slot = bound;
            bound *= ratio;
        }
        bounds
    })
}

/// The bucket a value falls into. Bucket `i` covers the half-open
/// interval `(bucket_lower_bound(i), bucket_upper_bound(i)]`; bucket 0
/// also absorbs zero and negative values, and the last bucket absorbs
/// everything above the largest finite bound.
pub fn bucket_index(value_ms: f64) -> usize {
    let bounds = bounds();
    let first = bounds.first().copied().unwrap_or(FIRST_BOUND_MS);
    let last = bounds.last().copied().unwrap_or(FIRST_BOUND_MS);
    if value_ms <= first {
        return 0;
    }
    if value_ms > last {
        return FINITE_BUCKETS;
    }
    bounds.partition_point(|bound| *bound < value_ms)
}

/// The inclusive upper bound of a bucket in milliseconds
/// (`f64::INFINITY` for the overflow bucket).
///
/// # Panics
///
/// Panics if `index >= BUCKET_COUNT`.
pub fn bucket_upper_bound(index: usize) -> f64 {
    assert!(index < BUCKET_COUNT, "bucket index out of range");
    bounds().get(index).copied().unwrap_or(f64::INFINITY)
}

/// The exclusive lower bound of a bucket in milliseconds
/// (`f64::NEG_INFINITY` for bucket 0, which absorbs non-positive
/// values).
///
/// # Panics
///
/// Panics if `index >= BUCKET_COUNT`.
pub fn bucket_lower_bound(index: usize) -> f64 {
    assert!(index < BUCKET_COUNT, "bucket index out of range");
    match index.checked_sub(1) {
        None => f64::NEG_INFINITY,
        Some(below) => bounds().get(below).copied().unwrap_or(f64::INFINITY),
    }
}

fn to_micros(value_ms: f64) -> u64 {
    if value_ms <= 0.0 {
        0
    } else {
        // `as` saturates at u64::MAX for huge values.
        (value_ms * 1000.0).round() as u64
    }
}

/// A concurrent log-bucketed histogram of millisecond values.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }

    /// Records one observation in milliseconds. NaN is ignored.
    pub fn record(&self, value_ms: f64) {
        if value_ms.is_nan() {
            return;
        }
        let index = bucket_index(value_ms);
        if let Some(bucket) = self.buckets.get(index) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        let micros = to_micros(value_ms);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the histogram state.
    ///
    /// Concurrent recording makes the copy only approximately
    /// consistent (a racing `record` may be half-applied), which is
    /// fine for monitoring.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum_micros: u64,
    max_micros: u64,
}

impl HistogramSnapshot {
    /// A snapshot with no observations.
    pub fn empty() -> Self {
        HistogramSnapshot { buckets: vec![0; BUCKET_COUNT], count: 0, sum_micros: 0, max_micros: 0 }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations in milliseconds (microsecond
    /// resolution).
    pub fn sum_ms(&self) -> f64 {
        self.sum_micros as f64 / 1000.0
    }

    /// The largest recorded observation in milliseconds (microsecond
    /// resolution; 0.0 when empty).
    pub fn max_ms(&self) -> f64 {
        self.max_micros as f64 / 1000.0
    }

    /// Per-bucket observation counts, indexed like
    /// [`bucket_upper_bound`].
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// The ceiling-rank `ratio_percent` quantile, reported as the
    /// upper bound of the bucket holding the ranked observation (the
    /// observed maximum for the overflow bucket). 0.0 when empty.
    ///
    /// Monotone in `ratio_percent`, and never underestimates by more
    /// than one bucket width (≈4.4 % relative).
    pub fn quantile(&self, ratio_percent: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ceiling_rank(ratio_percent, self.count);
        let mut cumulative = 0u64;
        for (index, bucket_count) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(*bucket_count);
            if cumulative >= rank {
                return if index == BUCKET_COUNT - 1 {
                    // Keep quantiles monotone even when micro-rounding
                    // pulls the observed max below the last finite bound.
                    self.max_ms().max(bucket_upper_bound(FINITE_BUCKETS - 1))
                } else {
                    bucket_upper_bound(index)
                };
            }
        }
        self.max_ms()
    }

    /// Merges two snapshots: bucket counts and sums add, the maximum
    /// is the larger of the two.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a.saturating_add(*b))
                .collect(),
            count: self.count.saturating_add(other.count),
            sum_micros: self.sum_micros.saturating_add(other.sum_micros),
            max_micros: self.max_micros.max(other.max_micros),
        }
    }
}

/// RAII timer: records the elapsed wall-time in milliseconds into a
/// histogram when dropped. See the [`crate::timer!`] macro.
#[derive(Debug)]
pub struct HistogramTimer {
    histogram: Arc<Histogram>,
    start: Instant,
}

impl HistogramTimer {
    /// Starts timing against `histogram`.
    pub fn new(histogram: Arc<Histogram>) -> Self {
        HistogramTimer { histogram, start: Instant::now() }
    }

    /// Milliseconds elapsed so far.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1000.0
    }
}

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        self.histogram.record(self.elapsed_ms());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_increasing() {
        let bounds = bounds();
        for pair in bounds.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        assert_eq!(bounds[0], FIRST_BOUND_MS);
        // Four sub-buckets per octave: bounds 4 apart double.
        assert!((bounds[4] / bounds[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn values_fall_inside_their_bucket() {
        for value in [0.0, -1.0, 0.0005, 0.001, 0.0011, 1.0, 37.5, 250.0, 1e6, 1e9] {
            let index = bucket_index(value);
            assert!(value > bucket_lower_bound(index), "value {value} index {index}");
            assert!(value <= bucket_upper_bound(index), "value {value} index {index}");
        }
    }

    #[test]
    fn record_and_count() {
        let histogram = Histogram::new();
        histogram.record(1.0);
        histogram.record(2.0);
        histogram.record(f64::NAN); // ignored
        assert_eq!(histogram.count(), 2);
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count(), 2);
        assert!((snapshot.sum_ms() - 3.0).abs() < 1e-9);
        assert!((snapshot.max_ms() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_bracket_the_sample() {
        let histogram = Histogram::new();
        for _ in 0..100 {
            histogram.record(10.0);
        }
        let snapshot = histogram.snapshot();
        for q in [50.0, 90.0, 99.0, 99.9] {
            let estimate = snapshot.quantile(q);
            // Within one bucket (2^(1/4) ≈ 1.19×) above the true value.
            assert!(estimate >= 10.0, "q{q} = {estimate}");
            assert!(estimate <= 10.0 * 1.19, "q{q} = {estimate}");
        }
    }

    #[test]
    fn quantile_orders_two_modes() {
        let histogram = Histogram::new();
        for _ in 0..90 {
            histogram.record(1.0);
        }
        for _ in 0..10 {
            histogram.record(100.0);
        }
        let snapshot = histogram.snapshot();
        assert!(snapshot.quantile(50.0) < 2.0);
        assert!(snapshot.quantile(99.0) >= 100.0);
        assert!(snapshot.quantile(99.0) <= 119.0);
    }

    #[test]
    fn overflow_bucket_reports_observed_max() {
        let histogram = Histogram::new();
        histogram.record(1e9); // far above the largest finite bound
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.buckets()[BUCKET_COUNT - 1], 1);
        assert!((snapshot.quantile(99.0) - 1e9).abs() / 1e9 < 1e-6);
    }

    #[test]
    fn empty_snapshot_quantile_is_zero() {
        assert_eq!(HistogramSnapshot::empty().quantile(95.0), 0.0);
    }

    #[test]
    fn merge_adds_counts_and_keeps_max() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(1.0);
        a.record(2.0);
        b.record(500.0);
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.count(), 3);
        assert!((merged.sum_ms() - 503.0).abs() < 1e-9);
        assert!((merged.max_ms() - 500.0).abs() < 1e-9);
        assert_eq!(merged.buckets().iter().sum::<u64>(), 3);
    }

    #[test]
    fn timer_records_on_drop() {
        let histogram = Arc::new(Histogram::new());
        {
            let _timer = HistogramTimer::new(Arc::clone(&histogram));
        }
        assert_eq!(histogram.count(), 1);
    }
}
