//! The single catalog of every metric name in the workspace.
//!
//! All `counter!`/`gauge!`/`histogram!`/`timer!` call sites must
//! reference one of these constants — `cargo xtask lint` (pass L4)
//! rejects raw string literals, names missing from this file, and any
//! drift between this catalog and the README metrics table. Renaming a
//! metric therefore touches exactly one string, and dashboards can be
//! generated from [`CATALOG`].

/// What a metric measures, mirroring the registry's metric kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Value that can go up and down.
    Gauge,
    /// Distribution (latency histograms, fan-out sizes).
    Histogram,
}

/// One catalog entry: the wire name, its kind and a help string for
/// exposition.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// Prometheus-style metric name (`multipub_<crate>_<name>`).
    pub name: &'static str,
    /// Metric kind.
    pub kind: MetricKind,
    /// Short human-readable description.
    pub help: &'static str,
}

// --- core (optimizer) ---------------------------------------------------

/// Optimizer invocations.
pub const CORE_SOLVES_TOTAL: &str = "multipub_core_solves_total";
/// Wall-time of one `Optimizer::solve` call.
pub const CORE_SOLVE_MS: &str = "multipub_core_solve_ms";
/// Candidate configurations scored by the exhaustive solver.
pub const CORE_CONFIGS_EVALUATED_TOTAL: &str = "multipub_core_configs_evaluated_total";
/// Regions removed by the scaling pre-pass before solving.
pub const CORE_REGIONS_PRUNED_TOTAL: &str = "multipub_core_regions_pruned_total";

// --- broker -------------------------------------------------------------

/// Frames written to the wire.
pub const BROKER_FRAMES_ENCODED_TOTAL: &str = "multipub_broker_frames_encoded_total";
/// Frames successfully parsed off the wire.
pub const BROKER_FRAMES_DECODED_TOTAL: &str = "multipub_broker_frames_decoded_total";
/// Frames rejected by the codec.
pub const BROKER_CODEC_ERRORS_TOTAL: &str = "multipub_broker_codec_errors_total";
/// Topic-assignment updates applied from the controller.
pub const BROKER_CONFIG_UPDATES_TOTAL: &str = "multipub_broker_config_updates_total";
/// Publish frames accepted from clients.
pub const BROKER_PUBLISHES_TOTAL: &str = "multipub_broker_publishes_total";
/// Publishes relayed via the topic's pub-broker.
pub const BROKER_PUBLISH_ROUTED_TOTAL: &str = "multipub_broker_publish_routed_total";
/// Publishes delivered without an extra relay hop.
pub const BROKER_PUBLISH_DIRECT_TOTAL: &str = "multipub_broker_publish_direct_total";
/// Frames forwarded broker-to-broker.
pub const BROKER_FORWARDS_TOTAL: &str = "multipub_broker_forwards_total";
/// Messages handed to subscriber connections.
pub const BROKER_DELIVERIES_TOTAL: &str = "multipub_broker_deliveries_total";
/// Subscribers reached per publish (fan-out size).
pub const BROKER_FANOUT_SUBSCRIBERS: &str = "multipub_broker_fanout_subscribers";
/// End-to-end publish→deliver latency.
pub const BROKER_DELIVERY_MS: &str = "multipub_broker_delivery_ms";
/// Client connections accepted since start.
pub const BROKER_CONNECTIONS_TOTAL: &str = "multipub_broker_connections_total";
/// Currently connected clients.
pub const BROKER_CONNECTIONS_ACTIVE: &str = "multipub_broker_connections_active";
/// Subscribe requests handled.
pub const BROKER_SUBSCRIBES_TOTAL: &str = "multipub_broker_subscribes_total";
/// Connections reaped by the liveness sweep.
pub const BROKER_CONN_REAPED_TOTAL: &str = "multipub_broker_conn_reaped_total";
/// Bytes queued across all of the broker's outbound connection queues.
pub const BROKER_QUEUED_BYTES: &str = "multipub_broker_queued_bytes";
/// Frames queued across all of the broker's outbound connection queues.
pub const BROKER_QUEUED_FRAMES: &str = "multipub_broker_queued_frames";
/// `1` while the broker sheds publishes (in-flight byte budget tripped).
pub const BROKER_OVERLOADED: &str = "multipub_broker_overloaded";
/// Transitions into the overloaded state.
pub const BROKER_OVERLOAD_ENTERED_TOTAL: &str = "multipub_broker_overload_entered_total";
/// Data frames evicted from full outbound queues (`DropOldest`).
pub const BROKER_SLOW_EVICTIONS_TOTAL: &str = "multipub_broker_slow_evictions_total";
/// Data frames dropped at full outbound queues (`DropNewest`, expired
/// `Block` deadlines).
pub const BROKER_SLOW_DROPS_TOTAL: &str = "multipub_broker_slow_drops_total";
/// Connections severed by the `Disconnect` slow-consumer policy.
pub const BROKER_SLOW_DISCONNECTS_TOTAL: &str = "multipub_broker_slow_disconnects_total";
/// Publishes refused with a `Busy` NACK by admission control.
pub const BROKER_BUSY_REJECTIONS_TOTAL: &str = "multipub_broker_busy_rejections_total";
/// Publishes routed through the sharded subscription registry.
pub const BROKER_SHARD_PUBLISHES_TOTAL: &str = "multipub_broker_shard_publishes_total";
/// Encoded bytes handed to subscriber queues by the most recent
/// zero-copy fan-out.
pub const BROKER_FANOUT_BYTES: &str = "multipub_broker_fanout_bytes";
/// Traced-message time from the publisher stamp to admission control
/// passing (includes publisher→broker network transit).
pub const BROKER_STAGE_ADMISSION_MS: &str = "multipub_broker_stage_admission_ms";
/// Traced-message time spent in shard snapshot, filter match and
/// encode.
pub const BROKER_STAGE_MATCH_MS: &str = "multipub_broker_stage_match_ms";
/// Traced-message residency in the outbound flow queue.
pub const BROKER_STAGE_QUEUE_MS: &str = "multipub_broker_stage_queue_ms";
/// Traced-message wait from queue pop to the vectored write starting.
pub const BROKER_STAGE_WRITE_MS: &str = "multipub_broker_stage_write_ms";
/// Traced-message time from write start to client-side receipt
/// (includes broker→subscriber network transit).
pub const BROKER_STAGE_DELIVER_MS: &str = "multipub_broker_stage_deliver_ms";
/// QoS 1 publishes recognized as duplicate retransmits by the
/// per-publisher dedup window (re-acked, not re-fanned-out).
pub const BROKER_DEDUP_HITS_TOTAL: &str = "multipub_broker_dedup_hits_total";
/// Retained last-value messages replayed to new subscribers.
pub const BROKER_RETAINED_REPLAYS_TOTAL: &str = "multipub_broker_retained_replays_total";
/// Unacked QoS 1 deliveries replayed to a (re)subscribing client.
pub const BROKER_REDELIVERIES_TOTAL: &str = "multipub_broker_redeliveries_total";
/// QoS 1 deliveries currently awaiting a subscriber ack.
pub const BROKER_UNACKED_DEPTH: &str = "multipub_broker_unacked_depth";
/// Forwards sent to regions outside the committed serving set because a
/// handover (prepared or draining) widened the bridge mask.
pub const BROKER_BRIDGED_FORWARDS_TOTAL: &str = "multipub_broker_bridged_forwards_total";
/// Publishes arriving with a configuration epoch older than the
/// broker's committed view (bridged, never dropped).
pub const BROKER_STALE_EPOCH_PUBLISHES_TOTAL: &str = "multipub_broker_stale_epoch_publishes_total";
/// Config updates rejected because they carried an older epoch than the
/// installed configuration.
pub const BROKER_STALE_CONFIG_UPDATES_TOTAL: &str = "multipub_broker_stale_config_updates_total";

// --- obs (tracing) ------------------------------------------------------

/// Stage spans recorded into the trace ring (including overwritten).
pub const OBS_TRACE_SPANS_TOTAL: &str = "multipub_obs_trace_spans_total";

// --- client session -----------------------------------------------------

/// Successful client reconnects.
pub const CLIENT_RECONNECTS_TOTAL: &str = "multipub_client_reconnects_total";
/// Time from disconnect to restored session.
pub const CLIENT_RECONNECT_MS: &str = "multipub_client_reconnect_ms";
/// Frames buffered while a session is disconnected.
pub const CLIENT_FRAMES_BUFFERED_TOTAL: &str = "multipub_client_frames_buffered_total";
/// Buffered frames evicted because the replay buffer overflowed.
pub const CLIENT_FRAMES_DROPPED_TOTAL: &str = "multipub_client_frames_dropped_total";
/// `Busy` NACKs received from brokers (publish refused, retry later).
pub const CLIENT_BUSY_RECEIVED_TOTAL: &str = "multipub_client_busy_received_total";
/// QoS 1 publishes retransmitted because no PubAck arrived in time.
pub const CLIENT_RETRANSMITS_TOTAL: &str = "multipub_client_retransmits_total";
/// Duplicate QoS 1 deliveries filtered client-side by `(publisher, seq)`.
pub const CLIENT_DEDUP_HITS_TOTAL: &str = "multipub_client_dedup_hits_total";

// --- controller ---------------------------------------------------------

/// Re-optimization rounds started.
pub const CONTROLLER_ROUNDS_TOTAL: &str = "multipub_controller_rounds_total";
/// Wall-time of one re-optimization round.
pub const CONTROLLER_ROUND_MS: &str = "multipub_controller_round_ms";
/// Rounds that ran with a stale/partial measurement matrix.
pub const CONTROLLER_DEGRADED_ROUNDS_TOTAL: &str = "multipub_controller_degraded_rounds_total";
/// Topics examined across all rounds.
pub const CONTROLLER_TOPICS_EVALUATED_TOTAL: &str = "multipub_controller_topics_evaluated_total";
/// Topic evaluations whose constraints were satisfiable.
pub const CONTROLLER_FEASIBLE_TOTAL: &str = "multipub_controller_feasible_total";
/// Topic evaluations with no feasible configuration.
pub const CONTROLLER_INFEASIBLE_TOTAL: &str = "multipub_controller_infeasible_total";
/// Constraint-relaxation mitigations applied (§III.A5).
pub const CONTROLLER_MITIGATIONS_TOTAL: &str = "multipub_controller_mitigations_total";
/// Topic reconfigurations pushed to brokers.
pub const CONTROLLER_RECONFIGURATIONS_TOTAL: &str = "multipub_controller_reconfigurations_total";
/// Broker-link redials after a controller connection dropped.
pub const CONTROLLER_LINK_REDIALS_TOTAL: &str = "multipub_controller_link_redials_total";
/// Stats reports/snapshots discarded because a controller channel was full.
pub const CONTROLLER_REPORTS_DROPPED_TOTAL: &str = "multipub_controller_reports_dropped_total";
/// Config installs deferred because the target broker's link was dead at
/// deploy time (installed on redial instead).
pub const CONTROLLER_CONFIG_DEFERRED_TOTAL: &str = "multipub_controller_config_deferred_total";
/// Make-before-break handovers started.
pub const CONTROLLER_HANDOVERS_TOTAL: &str = "multipub_controller_handovers_total";
/// Handovers aborted and rolled back to the last committed epoch.
pub const CONTROLLER_HANDOVER_ROLLBACKS_TOTAL: &str =
    "multipub_controller_handover_rollbacks_total";
/// Wall-time of a handover's prepare phase (send to all acks in).
pub const CONTROLLER_HANDOVER_PREPARE_MS: &str = "multipub_controller_handover_prepare_ms";
/// Wall-time of a handover's commit phase (send to all acks in).
pub const CONTROLLER_HANDOVER_COMMIT_MS: &str = "multipub_controller_handover_commit_ms";

// --- simulation ---------------------------------------------------------

/// Topics solved by the spec runner.
pub const SIM_TOPICS_SOLVED_TOTAL: &str = "multipub_sim_topics_solved_total";
/// Wall-time of one spec-file run.
pub const SIM_SPEC_MS: &str = "multipub_sim_spec_ms";
/// Adaptive-experiment measurement intervals processed.
pub const SIM_ADAPTIVE_INTERVALS_TOTAL: &str = "multipub_sim_adaptive_intervals_total";
/// Wall-time of one adaptive interval (measure + re-solve).
pub const SIM_ADAPTIVE_INTERVAL_MS: &str = "multipub_sim_adaptive_interval_ms";
/// Assignment changes produced by adaptive re-optimization.
pub const SIM_RECONFIGURATIONS_TOTAL: &str = "multipub_sim_reconfigurations_total";

// --- deterministic network simulator ------------------------------------

/// Simulated events processed by the engine.
pub const NETSIM_EVENTS_TOTAL: &str = "multipub_netsim_events_total";
/// Messages dropped by injected faults.
pub const NETSIM_LOST_TOTAL: &str = "multipub_netsim_lost_total";
/// Simulated end-to-end delivery latency.
pub const NETSIM_DELIVERY_MS: &str = "multipub_netsim_delivery_ms";

/// Every metric the workspace can emit, with kind and help text.
///
/// `cargo xtask lint` enforces that call sites and the README table
/// stay in sync with this list.
pub const CATALOG: &[MetricDef] = &[
    MetricDef { name: CORE_SOLVES_TOTAL, kind: MetricKind::Counter, help: "Optimizer invocations" },
    MetricDef {
        name: CORE_SOLVE_MS,
        kind: MetricKind::Histogram,
        help: "Wall-time of one solve call",
    },
    MetricDef {
        name: CORE_CONFIGS_EVALUATED_TOTAL,
        kind: MetricKind::Counter,
        help: "Candidate configurations scored",
    },
    MetricDef {
        name: CORE_REGIONS_PRUNED_TOTAL,
        kind: MetricKind::Counter,
        help: "Regions removed by the scaling pre-pass",
    },
    MetricDef {
        name: BROKER_FRAMES_ENCODED_TOTAL,
        kind: MetricKind::Counter,
        help: "Frames written to the wire",
    },
    MetricDef {
        name: BROKER_FRAMES_DECODED_TOTAL,
        kind: MetricKind::Counter,
        help: "Frames parsed off the wire",
    },
    MetricDef {
        name: BROKER_CODEC_ERRORS_TOTAL,
        kind: MetricKind::Counter,
        help: "Frames rejected by the codec",
    },
    MetricDef {
        name: BROKER_CONFIG_UPDATES_TOTAL,
        kind: MetricKind::Counter,
        help: "Assignment updates applied",
    },
    MetricDef {
        name: BROKER_PUBLISHES_TOTAL,
        kind: MetricKind::Counter,
        help: "Publish frames accepted",
    },
    MetricDef {
        name: BROKER_PUBLISH_ROUTED_TOTAL,
        kind: MetricKind::Counter,
        help: "Publishes relayed via the pub-broker",
    },
    MetricDef {
        name: BROKER_PUBLISH_DIRECT_TOTAL,
        kind: MetricKind::Counter,
        help: "Publishes delivered without a relay hop",
    },
    MetricDef {
        name: BROKER_FORWARDS_TOTAL,
        kind: MetricKind::Counter,
        help: "Frames forwarded broker-to-broker",
    },
    MetricDef {
        name: BROKER_DELIVERIES_TOTAL,
        kind: MetricKind::Counter,
        help: "Messages handed to subscribers",
    },
    MetricDef {
        name: BROKER_FANOUT_SUBSCRIBERS,
        kind: MetricKind::Histogram,
        help: "Subscribers reached per publish",
    },
    MetricDef {
        name: BROKER_DELIVERY_MS,
        kind: MetricKind::Histogram,
        help: "Publish-to-deliver latency",
    },
    MetricDef {
        name: BROKER_CONNECTIONS_TOTAL,
        kind: MetricKind::Counter,
        help: "Connections accepted since start",
    },
    MetricDef {
        name: BROKER_CONNECTIONS_ACTIVE,
        kind: MetricKind::Gauge,
        help: "Currently connected clients",
    },
    MetricDef {
        name: BROKER_SUBSCRIBES_TOTAL,
        kind: MetricKind::Counter,
        help: "Subscribe requests handled",
    },
    MetricDef {
        name: BROKER_CONN_REAPED_TOTAL,
        kind: MetricKind::Counter,
        help: "Connections reaped by the liveness sweep",
    },
    MetricDef {
        name: BROKER_QUEUED_BYTES,
        kind: MetricKind::Gauge,
        help: "Bytes queued across outbound connection queues",
    },
    MetricDef {
        name: BROKER_QUEUED_FRAMES,
        kind: MetricKind::Gauge,
        help: "Frames queued across outbound connection queues",
    },
    MetricDef {
        name: BROKER_OVERLOADED,
        kind: MetricKind::Gauge,
        help: "1 while the broker sheds publishes",
    },
    MetricDef {
        name: BROKER_OVERLOAD_ENTERED_TOTAL,
        kind: MetricKind::Counter,
        help: "Transitions into the overloaded state",
    },
    MetricDef {
        name: BROKER_SLOW_EVICTIONS_TOTAL,
        kind: MetricKind::Counter,
        help: "Frames evicted from full outbound queues",
    },
    MetricDef {
        name: BROKER_SLOW_DROPS_TOTAL,
        kind: MetricKind::Counter,
        help: "Frames dropped at full outbound queues",
    },
    MetricDef {
        name: BROKER_SLOW_DISCONNECTS_TOTAL,
        kind: MetricKind::Counter,
        help: "Connections severed by the Disconnect policy",
    },
    MetricDef {
        name: BROKER_BUSY_REJECTIONS_TOTAL,
        kind: MetricKind::Counter,
        help: "Publishes refused with a Busy NACK",
    },
    MetricDef {
        name: BROKER_SHARD_PUBLISHES_TOTAL,
        kind: MetricKind::Counter,
        help: "Publishes routed through the sharded registry",
    },
    MetricDef {
        name: BROKER_FANOUT_BYTES,
        kind: MetricKind::Gauge,
        help: "Bytes handed out by the last zero-copy fan-out",
    },
    MetricDef {
        name: BROKER_STAGE_ADMISSION_MS,
        kind: MetricKind::Histogram,
        help: "Traced publish-to-admission time",
    },
    MetricDef {
        name: BROKER_STAGE_MATCH_MS,
        kind: MetricKind::Histogram,
        help: "Traced shard-match and encode time",
    },
    MetricDef {
        name: BROKER_STAGE_QUEUE_MS,
        kind: MetricKind::Histogram,
        help: "Traced outbound-queue residency",
    },
    MetricDef {
        name: BROKER_STAGE_WRITE_MS,
        kind: MetricKind::Histogram,
        help: "Traced queue-pop-to-write-start time",
    },
    MetricDef {
        name: BROKER_STAGE_DELIVER_MS,
        kind: MetricKind::Histogram,
        help: "Traced write-to-client-receipt time",
    },
    MetricDef {
        name: BROKER_DEDUP_HITS_TOTAL,
        kind: MetricKind::Counter,
        help: "Duplicate QoS 1 retransmits re-acked",
    },
    MetricDef {
        name: BROKER_RETAINED_REPLAYS_TOTAL,
        kind: MetricKind::Counter,
        help: "Retained messages replayed on subscribe",
    },
    MetricDef {
        name: BROKER_REDELIVERIES_TOTAL,
        kind: MetricKind::Counter,
        help: "Unacked deliveries replayed on reconnect",
    },
    MetricDef {
        name: BROKER_UNACKED_DEPTH,
        kind: MetricKind::Gauge,
        help: "QoS 1 deliveries awaiting a subscriber ack",
    },
    MetricDef {
        name: BROKER_BRIDGED_FORWARDS_TOTAL,
        kind: MetricKind::Counter,
        help: "Forwards bridged beyond the committed serving set",
    },
    MetricDef {
        name: BROKER_STALE_EPOCH_PUBLISHES_TOTAL,
        kind: MetricKind::Counter,
        help: "Publishes steered by a superseded epoch",
    },
    MetricDef {
        name: BROKER_STALE_CONFIG_UPDATES_TOTAL,
        kind: MetricKind::Counter,
        help: "Config updates rejected for an older epoch",
    },
    MetricDef {
        name: OBS_TRACE_SPANS_TOTAL,
        kind: MetricKind::Counter,
        help: "Stage spans recorded into the trace ring",
    },
    MetricDef {
        name: CLIENT_RECONNECTS_TOTAL,
        kind: MetricKind::Counter,
        help: "Successful client reconnects",
    },
    MetricDef {
        name: CLIENT_RECONNECT_MS,
        kind: MetricKind::Histogram,
        help: "Disconnect-to-restore time",
    },
    MetricDef {
        name: CLIENT_FRAMES_BUFFERED_TOTAL,
        kind: MetricKind::Counter,
        help: "Frames buffered while disconnected",
    },
    MetricDef {
        name: CLIENT_FRAMES_DROPPED_TOTAL,
        kind: MetricKind::Counter,
        help: "Buffered frames evicted on overflow",
    },
    MetricDef {
        name: CLIENT_BUSY_RECEIVED_TOTAL,
        kind: MetricKind::Counter,
        help: "Busy NACKs received from brokers",
    },
    MetricDef {
        name: CLIENT_RETRANSMITS_TOTAL,
        kind: MetricKind::Counter,
        help: "QoS 1 publishes retransmitted awaiting ack",
    },
    MetricDef {
        name: CLIENT_DEDUP_HITS_TOTAL,
        kind: MetricKind::Counter,
        help: "Duplicate QoS 1 deliveries filtered client-side",
    },
    MetricDef {
        name: CONTROLLER_ROUNDS_TOTAL,
        kind: MetricKind::Counter,
        help: "Re-optimization rounds started",
    },
    MetricDef {
        name: CONTROLLER_ROUND_MS,
        kind: MetricKind::Histogram,
        help: "Wall-time of one round",
    },
    MetricDef {
        name: CONTROLLER_DEGRADED_ROUNDS_TOTAL,
        kind: MetricKind::Counter,
        help: "Rounds run on stale measurements",
    },
    MetricDef {
        name: CONTROLLER_TOPICS_EVALUATED_TOTAL,
        kind: MetricKind::Counter,
        help: "Topics examined",
    },
    MetricDef {
        name: CONTROLLER_FEASIBLE_TOTAL,
        kind: MetricKind::Counter,
        help: "Feasible topic evaluations",
    },
    MetricDef {
        name: CONTROLLER_INFEASIBLE_TOTAL,
        kind: MetricKind::Counter,
        help: "Infeasible topic evaluations",
    },
    MetricDef {
        name: CONTROLLER_MITIGATIONS_TOTAL,
        kind: MetricKind::Counter,
        help: "Constraint relaxations applied",
    },
    MetricDef {
        name: CONTROLLER_RECONFIGURATIONS_TOTAL,
        kind: MetricKind::Counter,
        help: "Reconfigurations pushed to brokers",
    },
    MetricDef {
        name: CONTROLLER_LINK_REDIALS_TOTAL,
        kind: MetricKind::Counter,
        help: "Broker-link redials",
    },
    MetricDef {
        name: CONTROLLER_REPORTS_DROPPED_TOTAL,
        kind: MetricKind::Counter,
        help: "Reports discarded on full controller channels",
    },
    MetricDef {
        name: CONTROLLER_CONFIG_DEFERRED_TOTAL,
        kind: MetricKind::Counter,
        help: "Config installs deferred past a dead broker link",
    },
    MetricDef {
        name: CONTROLLER_HANDOVERS_TOTAL,
        kind: MetricKind::Counter,
        help: "Make-before-break handovers started",
    },
    MetricDef {
        name: CONTROLLER_HANDOVER_ROLLBACKS_TOTAL,
        kind: MetricKind::Counter,
        help: "Handovers aborted and rolled back",
    },
    MetricDef {
        name: CONTROLLER_HANDOVER_PREPARE_MS,
        kind: MetricKind::Histogram,
        help: "Handover prepare-phase wall-time",
    },
    MetricDef {
        name: CONTROLLER_HANDOVER_COMMIT_MS,
        kind: MetricKind::Histogram,
        help: "Handover commit-phase wall-time",
    },
    MetricDef {
        name: SIM_TOPICS_SOLVED_TOTAL,
        kind: MetricKind::Counter,
        help: "Topics solved by the spec runner",
    },
    MetricDef { name: SIM_SPEC_MS, kind: MetricKind::Histogram, help: "Wall-time of one spec run" },
    MetricDef {
        name: SIM_ADAPTIVE_INTERVALS_TOTAL,
        kind: MetricKind::Counter,
        help: "Adaptive intervals processed",
    },
    MetricDef {
        name: SIM_ADAPTIVE_INTERVAL_MS,
        kind: MetricKind::Histogram,
        help: "Wall-time of one adaptive interval",
    },
    MetricDef {
        name: SIM_RECONFIGURATIONS_TOTAL,
        kind: MetricKind::Counter,
        help: "Adaptive assignment changes",
    },
    MetricDef {
        name: NETSIM_EVENTS_TOTAL,
        kind: MetricKind::Counter,
        help: "Simulated events processed",
    },
    MetricDef {
        name: NETSIM_LOST_TOTAL,
        kind: MetricKind::Counter,
        help: "Messages dropped by injected faults",
    },
    MetricDef {
        name: NETSIM_DELIVERY_MS,
        kind: MetricKind::Histogram,
        help: "Simulated delivery latency",
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn names_are_unique() {
        let names: BTreeSet<&str> = CATALOG.iter().map(|m| m.name).collect();
        assert_eq!(names.len(), CATALOG.len());
    }

    #[test]
    fn names_follow_convention() {
        for def in CATALOG {
            assert!(def.name.starts_with("multipub_"), "{} must start with multipub_", def.name);
            assert!(
                def.name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{} must be snake_case ascii",
                def.name
            );
            assert!(def.name.split('_').count() >= 3, "{} must name its crate", def.name);
            assert!(!def.help.is_empty());
        }
    }

    #[test]
    fn counters_end_in_total_and_histograms_in_unit() {
        for def in CATALOG {
            match def.kind {
                MetricKind::Counter => {
                    assert!(def.name.ends_with("_total"), "counter {} must end in _total", def.name)
                }
                MetricKind::Histogram => assert!(
                    def.name.ends_with("_ms") || def.name.ends_with("_subscribers"),
                    "histogram {} must carry its unit",
                    def.name
                ),
                MetricKind::Gauge => {}
            }
        }
    }
}
