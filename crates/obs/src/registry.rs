//! The metrics registry: named counters, gauges and histograms, plus
//! Prometheus-text and JSON exposition.
//!
//! Metrics register on first use and live forever. Lookups take a
//! `RwLock` read; hot paths avoid even that by caching the returned
//! `Arc` handle (see the [`crate::counter!`] family of macros). The
//! recording operations themselves are lock-free relaxed atomics.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::histogram::{Histogram, HistogramSnapshot, BUCKET_COUNT};
use crate::sync::{Arc, AtomicI64, AtomicU64, Ordering, RwLock};

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Default for Counter {
    fn default() -> Self {
        Counter { value: AtomicU64::new(0) }
    }
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: an instantaneous value that can move both ways.
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge { value: AtomicI64::new(0) }
    }
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Subtracts `delta`.
    pub fn sub(&self, delta: i64) {
        self.value.fetch_sub(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

fn kind_name(metric: &Metric) -> &'static str {
    match metric {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    }
}

/// A set of named metrics. Most code uses the process-wide instance
/// via [`registry`]; tests can build private ones.
#[derive(Debug)]
pub struct Registry {
    /// One rank shared by every `Registry` instance (the global one
    /// and test-private ones): no code path locks two registries at
    /// once. lock:rank(obs.registry, 95)
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry { metrics: RwLock::new(95, "obs.registry", BTreeMap::new()) }
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(Metric::Counter(counter)) = self.metrics.read().get(name).cloned() {
            return counter;
        }
        let mut metrics = self.metrics.write();
        let entry = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())));
        match entry {
            Metric::Counter(counter) => Arc::clone(counter),
            // lint:allow(panic) kind mismatch is a bug the metrics catalog tests catch
            other => panic!(
                "metric `{name}` is already registered as a {}, not a counter",
                kind_name(other)
            ),
        }
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(Metric::Gauge(gauge)) = self.metrics.read().get(name).cloned() {
            return gauge;
        }
        let mut metrics = self.metrics.write();
        let entry = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())));
        match entry {
            Metric::Gauge(gauge) => Arc::clone(gauge),
            // lint:allow(panic) kind mismatch is a bug the metrics catalog tests catch
            other => panic!(
                "metric `{name}` is already registered as a {}, not a gauge",
                kind_name(other)
            ),
        }
    }

    /// The histogram named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(Metric::Histogram(histogram)) = self.metrics.read().get(name).cloned() {
            return histogram;
        }
        let mut metrics = self.metrics.write();
        let entry = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())));
        match entry {
            Metric::Histogram(histogram) => Arc::clone(histogram),
            // lint:allow(panic) kind mismatch is a bug the metrics catalog tests catch
            other => panic!(
                "metric `{name}` is already registered as a {}, not a histogram",
                kind_name(other)
            ),
        }
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = self.metrics.read();
        let mut snapshot = RegistrySnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(counter) => {
                    snapshot.counters.insert(name.clone(), counter.get());
                }
                Metric::Gauge(gauge) => {
                    snapshot.gauges.insert(name.clone(), gauge.get());
                }
                Metric::Histogram(histogram) => {
                    snapshot.histograms.insert(name.clone(), histogram.snapshot());
                }
            }
        }
        snapshot
    }

    /// Renders every metric in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }

    /// Renders every metric as a JSON document.
    pub fn render_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// The process-wide registry every workspace crate records into.
///
/// Not available under loom: loom primitives must be created inside a
/// `loom::model` run, so the models build private registries instead.
#[cfg(not(loom))]
pub fn registry() -> &'static Registry {
    static GLOBAL: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// The quantiles exported for every histogram: ratio, Prometheus
/// `quantile` label, JSON key.
const EXPORT_QUANTILES: [(f64, &str, &str); 4] =
    [(50.0, "0.5", "p50"), (90.0, "0.9", "p90"), (99.0, "0.99", "p99"), (99.9, "0.999", "p999")];

impl RegistrySnapshot {
    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// Histograms emit cumulative `_bucket{le="..."}` series for every
    /// non-empty bucket plus `+Inf`, `_sum`/`_count`, and
    /// p50/p90/p99/p999 `{quantile="..."}` lines.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, histogram) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (index, count) in histogram.buckets().iter().enumerate() {
                cumulative = cumulative.saturating_add(*count);
                if *count > 0 && index < BUCKET_COUNT - 1 {
                    let le = crate::histogram::bucket_upper_bound(index);
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                }
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", histogram.count());
            let _ = writeln!(out, "{name}_sum {}", histogram.sum_ms());
            let _ = writeln!(out, "{name}_count {}", histogram.count());
            for (ratio, label, _) in EXPORT_QUANTILES {
                let _ =
                    writeln!(out, "{name}{{quantile=\"{label}\"}} {}", histogram.quantile(ratio));
            }
        }
        out
    }

    /// Renders the snapshot as a JSON document:
    ///
    /// ```json
    /// {"counters": {"name": 1},
    ///  "gauges": {"name": -2},
    ///  "histograms": {"name": {"count": 3, "sum_ms": 4.5, "max_ms": 2.0,
    ///                           "p50": 1.0, "p90": 2.0, "p99": 2.0, "p999": 2.0,
    ///                           "buckets": [[1.024, 3]], "overflow": 0}}}
    /// ```
    ///
    /// `buckets` lists `[upper_bound_ms, count]` for every non-empty
    /// finite bucket; `overflow` counts observations above the largest
    /// finite bound.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (name, value) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{}:{value}", json_string(name));
        }
        out.push_str("},\"gauges\":{");
        let mut first = true;
        for (name, value) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{}:{value}", json_string(name));
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (name, histogram) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum_ms\":{},\"max_ms\":{}",
                json_string(name),
                histogram.count(),
                histogram.sum_ms(),
                histogram.max_ms()
            );
            for (ratio, _, key) in EXPORT_QUANTILES {
                let _ = write!(out, ",\"{key}\":{}", histogram.quantile(ratio));
            }
            out.push_str(",\"buckets\":[");
            let mut first_bucket = true;
            for (index, count) in histogram.buckets().iter().enumerate() {
                if *count > 0 && index < BUCKET_COUNT - 1 {
                    if !first_bucket {
                        out.push(',');
                    }
                    first_bucket = false;
                    let le = crate::histogram::bucket_upper_bound(index);
                    let _ = write!(out, "[{le},{count}]");
                }
            }
            let overflow = histogram.buckets().last().copied().unwrap_or(0);
            let _ = write!(out, "],\"overflow\":{overflow}}}");
        }
        out.push_str("}}");
        out
    }
}

/// Escapes a string as a JSON string literal, quotes included.
fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_register_once_and_accumulate() {
        let registry = Registry::new();
        registry.counter("multipub_test_total").add(2);
        registry.counter("multipub_test_total").inc();
        assert_eq!(registry.counter("multipub_test_total").get(), 3);
    }

    #[test]
    fn gauges_move_both_ways() {
        let registry = Registry::new();
        let gauge = registry.gauge("multipub_test_active");
        gauge.add(5);
        gauge.sub(2);
        assert_eq!(gauge.get(), 3);
        gauge.set(-7);
        assert_eq!(registry.gauge("multipub_test_active").get(), -7);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("multipub_test_conflict");
        registry.gauge("multipub_test_conflict");
    }

    #[test]
    fn prometheus_rendering_includes_all_kinds() {
        let registry = Registry::new();
        registry.counter("multipub_test_frames_total").add(4);
        registry.gauge("multipub_test_conns").set(2);
        registry.histogram("multipub_test_latency_ms").record(1.5);
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE multipub_test_frames_total counter"));
        assert!(text.contains("multipub_test_frames_total 4"));
        assert!(text.contains("multipub_test_conns 2"));
        assert!(text.contains("# TYPE multipub_test_latency_ms histogram"));
        assert!(text.contains("multipub_test_latency_ms_count 1"));
        assert!(text.contains("multipub_test_latency_ms_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("multipub_test_latency_ms{quantile=\"0.5\"}"));
        assert!(text.contains("multipub_test_latency_ms{quantile=\"0.99\"}"));
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let registry = Registry::new();
        registry.counter("multipub_test_pubs_total").inc();
        registry.histogram("multipub_test_ms").record(2.0);
        let json = registry.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"multipub_test_pubs_total\":1"));
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\"p50\":"));
        assert!(json.contains("\"p999\":"));
        assert!(json.contains("\"overflow\":0"));
        // Balanced braces and brackets (no string values contain any).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn concurrent_increments_from_many_threads() {
        // Satellite: N threads × M increments == N·M.
        const THREADS: usize = 8;
        const INCREMENTS: u64 = 10_000;
        let registry = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let registry = Arc::clone(&registry);
            handles.push(thread::spawn(move || {
                let counter = registry.counter("multipub_test_smoke_total");
                let histogram = registry.histogram("multipub_test_smoke_ms");
                for i in 0..INCREMENTS {
                    counter.inc();
                    histogram.record(i as f64 / 100.0);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let expected = THREADS as u64 * INCREMENTS;
        assert_eq!(registry.counter("multipub_test_smoke_total").get(), expected);
        assert_eq!(registry.histogram("multipub_test_smoke_ms").count(), expected);
    }

    #[test]
    fn global_registry_is_shared() {
        registry().counter("multipub_obs_selftest_total").inc();
        assert!(registry().snapshot().counters["multipub_obs_selftest_total"] >= 1);
    }
}
