//! Synchronization primitives, switchable between `std` and `loom`.
//!
//! Everything concurrency-relevant in this crate (registry lock,
//! counter/gauge/histogram atomics) goes through these re-exports so
//! the loom models in `tests/loom_models.rs` can exhaustively check
//! the lock-free paths under `RUSTFLAGS="--cfg loom"`. The `loom`
//! crate is deliberately **not** declared in `Cargo.toml` — the
//! workspace must build on a bare toolchain; the CI loom job appends
//! the dependency transiently before testing (see
//! `.github/workflows/ci.yml` and DESIGN.md §9).
//!
//! Deliberately left on `std` in both configurations:
//!
//! * `OnceLock` for the lazily computed bucket bounds — pure
//!   deterministic data, not an interleaving of interest,
//! * `Instant` in [`crate::HistogramTimer`] — loom does not model
//!   time.

#[cfg(loom)]
pub(crate) use loom::sync::{
    atomic::{AtomicI64, AtomicU64, Ordering},
    Arc, RwLock,
};

#[cfg(not(loom))]
pub(crate) use std::sync::{
    atomic::{AtomicI64, AtomicU64, Ordering},
    Arc, RwLock,
};
