//! Synchronization primitives, re-exported from [`multipub_sync`].
//!
//! Everything concurrency-relevant in this crate (registry lock, trace
//! ring slots, counter/gauge/histogram atomics) goes through these
//! re-exports. The lock types carry a rank (DESIGN.md §14): `cargo
//! xtask lint` pass L6 checks the declared `// lock:rank(name, N)`
//! order statically, and debug builds with `MULTIPUB_LOCK_WITNESS=1`
//! enforce it at runtime. Under `RUSTFLAGS="--cfg loom"` the same types
//! switch to `loom::sync` so `tests/loom_models.rs` can exhaustively
//! check the lock-free paths. The `loom` crate is deliberately **not**
//! declared in `Cargo.toml` — the workspace must build on a bare
//! toolchain; the CI loom job appends the dependency transiently before
//! testing (see `.github/workflows/ci.yml` and DESIGN.md §9).
//!
//! Standalone builds of this crate stay dependency-free: the default
//! `multipub-sync` backend is `std::sync` with poison recovery, so a
//! panicked holder cannot wedge the metrics pipeline.
//!
//! Deliberately left on `std` in both configurations:
//!
//! * `OnceLock` for the lazily computed bucket bounds — pure
//!   deterministic data, not an interleaving of interest,
//! * `Instant` in [`crate::HistogramTimer`] — loom does not model
//!   time.

pub(crate) use multipub_sync::{Arc, AtomicI64, AtomicU64, Mutex, Ordering, RwLock};
