//! Leveled, structured logging to stderr with `MULTIPUB_LOG`
//! target filtering. Use the [`crate::event!`] macro; the functions
//! here are its runtime.
//!
//! `MULTIPUB_LOG` is a comma-separated list of directives, each either
//! a bare level (`error`, `warn`, `info`, `debug`, `trace`, `off`)
//! setting the default, or `target=level` overriding it for targets
//! with that prefix (the longest matching prefix wins):
//!
//! ```text
//! MULTIPUB_LOG=info                    # everything at info and above
//! MULTIPUB_LOG=broker=debug,warn       # broker* at debug, rest at warn
//! MULTIPUB_LOG=off                     # silence everything
//! ```
//!
//! When unset, the default is `warn`. Events render as single
//! `key=value` lines:
//!
//! ```text
//! ts=1754480000.123456 level=INFO target=broker msg="client connected" client_id=7
//! ```

use std::fmt;
use std::io::Write as _;
use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed.
    Error,
    /// Something surprising that does not stop the operation.
    Warn,
    /// High-level lifecycle events.
    Info,
    /// Per-operation detail.
    Debug,
    /// Everything, including hot-path chatter.
    Trace,
}

impl Level {
    /// The uppercase name used in log lines.
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// `None` means "off": nothing passes.
fn parse_level(text: &str) -> Option<Option<Level>> {
    match text.trim().to_ascii_lowercase().as_str() {
        "error" => Some(Some(Level::Error)),
        "warn" | "warning" => Some(Some(Level::Warn)),
        "info" => Some(Some(Level::Info)),
        "debug" => Some(Some(Level::Debug)),
        "trace" => Some(Some(Level::Trace)),
        "off" | "none" => Some(None),
        _ => None,
    }
}

/// A parsed `MULTIPUB_LOG` filter: a default maximum level plus
/// per-target-prefix overrides.
#[derive(Debug, Clone)]
pub struct LogFilter {
    default: Option<Level>,
    /// Sorted longest-prefix-first so the most specific directive wins.
    directives: Vec<(String, Option<Level>)>,
}

impl LogFilter {
    /// Parses a filter specification (see the module docs). Unknown
    /// levels and empty segments are ignored; an empty spec yields the
    /// `warn` default.
    pub fn parse(spec: &str) -> LogFilter {
        let mut default = Some(Level::Warn);
        let mut directives = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                Some((target, level)) => {
                    if let Some(level) = parse_level(level) {
                        directives.push((target.trim().to_string(), level));
                    }
                }
                None => {
                    if let Some(level) = parse_level(part) {
                        default = level;
                    }
                }
            }
        }
        directives.sort_by(|a, b| b.0.len().cmp(&a.0.len()));
        LogFilter { default, directives }
    }

    /// Whether an event at `level` for `target` passes the filter.
    pub fn enabled(&self, level: Level, target: &str) -> bool {
        for (prefix, max) in &self.directives {
            if target.starts_with(prefix.as_str()) {
                return max.is_some_and(|max| level <= max);
            }
        }
        self.default.is_some_and(|max| level <= max)
    }
}

impl Default for LogFilter {
    fn default() -> Self {
        LogFilter::parse("")
    }
}

fn global_filter() -> &'static LogFilter {
    static FILTER: OnceLock<LogFilter> = OnceLock::new();
    FILTER.get_or_init(|| LogFilter::parse(&std::env::var("MULTIPUB_LOG").unwrap_or_default()))
}

/// Whether an event would be emitted. Called by [`crate::event!`]
/// before formatting any fields, so disabled events cost one prefix
/// scan and no allocation.
pub fn log_enabled(level: Level, target: &str) -> bool {
    global_filter().enabled(level, target)
}

/// Formats and writes one event line to stderr. Called by
/// [`crate::event!`] after [`log_enabled`] passed.
pub fn log_emit(level: Level, target: &str, fields: &[(&str, String)]) {
    use std::fmt::Write as _;
    let ts = SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or_default();
    let mut line = format!(
        "ts={}.{:06} level={} target={}",
        ts.as_secs(),
        ts.subsec_micros(),
        level.as_str(),
        target
    );
    for (key, value) in fields {
        if value.is_empty() || value.chars().any(|c| c.is_whitespace() || c == '"') {
            let _ = write!(line, " {key}={value:?}");
        } else {
            let _ = write!(line, " {key}={value}");
        }
    }
    line.push('\n');
    // One write call keeps concurrent events on separate lines.
    let _ = std::io::stderr().write_all(line.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_filter_is_warn() {
        let filter = LogFilter::parse("");
        assert!(filter.enabled(Level::Error, "broker"));
        assert!(filter.enabled(Level::Warn, "broker"));
        assert!(!filter.enabled(Level::Info, "broker"));
    }

    #[test]
    fn bare_level_sets_default() {
        let filter = LogFilter::parse("debug");
        assert!(filter.enabled(Level::Debug, "anything"));
        assert!(!filter.enabled(Level::Trace, "anything"));
    }

    #[test]
    fn target_directive_overrides_default() {
        let filter = LogFilter::parse("broker=trace,info");
        assert!(filter.enabled(Level::Trace, "broker"));
        assert!(filter.enabled(Level::Trace, "broker_codec"));
        assert!(!filter.enabled(Level::Trace, "controller"));
        assert!(filter.enabled(Level::Info, "controller"));
    }

    #[test]
    fn longest_prefix_wins() {
        let filter = LogFilter::parse("broker=error,broker_codec=trace");
        assert!(filter.enabled(Level::Trace, "broker_codec"));
        assert!(!filter.enabled(Level::Warn, "broker"));
    }

    #[test]
    fn off_silences() {
        let filter = LogFilter::parse("off");
        assert!(!filter.enabled(Level::Error, "broker"));
        let filter = LogFilter::parse("warn,broker=off");
        assert!(!filter.enabled(Level::Error, "broker"));
        assert!(filter.enabled(Level::Warn, "controller"));
    }

    #[test]
    fn garbage_is_ignored() {
        let filter = LogFilter::parse("wibble,broker=nope,,=,warn");
        assert!(filter.enabled(Level::Warn, "broker"));
        assert!(!filter.enabled(Level::Info, "broker"));
    }

    #[test]
    fn levels_order_by_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
        assert_eq!(Level::Info.to_string(), "INFO");
    }
}
