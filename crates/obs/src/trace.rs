//! Sampled end-to-end message tracing with per-hop stage attribution.
//!
//! MultiPub's placement decisions are justified by *latency*, but an
//! aggregate histogram cannot say where a slow message spent its time.
//! This module carries a per-message trace context along the publish
//! path (see `multipub-broker`'s `TraceContext` wire field) and records
//! one [`Span`] per pipeline stage into a process-wide bounded ring:
//!
//! | stage       | interval                                            |
//! |-------------|-----------------------------------------------------|
//! | `admission` | publisher stamp → broker admission control passed   |
//! | `match`     | admission → shard snapshot + filter match + encode  |
//! | `queue`     | match → frame popped from its outbound flow queue   |
//! | `write`     | pop → vectored socket write started                 |
//! | `deliver`   | write → client-side receipt                         |
//!
//! Stage boundaries are stamped with one shared wall clock
//! ([`now_micros`]), each stage starting exactly where the previous one
//! ended, so the five spans of one trace **sum to the end-to-end trip
//! time** — the per-stage breakdown is an exact decomposition, not an
//! approximation.
//!
//! Sampling is decided once at the publisher ([`Sampler`]) and carried
//! with the message; unsampled messages cost one wire byte and a flag
//! check per hop. Spans land in a fixed-size lock-free ring
//! ([`SpanRing`], global handle [`ring`]) that overwrites the oldest
//! entries under burst — tracing can never block or grow the data path.
//! Export is Chrome trace-event JSON ([`render_chrome_trace`]), served
//! by the CLI's `/trace` endpoint next to the Prometheus scrape.
//!
//! Like the histogram timer's `Instant`, the wall clock here stays on
//! `std` in both configurations (loom does not model time); the slot
//! locks are rank-carrying [`crate::sync::Mutex`]es like every other
//! lock in the workspace (DESIGN.md §14).

// Wall-clock ids and ring cursors stay on `std` atomics in both
// configurations: `next_trace_id`'s counter lives in a `static`, which
// loom atomics (non-const constructors) cannot initialize, and these
// relaxed counters are not an interleaving of interest anyway.
use crate::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

/// Pipeline stage names in hop order. The per-stage broker histograms
/// are named `multipub_broker_stage_<name>_ms`; `cargo xtask lint`
/// (pass L4) enforces that every entry here has a matching catalog
/// const so the stage list, the metric catalog and the README table
/// cannot drift apart.
pub const STAGE_NAMES: [&str; 5] = ["admission", "match", "queue", "write", "deliver"];

/// Default capacity of the global span ring.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// One completed stage interval of a sampled message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Trace id minted at the publisher; groups the message's spans.
    pub trace_id: u64,
    /// Stage name, one of [`STAGE_NAMES`].
    pub stage: &'static str,
    /// Stage start, microseconds since the UNIX epoch.
    pub start_micros: u64,
    /// Stage duration in microseconds.
    pub dur_micros: u64,
}

/// Microseconds since the UNIX epoch on the shared wall clock used for
/// every stage stamp.
#[must_use]
pub fn now_micros() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_micros() as u64).unwrap_or(0)
}

/// Mints a fresh trace id: a SplitMix64 mix of the wall clock and a
/// process-wide counter, so ids are unique within a process and
/// overwhelmingly likely to be unique across concurrent processes.
#[must_use]
pub fn next_trace_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let seed = now_micros().wrapping_add(COUNTER.fetch_add(1, Ordering::Relaxed) << 32);
    // SplitMix64 finalizer: bijective, so distinct seeds stay distinct.
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic counter-based sampler: a rate of `1/n` samples every
/// `n`-th decision. Deterministic (rather than random) so benchmark
/// runs are reproducible and the sampled population is spread evenly
/// across the run rather than clustered.
#[derive(Debug)]
pub struct Sampler {
    /// Sample every `period`-th decision; `0` disables sampling.
    period: u64,
    counter: AtomicU64,
}

impl Sampler {
    /// Builds a sampler from a rate in `[0, 1]`: `0` (or anything
    /// non-positive / NaN) never samples, `>= 1` always samples, and a
    /// fractional rate `r` samples every `round(1/r)`-th decision.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        let period = if rate.is_nan() || rate <= 0.0 {
            0
        } else if rate >= 1.0 {
            1
        } else {
            (1.0 / rate).round() as u64
        };
        Sampler { period, counter: AtomicU64::new(0) }
    }

    /// Decides whether the next message is sampled.
    pub fn should_sample(&self) -> bool {
        match self.period {
            0 => false,
            1 => true,
            period => self.counter.fetch_add(1, Ordering::Relaxed) % period == 0,
        }
    }

    /// Whether this sampler can ever sample.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.period != 0
    }
}

/// Fixed-capacity span ring: writers claim a slot with one atomic
/// `fetch_add` and overwrite whatever is there, so recording is
/// wait-free with respect to readers and never blocks the data path.
/// Readers take a point-in-time copy ([`Self::snapshot`]) or move the
/// contents out ([`Self::drain`]).
#[derive(Debug)]
pub struct SpanRing {
    /// One rank for every slot of every ring: a writer touches exactly
    /// one slot, and the equal rank makes the witness enforce that.
    /// lock:rank(obs.trace_slot, 90)
    slots: Box<[Mutex<Option<Span>>]>,
    next: AtomicU64,
    recorded: AtomicU64,
}

impl SpanRing {
    /// Creates a ring holding at most `capacity` spans (floored at 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        // lock:rank(obs.trace_slot, 90)
        let slots: Vec<Mutex<Option<Span>>> =
            (0..capacity.max(1)).map(|_| Mutex::new(90, "obs.trace_slot", None)).collect();
        SpanRing {
            slots: slots.into_boxed_slice(),
            next: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
        }
    }

    /// Records one span, overwriting the oldest entry when full.
    pub fn push(&self, span: Span) {
        let idx = (self.next.fetch_add(1, Ordering::Relaxed) as usize) % self.slots.len();
        self.recorded.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = self.slots.get(idx) {
            *slot.lock() = Some(span);
        }
    }

    /// Total spans ever recorded (including overwritten ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Copies the current contents without clearing them. Tests filter
    /// the result by trace id, since `cargo test` shares one process
    /// ring across tests.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Span> {
        self.slots.iter().filter_map(|slot| slot.lock().clone()).collect()
    }

    /// Moves the current contents out, leaving the ring empty.
    pub fn drain(&self) -> Vec<Span> {
        self.slots.iter().filter_map(|slot| slot.lock().take()).collect()
    }
}

/// The process-wide span ring, sized [`DEFAULT_RING_CAPACITY`].
#[cfg(not(loom))]
pub fn ring() -> &'static SpanRing {
    static RING: OnceLock<SpanRing> = OnceLock::new();
    RING.get_or_init(|| SpanRing::new(DEFAULT_RING_CAPACITY))
}

/// Records one span on the global ring and bumps the span counter.
#[cfg(not(loom))]
pub fn record_span(span: Span) {
    crate::counter!(crate::metrics::OBS_TRACE_SPANS_TOTAL).inc();
    ring().push(span);
}

/// Schema identifier embedded in the exported trace JSON.
pub const TRACE_SCHEMA: &str = "multipub-trace/v1";

/// Renders spans as Chrome trace-event JSON (`chrome://tracing`,
/// Perfetto): one complete event (`"ph":"X"`) per span, timestamps and
/// durations in microseconds, the trace id carried in `args` so one
/// message's spans can be grouped. Events are sorted by start time for
/// stable output.
#[must_use]
pub fn render_chrome_trace(spans: &[Span]) -> String {
    let mut sorted: Vec<&Span> = spans.iter().collect();
    sorted.sort_by_key(|s| (s.start_micros, s.trace_id, s.stage));
    let mut out = String::with_capacity(64 + sorted.len() * 128);
    out.push_str("{\"schema\":\"");
    out.push_str(TRACE_SCHEMA);
    out.push_str("\",\"traceEvents\":[");
    for (i, span) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let tid = STAGE_NAMES.iter().position(|s| *s == span.stage).unwrap_or(STAGE_NAMES.len());
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"multipub\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"trace_id\":\"{:#018x}\"}}}}",
            span.stage, span.start_micros, span.dur_micros, tid, span.trace_id
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn sampler_rate_edges() {
        let never = Sampler::new(0.0);
        assert!(!never.is_enabled());
        assert!((0..100).all(|_| !never.should_sample()));
        let negative = Sampler::new(-1.0);
        assert!(!negative.should_sample());
        let nan = Sampler::new(f64::NAN);
        assert!(!nan.should_sample());

        let always = Sampler::new(1.0);
        assert!(always.is_enabled());
        assert!((0..100).all(|_| always.should_sample()));
        assert!(Sampler::new(2.0).should_sample());
    }

    #[test]
    fn sampler_fractional_rate_is_periodic() {
        let tenth = Sampler::new(0.1);
        let hits = (0..100).filter(|_| tenth.should_sample()).count();
        assert_eq!(hits, 10);
    }

    #[test]
    fn trace_ids_are_distinct() {
        let mut ids: Vec<u64> = (0..1000).map(|_| next_trace_id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 1000);
    }

    #[test]
    fn ring_records_and_drains() {
        let ring = SpanRing::new(4);
        for i in 0..3 {
            ring.push(Span { trace_id: i, stage: "match", start_micros: i, dur_micros: 1 });
        }
        assert_eq!(ring.recorded(), 3);
        assert_eq!(ring.snapshot().len(), 3);
        let drained = ring.drain();
        assert_eq!(drained.len(), 3);
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.recorded(), 3);
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let ring = SpanRing::new(2);
        for i in 0..5u64 {
            ring.push(Span { trace_id: i, stage: "queue", start_micros: i, dur_micros: 0 });
        }
        let mut ids: Vec<u64> = ring.snapshot().into_iter().map(|s| s.trace_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![3, 4]);
        assert_eq!(ring.recorded(), 5);
    }

    #[test]
    fn chrome_trace_is_well_formed() {
        let spans = vec![
            Span { trace_id: 7, stage: "admission", start_micros: 100, dur_micros: 10 },
            Span { trace_id: 7, stage: "deliver", start_micros: 140, dur_micros: 5 },
        ];
        let json = render_chrome_trace(&spans);
        assert!(json.starts_with("{\"schema\":\"multipub-trace/v1\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"admission\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":100"));
        assert!(json.contains("\"args\":{\"trace_id\":\"0x0000000000000007\"}"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn stage_names_match_metric_catalog() {
        // Mirrors the xtask L4 stage check: every stage has a per-stage
        // broker histogram in the catalog.
        for stage in STAGE_NAMES {
            let metric = format!("multipub_broker_stage_{stage}_ms");
            assert!(
                crate::metrics::CATALOG.iter().any(|def| def.name == metric),
                "stage `{stage}` has no `{metric}` catalog entry"
            );
        }
    }

    #[test]
    fn global_ring_round_trip() {
        let id = next_trace_id();
        record_span(Span { trace_id: id, stage: "write", start_micros: 1, dur_micros: 2 });
        assert!(ring().snapshot().iter().any(|s| s.trace_id == id));
    }
}
