//! `multipub-controller` — run the MultiPub controller against a broker
//! fleet.
//!
//! ```text
//! multipub-controller \
//!     --broker 10.0.0.5:9000 --broker 10.0.1.5:9000 \   # one per region, in region order
//!     --regions-csv regions.csv --inter-csv inter.csv \  # or omit both for the built-in EC2 snapshot
//!     --default-constraint 75:200 \
//!     --constraint game/scores=95:150 \
//!     --client 42=10,80,120 \                            # client latency rows (ms per region)
//!     --interval 30 --rounds 0 --mitigate true \
//!     --connect-timeout 2000 \                           # per-broker dial timeout (ms)
//!     --reconnect-backoff 100:10000 \                    # redial backoff base:cap (ms)
//!     --handover-grace 500 --handover-timeout 2000 \     # reconfiguration drain / phase bound (ms)
//!     --metrics-addr 0.0.0.0:9465
//! ```
//!
//! Each round the controller pulls region-manager reports, re-optimizes
//! every topic and deploys improved configurations. `--rounds 0` runs
//! until Ctrl-C. With `--metrics-addr` the controller serves its metrics
//! registry (round timings, feasibility counts) in Prometheus text
//! format.
//!
//! Unreachable brokers no longer abort startup: they are reported,
//! excluded from optimization, and re-dialed in the background (with the
//! `--reconnect-backoff` schedule) until they answer.
//!
//! Re-deployments run the epoch-based make-before-break handover:
//! `--handover-grace` sets how long retiring regions keep bridging
//! already-routed traffic after commit, and `--handover-timeout` bounds
//! each prepare/commit phase before the controller rolls back to the
//! last committed epoch.

use multipub_broker::controller::Controller;
use multipub_cli::{parse_f64_list, parse_pair, Args};
use multipub_core::constraint::DeliveryConstraint;
use multipub_core::mitigation::MitigationPolicy;
use std::net::SocketAddr;
use std::time::Duration;

const USAGE: &str = "usage: multipub-controller --broker <addr>... \
                     [--regions-csv <path> --inter-csv <path>] \
                     [--default-constraint <ratio>:<max_ms>] \
                     [--constraint <topic>=<ratio>:<max_ms>]... \
                     [--client <id>=<ms,ms,...>]... \
                     [--interval <secs>] [--rounds <n>] [--mitigate true] \
                     [--connect-timeout <ms>] [--reconnect-backoff <base_ms>:<cap_ms>] \
                     [--handover-grace <ms>] [--handover-timeout <ms>] \
                     [--metrics-addr <addr>]";

fn parse_constraint(text: &str) -> Result<DeliveryConstraint, String> {
    let (ratio, max_ms) =
        text.split_once(':').ok_or_else(|| format!("expected ratio:max_ms, got {text:?}"))?;
    let ratio: f64 = ratio.parse().map_err(|_| format!("bad ratio in {text:?}"))?;
    let max_ms: f64 = max_ms.parse().map_err(|_| format!("bad bound in {text:?}"))?;
    DeliveryConstraint::new(ratio, max_ms).map_err(|e| e.to_string())
}

async fn run() -> Result<(), String> {
    let args = Args::from_env()?;

    let brokers: Vec<SocketAddr> = args
        .get_all("broker")
        .iter()
        .map(|a| a.parse().map_err(|_| format!("bad broker address {a:?}")))
        .collect::<Result<_, _>>()?;
    if brokers.is_empty() {
        return Err("at least one --broker is required".into());
    }

    let (regions, inter) = match (args.get("regions-csv"), args.get("inter-csv")) {
        (Some(regions_path), Some(inter_path)) => {
            let regions_text =
                tokio::fs::read_to_string(regions_path).await.map_err(|e| e.to_string())?;
            let inter_text =
                tokio::fs::read_to_string(inter_path).await.map_err(|e| e.to_string())?;
            (
                multipub_data::csv::parse_region_set(&regions_text).map_err(|e| e.to_string())?,
                multipub_data::csv::parse_inter_region_matrix(&inter_text)
                    .map_err(|e| e.to_string())?,
            )
        }
        (None, None) if brokers.len() == 10 => {
            (multipub_data::ec2::region_set(), multipub_data::ec2::inter_region_latencies())
        }
        (None, None) => {
            let (regions, inter) = multipub_data::ec2::restricted_deployment(brokers.len());
            (regions, inter)
        }
        _ => return Err("--regions-csv and --inter-csv must be given together".into()),
    };

    let default_constraint = parse_constraint(args.get("default-constraint").unwrap_or("95:200"))?;
    let mut controller = Controller::connect(regions, inter, &brokers, default_constraint)
        .await
        .map_err(|e| e.to_string())?;
    let unreachable = controller.unreachable_regions();
    if !unreachable.is_empty() {
        println!(
            "multipub-controller: {} of {} brokers unreachable at startup \
             (regions {:?}); optimizing over the rest and re-dialing in \
             the background",
            unreachable.len(),
            brokers.len(),
            unreachable,
        );
    }
    if let Some(ms) = args.get("connect-timeout") {
        let ms: u64 = ms.parse().map_err(|_| "bad --connect-timeout (ms)".to_string())?;
        controller.set_connect_timeout(Duration::from_millis(ms));
    }
    if let Some(spec) = args.get("reconnect-backoff") {
        let (base, cap) =
            spec.split_once(':').ok_or_else(|| format!("expected base_ms:cap_ms, got {spec:?}"))?;
        let base: u64 = base.parse().map_err(|_| format!("bad base in {spec:?}"))?;
        let cap: u64 = cap.parse().map_err(|_| format!("bad cap in {spec:?}"))?;
        controller.set_redial_policy(multipub_broker::session::ReconnectPolicy::new(
            Duration::from_millis(base),
            Duration::from_millis(cap),
        ));
    }
    if let Some(ms) = args.get("handover-grace") {
        let ms: u64 = ms.parse().map_err(|_| "bad --handover-grace (ms)".to_string())?;
        controller.set_handover_grace(Duration::from_millis(ms));
    }
    if let Some(ms) = args.get("handover-timeout") {
        let ms: u64 = ms.parse().map_err(|_| "bad --handover-timeout (ms)".to_string())?;
        controller.set_handover_timeout(Duration::from_millis(ms));
    }

    for spec in args.get_all("constraint") {
        let (topic, constraint) = spec
            .split_once('=')
            .ok_or_else(|| format!("expected topic=ratio:max_ms, got {spec:?}"))?;
        controller.set_constraint(topic, parse_constraint(constraint)?);
    }
    for spec in args.get_all("client") {
        let (client, row) = parse_pair::<u64>(spec)?;
        controller.register_client(client, parse_f64_list(row)?);
    }
    if args.get_parsed_or("mitigate", false)? {
        controller.enable_mitigation(MitigationPolicy::default());
    }

    if let Some(metrics) = args.get("metrics-addr") {
        let addr: SocketAddr =
            metrics.parse().map_err(|_| "bad --metrics-addr address".to_string())?;
        let bound = multipub_cli::metrics::serve_metrics(addr)
            .await
            .map_err(|e| format!("--metrics-addr {metrics}: {e}"))?;
        println!("multipub-controller: metrics on http://{bound}/metrics");
    }

    let interval_secs: f64 = args.get_parsed_or("interval", 30.0)?;
    let rounds: u64 = args.get_parsed_or("rounds", 0u64)?;
    println!(
        "multipub-controller: {} brokers, optimizing every {interval_secs}s \
         ({} rounds)",
        brokers.len(),
        if rounds == 0 { "unbounded".to_string() } else { rounds.to_string() }
    );

    let mut completed = 0u64;
    loop {
        tokio::select! {
            _ = tokio::time::sleep(Duration::from_secs_f64(interval_secs)) => {}
            _ = tokio::signal::ctrl_c() => {
                println!("multipub-controller: shutting down");
                return Ok(());
            }
        }
        let decisions = controller.optimize_once().await;
        completed += 1;
        println!("round {completed}: {} topic(s)", decisions.len());
        for decision in &decisions {
            println!(
                "  {} -> {} | {:.1} ms | ${:.6}/interval | feasible {} | deployed {}{}{}",
                decision.topic,
                decision.configuration,
                decision.percentile_ms,
                decision.cost_dollars,
                decision.feasible,
                decision.deployed,
                if decision.forced_regions.is_empty() {
                    String::new()
                } else {
                    format!(" | forced {:?}", decision.forced_regions)
                },
                if decision.excluded_regions.is_empty() {
                    String::new()
                } else {
                    format!(" | excluded {:?}", decision.excluded_regions)
                },
            );
        }
        if rounds != 0 && completed >= rounds {
            return Ok(());
        }
    }
}

#[tokio::main]
async fn main() {
    if let Err(message) = run().await {
        eprintln!("error: {message}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
}
