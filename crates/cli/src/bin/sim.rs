//! `multipub-sim` — run a JSON simulation spec through the optimizer.
//!
//! ```text
//! multipub-sim --spec experiment.json [--format markdown|csv] \
//!     [--metrics-summary true]          # dump solver metrics at exit
//! multipub-sim --example true           # print a sample spec and exit
//! ```
//!
//! The spec format is documented on
//! [`multipub_sim::spec::SimulationSpec`]; topics run against the built-in
//! 10-region EC2 deployment and are solved in parallel. With
//! `--metrics-summary true` the run's metrics registry (solve timings,
//! configurations evaluated) is printed to stderr in Prometheus text
//! format after the result table.

use multipub_cli::Args;
use multipub_sim::spec::{parse_spec, run_spec};

const USAGE: &str = "usage: multipub-sim --spec <path.json> [--format markdown|csv] \
     [--metrics-summary true] | --example true";

const EXAMPLE: &str = r#"{
  "interval_secs": 60,
  "seed": 2017,
  "topics": [
    {
      "name": "game/scores",
      "ratio_percent": 75,
      "max_ms": 150,
      "pubs_per_region": [10,10,10,10,10,10,10,10,10,10],
      "subs_per_region": [10,10,10,10,10,10,10,10,10,10],
      "rate_per_sec": 1.0,
      "size_bytes": 1024
    }
  ]
}"#;

fn run() -> Result<(), String> {
    let args = Args::from_env()?;
    if args.get_parsed_or("example", false)? {
        println!("{EXAMPLE}");
        return Ok(());
    }
    let path = args.require("spec")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let spec = parse_spec(&text)?;
    let outcome = run_spec(&spec).map_err(|e| e.to_string())?;
    match args.get("format").unwrap_or("markdown") {
        "markdown" => print!("{}", outcome.table().to_markdown()),
        "csv" => print!("{}", outcome.table().to_csv()),
        other => return Err(format!("unknown format {other:?}")),
    }
    if args.get_parsed_or("metrics-summary", false)? {
        eprint!("{}", multipub_obs::registry().render_prometheus());
    }
    Ok(())
}

fn main() {
    if let Err(message) = run() {
        eprintln!("error: {message}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
}
