//! `multipub-broker` — run one per-region MultiPub broker.
//!
//! ```text
//! multipub-broker --region 0 --bind 0.0.0.0:9000 \
//!     --peer 1=10.0.1.5:9000 --peer 2=10.0.2.5:9000 \
//!     [--region-delays 0,40,90] \         # WAN emulation (ms, testing)
//!     [--idle-timeout 30000] \            # reap silent connections (ms)
//!     [--keepalive 10000] \               # peer-link heartbeat (ms)
//!     [--outbound-queue 65536] \          # per-connection queue (frames)
//!     [--slow-consumer drop-oldest] \     # or drop-newest|disconnect|block:<ms>
//!     [--publish-rate 1000] \             # per-publisher admission (msgs/s)
//!     [--inflight-budget 67108864] \      # global queued-bytes budget
//!     [--shards 8] \                      # subscription-map shards (1 = reference path)
//!     [--dedup-window 1024] \             # QoS 1 per-publisher dedup window (seqs)
//!     [--retain true] \                   # retain last value per topic for late subscribers
//!     [--metrics-addr 0.0.0.0:9464]       # Prometheus scrape endpoint
//! ```
//!
//! The broker serves pub/sub clients, forwards routed publications to its
//! peers, collects region-manager statistics and applies controller
//! configuration updates. With `--metrics-addr` it also serves the
//! process metrics registry in Prometheus text format. It runs until
//! Ctrl-C.

use multipub_broker::broker::Broker;
use multipub_broker::delay::DelayTable;
use multipub_broker::flow::SlowConsumerPolicy;
use multipub_cli::{parse_f64_list, parse_pair, Args};
use multipub_core::ids::RegionId;
use std::net::SocketAddr;

const USAGE: &str = "usage: multipub-broker --region <idx> [--bind <addr>] \
                     [--peer <idx>=<addr>]... [--region-delays <ms,ms,...>] \
                     [--client-delay <id>=<ms>]... [--idle-timeout <ms>] \
                     [--keepalive <ms>] [--outbound-queue <frames>] \
                     [--slow-consumer block:<ms>|drop-oldest|drop-newest|disconnect] \
                     [--publish-rate <msgs_per_sec>] [--inflight-budget <bytes>] \
                     [--shards <n>] [--dedup-window <seqs>] [--retain true|false] \
                     [--metrics-addr <addr>]";

async fn run() -> Result<(), String> {
    let args = Args::from_env()?;
    let region: u8 = args.require("region")?.parse().map_err(|_| "bad --region".to_string())?;
    let bind: SocketAddr = args
        .get("bind")
        .unwrap_or("127.0.0.1:0")
        .parse()
        .map_err(|_| "bad --bind address".to_string())?;

    let mut delays = match args.get("region-delays") {
        Some(list) => DelayTable::with_region_delays_ms(&parse_f64_list(list)?),
        None => DelayTable::none(),
    };
    for spec in args.get_all("client-delay") {
        let (client, ms) = parse_pair::<u64>(spec)?;
        let ms: f64 = ms.parse().map_err(|_| format!("bad delay in {spec:?}"))?;
        delays.set_client_delay_ms(client, ms);
    }

    let mut builder = Broker::builder(RegionId(region)).bind(bind).delays(delays);
    if let Some(ms) = args.get("idle-timeout") {
        let ms: u64 = ms.parse().map_err(|_| "bad --idle-timeout (ms)".to_string())?;
        builder = builder.idle_timeout(std::time::Duration::from_millis(ms));
    }
    if let Some(ms) = args.get("keepalive") {
        let ms: u64 = ms.parse().map_err(|_| "bad --keepalive (ms)".to_string())?;
        builder = builder.peer_keepalive(std::time::Duration::from_millis(ms));
    }
    if let Some(frames) = args.get("outbound-queue") {
        let frames: usize =
            frames.parse().map_err(|_| "bad --outbound-queue (frames)".to_string())?;
        builder = builder.outbound_queue(frames);
    }
    if let Some(policy) = args.get("slow-consumer") {
        builder = builder.slow_consumer(
            SlowConsumerPolicy::parse(policy).map_err(|e| format!("--slow-consumer: {e}"))?,
        );
    }
    if let Some(rate) = args.get("publish-rate") {
        let rate: f64 = rate.parse().map_err(|_| "bad --publish-rate (msgs/s)".to_string())?;
        builder = builder.publish_rate(rate);
    }
    if let Some(bytes) = args.get("inflight-budget") {
        let bytes: u64 = bytes.parse().map_err(|_| "bad --inflight-budget (bytes)".to_string())?;
        builder = builder.inflight_budget(bytes);
    }
    if let Some(shards) = args.get("shards") {
        let shards: usize = shards.parse().map_err(|_| "bad --shards (count)".to_string())?;
        builder = builder.shards(shards);
    }
    if let Some(window) = args.get("dedup-window") {
        let window: usize = window.parse().map_err(|_| "bad --dedup-window (seqs)".to_string())?;
        if window == 0 {
            return Err("--dedup-window must be at least 1".to_string());
        }
        builder = builder.dedup_window(window);
    }
    if let Some(retain) = args.get("retain") {
        let retain: bool = retain.parse().map_err(|_| "bad --retain (true|false)".to_string())?;
        builder = builder.retain(retain);
    }
    for spec in args.get_all("peer") {
        let (peer_region, addr) = parse_pair::<u8>(spec)?;
        let addr: SocketAddr = addr.parse().map_err(|_| format!("bad peer address in {spec:?}"))?;
        builder = builder.peer(RegionId(peer_region), addr);
    }

    let broker = builder.spawn().await.map_err(|e| e.to_string())?;
    println!("multipub-broker: region R{region} listening on {}", broker.local_addr());
    if let Some(metrics) = args.get("metrics-addr") {
        let addr: SocketAddr =
            metrics.parse().map_err(|_| "bad --metrics-addr address".to_string())?;
        let bound = multipub_cli::metrics::serve_metrics(addr)
            .await
            .map_err(|e| format!("--metrics-addr {metrics}: {e}"))?;
        println!("multipub-broker: metrics on http://{bound}/metrics");
    }
    tokio::signal::ctrl_c().await.map_err(|e| e.to_string())?;
    println!("multipub-broker: shutting down");
    broker.shutdown();
    Ok(())
}

#[tokio::main]
async fn main() {
    if let Err(message) = run().await {
        eprintln!("error: {message}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
}
