//! # multipub-cli
//!
//! Command-line front ends for a MultiPub deployment:
//!
//! * `multipub-broker` — run one per-region broker.
//! * `multipub-controller` — run the optimizing controller against a set
//!   of brokers.
//! * `multipub-sim` — run a JSON simulation spec through the optimizer.
//!
//! The argument parser is deliberately dependency-free: flags are
//! `--name value` pairs, repeatable where documented.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;

use std::collections::BTreeMap;

/// Minimal `--flag value` argument collector with repeatable flags.
#[derive(Debug, Default, Clone)]
pub struct Args {
    values: BTreeMap<String, Vec<String>>,
    positional: Vec<String>,
}

impl Args {
    /// Parses the process arguments (skipping `argv[0]`).
    pub fn from_env() -> Result<Self, String> {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit iterator of arguments.
    ///
    /// # Errors
    ///
    /// Returns a message when a `--flag` is not followed by a value.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Args::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = iter.next().ok_or_else(|| format!("flag --{name} expects a value"))?;
                out.values.entry(name.to_string()).or_default().push(value);
            } else {
                out.positional.push(arg);
            }
        }
        Ok(out)
    }

    /// The last value of a flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).and_then(|v| v.last()).map(String::as_str)
    }

    /// All values of a repeatable flag.
    pub fn get_all(&self, name: &str) -> &[String] {
        self.values.get(name).map_or(&[], Vec::as_slice)
    }

    /// A required flag value.
    ///
    /// # Errors
    ///
    /// Returns a usage message when the flag is missing.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// A flag parsed into any `FromStr` type, with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value fails to parse.
    pub fn get_parsed_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(text) => text.parse().map_err(|_| format!("flag --{name}: cannot parse {text:?}")),
        }
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

/// Parses `key=value` pairs like `3=127.0.0.1:9000`.
///
/// # Errors
///
/// Returns a message when the `=` separator is missing or the key fails
/// to parse.
pub fn parse_pair<K: std::str::FromStr>(text: &str) -> Result<(K, &str), String> {
    let (key, value) =
        text.split_once('=').ok_or_else(|| format!("expected key=value, got {text:?}"))?;
    let key = key.parse().map_err(|_| format!("cannot parse key in {text:?}"))?;
    Ok((key, value))
}

/// Parses a comma-separated list of floats (`10,20.5,0`).
///
/// # Errors
///
/// Returns a message naming the offending element.
pub fn parse_f64_list(text: &str) -> Result<Vec<f64>, String> {
    text.split(',')
        .map(|part| part.trim().parse::<f64>().map_err(|_| format!("cannot parse number {part:?}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse(list.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = args(&["--region", "3", "run", "--peer", "0=x", "--peer", "1=y"]);
        assert_eq!(a.get("region"), Some("3"));
        assert_eq!(a.get_all("peer"), &["0=x".to_string(), "1=y".to_string()]);
        assert_eq!(a.positional(), &["run".to_string()]);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(["--region".to_string()]).is_err());
    }

    #[test]
    fn require_and_parse() {
        let a = args(&["--interval", "2.5"]);
        assert_eq!(a.require("interval").unwrap(), "2.5");
        assert!(a.require("missing").is_err());
        assert_eq!(a.get_parsed_or("interval", 1.0).unwrap(), 2.5);
        assert_eq!(a.get_parsed_or("absent", 9.0).unwrap(), 9.0);
        let bad = args(&["--interval", "zzz"]);
        assert!(bad.get_parsed_or("interval", 1.0).is_err());
    }

    #[test]
    fn pair_and_list_parsing() {
        let (k, v) = parse_pair::<u8>("4=10.0.0.1:9").unwrap();
        assert_eq!((k, v), (4u8, "10.0.0.1:9"));
        assert!(parse_pair::<u8>("no-separator").is_err());
        assert_eq!(parse_f64_list("1, 2.5,3").unwrap(), vec![1.0, 2.5, 3.0]);
        assert!(parse_f64_list("1,x").is_err());
    }
}
