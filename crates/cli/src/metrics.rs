//! A minimal HTTP endpoint serving the process-wide metrics registry in
//! Prometheus text exposition format.
//!
//! Hand-rolled on raw `tokio::net::TcpStream`s — one short-lived
//! connection per scrape, `Connection: close` — so the binaries gain an
//! observability endpoint without an HTTP framework dependency.
//!
//! Two resources are served: `/trace` answers with the contents of the
//! process-global trace ring as Chrome trace-event JSON (load it in
//! `chrome://tracing` or Perfetto), and every other path answers with
//! the full metrics registry dump in Prometheus text format — scrape
//! agents only ever ask for one resource.

use std::net::SocketAddr;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};

/// Longest request head we bother reading before answering. Scrape
/// requests are a few hundred bytes; anything larger is cut off.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Binds `addr` and spawns an accept loop that answers every HTTP request
/// with the current [`multipub_obs::registry`] rendered as Prometheus
/// text. Returns the actually-bound address (useful with port 0).
///
/// # Errors
///
/// Returns the bind error when the address is unavailable.
pub async fn serve_metrics(addr: SocketAddr) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr).await?;
    let local = listener.local_addr()?;
    tokio::spawn(async move {
        loop {
            let Ok((stream, _peer)) = listener.accept().await else {
                break;
            };
            tokio::spawn(async move {
                let _ = answer_scrape(stream).await;
            });
        }
    });
    Ok(local)
}

/// Reads the request head (until the blank line or the size cap) and
/// writes one complete response.
async fn answer_scrape(mut stream: TcpStream) -> std::io::Result<()> {
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk).await?;
        if n == 0 {
            break;
        }
        // lint:allow(indexing) `Read::read` guarantees `n <= chunk.len()`, so the range is always in bounds
        head.extend_from_slice(&chunk[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= MAX_HEAD_BYTES {
            break;
        }
    }
    let (content_type, body) = if request_path(&head).is_some_and(|p| p.starts_with("/trace")) {
        let spans = multipub_obs::trace::ring().snapshot();
        ("application/json", multipub_obs::trace::render_chrome_trace(&spans))
    } else {
        ("text/plain; version=0.0.4; charset=utf-8", multipub_obs::registry().render_prometheus())
    };
    let response = format!(
        "HTTP/1.1 200 OK\r\n\
         Content-Type: {}\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\
         \r\n\
         {}",
        content_type,
        body.len(),
        body
    );
    stream.write_all(response.as_bytes()).await?;
    stream.shutdown().await
}

/// Extracts the request path from an HTTP request head (`GET /x HTTP/1.1`
/// → `/x`). `None` on anything malformed — the caller falls back to the
/// metrics dump, preserving the answer-anything behaviour.
fn request_path(head: &[u8]) -> Option<&str> {
    let line = head.split(|&b| b == b'\r' || b == b'\n').next()?;
    let line = std::str::from_utf8(line).ok()?;
    line.split_whitespace().nth(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn scrape_returns_prometheus_text() {
        multipub_obs::counter!("multipub_cli_scrape_test_total").inc();
        let addr = serve_metrics("127.0.0.1:0".parse().unwrap()).await.unwrap();
        let mut stream = TcpStream::connect(addr).await.unwrap();
        stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n").await.unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).await.unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("Content-Type: text/plain; version=0.0.4"));
        assert!(response.contains("multipub_cli_scrape_test_total"));
    }

    #[tokio::test]
    async fn trace_path_returns_chrome_trace_json() {
        multipub_obs::trace::record_span(multipub_obs::trace::Span {
            trace_id: 0x51,
            stage: "match",
            start_micros: 10,
            dur_micros: 5,
        });
        let addr = serve_metrics("127.0.0.1:0".parse().unwrap()).await.unwrap();
        let mut stream = TcpStream::connect(addr).await.unwrap();
        stream.write_all(b"GET /trace HTTP/1.1\r\nHost: test\r\n\r\n").await.unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).await.unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("Content-Type: application/json"));
        assert!(response.contains("\"traceEvents\""));
        assert!(response.contains("\"match\""));
    }

    #[test]
    fn request_path_parses_the_request_line() {
        assert_eq!(request_path(b"GET /trace HTTP/1.1\r\nHost: x\r\n\r\n"), Some("/trace"));
        assert_eq!(request_path(b"GET /metrics HTTP/1.1\r\n"), Some("/metrics"));
        assert_eq!(request_path(b"garbage"), None);
        assert_eq!(request_path(b""), None);
    }
}
