//! A minimal HTTP endpoint serving the process-wide metrics registry in
//! Prometheus text exposition format.
//!
//! Hand-rolled on raw `tokio::net::TcpStream`s — one short-lived
//! connection per scrape, `Connection: close` — so the binaries gain an
//! observability endpoint without an HTTP framework dependency. Any
//! request path answers with the full registry dump; scrape agents only
//! ever ask for one resource.

use std::net::SocketAddr;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};

/// Longest request head we bother reading before answering. Scrape
/// requests are a few hundred bytes; anything larger is cut off.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Binds `addr` and spawns an accept loop that answers every HTTP request
/// with the current [`multipub_obs::registry`] rendered as Prometheus
/// text. Returns the actually-bound address (useful with port 0).
///
/// # Errors
///
/// Returns the bind error when the address is unavailable.
pub async fn serve_metrics(addr: SocketAddr) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr).await?;
    let local = listener.local_addr()?;
    tokio::spawn(async move {
        loop {
            let Ok((stream, _peer)) = listener.accept().await else {
                break;
            };
            tokio::spawn(async move {
                let _ = answer_scrape(stream).await;
            });
        }
    });
    Ok(local)
}

/// Reads the request head (until the blank line or the size cap) and
/// writes one complete response.
async fn answer_scrape(mut stream: TcpStream) -> std::io::Result<()> {
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk).await?;
        if n == 0 {
            break;
        }
        // lint:allow(indexing) `Read::read` guarantees `n <= chunk.len()`, so the range is always in bounds
        head.extend_from_slice(&chunk[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= MAX_HEAD_BYTES {
            break;
        }
    }
    let body = multipub_obs::registry().render_prometheus();
    let response = format!(
        "HTTP/1.1 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\
         \r\n\
         {}",
        body.len(),
        body
    );
    stream.write_all(response.as_bytes()).await?;
    stream.shutdown().await
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn scrape_returns_prometheus_text() {
        multipub_obs::counter!("multipub_cli_scrape_test_total").inc();
        let addr = serve_metrics("127.0.0.1:0".parse().unwrap()).await.unwrap();
        let mut stream = TcpStream::connect(addr).await.unwrap();
        stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n").await.unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).await.unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("Content-Type: text/plain; version=0.0.4"));
        assert!(response.contains("multipub_cli_scrape_test_total"));
    }
}
