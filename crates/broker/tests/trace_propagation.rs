//! End-to-end tests of sampled message tracing (DESIGN.md §12): the
//! five-stage span chain on a live sharded broker, trace-context
//! propagation across the peer Forward hop, and survival of trace ids
//! through publisher outage buffering and reconnect replay.

use multipub_broker::broker::Broker;
use multipub_broker::client::{ClientConfig, Delivery, PublisherClient, SubscriberClient};
use multipub_broker::session::ReconnectPolicy;
use multipub_core::ids::RegionId;
use std::collections::HashSet;
use std::net::SocketAddr;
use std::time::Duration;
use tokio::time::timeout;

const TICK: Duration = Duration::from_secs(5);

async fn recv(sub: &mut SubscriberClient) -> Delivery {
    timeout(TICK, sub.next_delivery()).await.expect("delivery within deadline").unwrap()
}

/// Spawns `n` brokers fully meshed as peers, returning them plus their
/// addresses indexed by region.
async fn mesh(n: usize) -> (Vec<Broker>, Vec<SocketAddr>) {
    let mut brokers = Vec::with_capacity(n);
    for region in 0..n {
        brokers.push(Broker::builder(RegionId(region as u8)).spawn().await.unwrap());
    }
    let addrs: Vec<SocketAddr> = brokers.iter().map(Broker::local_addr).collect();
    for (i, broker) in brokers.iter().enumerate() {
        for (j, addr) in addrs.iter().enumerate() {
            if i != j {
                broker.add_peer(RegionId(j as u8), *addr);
            }
        }
    }
    (brokers, addrs)
}

/// The stage names recorded in the process-global ring for one trace id.
fn stages_recorded(trace_id: u64) -> HashSet<&'static str> {
    multipub_obs::trace::ring()
        .snapshot()
        .iter()
        .filter(|span| span.trace_id == trace_id)
        .map(|span| span.stage)
        .collect()
}

/// A sampled publish through a live sharded broker produces a complete
/// trace: monotone stage stamps whose five spans sum to the measured
/// trip time (the stamps are contiguous, so the sum telescopes — well
/// within the 10% acceptance bound).
#[tokio::test]
async fn five_stage_trace_sums_to_trip_time() {
    let broker = Broker::builder(RegionId(0)).shards(4).spawn().await.unwrap();
    let addr = broker.local_addr();

    let mut subscriber = SubscriberClient::new(ClientConfig::new(1, vec![addr])).unwrap();
    subscriber.subscribe("traced").await.unwrap();
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut publisher = PublisherClient::new(ClientConfig {
        trace_sample: 1.0,
        ..ClientConfig::new(2, vec![addr])
    })
    .unwrap();
    publisher.publish("traced", &b"observe me"[..]).await.unwrap();

    let delivery = recv(&mut subscriber).await;
    let ctx = delivery.trace.expect("sampling at 1.0 traces every publication");
    assert!(ctx.sampled);
    assert_ne!(ctx.trace_id, 0);

    // Stage stamps are monotone along the path (one host, one clock).
    assert!(delivery.publish_micros <= ctx.admit_micros, "publish ≤ admit");
    assert!(ctx.admit_micros <= ctx.match_micros, "admit ≤ match");
    assert!(ctx.match_micros <= ctx.queue_micros, "match ≤ queue pop");
    assert!(ctx.queue_micros <= ctx.write_micros, "queue pop ≤ write start");
    assert!(ctx.write_micros <= delivery.received_micros, "write start ≤ receipt");

    // Contiguous stamps: the five stage durations sum exactly to the
    // end-to-end trip time.
    let stage_sum = (ctx.admit_micros - delivery.publish_micros)
        + (ctx.match_micros - ctx.admit_micros)
        + (ctx.queue_micros - ctx.match_micros)
        + (ctx.write_micros - ctx.queue_micros)
        + (delivery.received_micros - ctx.write_micros);
    let trip = delivery.received_micros - delivery.publish_micros;
    assert_eq!(stage_sum, trip, "contiguous stage spans telescope to the trip time");

    // Every stage also recorded a span into the process-global ring
    // (broker and client share this process).
    let stages = stages_recorded(ctx.trace_id);
    for stage in multipub_obs::trace::STAGE_NAMES {
        assert!(stages.contains(stage), "stage {stage} missing from ring: {stages:?}");
    }
    drop(broker);
}

/// Routed delivery across two peered brokers: the trace context rides
/// the Forward frame, the remote broker restamps `match` on its own
/// clock, and the subscriber still sees the original trace id — the
/// ingress broker's admission span and the egress deliver span agree.
#[tokio::test]
async fn forward_hop_preserves_the_trace_id() {
    let (brokers, addrs) = mesh(2).await;
    // Subscriber closest to region 1; publisher closest to region 0, so
    // the default all-regions-routed config forces a Forward hop.
    let mut subscriber = SubscriberClient::new(ClientConfig {
        client_id: 10,
        region_addrs: addrs.clone(),
        latencies_ms: vec![80.0, 5.0],
        ..ClientConfig::new(0, Vec::new())
    })
    .unwrap();
    subscriber.subscribe("routed").await.unwrap();
    assert_eq!(subscriber.subscribed_region("routed"), Some(RegionId(1)));
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut publisher = PublisherClient::new(ClientConfig {
        client_id: 11,
        region_addrs: addrs,
        latencies_ms: vec![5.0, 80.0],
        trace_sample: 1.0,
        ..ClientConfig::new(0, Vec::new())
    })
    .unwrap();
    let sent = publisher.publish("routed", &b"across the wan"[..]).await.unwrap();
    assert_eq!(sent, 1, "routed delivery publishes to one region");

    let delivery = recv(&mut subscriber).await;
    let ctx = delivery.trace.expect("trace context survives the Forward hop");
    assert!(ctx.sampled);
    assert_ne!(ctx.trace_id, 0);
    assert!(ctx.admit_micros > 0, "admission stamped at the ingress broker");
    assert!(ctx.match_micros >= ctx.admit_micros, "match restamped at the egress broker");
    assert!(ctx.write_micros > 0, "write stamped by the egress writer task");

    // Both ends of the path recorded spans under the same trace id:
    // admission at the ingress broker, deliver at the subscriber.
    let stages = stages_recorded(ctx.trace_id);
    assert!(stages.contains("admission"), "ingress span missing: {stages:?}");
    assert!(stages.contains("deliver"), "egress span missing: {stages:?}");
    drop(brokers);
}

/// A sampled publication buffered during a broker outage replays after
/// reconnect still carrying its trace context (assigned at publish
/// time, preserved through the pending queue).
#[tokio::test]
async fn buffered_publications_replay_with_their_trace() {
    let broker = Broker::builder(RegionId(0)).spawn().await.unwrap();
    let addr = broker.local_addr();

    let mut publisher = PublisherClient::new(ClientConfig {
        reconnect: ReconnectPolicy::new(Duration::from_millis(20), Duration::from_millis(300)),
        trace_sample: 1.0,
        ..ClientConfig::new(7, vec![addr])
    })
    .unwrap();
    publisher.publish("ticker", &b"live"[..]).await.unwrap();

    broker.shutdown();

    // Publish until the outage is noticed (`Ok(0)` = buffered), then
    // buffer a few more; each buffered entry keeps its trace context.
    let mut noticed = false;
    for i in 0..100u32 {
        let sent = publisher.publish("ticker", format!("warmup-{i}").into_bytes()).await.unwrap();
        if sent == 0 {
            noticed = true;
            break;
        }
        tokio::time::sleep(Duration::from_millis(10)).await;
    }
    assert!(noticed, "publisher never noticed the outage");
    for i in 0..3u32 {
        let sent = publisher.publish("ticker", format!("buffered-{i}").into_bytes()).await.unwrap();
        assert_eq!(sent, 0, "publish during outage must buffer");
    }

    // Restart on the same address (retry while the port is released).
    let broker = {
        let mut respawned = None;
        for _ in 0..100 {
            match Broker::builder(RegionId(0)).bind(addr).spawn().await {
                Ok(broker) => {
                    respawned = Some(broker);
                    break;
                }
                Err(_) => tokio::time::sleep(Duration::from_millis(50)).await,
            }
        }
        respawned.expect("broker rebinds after shutdown")
    };
    let mut subscriber = SubscriberClient::new(ClientConfig::new(8, vec![addr])).unwrap();
    subscriber.subscribe("ticker").await.unwrap();
    tokio::time::sleep(Duration::from_millis(50)).await;

    let flushed = publisher.flush_pending().await;
    assert!(flushed >= 4, "buffered publications flush after restart");

    let mut ids = HashSet::new();
    for _ in 0..flushed {
        let delivery = recv(&mut subscriber).await;
        let ctx = delivery.trace.expect("replayed publication still carries its trace");
        assert!(ctx.sampled);
        assert!(ids.insert(ctx.trace_id), "each publication keeps a distinct trace id");
    }
    drop(broker);
}
