//! Exhaustive loom models of the sharded subscription registry and the
//! shard → queue handoff discipline.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`; a normal `cargo test`
//! sees an empty test binary. The CI loom job appends the loom
//! dependency to this crate's manifest transiently (it is not declared
//! in `Cargo.toml` so the workspace builds on a bare toolchain) and
//! runs:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p multipub-broker --test loom_models --release
//! ```
//!
//! `ShardedTopics` locks through `crate::sync`, which swaps
//! `parking_lot` for loom's instrumented primitives under this cfg, so
//! every model below explores all interleavings of the real shard
//! code. The registry is instantiated with a plain `u64` entry — the
//! broker's `SubEntry` carries an `Outbound` handle built on tokio
//! primitives, which loom cannot model.
//!
//! The actual `FlowQueue` is likewise out of loom's reach (its
//! blocking/wakeup side uses `tokio::sync::Notify`), so the
//! snapshot-then-enqueue handoff is modeled with a loom-local queue
//! that mirrors `FlowQueue`'s accounting discipline: push under a
//! mutex with a byte counter, pop decrements the same counter. What is
//! being verified is the *broker's* discipline — snapshot the shard,
//! release the shard lock, then enqueue per subscriber — not tokio's
//! internals.

#![cfg(loom)]

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;
use multipub_broker::shard::ShardedTopics;
use std::collections::VecDeque;

/// A subscriber registering concurrently with a publish snapshot is
/// all-or-nothing: the pre-registered subscriber is in every snapshot,
/// and the racing one either made it in or did not — a torn snapshot
/// (racing entry present while an earlier entry is missing) is
/// impossible.
#[test]
fn registration_racing_publish_snapshot_is_atomic() {
    loom::model(|| {
        let topics = Arc::new(ShardedTopics::<u64>::new(2));
        topics.insert("hot", 1, 10);

        let registrar = {
            let topics = Arc::clone(&topics);
            thread::spawn(move || {
                topics.insert("hot", 2, 20);
            })
        };

        // The publish path: snapshot the fan-out set.
        let snapshot = topics.snapshot("hot");
        assert!(
            snapshot.iter().any(|&(id, entry)| id == 1 && entry == 10),
            "pre-registered subscriber missing from snapshot"
        );
        assert!(snapshot.len() == 1 || snapshot.len() == 2, "torn snapshot: {snapshot:?}");

        registrar.join().expect("registrar thread");
        let settled = topics.snapshot("hot");
        assert_eq!(settled.len(), 2, "registration lost after join");
    });
}

/// An unsubscribe racing a publish snapshot never duplicates and never
/// tears: the leaver appears at most once, the stayer always.
#[test]
fn unsubscribe_racing_publish_never_duplicates() {
    loom::model(|| {
        let topics = Arc::new(ShardedTopics::<u64>::new(2));
        topics.insert("hot", 1, 10);
        topics.insert("hot", 2, 20);

        let leaver = {
            let topics = Arc::clone(&topics);
            thread::spawn(move || {
                assert!(topics.remove("hot", 2));
            })
        };

        let snapshot = topics.snapshot("hot");
        assert!(snapshot.iter().any(|&(id, _)| id == 1), "stayer missing");
        let leaver_copies = snapshot.iter().filter(|&&(id, _)| id == 2).count();
        assert!(leaver_copies <= 1, "leaver duplicated in snapshot");

        leaver.join().expect("leaver thread");
        assert_eq!(topics.snapshot("hot"), vec![(1, 10)]);
    });
}

/// Connection teardown (`remove_conn`, the every-shard sweep) racing a
/// registration on another topic of the same registry must neither
/// resurrect the dead connection nor lose the registration.
#[test]
fn connection_sweep_racing_registration() {
    loom::model(|| {
        let topics = Arc::new(ShardedTopics::<u64>::new(2));
        topics.insert("a", 1, 10);
        topics.insert("b", 1, 11);

        let registrar = {
            let topics = Arc::clone(&topics);
            thread::spawn(move || {
                topics.insert("a", 2, 20);
            })
        };
        topics.remove_conn(1);
        registrar.join().expect("registrar thread");

        assert_eq!(topics.snapshot("a"), vec![(2, 20)]);
        assert!(topics.snapshot("b").is_empty());
    });
}

/// Per-shard publish counters racing from two publishers sum exactly:
/// the relaxed atomic is a counter, not a synchronization point, and
/// no increment may be lost.
#[test]
fn concurrent_publish_counts_are_exact() {
    loom::model(|| {
        let topics = Arc::new(ShardedTopics::<u64>::new(2));
        let other = {
            let topics = Arc::clone(&topics);
            thread::spawn(move || {
                topics.note_publish("x");
                topics.note_publish("y");
            })
        };
        topics.note_publish("x");
        other.join().expect("publisher thread");
        assert_eq!(topics.publish_counts().iter().sum::<u64>(), 3);
    });
}

/// Mirror of `FlowQueue`'s accounting discipline (see module docs for
/// why the real queue cannot run under loom): frames pushed under the
/// queue mutex with a byte counter, popped with the counter
/// decremented. The broker's handoff — shard snapshot released before
/// enqueueing — must keep the byte counter exactly equal to the queued
/// bytes at every quiescent point, with no frame lost or double-queued.
#[test]
fn shard_to_queue_handoff_keeps_accounting_exact() {
    #[derive(Debug)]
    struct ModelQueue {
        frames: Mutex<VecDeque<u64>>,
        bytes: AtomicU64,
    }

    impl ModelQueue {
        fn push(&self, frame: u64, len: u64) {
            let mut frames = self.frames.lock().expect("queue lock");
            frames.push_back(frame);
            self.bytes.fetch_add(len, Ordering::Relaxed);
        }
        fn pop(&self, len: u64) -> Option<u64> {
            let mut frames = self.frames.lock().expect("queue lock");
            let frame = frames.pop_front()?;
            self.bytes.fetch_sub(len, Ordering::Relaxed);
            Some(frame)
        }
    }

    const FRAME_LEN: u64 = 64;

    loom::model(|| {
        let topics = Arc::new(ShardedTopics::<usize>::new(1));
        let queues = Arc::new(vec![
            ModelQueue { frames: Mutex::new(VecDeque::new()), bytes: AtomicU64::new(0) },
            ModelQueue { frames: Mutex::new(VecDeque::new()), bytes: AtomicU64::new(0) },
        ]);
        topics.insert("hot", 1, 0);

        // A second subscriber registers while the publisher fans out.
        let registrar = {
            let topics = Arc::clone(&topics);
            thread::spawn(move || {
                topics.insert("hot", 2, 1);
            })
        };

        // The publish path: snapshot under the shard lock, enqueue
        // outside it — exactly `Broker::deliver_locally`'s shape.
        let snapshot = topics.snapshot("hot");
        let fanned_out = snapshot.len();
        for &(_, queue_idx) in &snapshot {
            queues.get(queue_idx).expect("queue for subscriber").push(7, FRAME_LEN);
        }

        registrar.join().expect("registrar thread");

        // Every snapshotted subscriber got exactly one frame; the
        // racing subscriber got one or none, never a partial push.
        let mut drained = 0;
        for queue in queues.iter() {
            while let Some(frame) = queue.pop(FRAME_LEN) {
                assert_eq!(frame, 7);
                drained += 1;
            }
            assert_eq!(queue.bytes.load(Ordering::Relaxed), 0, "bytes leaked after drain");
        }
        assert_eq!(drained, fanned_out);
        assert!((1..=2).contains(&fanned_out));
    });
}
