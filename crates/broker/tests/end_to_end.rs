//! End-to-end tests of the MultiPub middleware: multi-region deployments
//! on loopback, with real sockets, real forwarding and real
//! reconfiguration.

use multipub_broker::broker::Broker;
use multipub_broker::client::{ClientConfig, PublisherClient, SubscriberClient};
use multipub_broker::controller::Controller;
use multipub_broker::delay::DelayTable;
use multipub_broker::frame::WireMode;
use multipub_core::constraint::DeliveryConstraint;
use multipub_core::ids::RegionId;
use multipub_core::latency::InterRegionMatrix;
use multipub_core::region::{Region, RegionSet};
use std::net::SocketAddr;
use std::time::Duration;
use tokio::time::timeout;

const TICK: Duration = Duration::from_secs(5);

async fn recv(sub: &mut SubscriberClient) -> multipub_broker::client::Delivery {
    timeout(TICK, sub.next_delivery()).await.expect("delivery within deadline").unwrap()
}

/// Spawns `n` brokers fully meshed as peers, returning them plus their
/// addresses indexed by region.
async fn mesh(n: usize) -> (Vec<Broker>, Vec<SocketAddr>) {
    let mut brokers = Vec::with_capacity(n);
    for region in 0..n {
        brokers.push(Broker::builder(RegionId(region as u8)).spawn().await.unwrap());
    }
    let addrs: Vec<SocketAddr> = brokers.iter().map(Broker::local_addr).collect();
    for (i, broker) in brokers.iter().enumerate() {
        for (j, addr) in addrs.iter().enumerate() {
            if i != j {
                broker.add_peer(RegionId(j as u8), *addr);
            }
        }
    }
    (brokers, addrs)
}

#[tokio::test]
async fn single_region_pub_sub() {
    let (brokers, addrs) = mesh(1).await;
    let mut subscriber = SubscriberClient::new(ClientConfig::new(1, addrs.clone())).unwrap();
    subscriber.subscribe("news").await.unwrap();
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut publisher = PublisherClient::new(ClientConfig::new(2, addrs)).unwrap();
    publisher.publish("news", &b"breaking"[..]).await.unwrap();

    let delivery = recv(&mut subscriber).await;
    assert_eq!(&delivery.payload[..], b"breaking");
    assert_eq!(delivery.publisher, 2);
    assert_eq!(delivery.topic, "news");
    drop(brokers);
}

#[tokio::test]
async fn routed_delivery_crosses_regions() {
    let (brokers, addrs) = mesh(3).await;
    // Subscriber is closest to region 2; publisher closest to region 0.
    let mut subscriber = SubscriberClient::new(ClientConfig {
        client_id: 10,
        region_addrs: addrs.clone(),
        latencies_ms: vec![80.0, 60.0, 5.0],
        emulate_wan: false,
        ..ClientConfig::new(0, Vec::new())
    })
    .unwrap();
    subscriber.subscribe("chat").await.unwrap();
    assert_eq!(subscriber.subscribed_region("chat"), Some(RegionId(2)));
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut publisher = PublisherClient::new(ClientConfig {
        client_id: 11,
        region_addrs: addrs,
        latencies_ms: vec![5.0, 60.0, 80.0],
        emulate_wan: false,
        ..ClientConfig::new(0, Vec::new())
    })
    .unwrap();
    // Default topic config: all regions, routed → one send, forwarded.
    let sent = publisher.publish("chat", &b"hi"[..]).await.unwrap();
    assert_eq!(sent, 1, "routed delivery publishes to one region");

    let delivery = recv(&mut subscriber).await;
    assert_eq!(&delivery.payload[..], b"hi");
    drop(brokers);
}

#[tokio::test]
async fn direct_delivery_fans_out_from_the_publisher() {
    let (brokers, addrs) = mesh(2).await;
    for broker in &brokers {
        broker.install_config("scores", 0b11, WireMode::Direct);
    }
    let mut sub_far = SubscriberClient::new(ClientConfig {
        client_id: 20,
        region_addrs: addrs.clone(),
        latencies_ms: vec![70.0, 5.0],
        emulate_wan: false,
        ..ClientConfig::new(0, Vec::new())
    })
    .unwrap();
    sub_far.subscribe("scores").await.unwrap();
    let mut sub_near = SubscriberClient::new(ClientConfig {
        client_id: 21,
        region_addrs: addrs.clone(),
        latencies_ms: vec![5.0, 70.0],
        emulate_wan: false,
        ..ClientConfig::new(0, Vec::new())
    })
    .unwrap();
    sub_near.subscribe("scores").await.unwrap();
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut publisher = PublisherClient::new(ClientConfig {
        client_id: 22,
        region_addrs: addrs,
        latencies_ms: vec![5.0, 70.0],
        emulate_wan: false,
        ..ClientConfig::new(0, Vec::new())
    })
    .unwrap();
    // The publisher has not heard the config yet (fresh connection), so it
    // bootstraps with routed; after the first publish the broker's
    // ConfigUpdate reaches it and subsequent publishes go direct.
    publisher.publish("scores", &b"0:0"[..]).await.unwrap();
    assert_eq!(&recv(&mut sub_near).await.payload[..], b"0:0");
    assert_eq!(&recv(&mut sub_far).await.payload[..], b"0:0");

    tokio::time::sleep(Duration::from_millis(50)).await;
    let sent = publisher.publish("scores", &b"1:0"[..]).await.unwrap();
    assert_eq!(sent, 2, "direct delivery publishes to every serving region");
    assert_eq!(&recv(&mut sub_near).await.payload[..], b"1:0");
    assert_eq!(&recv(&mut sub_far).await.payload[..], b"1:0");

    // No inter-broker forwarding happened for the direct publish: each
    // subscriber got each message exactly once.
    let extra = timeout(Duration::from_millis(200), sub_near.next_delivery()).await;
    assert!(extra.is_err(), "no duplicate deliveries");
    drop(brokers);
}

#[tokio::test]
async fn region_manager_reports_interval_statistics() {
    let (brokers, addrs) = mesh(2).await;
    brokers[0].install_config("metrics", 0b01, WireMode::Direct);
    brokers[1].install_config("metrics", 0b01, WireMode::Direct);

    let mut subscriber = SubscriberClient::new(ClientConfig {
        client_id: 30,
        region_addrs: addrs.clone(),
        latencies_ms: vec![1.0, 50.0],
        emulate_wan: false,
        ..ClientConfig::new(0, Vec::new())
    })
    .unwrap();
    subscriber.subscribe("metrics").await.unwrap();
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut publisher = PublisherClient::new(ClientConfig {
        client_id: 31,
        region_addrs: addrs,
        latencies_ms: vec![1.0, 50.0],
        emulate_wan: false,
        ..ClientConfig::new(0, Vec::new())
    })
    .unwrap();
    for _ in 0..5 {
        publisher.publish("metrics", vec![0u8; 100]).await.unwrap();
    }
    for _ in 0..5 {
        recv(&mut subscriber).await;
    }

    let report = brokers[0].take_report();
    assert_eq!(report.region, 0);
    let topic = &report.topics["metrics"];
    assert_eq!(topic.publishers[&31].messages, 5);
    assert_eq!(topic.publishers[&31].bytes, 500);
    assert_eq!(topic.subscribers, vec![30]);

    // Taking the report clears message counters (interval semantics) but
    // keeps the live subscriber registry.
    let again = brokers[0].take_report();
    assert!(again.topics["metrics"].publishers.is_empty());
    assert_eq!(again.topics["metrics"].subscribers, vec![30]);
    drop(brokers);
}

#[tokio::test]
async fn wan_delay_injection_shapes_latency() {
    let (brokers, addrs) = {
        // Region 0 with 40 ms one-way delay towards client 40.
        let mut delays = DelayTable::none();
        delays.set_client_delay_ms(40, 40.0);
        let broker = Broker::builder(RegionId(0)).delays(delays).spawn().await.unwrap();
        let addrs = vec![broker.local_addr()];
        (vec![broker], addrs)
    };
    let mut subscriber = SubscriberClient::new(ClientConfig {
        client_id: 40,
        region_addrs: addrs.clone(),
        latencies_ms: vec![40.0],
        emulate_wan: false, // subscriber side delay injected by the broker
        ..ClientConfig::new(0, Vec::new())
    })
    .unwrap();
    subscriber.subscribe("slow").await.unwrap();
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut publisher = PublisherClient::new(ClientConfig {
        client_id: 41,
        region_addrs: addrs,
        latencies_ms: vec![25.0],
        emulate_wan: true, // publisher delays its own uplink
        ..ClientConfig::new(0, Vec::new())
    })
    .unwrap();
    publisher.publish("slow", &b"x"[..]).await.unwrap();
    let delivery = recv(&mut subscriber).await;
    // 25 ms uplink + 40 ms downlink ≈ 65 ms end to end.
    assert!(
        delivery.latency_ms() >= 60.0,
        "expected >= 60 ms, measured {:.1} ms",
        delivery.latency_ms()
    );
    assert!(
        delivery.latency_ms() <= 150.0,
        "expected well under 150 ms, measured {:.1} ms",
        delivery.latency_ms()
    );
    drop(brokers);
}

fn two_regions() -> (RegionSet, InterRegionMatrix) {
    (
        RegionSet::new(vec![
            Region::new("cheap", "A", 0.02, 0.09),
            Region::new("pricey", "B", 0.16, 0.25),
        ])
        .unwrap(),
        InterRegionMatrix::from_rows(vec![vec![0.0, 40.0], vec![40.0, 0.0]]).unwrap(),
    )
}

#[tokio::test]
async fn controller_optimizes_and_reconfigures_live_clients() {
    let (brokers, addrs) = mesh(2).await;
    let (regions, inter) = two_regions();
    let constraint = DeliveryConstraint::new(95.0, 500.0).unwrap();
    let mut controller = Controller::connect(regions, inter, &addrs, constraint).await.unwrap();

    // Everyone is near region 1 (the expensive one); with a loose 500 ms
    // bound the optimizer should pull the topic to cheap region 0.
    let pub_latencies = vec![70.0, 5.0];
    let sub_latencies = vec![75.0, 6.0];
    controller.register_client(50, pub_latencies.clone());
    controller.register_client(51, sub_latencies.clone());

    let mut subscriber = SubscriberClient::new(ClientConfig {
        client_id: 51,
        region_addrs: addrs.clone(),
        latencies_ms: sub_latencies,
        emulate_wan: false,
        ..ClientConfig::new(0, Vec::new())
    })
    .unwrap();
    subscriber.subscribe("game").await.unwrap();
    assert_eq!(subscriber.subscribed_region("game"), Some(RegionId(1)));
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut publisher = PublisherClient::new(ClientConfig {
        client_id: 50,
        region_addrs: addrs,
        latencies_ms: pub_latencies,
        emulate_wan: false,
        ..ClientConfig::new(0, Vec::new())
    })
    .unwrap();
    for _ in 0..10 {
        publisher.publish("game", vec![0u8; 256]).await.unwrap();
        recv(&mut subscriber).await;
    }

    // One control round: collect stats, optimize, deploy.
    let decisions = controller.optimize_once().await;
    assert_eq!(decisions.len(), 1);
    let decision = &decisions[0];
    assert_eq!(decision.topic, "game");
    assert!(decision.feasible);
    assert!(decision.deployed);
    assert_eq!(decision.unknown_clients, 0);
    // Cheapest feasible: the single cheap region 0.
    assert_eq!(decision.configuration.region_count(), 1);
    assert!(decision.configuration.assignment().contains(RegionId(0)));

    // The subscriber learns the new configuration and resubscribes; the
    // publisher re-steers. Traffic keeps flowing through region 0.
    for attempt in 0..50 {
        publisher.publish("game", format!("m{attempt}").into_bytes()).await.unwrap();
        let delivery = recv(&mut subscriber).await;
        if subscriber.subscribed_region("game") == Some(RegionId(0)) {
            let _ = delivery;
            break;
        }
        tokio::time::sleep(Duration::from_millis(20)).await;
    }
    assert_eq!(subscriber.subscribed_region("game"), Some(RegionId(0)));

    // A second optimization round with fresh traffic is a no-op deploy.
    for _ in 0..5 {
        publisher.publish("game", vec![0u8; 256]).await.unwrap();
        recv(&mut subscriber).await;
    }
    let second = controller.optimize_once().await;
    assert_eq!(second.len(), 1);
    assert!(!second[0].deployed, "configuration is already installed");
    assert_eq!(controller.installed("game"), Some(decision.configuration));
    drop(brokers);
}

#[tokio::test]
async fn controller_mitigation_force_adds_a_region_for_stragglers() {
    let (brokers, addrs) = mesh(2).await;
    let (regions, inter) = two_regions();
    let constraint = DeliveryConstraint::new(75.0, 100.0).unwrap();
    let mut controller = Controller::connect(regions, inter, &addrs, constraint).await.unwrap();
    controller.enable_mitigation(multipub_core::mitigation::MitigationPolicy::default());

    // Publisher + two healthy subscribers near cheap region 0; one
    // straggler near region 1, hopeless via region 0 (its best delivery
    // 5 + 150 already blows the 100 ms bound) but fine via region 1.
    controller.register_client(70, vec![5.0, 60.0]); // publisher
    controller.register_client(71, vec![6.0, 70.0]); // healthy sub
    controller.register_client(72, vec![7.0, 75.0]); // healthy sub
    controller.register_client(74, vec![8.0, 72.0]); // healthy sub
    controller.register_client(73, vec![150.0, 8.0]); // straggler

    let mut subs = Vec::new();
    for (id, lat) in [
        (71u64, vec![6.0, 70.0]),
        (72, vec![7.0, 75.0]),
        (74, vec![8.0, 72.0]),
        (73, vec![150.0, 8.0]),
    ] {
        let mut sub = SubscriberClient::new(ClientConfig {
            client_id: id,
            region_addrs: addrs.clone(),
            latencies_ms: lat,
            emulate_wan: false,
            ..ClientConfig::new(0, Vec::new())
        })
        .unwrap();
        sub.subscribe("alerts").await.unwrap();
        subs.push(sub);
    }
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut publisher = PublisherClient::new(ClientConfig {
        client_id: 70,
        region_addrs: addrs,
        latencies_ms: vec![5.0, 60.0],
        emulate_wan: false,
        ..ClientConfig::new(0, Vec::new())
    })
    .unwrap();
    for _ in 0..5 {
        publisher.publish("alerts", vec![0u8; 64]).await.unwrap();
        for sub in &mut subs {
            recv(sub).await;
        }
    }

    let decisions = controller.optimize_once().await;
    assert_eq!(decisions.len(), 1);
    let decision = &decisions[0];
    // The percentile optimum is region 0 alone (the straggler's 5 of 20
    // deliveries sit above the 75th percentile, so the constraint cannot
    // see it); mitigation must force-add region 1.
    assert_eq!(decision.forced_regions, vec![RegionId(1)]);
    assert!(decision.configuration.assignment().contains(RegionId(0)));
    assert!(decision.configuration.assignment().contains(RegionId(1)));
    drop(brokers);
}

#[tokio::test]
async fn content_filters_restrict_deliveries() {
    use multipub_filter::Headers;
    let (brokers, addrs) = mesh(2).await;

    // One plain subscriber and one filtered subscriber on the same topic,
    // at different regions (the filter must survive routed forwarding).
    let mut plain = SubscriberClient::new(ClientConfig {
        client_id: 80,
        region_addrs: addrs.clone(),
        latencies_ms: vec![5.0, 70.0],
        emulate_wan: false,
        ..ClientConfig::new(0, Vec::new())
    })
    .unwrap();
    plain.subscribe("ticks").await.unwrap();
    let mut filtered = SubscriberClient::new(ClientConfig {
        client_id: 81,
        region_addrs: addrs.clone(),
        latencies_ms: vec![70.0, 5.0],
        emulate_wan: false,
        ..ClientConfig::new(0, Vec::new())
    })
    .unwrap();
    filtered.subscribe_filtered("ticks", r#"symbol =^ "A" && price < 100"#).await.unwrap();
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut publisher = PublisherClient::new(ClientConfig {
        client_id: 82,
        region_addrs: addrs,
        latencies_ms: vec![5.0, 70.0],
        emulate_wan: false,
        ..ClientConfig::new(0, Vec::new())
    })
    .unwrap();

    let quotes =
        [("AAPL", 95.0, true), ("AAPL", 130.0, false), ("MSFT", 50.0, false), ("AMZN", 99.0, true)];
    for (symbol, price, _) in quotes {
        let mut headers = Headers::new();
        headers.set("symbol", symbol).set("price", price);
        publisher
            .publish_with_headers("ticks", &headers, format!("{symbol}@{price}").into_bytes())
            .await
            .unwrap();
    }

    // The plain subscriber receives all four.
    for _ in 0..4 {
        recv(&mut plain).await;
    }
    // The filtered subscriber receives exactly the matching two, in order,
    // with their headers intact.
    let first = recv(&mut filtered).await;
    assert_eq!(&first.payload[..], b"AAPL@95");
    assert_eq!(first.headers.get("symbol"), Some(&multipub_filter::Value::Str("AAPL".into())));
    let second = recv(&mut filtered).await;
    assert_eq!(&second.payload[..], b"AMZN@99");
    let extra = timeout(Duration::from_millis(200), filtered.next_delivery()).await;
    assert!(extra.is_err(), "non-matching quotes must not be delivered");
    drop(brokers);
}

#[tokio::test]
async fn invalid_filter_is_rejected_client_side() {
    let (brokers, addrs) = mesh(1).await;
    let mut subscriber = SubscriberClient::new(ClientConfig::new(90, addrs)).unwrap();
    let err = subscriber.subscribe_filtered("t", "price <").await.unwrap_err();
    assert!(matches!(err, multipub_broker::BrokerError::BadFilter { .. }));
    drop(brokers);
}

#[tokio::test]
async fn reconfiguration_loses_no_messages_during_switch() {
    let (brokers, addrs) = mesh(2).await;
    // Start all-regions-routed (the default), then flip the topic to a
    // single region while messages are in flight.
    let mut subscriber = SubscriberClient::new(ClientConfig {
        client_id: 60,
        region_addrs: addrs.clone(),
        latencies_ms: vec![5.0, 70.0],
        emulate_wan: false,
        ..ClientConfig::new(0, Vec::new())
    })
    .unwrap();
    subscriber.subscribe("stream").await.unwrap();
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut publisher = PublisherClient::new(ClientConfig {
        client_id: 61,
        region_addrs: addrs,
        latencies_ms: vec![70.0, 5.0],
        emulate_wan: false,
        ..ClientConfig::new(0, Vec::new())
    })
    .unwrap();

    let mut received = 0usize;
    for i in 0..30 {
        if i == 10 {
            // Flip the topic to region-0-only mid-stream.
            for broker in &brokers {
                broker.install_config("stream", 0b01, WireMode::Direct);
            }
        }
        publisher.publish("stream", format!("{i}").into_bytes()).await.unwrap();
        recv(&mut subscriber).await;
        received += 1;
    }
    assert_eq!(received, 30);
    drop(brokers);
}

#[tokio::test]
async fn stats_snapshot_reports_publish_and_delivery_metrics() {
    let (brokers, addrs) = mesh(2).await;
    let (regions, inter) = two_regions();
    let constraint = DeliveryConstraint::new(95.0, 500.0).unwrap();
    let mut controller = Controller::connect(regions, inter, &addrs, constraint).await.unwrap();

    let mut subscriber = SubscriberClient::new(ClientConfig {
        client_id: 100,
        region_addrs: addrs.clone(),
        latencies_ms: vec![5.0, 70.0],
        emulate_wan: false,
        ..ClientConfig::new(0, Vec::new())
    })
    .unwrap();
    subscriber.subscribe("observed").await.unwrap();
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut publisher = PublisherClient::new(ClientConfig {
        client_id: 101,
        region_addrs: addrs,
        latencies_ms: vec![5.0, 70.0],
        emulate_wan: false,
        ..ClientConfig::new(0, Vec::new())
    })
    .unwrap();
    for i in 0..3 {
        publisher.publish("observed", format!("{i}").into_bytes()).await.unwrap();
        recv(&mut subscriber).await;
    }

    // In-band metrics pull: StatsSnapshotRequest → StatsSnapshot per broker.
    let snapshots = controller.collect_metrics().await;
    assert_eq!(snapshots.len(), 2);
    // The registry is process-global (these brokers share it, as do the
    // other tests in this binary), so assertions are lower bounds.
    for json in &snapshots {
        let value: serde_json::Value = serde_json::from_str(json).expect("valid JSON");
        let publishes = value["counters"]["multipub_broker_publishes_total"]
            .as_u64()
            .expect("publish counter present");
        assert!(publishes >= 3, "expected >= 3 publishes, got {publishes}");
        let delivery = &value["histograms"]["multipub_broker_delivery_ms"];
        let count = delivery["count"].as_u64().expect("delivery histogram present");
        assert!(count >= 3, "expected >= 3 recorded deliveries, got {count}");
        assert!(delivery["p50"].as_f64().expect("p50 present") >= 0.0);
    }
    drop(brokers);
}
