//! Fault-tolerance tests: broker kill/restart with client reconnection,
//! publisher outage buffering, controller degraded-mode optimization and
//! idle-connection reaping — all on loopback with real sockets.
//!
//! Socket timings here are not deterministic; the deterministic fault
//! schedule (seeded loss, outage windows, reconvergence latency) lives in
//! the netsim crate's tests. These tests assert *eventual* behavior with
//! generous deadlines.

use multipub_broker::broker::Broker;
use multipub_broker::client::{ClientConfig, Delivery, PublisherClient, SubscriberClient};
use multipub_broker::controller::Controller;
use multipub_broker::session::ReconnectPolicy;
use multipub_core::assignment::{AssignmentVector, Configuration, DeliveryMode};
use multipub_core::constraint::DeliveryConstraint;
use multipub_core::ids::RegionId;
use multipub_core::latency::InterRegionMatrix;
use multipub_core::region::{Region, RegionSet};
use std::net::SocketAddr;
use std::time::Duration;
use tokio::time::timeout;

const TICK: Duration = Duration::from_secs(5);

/// A reconnect policy fast enough for tests: 20 ms base, 300 ms cap.
fn fast_reconnect() -> ReconnectPolicy {
    ReconnectPolicy::new(Duration::from_millis(20), Duration::from_millis(300))
}

async fn recv(sub: &mut SubscriberClient) -> Delivery {
    timeout(TICK, sub.next_delivery()).await.expect("delivery within deadline").unwrap()
}

/// One receive attempt with a short deadline, for polling loops.
async fn try_recv(sub: &mut SubscriberClient) -> Option<Delivery> {
    match timeout(Duration::from_millis(250), sub.next_delivery()).await {
        Ok(result) => result.ok(),
        Err(_) => None,
    }
}

/// Spawns `n` brokers fully meshed as peers, returning them plus their
/// addresses indexed by region.
async fn mesh(n: usize) -> (Vec<Broker>, Vec<SocketAddr>) {
    let mut brokers = Vec::with_capacity(n);
    for region in 0..n {
        brokers.push(Broker::builder(RegionId(region as u8)).spawn().await.unwrap());
    }
    let addrs: Vec<SocketAddr> = brokers.iter().map(Broker::local_addr).collect();
    for (i, broker) in brokers.iter().enumerate() {
        for (j, addr) in addrs.iter().enumerate() {
            if i != j {
                broker.add_peer(RegionId(j as u8), *addr);
            }
        }
    }
    (brokers, addrs)
}

fn two_regions() -> (RegionSet, InterRegionMatrix) {
    (
        RegionSet::new(vec![
            Region::new("cheap", "A", 0.02, 0.09),
            Region::new("pricey", "B", 0.16, 0.25),
        ])
        .unwrap(),
        InterRegionMatrix::from_rows(vec![vec![0.0, 40.0], vec![40.0, 0.0]]).unwrap(),
    )
}

/// Rebinds a broker on the address it previously held. The old listener
/// may take a moment to fully release the port, so retry briefly.
async fn restart_broker(region: u8, addr: SocketAddr, peers: &[(u8, SocketAddr)]) -> Broker {
    let mut last_err = None;
    for _ in 0..100 {
        let mut builder = Broker::builder(RegionId(region)).bind(addr);
        for &(peer_region, peer_addr) in peers {
            builder = builder.peer(RegionId(peer_region), peer_addr);
        }
        match builder.spawn().await {
            Ok(broker) => return broker,
            Err(e) => {
                last_err = Some(e);
                tokio::time::sleep(Duration::from_millis(50)).await;
            }
        }
    }
    panic!("failed to rebind broker on {addr}: {:?}", last_err);
}

/// Publishes probe messages until the subscriber receives one, proving
/// the (re-established) subscription is live end to end.
async fn publish_until_delivered(
    publisher: &mut PublisherClient,
    subscriber: &mut SubscriberClient,
    topic: &str,
) -> Delivery {
    for i in 0..100u32 {
        publisher.publish(topic, format!("probe-{i}").into_bytes()).await.unwrap();
        if let Some(delivery) = try_recv(subscriber).await {
            return delivery;
        }
    }
    panic!("no delivery after 100 probes on {topic:?}");
}

/// A subscriber survives its broker dying and coming back: it reconnects
/// on the backoff schedule and silently replays its Subscribe set.
#[tokio::test]
async fn subscriber_reconnects_and_resubscribes_after_broker_restart() {
    let broker = Broker::builder(RegionId(0)).spawn().await.unwrap();
    let addr = broker.local_addr();

    let mut subscriber = SubscriberClient::new(ClientConfig {
        reconnect: fast_reconnect(),
        ..ClientConfig::new(1, vec![addr])
    })
    .unwrap();
    subscriber.subscribe("news").await.unwrap();
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut publisher = PublisherClient::new(ClientConfig::new(2, vec![addr])).unwrap();
    publisher.publish("news", &b"before"[..]).await.unwrap();
    assert_eq!(&recv(&mut subscriber).await.payload[..], b"before");

    broker.shutdown();
    tokio::time::sleep(Duration::from_millis(100)).await;
    let broker = restart_broker(0, addr, &[]).await;

    // A fresh publisher (no shared state with the subscriber) reaches the
    // subscriber again without any explicit resubscribe call.
    let mut publisher = PublisherClient::new(ClientConfig::new(3, vec![addr])).unwrap();
    let delivery = publish_until_delivered(&mut publisher, &mut subscriber, "news").await;
    assert_eq!(delivery.topic, "news");
    assert_eq!(subscriber.subscribed_region("news"), Some(RegionId(0)));
    drop(broker);
}

/// Publications issued while every serving region is down are buffered
/// (publish returns `Ok(0)`) and delivered after the broker returns.
#[tokio::test]
async fn publisher_buffers_during_outage_and_delivers_after_restart() {
    let broker = Broker::builder(RegionId(0)).spawn().await.unwrap();
    let addr = broker.local_addr();

    let mut publisher = PublisherClient::new(ClientConfig {
        reconnect: fast_reconnect(),
        ..ClientConfig::new(7, vec![addr])
    })
    .unwrap();
    publisher.publish("ticker", &b"live"[..]).await.unwrap();

    broker.shutdown();

    // Keep publishing until the outage is noticed: a send can appear to
    // succeed until the writer task observes the dead socket, and those
    // in-flight messages are inherently lost (plain TCP has no ack).
    // From the first `Ok(0)` on, everything is buffered.
    let mut noticed = false;
    for i in 0..100u32 {
        let sent = publisher.publish("ticker", format!("warmup-{i}").into_bytes()).await.unwrap();
        if sent == 0 {
            noticed = true;
            break;
        }
        tokio::time::sleep(Duration::from_millis(10)).await;
    }
    assert!(noticed, "publisher never noticed the outage");
    for i in 0..3u32 {
        let sent = publisher.publish("ticker", format!("buffered-{i}").into_bytes()).await.unwrap();
        assert_eq!(sent, 0, "publish during outage must buffer");
    }
    assert!(publisher.pending_count() >= 4, "noticed warmup + 3 explicit buffers");

    let broker = restart_broker(0, addr, &[]).await;
    let mut subscriber = SubscriberClient::new(ClientConfig::new(8, vec![addr])).unwrap();
    subscriber.subscribe("ticker").await.unwrap();
    tokio::time::sleep(Duration::from_millis(50)).await;

    let flushed = publisher.flush_pending().await;
    assert!(flushed >= 4, "all buffered publications flush after restart");
    assert_eq!(publisher.pending_count(), 0);

    let mut got = Vec::new();
    for _ in 0..flushed {
        got.push(String::from_utf8(recv(&mut subscriber).await.payload.to_vec()).unwrap());
    }
    for i in 0..3u32 {
        assert!(got.contains(&format!("buffered-{i}")), "missing buffered-{i} in {got:?}");
    }
    drop(broker);
}

/// `Controller::connect` survives unreachable brokers: it reports them,
/// optimizes over the rest, and publishers fail over around the dead
/// region (§IV.B latency-preference applied to failover).
#[tokio::test]
async fn controller_connects_partially_and_optimizes_over_survivors() {
    let (brokers, addrs) = mesh(2).await;
    let (regions, inter) = two_regions();
    let mut brokers = brokers.into_iter();
    let broker0 = brokers.next().unwrap();
    let broker1 = brokers.next().unwrap();
    // Region 0 dies before the controller ever connects.
    broker0.shutdown();

    let constraint = DeliveryConstraint::new(95.0, 500.0).unwrap();
    let mut controller = Controller::connect(regions, inter, &addrs, constraint)
        .await
        .expect("partial connect succeeds while one broker answers");
    assert_eq!(controller.unreachable_regions(), vec![RegionId(0)]);
    controller.set_connect_timeout(Duration::from_millis(200));
    controller.set_report_timeout(Duration::from_millis(1000));
    controller.register_client(60, vec![5.0, 70.0]); // publisher near dead region 0
    controller.register_client(61, vec![75.0, 6.0]); // subscriber near region 1

    let mut subscriber = SubscriberClient::new(ClientConfig {
        latencies_ms: vec![75.0, 6.0],
        ..ClientConfig::new(61, addrs.clone())
    })
    .unwrap();
    subscriber.subscribe("game").await.unwrap();
    assert_eq!(subscriber.subscribed_region("game"), Some(RegionId(1)));
    tokio::time::sleep(Duration::from_millis(50)).await;

    // The publisher is closest to the dead region; routed delivery fails
    // over to the next-closest serving region instead of erroring.
    let mut publisher = PublisherClient::new(ClientConfig {
        latencies_ms: vec![5.0, 70.0],
        ..ClientConfig::new(60, addrs.clone())
    })
    .unwrap();
    let sent = publisher.publish("game", &b"x"[..]).await.unwrap();
    assert_eq!(sent, 1, "failover to the surviving region");
    assert_eq!(&recv(&mut subscriber).await.payload[..], b"x");

    let decisions = controller.optimize_once().await;
    let decision = decisions.iter().find(|d| d.topic == "game").expect("game decided");
    assert_eq!(decision.excluded_regions, vec![RegionId(0)]);
    assert_eq!(
        decision.configuration.assignment().mask() & 0b01,
        0,
        "dead region must not serve, even though the publisher is closest to it"
    );
    drop(broker1);
}

/// Every broker dead is the one startup condition the controller refuses:
/// a controller with zero live region managers cannot do anything useful.
#[tokio::test]
async fn controller_connect_fails_when_every_broker_is_dead() {
    let regions = RegionSet::new(vec![Region::new("solo", "A", 0.02, 0.09)]).unwrap();
    let inter = InterRegionMatrix::from_rows(vec![vec![0.0]]).unwrap();
    // A freshly spawned-then-killed broker yields a dead address.
    let broker = Broker::builder(RegionId(0)).spawn().await.unwrap();
    let addr = broker.local_addr();
    broker.shutdown();
    tokio::time::sleep(Duration::from_millis(50)).await;

    let constraint = DeliveryConstraint::new(95.0, 500.0).unwrap();
    let result = Controller::connect(regions, inter, &[addr], constraint).await;
    assert!(result.is_err(), "all brokers unreachable must fail connect");
}

/// Brokers with an idle deadline reap silent connections but keep clients
/// that heartbeat within the deadline.
#[tokio::test]
async fn idle_connections_are_reaped_but_keepalive_clients_survive() {
    let broker = Broker::builder(RegionId(0))
        .idle_timeout(Duration::from_millis(250))
        .spawn()
        .await
        .unwrap();
    let addr = broker.local_addr();

    // This publisher goes silent after one publish and never heartbeats.
    let mut quiet = PublisherClient::new(ClientConfig::new(1, vec![addr])).unwrap();
    quiet.publish("t", &b"x"[..]).await.unwrap();

    // This subscriber pings well inside the idle deadline.
    let mut alive = SubscriberClient::new(ClientConfig {
        keepalive: Some(Duration::from_millis(50)),
        ..ClientConfig::new(2, vec![addr])
    })
    .unwrap();
    alive.subscribe("t").await.unwrap();

    tokio::time::sleep(Duration::from_millis(100)).await;
    assert_eq!(broker.client_count(), 2, "both clients connected before the deadline");

    tokio::time::sleep(Duration::from_millis(800)).await;
    assert_eq!(broker.client_count(), 1, "idle publisher reaped; keepalive subscriber survives");
    drop(broker);
}

/// The full acceptance scenario: kill one region's broker under load,
/// restart it, and assert that (a) its subscribers automatically
/// resubscribe, (b) **zero** QoS 1 publications are lost across the
/// outage — everything published into the dead region is retransmitted
/// after reconnect and arrives exactly once (seq audit) — and (c) the
/// controller's next round re-optimizes over the surviving regions.
/// Earlier revisions of this test ran the topic at QoS 0 and could only
/// assert that *explicitly buffered* messages survived; publishes
/// in-flight when the socket died were silently lost. At QoS 1 the
/// publisher tracks every publish until its `PubAck`, so the loss
/// budget is exactly zero (see EXPERIMENTS.md). Slow by construction
/// (real backoff schedules); runs in the CI chaos job via
/// `--include-ignored`.
#[tokio::test]
#[ignore = "chaos test (seconds of real backoff); run with --include-ignored"]
async fn region_outage_reconverges_end_to_end() {
    let (brokers, addrs) = mesh(2).await;
    let (regions, inter) = two_regions();
    // A tight bound keeps each topic homed near its own clients: serving
    // "side" from the cheap-but-distant region 0 would violate it, so the
    // optimizer cannot migrate region-1 traffic onto the broker we kill.
    let constraint = DeliveryConstraint::new(95.0, 50.0).unwrap();
    let mut controller = Controller::connect(regions, inter, &addrs, constraint).await.unwrap();
    controller.set_connect_timeout(Duration::from_millis(250));
    controller.set_report_timeout(Duration::from_millis(1000));
    controller.set_redial_policy(ReconnectPolicy::new(
        Duration::from_millis(50),
        Duration::from_millis(500),
    ));
    // Region-0 pair on topic "game"; region-1 pair keeps topic "side"
    // alive during the outage so degraded rounds have a workload.
    controller.register_client(70, vec![5.0, 70.0]);
    controller.register_client(71, vec![6.0, 75.0]);
    controller.register_client(80, vec![70.0, 5.0]);
    controller.register_client(81, vec![75.0, 6.0]);

    // The "game" stream runs at QoS 1: the outage must not lose a
    // single message.
    let mut sub0 = SubscriberClient::new(ClientConfig {
        latencies_ms: vec![6.0, 75.0],
        reconnect: fast_reconnect(),
        qos1_topics: vec!["game".to_string()],
        ..ClientConfig::new(71, addrs.clone())
    })
    .unwrap();
    sub0.subscribe_qos1("game").await.unwrap();
    assert_eq!(sub0.subscribed_region("game"), Some(RegionId(0)));
    let mut sub1 = SubscriberClient::new(ClientConfig {
        latencies_ms: vec![75.0, 6.0],
        reconnect: fast_reconnect(),
        ..ClientConfig::new(81, addrs.clone())
    })
    .unwrap();
    sub1.subscribe("side").await.unwrap();
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut pub0 = PublisherClient::new(ClientConfig {
        latencies_ms: vec![5.0, 70.0],
        reconnect: fast_reconnect(),
        qos1_topics: vec!["game".to_string()],
        ..ClientConfig::new(70, addrs.clone())
    })
    .unwrap();
    let mut pub1 = PublisherClient::new(ClientConfig {
        latencies_ms: vec![70.0, 5.0],
        reconnect: fast_reconnect(),
        ..ClientConfig::new(80, addrs.clone())
    })
    .unwrap();

    // Healthy baseline: both topics deliver (and the QoS 1 stream acks).
    pub0.publish("game", &b"healthy-game"[..]).await.unwrap();
    assert!(pub0.await_acked(TICK).await, "healthy publish acked");
    assert_eq!(&recv(&mut sub0).await.payload[..], b"healthy-game");
    pub1.publish("side", &b"healthy-side"[..]).await.unwrap();
    assert_eq!(&recv(&mut sub1).await.payload[..], b"healthy-side");

    // A healthy round drains the baseline stats (so the degraded round
    // only sees outage-time workload) and homes each topic near its own
    // clients under the tight constraint. Pin "game" to region 0 only so
    // the outage actually severs it rather than being masked by routed
    // failover — that path is covered above.
    let _ = controller.optimize_once().await;
    let game_config =
        Configuration::new(AssignmentVector::single(RegionId(0), 2).unwrap(), DeliveryMode::Direct);
    controller.deploy("game", game_config);
    tokio::time::sleep(Duration::from_millis(100)).await;

    // ---- Kill region 0 under load. ----
    let mut brokers = brokers.into_iter();
    let broker0 = brokers.next().unwrap();
    let broker1 = brokers.next().unwrap();
    let addr0 = addrs[0];
    broker0.shutdown();

    // pub0 publishes until the outage is noticed, then five more into
    // the dead region. At QoS 1 *every* publish in this phase — even
    // ones whose socket write falsely succeeded against the dying
    // connection — stays in the unacked set until a broker acks it, so
    // the audit below can demand zero loss rather than "buffered
    // messages survived".
    let mut outage_bodies = Vec::new();
    let mut noticed = false;
    for i in 0..100u32 {
        let body = format!("during-{i}");
        let sent = pub0.publish("game", body.clone().into_bytes()).await.unwrap();
        outage_bodies.push(body);
        if sent == 0 {
            noticed = true;
            break;
        }
        tokio::time::sleep(Duration::from_millis(10)).await;
    }
    assert!(noticed, "pub0 never noticed the region-0 outage");
    for i in 0..5u32 {
        let body = format!("buffered-{i}");
        assert_eq!(pub0.publish("game", body.clone().into_bytes()).await.unwrap(), 0);
        outage_bodies.push(body);
    }
    assert_eq!(
        pub0.unacked_count(),
        outage_bodies.len(),
        "every outage-phase publish awaits its ack"
    );

    // Region-1 traffic continues during the outage.
    for i in 0..3u32 {
        pub1.publish("side", format!("side-{i}").into_bytes()).await.unwrap();
        assert_eq!(&recv(&mut sub1).await.payload[..], format!("side-{i}").as_bytes());
    }

    // (c) The degraded round excludes the dead region and still produces
    // deployable decisions from the surviving region's workload.
    let decisions = controller.optimize_once().await;
    assert_eq!(controller.unreachable_regions(), vec![RegionId(0)]);
    let side = decisions.iter().find(|d| d.topic == "side").expect("side decided in degraded mode");
    assert_eq!(side.excluded_regions, vec![RegionId(0)]);
    assert_eq!(side.configuration.assignment().mask() & 0b01, 0, "dead region excluded");

    // ---- Restart region 0 on the same address. ----
    let broker0 = restart_broker(0, addr0, &[(1, addrs[1])]).await;

    // The controller re-dials on its backoff schedule and replays the
    // installed configurations (including "game" → region 0).
    let mut recovered = false;
    for _ in 0..50u32 {
        controller.ensure_links().await;
        if controller.unreachable_regions().is_empty() {
            recovered = true;
            break;
        }
        tokio::time::sleep(Duration::from_millis(100)).await;
    }
    assert!(recovered, "controller never re-established the region-0 link");

    // (a) sub0 reconnects and resubscribes on its own backoff schedule.
    let mut resubscribed = false;
    for _ in 0..100u32 {
        if broker0.client_count() >= 1 {
            resubscribed = true;
            break;
        }
        tokio::time::sleep(Duration::from_millis(50)).await;
    }
    assert!(resubscribed, "sub0 never reconnected to the restarted broker");
    tokio::time::sleep(Duration::from_millis(100)).await;

    // (b) Zero-loss gate: retransmission drains the unacked set, and
    // every outage-phase publish reaches the resubscribed sub0 exactly
    // once (sequence audit; client-side dedup absorbs retransmit
    // overlap).
    assert!(
        pub0.await_acked(Duration::from_secs(20)).await,
        "outage backlog fully acked after restart ({} unacked)",
        pub0.unacked_count()
    );
    let mut got = Vec::new();
    let mut seqs = std::collections::HashSet::new();
    while got.len() < outage_bodies.len() {
        let delivery = recv(&mut sub0).await;
        assert!(seqs.insert(delivery.seq), "sequence {} delivered twice", delivery.seq);
        got.push(String::from_utf8(delivery.payload.to_vec()).unwrap());
    }
    for body in &outage_bodies {
        assert!(got.contains(body), "lost {body:?} across the outage; received {got:?}");
    }
    assert_eq!(sub0.subscribed_region("game"), Some(RegionId(0)));

    // A post-recovery round sees both regions again: no exclusions.
    let decisions = controller.optimize_once().await;
    assert!(decisions.iter().all(|d| d.excluded_regions.is_empty()));
    drop((broker0, broker1));
}
