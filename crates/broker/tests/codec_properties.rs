//! Property tests of the wire codec: arbitrary frames round-trip through
//! encode/decode, under arbitrary buffer fragmentation, and the decoder
//! never panics on garbage. The stream-level [`read_frame`] is exercised
//! the same way: truncated and corrupted wire bytes must surface as clean
//! errors, never as panics or hangs.

use bytes::{BufMut, Bytes, BytesMut};
use multipub_broker::codec::{decode, encode, encode_to_bytes, CodecError};
use multipub_broker::flow::SlowConsumerPolicy;
use multipub_broker::frame::{Frame, Role, TraceContext, WireMode, KNOWN_TAGS};
use multipub_broker::{read_frame, BrokerError};
use proptest::prelude::*;
use std::time::Duration;

/// Drives [`read_frame`] over an in-memory byte stream until EOF or the
/// first error, returning the frames it produced. `&[u8]` implements
/// `AsyncRead`, so no sockets are involved; the current-thread runtime
/// makes each proptest case cheap.
fn read_all(wire: &[u8]) -> Result<Vec<Frame>, BrokerError> {
    let runtime = tokio::runtime::Builder::new_current_thread().build().expect("runtime");
    runtime.block_on(async {
        let mut reader = wire;
        let mut buf = BytesMut::new();
        let mut frames = Vec::new();
        while let Some(frame) = read_frame(&mut reader, &mut buf).await? {
            frames.push(frame);
        }
        Ok(frames)
    })
}

fn arb_topic() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9/_.-]{1,24}"
}

fn arb_payload() -> impl Strategy<Value = Bytes> {
    proptest::collection::vec(any::<u8>(), 0..256).prop_map(Bytes::from)
}

fn arb_role() -> impl Strategy<Value = Role> {
    prop_oneof![
        Just(Role::Publisher),
        Just(Role::Subscriber),
        Just(Role::Peer),
        Just(Role::Controller),
    ]
}

fn arb_policy() -> impl Strategy<Value = Option<SlowConsumerPolicy>> {
    prop_oneof![
        Just(None),
        // Deadlines round-trip as whole milliseconds on the wire.
        (0u32..120_000).prop_map(|ms| Some(SlowConsumerPolicy::Block {
            deadline: Duration::from_millis(u64::from(ms)),
        })),
        Just(Some(SlowConsumerPolicy::DropOldest)),
        Just(Some(SlowConsumerPolicy::DropNewest)),
        Just(Some(SlowConsumerPolicy::Disconnect)),
    ]
}

/// `(qos, seq, retain)` triple appended to the publish-path frames.
fn arb_qos() -> impl Strategy<Value = (u8, u64, bool)> {
    (any::<u8>(), any::<u64>(), any::<bool>())
}

fn arb_trace() -> impl Strategy<Value = Option<TraceContext>> {
    prop_oneof![
        Just(None),
        (any::<u64>(), any::<bool>(), any::<[u64; 4]>()).prop_map(|(trace_id, sampled, stamps)| {
            Some(TraceContext {
                trace_id,
                sampled,
                admit_micros: stamps[0],
                match_micros: stamps[1],
                queue_micros: stamps[2],
                write_micros: stamps[3],
            })
        }),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u64>(), arb_role(), arb_policy())
            .prop_map(|(client_id, role, policy)| Frame::Connect { client_id, role, policy }),
        any::<u16>().prop_map(|region| Frame::ConnectAck { region }),
        (arb_topic(), "[a-z <>=0-9&|!()._\"^-]{0,40}", any::<u8>())
            .prop_map(|(topic, filter, qos)| Frame::Subscribe { topic, filter, qos }),
        arb_topic().prop_map(|topic| Frame::Unsubscribe { topic }),
        (
            arb_topic(),
            any::<u64>(),
            any::<u64>(),
            any::<bool>(),
            "[ -~]{0,64}",
            arb_payload(),
            arb_trace(),
            arb_qos(),
            any::<u64>(),
        )
            .prop_map(
                |(
                    topic,
                    publisher,
                    publish_micros,
                    single_target,
                    headers,
                    payload,
                    trace,
                    q,
                    epoch,
                )| {
                    Frame::Publish {
                        topic,
                        publisher,
                        publish_micros,
                        single_target,
                        headers,
                        payload,
                        trace,
                        qos: q.0,
                        seq: q.1,
                        retain: q.2,
                        epoch,
                    }
                },
            ),
        (
            arb_topic(),
            any::<u64>(),
            any::<u64>(),
            any::<u16>(),
            "[ -~]{0,64}",
            arb_payload(),
            arb_trace(),
            arb_qos(),
        )
            .prop_map(
                |(topic, publisher, publish_micros, origin_region, headers, payload, trace, q)| {
                    Frame::Forward {
                        topic,
                        publisher,
                        publish_micros,
                        origin_region,
                        headers,
                        payload,
                        trace,
                        qos: q.0,
                        seq: q.1,
                        retain: q.2,
                    }
                },
            ),
        (
            arb_topic(),
            any::<u64>(),
            any::<u64>(),
            "[ -~]{0,64}",
            arb_payload(),
            arb_trace(),
            arb_qos(),
        )
            .prop_map(|(topic, publisher, publish_micros, headers, payload, trace, q)| {
                Frame::Deliver {
                    topic,
                    publisher,
                    publish_micros,
                    headers,
                    payload,
                    trace,
                    qos: q.0,
                    seq: q.1,
                    retained: q.2,
                }
            }),
        Just(Frame::StatsRequest),
        "[ -~]{0,128}".prop_map(|json| Frame::StatsReport { json }),
        (
            arb_topic(),
            any::<u32>(),
            prop_oneof![Just(WireMode::Direct), Just(WireMode::Routed)],
            any::<u64>(),
        )
            .prop_map(|(topic, mask, mode, epoch)| Frame::ConfigUpdate {
                topic,
                mask,
                mode,
                epoch,
            }),
        any::<u64>().prop_map(|nonce| Frame::Ping { nonce }),
        any::<u64>().prop_map(|nonce| Frame::Pong { nonce }),
        Just(Frame::StatsSnapshotRequest),
        "[ -~]{0,128}".prop_map(|json| Frame::StatsSnapshot { json }),
        (arb_topic(), any::<u32>(), any::<u64>())
            .prop_map(|(topic, retry_after_ms, seq)| Frame::Busy { topic, retry_after_ms, seq }),
        (arb_topic(), any::<u64>()).prop_map(|(topic, seq)| Frame::PubAck { topic, seq }),
        (arb_topic(), any::<u64>(), any::<u64>())
            .prop_map(|(topic, publisher, seq)| Frame::DeliverAck { topic, publisher, seq }),
        (
            arb_topic(),
            any::<u32>(),
            prop_oneof![Just(WireMode::Direct), Just(WireMode::Routed)],
            any::<u64>(),
        )
            .prop_map(|(topic, mask, mode, epoch)| Frame::HandoverPrepare {
                topic,
                mask,
                mode,
                epoch,
            }),
        (arb_topic(), any::<u64>(), any::<u32>())
            .prop_map(|(topic, epoch, grace_ms)| Frame::HandoverCommit { topic, epoch, grace_ms }),
        (arb_topic(), any::<u64>())
            .prop_map(|(topic, epoch)| Frame::HandoverAbort { topic, epoch }),
        (arb_topic(), any::<u64>(), any::<u8>())
            .prop_map(|(topic, epoch, phase)| Frame::HandoverAck { topic, epoch, phase }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip(frame in arb_frame()) {
        let mut buf = BytesMut::new();
        encode(&frame, &mut buf);
        let decoded = decode(&mut buf).unwrap().unwrap();
        prop_assert_eq!(decoded, frame);
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn roundtrip_of_frame_sequences(frames in proptest::collection::vec(arb_frame(), 1..8)) {
        let mut buf = BytesMut::new();
        for frame in &frames {
            encode(frame, &mut buf);
        }
        let mut decoded = Vec::new();
        while let Some(frame) = decode(&mut buf).unwrap() {
            decoded.push(frame);
        }
        prop_assert_eq!(decoded, frames);
    }

    /// Feeding the encoder output in arbitrary chunk sizes yields the same
    /// frames — no frame boundary assumptions leak into the decoder.
    #[test]
    fn roundtrip_under_fragmentation(
        frames in proptest::collection::vec(arb_frame(), 1..5),
        chunk in 1usize..17,
    ) {
        let mut wire = BytesMut::new();
        for frame in &frames {
            encode(frame, &mut wire);
        }
        let wire = wire.freeze();
        let mut buf = BytesMut::new();
        let mut decoded = Vec::new();
        for piece in wire.chunks(chunk) {
            buf.put_slice(piece);
            while let Some(frame) = decode(&mut buf).unwrap() {
                decoded.push(frame);
            }
        }
        prop_assert_eq!(decoded, frames);
    }

    /// The decoder never panics on arbitrary bytes: it either waits for
    /// more input, produces a frame, or reports a codec error.
    #[test]
    fn decoder_is_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = BytesMut::from(&bytes[..]);
        // Iterate until the decoder stops making progress.
        loop {
            let before = buf.len();
            match decode(&mut buf) {
                Ok(Some(_)) => {
                    if buf.len() == before {
                        break;
                    }
                }
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// A truncated valid frame never decodes to anything.
    #[test]
    fn truncation_never_yields_a_frame(frame in arb_frame(), cut_fraction in 0.0f64..1.0) {
        let full = encode_to_bytes(&frame);
        let cut = ((full.len() as f64) * cut_fraction) as usize;
        if cut < full.len() {
            let mut buf = BytesMut::from(&full[..cut]);
            prop_assert_eq!(decode(&mut buf).unwrap(), None);
        }
    }

    /// `read_frame` on a stream that ends mid-frame reports
    /// [`BrokerError::ConnectionClosed`] — never a panic, never a frame
    /// built from partial bytes, never a hang.
    #[test]
    fn read_frame_reports_truncation_cleanly(
        frames in proptest::collection::vec(arb_frame(), 1..4),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut wire = BytesMut::new();
        for frame in &frames {
            encode(frame, &mut wire);
        }
        let full = wire.freeze();
        let cut = ((full.len() as f64) * cut_fraction) as usize;
        if cut == full.len() {
            // Not truncated at all: every frame must come back.
            prop_assert_eq!(read_all(&full).unwrap(), frames);
        } else {
            match read_all(&full[..cut]) {
                // Cut exactly on a frame boundary: a short but clean stream.
                Ok(decoded) => prop_assert!(decoded.len() < frames.len()),
                Err(BrokerError::ConnectionClosed) => {}
                Err(other) => return Err(TestCaseError::fail(format!(
                    "expected ConnectionClosed, got {other}"
                ))),
            }
        }
    }

    /// `read_frame` over corrupted wire bytes (one byte flipped anywhere
    /// in the stream) terminates with frames or a clean error — the codec
    /// layer is total, so the stream layer must be too.
    #[test]
    fn read_frame_survives_corruption(
        frames in proptest::collection::vec(arb_frame(), 1..4),
        position in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut wire = BytesMut::new();
        for frame in &frames {
            encode(frame, &mut wire);
        }
        let mut bytes = wire.to_vec();
        let at = position.index(bytes.len());
        bytes[at] ^= flip;
        // Any outcome is acceptable except a panic or a hang; decoding
        // may legitimately succeed when the flipped byte lands in a
        // payload or string body.
        let _ = read_all(&bytes);
    }

    /// Pure garbage never hangs `read_frame` either.
    #[test]
    fn read_frame_is_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_all(&bytes);
    }

    /// Every tag byte declared in [`KNOWN_TAGS`] decodes totally: an
    /// arbitrary body under a well-formed length prefix yields a frame or
    /// a clean [`CodecError`], never a panic. This is the decode half of
    /// the L3 exhaustiveness contract — a declared tag whose decode arm
    /// was removed (or assumes body structure it never validates) fails
    /// here before it can fail on the wire.
    #[test]
    fn every_declared_tag_decodes_totally(
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        for tag in KNOWN_TAGS {
            let mut wire = BytesMut::new();
            wire.put_u32(body.len() as u32 + 1); // body + tag byte
            wire.put_u8(tag);
            wire.put_slice(&body);
            let mut buf = wire.clone();
            // Any Ok/Err outcome is fine; a panic fails the test.
            let _ = decode(&mut buf);
            // The stream layer must agree.
            let _ = read_all(&wire);
        }
    }

    /// An undeclared tag byte is always rejected as [`CodecError::UnknownTag`].
    #[test]
    fn undeclared_tags_are_rejected(
        tag in any::<u8>(),
        body in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assume!(!KNOWN_TAGS.contains(&tag));
        let mut wire = BytesMut::new();
        wire.put_u32(body.len() as u32 + 1);
        wire.put_u8(tag);
        wire.put_slice(&body);
        let mut buf = wire;
        prop_assert!(matches!(decode(&mut buf), Err(CodecError::UnknownTag { .. })));
    }
}
