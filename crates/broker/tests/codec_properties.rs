//! Property tests of the wire codec: arbitrary frames round-trip through
//! encode/decode, under arbitrary buffer fragmentation, and the decoder
//! never panics on garbage.

use bytes::{BufMut, Bytes, BytesMut};
use multipub_broker::codec::{decode, encode, encode_to_bytes};
use multipub_broker::frame::{Frame, Role, WireMode};
use proptest::prelude::*;

fn arb_topic() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9/_.-]{1,24}"
}

fn arb_payload() -> impl Strategy<Value = Bytes> {
    proptest::collection::vec(any::<u8>(), 0..256).prop_map(Bytes::from)
}

fn arb_role() -> impl Strategy<Value = Role> {
    prop_oneof![
        Just(Role::Publisher),
        Just(Role::Subscriber),
        Just(Role::Peer),
        Just(Role::Controller),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u64>(), arb_role()).prop_map(|(client_id, role)| Frame::Connect { client_id, role }),
        any::<u16>().prop_map(|region| Frame::ConnectAck { region }),
        (arb_topic(), "[a-z <>=0-9&|!()._\"^-]{0,40}")
            .prop_map(|(topic, filter)| Frame::Subscribe { topic, filter }),
        arb_topic().prop_map(|topic| Frame::Unsubscribe { topic }),
        (arb_topic(), any::<u64>(), any::<u64>(), any::<bool>(), "[ -~]{0,64}", arb_payload())
            .prop_map(|(topic, publisher, publish_micros, single_target, headers, payload)| {
                Frame::Publish { topic, publisher, publish_micros, single_target, headers, payload }
            }),
        (arb_topic(), any::<u64>(), any::<u64>(), any::<u16>(), "[ -~]{0,64}", arb_payload())
            .prop_map(|(topic, publisher, publish_micros, origin_region, headers, payload)| {
                Frame::Forward { topic, publisher, publish_micros, origin_region, headers, payload }
            }),
        (arb_topic(), any::<u64>(), any::<u64>(), "[ -~]{0,64}", arb_payload()).prop_map(
            |(topic, publisher, publish_micros, headers, payload)| {
                Frame::Deliver { topic, publisher, publish_micros, headers, payload }
            }
        ),
        Just(Frame::StatsRequest),
        "[ -~]{0,128}".prop_map(|json| Frame::StatsReport { json }),
        (arb_topic(), any::<u32>(), prop_oneof![Just(WireMode::Direct), Just(WireMode::Routed)])
            .prop_map(|(topic, mask, mode)| Frame::ConfigUpdate { topic, mask, mode }),
        any::<u64>().prop_map(|nonce| Frame::Ping { nonce }),
        any::<u64>().prop_map(|nonce| Frame::Pong { nonce }),
        Just(Frame::StatsSnapshotRequest),
        "[ -~]{0,128}".prop_map(|json| Frame::StatsSnapshot { json }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip(frame in arb_frame()) {
        let mut buf = BytesMut::new();
        encode(&frame, &mut buf);
        let decoded = decode(&mut buf).unwrap().unwrap();
        prop_assert_eq!(decoded, frame);
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn roundtrip_of_frame_sequences(frames in proptest::collection::vec(arb_frame(), 1..8)) {
        let mut buf = BytesMut::new();
        for frame in &frames {
            encode(frame, &mut buf);
        }
        let mut decoded = Vec::new();
        while let Some(frame) = decode(&mut buf).unwrap() {
            decoded.push(frame);
        }
        prop_assert_eq!(decoded, frames);
    }

    /// Feeding the encoder output in arbitrary chunk sizes yields the same
    /// frames — no frame boundary assumptions leak into the decoder.
    #[test]
    fn roundtrip_under_fragmentation(
        frames in proptest::collection::vec(arb_frame(), 1..5),
        chunk in 1usize..17,
    ) {
        let mut wire = BytesMut::new();
        for frame in &frames {
            encode(frame, &mut wire);
        }
        let wire = wire.freeze();
        let mut buf = BytesMut::new();
        let mut decoded = Vec::new();
        for piece in wire.chunks(chunk) {
            buf.put_slice(piece);
            while let Some(frame) = decode(&mut buf).unwrap() {
                decoded.push(frame);
            }
        }
        prop_assert_eq!(decoded, frames);
    }

    /// The decoder never panics on arbitrary bytes: it either waits for
    /// more input, produces a frame, or reports a codec error.
    #[test]
    fn decoder_is_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = BytesMut::from(&bytes[..]);
        // Iterate until the decoder stops making progress.
        loop {
            let before = buf.len();
            match decode(&mut buf) {
                Ok(Some(_)) => {
                    if buf.len() == before {
                        break;
                    }
                }
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// A truncated valid frame never decodes to anything.
    #[test]
    fn truncation_never_yields_a_frame(frame in arb_frame(), cut_fraction in 0.0f64..1.0) {
        let full = encode_to_bytes(&frame);
        let cut = ((full.len() as f64) * cut_fraction) as usize;
        if cut < full.len() {
            let mut buf = BytesMut::from(&full[..cut]);
            prop_assert_eq!(decode(&mut buf).unwrap(), None);
        }
    }
}
