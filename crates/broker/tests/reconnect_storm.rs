//! Reconnect-storm reconvergence (ROADMAP item 4 starter): when one
//! region's whole client population mass-reconnects after an outage
//! window, the session layer's decorrelated-jitter backoff must spread
//! the herd enough to meet a reconvergence-time SLO.
//!
//! The deterministic test drives the netsim [`ReconnectStorm`] schedule
//! against the **real** [`ReconnectPolicy`] jitter stream; the chaos
//! test runs the storm over live sockets and clocks actual
//! reconvergence (CI chaos job, `--include-ignored`).

use multipub_broker::broker::Broker;
use multipub_broker::client::{ClientConfig, SubscriberClient};
use multipub_broker::session::ReconnectPolicy;
use multipub_core::ids::RegionId;
use multipub_netsim::faults::{FaultPlan, ReconnectStorm};
use multipub_netsim::time::SimTime;
use std::net::SocketAddr;
use std::time::Duration;

/// The storm population for the deterministic schedule test.
const POPULATION: u64 = 256;

/// Reconvergence SLO for the deterministic schedule: once the broker is
/// reachable again, every client's next re-dial lands within one
/// backoff cap — a client's in-window attempt can at worst schedule its
/// next try `cap` later.
const SCHEDULE_SLO_MS: f64 = 300.0;

/// A reconnect policy matching the e2e test defaults: 20 ms base,
/// 300 ms cap.
fn storm_policy() -> ReconnectPolicy {
    ReconnectPolicy::new(Duration::from_millis(20), Duration::from_millis(300))
}

/// The reconnection instant of every stormed client: each client is
/// disconnected at the window start and re-dials on its own seeded
/// decorrelated-jitter schedule; attempts inside the window fail
/// instantly (the region is down), and the first attempt at or after
/// the window end succeeds.
fn reconnect_instants_ms(storm: &ReconnectStorm, population: u64) -> Vec<f64> {
    (0..population)
        .map(|client| {
            let mut backoff = storm_policy().backoff(client);
            let mut at = storm.start_ms();
            loop {
                let delay = backoff.next_delay().expect("policy retries forever");
                at += delay.as_secs_f64() * 1000.0;
                if at >= storm.end_ms() {
                    return at;
                }
            }
        })
        .collect()
}

/// The storm schedule meets the reconvergence SLO: every client is back
/// within one backoff cap of the mass-reconnect instant, and the jitter
/// spreads the herd instead of re-synchronizing it.
#[test]
fn storm_reconnects_spread_within_the_slo_window() {
    let storm = ReconnectStorm::new(RegionId(1), 500.0, 1500.0);
    let plan = FaultPlan::none().with_reconnect_storm(storm);
    assert!(plan.clients_stormed(RegionId(1), SimTime::from_ms(1000.0)));
    assert!(!plan.clients_stormed(RegionId(1), SimTime::from_ms(1500.0)));

    let instants = reconnect_instants_ms(&storm, POPULATION);

    // SLO: full reconvergence within one cap of the window end.
    let last = instants.iter().copied().fold(f64::MIN, f64::max);
    let first = instants.iter().copied().fold(f64::MAX, f64::min);
    assert!(first >= storm.end_ms(), "nobody reconnects while the region is still down");
    assert!(
        last <= storm.end_ms() + SCHEDULE_SLO_MS,
        "reconvergence SLO violated: last re-dial at {last:.1} ms, \
         SLO window ends at {:.1} ms",
        storm.end_ms() + SCHEDULE_SLO_MS
    );

    // Thundering-herd check: after a full second of jittered in-window
    // retries the per-client schedules have decorrelated, so the herd
    // must not collapse into one instant — no 5 ms bucket may hold more
    // than half the population.
    let mut buckets = std::collections::HashMap::new();
    for &at in &instants {
        *buckets.entry(((at - storm.end_ms()) / 5.0) as u64).or_insert(0u64) += 1;
    }
    let peak = buckets.values().copied().max().unwrap();
    assert!(
        peak <= POPULATION / 2,
        "jitter must spread the herd: {peak} of {POPULATION} clients in one 5 ms bucket"
    );
    // And the schedule is deterministic per seed: same storm, same draws.
    assert_eq!(instants, reconnect_instants_ms(&storm, POPULATION));
}

/// Live reconvergence SLO: a broker restart disconnects its whole
/// client population at once; every subscriber must be back (connected
/// *and* resubscribed) within the SLO. Slow by construction (real
/// backoff schedules); runs in the CI chaos job via
/// `--include-ignored`.
#[tokio::test]
#[ignore = "chaos test (real mass-reconnect backoff); run with --include-ignored"]
async fn live_population_reconverges_after_mass_disconnect() {
    const CLIENTS: usize = 24;
    const RECONVERGENCE_SLO: Duration = Duration::from_secs(5);

    let broker = Broker::builder(RegionId(0)).spawn().await.unwrap();
    let addr: SocketAddr = broker.local_addr();

    let mut subscribers = Vec::with_capacity(CLIENTS);
    for id in 0..CLIENTS as u64 {
        let mut subscriber = SubscriberClient::new(ClientConfig {
            reconnect: storm_policy(),
            keepalive: Some(Duration::from_millis(100)),
            ..ClientConfig::new(id, vec![addr])
        })
        .unwrap();
        subscriber.subscribe("storm").await.unwrap();
        subscribers.push(subscriber);
    }
    let connected = |broker: &Broker| broker.client_count();
    let mut settled = false;
    for _ in 0..100 {
        if connected(&broker) >= CLIENTS {
            settled = true;
            break;
        }
        tokio::time::sleep(Duration::from_millis(50)).await;
    }
    assert!(settled, "population never fully connected before the storm");

    // Kill and immediately restart the broker on the same address: the
    // entire population mass-reconnects on its backoff schedule.
    broker.shutdown();
    tokio::time::sleep(Duration::from_millis(100)).await;
    let mut restarted = None;
    for _ in 0..100 {
        match Broker::builder(RegionId(0)).bind(addr).spawn().await {
            Ok(broker) => {
                restarted = Some(broker);
                break;
            }
            Err(_) => tokio::time::sleep(Duration::from_millis(50)).await,
        }
    }
    let broker = restarted.expect("broker rebinds its address");

    let started = std::time::Instant::now();
    let mut reconverged = None;
    while started.elapsed() < RECONVERGENCE_SLO {
        if connected(&broker) >= CLIENTS {
            reconverged = Some(started.elapsed());
            break;
        }
        tokio::time::sleep(Duration::from_millis(25)).await;
    }
    let took = reconverged.unwrap_or_else(|| {
        panic!(
            "reconvergence SLO violated: {} of {CLIENTS} clients back after {:?}",
            connected(&broker),
            RECONVERGENCE_SLO
        )
    });
    assert!(took <= RECONVERGENCE_SLO, "reconverged in {took:?}, SLO {RECONVERGENCE_SLO:?}");
    drop(subscribers);
    drop(broker);
}
