//! Property tests of the shard routing function and the zero-copy
//! framing invariant.
//!
//! Routing: `shard_index` must be **total** (a valid index for every
//! topic × shard count) and **stable** (pure in its arguments), and the
//! underlying FNV-1a hash is pinned to published reference vectors so a
//! toolchain upgrade can never silently re-shard a deployment.
//!
//! Zero-copy: the broker encodes a fan-out frame once into a `Bytes`
//! buffer and hands refcounted clones to every subscriber queue. That
//! is only sound if a clone is bit-identical to the original buffer
//! (same backing allocation, no copy) and every clone decodes to the
//! same frame the per-subscriber reference path would have produced.

use bytes::{Bytes, BytesMut};
use multipub_broker::codec::{decode, encode, encode_to_bytes};
use multipub_broker::frame::{Frame, TraceContext};
use multipub_broker::shard::{shard_index, topic_hash, ShardedTopics, MAX_SHARDS};
use proptest::prelude::*;

fn arb_topic() -> impl Strategy<Value = String> {
    // Includes the empty topic and multi-byte UTF-8 on purpose: the
    // hash is defined over raw bytes.
    proptest::string::string_regex("[a-zA-Z0-9/_.θλ-]{0,32}").unwrap()
}

fn arb_payload() -> impl Strategy<Value = Bytes> {
    proptest::collection::vec(any::<u8>(), 0..512).prop_map(Bytes::from)
}

fn arb_trace() -> impl Strategy<Value = Option<TraceContext>> {
    prop_oneof![
        Just(None),
        any::<(u64, bool)>().prop_map(|(trace_id, sampled)| Some(TraceContext {
            sampled,
            ..TraceContext::new(trace_id)
        })),
    ]
}

fn arb_deliver() -> impl Strategy<Value = Frame> {
    (arb_topic(), any::<u64>(), any::<u64>(), "[ -~]{0,64}", arb_payload(), arb_trace()).prop_map(
        |(topic, publisher, publish_micros, headers, payload, trace)| Frame::Deliver {
            topic,
            publisher,
            publish_micros,
            headers,
            payload,
            trace,
            qos: 0,
            seq: 0,
            retained: false,
        },
    )
}

/// Decodes exactly one frame out of a standalone buffer.
fn decode_one(wire: &Bytes) -> Frame {
    let mut buf = BytesMut::from(&wire[..]);
    let frame = decode(&mut buf).expect("valid wire bytes").expect("complete frame");
    assert!(buf.is_empty(), "trailing bytes after a single frame");
    frame
}

#[test]
fn fnv1a_hash_is_pinned_to_reference_vectors() {
    // Standard FNV-1a 64-bit test vectors. If these move, every
    // existing deployment's shard placement moves with them.
    assert_eq!(topic_hash(""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(topic_hash("a"), 0xaf63_dc4c_8601_ec8c);
    assert_eq!(topic_hash("foobar"), 0x8594_4171_f739_67e8);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Routing is total: every topic maps to a valid shard index for
    /// every shard count, including the degenerate count of zero.
    #[test]
    fn shard_index_is_total(topic in arb_topic(), count in 0usize..=MAX_SHARDS) {
        let idx = shard_index(&topic, count);
        prop_assert!(idx < count.max(1));
    }

    /// Routing is stable: same topic, same count, same shard — across
    /// calls and across an independently constructed equal string.
    #[test]
    fn shard_index_is_stable(topic in arb_topic(), count in 1usize..=MAX_SHARDS) {
        let first = shard_index(&topic, count);
        prop_assert_eq!(first, shard_index(&topic, count));
        let rebuilt: String = topic.chars().collect();
        prop_assert_eq!(first, shard_index(&rebuilt, count));
    }

    /// `ShardedTopics` actually uses that routing: an entry inserted
    /// for a topic is visible in its snapshot regardless of which other
    /// topics populate the registry, and `shard_for` matches the free
    /// function.
    #[test]
    fn registry_lookup_agrees_with_routing(
        topics in proptest::collection::vec(arb_topic(), 1..16),
        count in 1usize..=32,
    ) {
        let registry: ShardedTopics<usize> = ShardedTopics::new(count);
        for (i, topic) in topics.iter().enumerate() {
            registry.insert(topic, i as u64, i);
            prop_assert_eq!(registry.shard_for(topic), shard_index(topic, count));
        }
        for (i, topic) in topics.iter().enumerate() {
            let snap = registry.snapshot(topic);
            prop_assert!(
                snap.iter().any(|(id, entry)| *id == i as u64 && *entry == i),
                "entry for {:?} missing from its shard", topic
            );
        }
    }

    /// The zero-copy fan-out invariant: encode once, clone the `Bytes`
    /// N times. Every clone shares the original allocation (a pointer,
    /// not a copy) and decodes to exactly the frame that per-subscriber
    /// re-encoding would have carried.
    #[test]
    fn shared_bytes_clones_decode_identically(frame in arb_deliver(), fanout in 1usize..16) {
        let encoded = encode_to_bytes(&frame);

        // The reference path (fresh BytesMut per subscriber) emits
        // byte-identical wire data.
        let mut reference = BytesMut::new();
        encode(&frame, &mut reference);
        prop_assert_eq!(&reference.freeze()[..], &encoded[..]);

        for _ in 0..fanout {
            let clone = encoded.clone();
            // Zero-copy: the clone is a refcount bump on the same
            // allocation, so byte accounting by `len()` stays exact.
            prop_assert_eq!(clone.as_ptr(), encoded.as_ptr());
            prop_assert_eq!(clone.len(), encoded.len());
            prop_assert_eq!(decode_one(&clone), frame.clone());
        }
    }

    /// Slicing a shared buffer (as a vectored writer does when a write
    /// lands mid-frame) still leaves the original intact and decodable.
    #[test]
    fn partial_consumption_of_a_clone_does_not_disturb_siblings(
        frame in arb_deliver(),
        cut_fraction in 0.0f64..1.0,
    ) {
        let encoded = encode_to_bytes(&frame);
        let sibling = encoded.clone();
        let cut = ((encoded.len() as f64) * cut_fraction) as usize;
        let mut consumed = encoded.clone();
        let _ = consumed.split_to(cut.min(consumed.len()));
        prop_assert_eq!(decode_one(&sibling), frame);
    }
}
