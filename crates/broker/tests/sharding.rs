//! End-to-end correctness of the sharded zero-copy publish path.
//!
//! Every test here runs a real broker over loopback sockets and checks
//! that sharding the subscription registry is *invisible* to clients:
//! fan-out is exact across topics that land on different shards,
//! unsubscribing mid-stream stops deliveries without disturbing other
//! subscribers, and the single-shard reference configuration behaves
//! identically to the default multi-shard one. The per-shard publish
//! counters behind `multipub_broker_shard_publishes_total` are checked
//! against the pure routing function from `multipub_broker::shard`.

use multipub_broker::broker::Broker;
use multipub_broker::client::{ClientConfig, PublisherClient, SubscriberClient};
use multipub_broker::shard::shard_index;
use multipub_core::ids::RegionId;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Duration;
use tokio::time::timeout;

const TICK: Duration = Duration::from_secs(5);

/// One broker at region 0 with an explicit shard count.
async fn broker_with_shards(shards: usize) -> (Broker, Vec<SocketAddr>) {
    let broker = Broker::builder(RegionId(0)).shards(shards).spawn().await.unwrap();
    let addrs = vec![broker.local_addr()];
    (broker, addrs)
}

async fn recv(sub: &mut SubscriberClient) -> multipub_broker::client::Delivery {
    timeout(TICK, sub.next_delivery()).await.expect("delivery within deadline").unwrap()
}

/// Asserts that no delivery arrives within `window`.
async fn assert_quiet(sub: &mut SubscriberClient, window: Duration) {
    if let Ok(delivery) = timeout(window, sub.next_delivery()).await {
        panic!("unexpected delivery after unsubscribe: {:?}", delivery.unwrap().topic);
    }
}

/// Publishes to topics spread across shards reach exactly the right
/// subscribers, with no cross-shard leakage, duplication or loss.
#[tokio::test]
async fn cross_shard_fanout_is_exact() {
    let shards = 8;
    let (broker, addrs) = broker_with_shards(shards).await;
    assert_eq!(broker.shard_count(), shards);

    // Enough distinct topics that FNV routing provably exercises more
    // than one shard (the pure function tells us the placement).
    let topics: Vec<String> = (0..16).map(|i| format!("bus/lane-{i}")).collect();
    let used: std::collections::HashSet<usize> =
        topics.iter().map(|t| shard_index(t, shards)).collect();
    assert!(used.len() >= 2, "test topics must span multiple shards, got {used:?}");

    let mut subscriber = SubscriberClient::new(ClientConfig::new(1, addrs.clone())).unwrap();
    for topic in &topics {
        subscriber.subscribe(topic).await.unwrap();
    }
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut publisher = PublisherClient::new(ClientConfig::new(2, addrs)).unwrap();
    for (i, topic) in topics.iter().enumerate() {
        publisher.publish(topic, format!("msg-{i}").as_bytes()).await.unwrap();
    }

    // Exactly one delivery per topic, each carrying its own payload.
    let mut seen: HashMap<String, Vec<u8>> = HashMap::new();
    for _ in 0..topics.len() {
        let delivery = recv(&mut subscriber).await;
        assert!(
            seen.insert(delivery.topic.clone(), delivery.payload.to_vec()).is_none(),
            "duplicate delivery for {}",
            delivery.topic
        );
    }
    for (i, topic) in topics.iter().enumerate() {
        assert_eq!(
            seen.get(topic).map(|p| p.as_slice()),
            Some(format!("msg-{i}").as_bytes()),
            "wrong or missing payload for {topic}"
        );
    }

    // The per-shard counters agree with the pure routing function.
    let counts = broker.shard_publish_counts();
    assert_eq!(counts.len(), shards);
    let mut expected = vec![0u64; shards];
    for topic in &topics {
        expected[shard_index(topic, shards)] += 1;
    }
    assert_eq!(counts, expected);
    drop(broker);
}

/// The zero-copy encode-once path fans a message out to many
/// subscribers on one topic: everyone gets every message, in publish
/// order, with intact payloads.
#[tokio::test]
async fn zero_copy_fanout_reaches_every_subscriber_in_order() {
    let (broker, addrs) = broker_with_shards(4).await;

    let fanout = 8;
    let mut subscribers = Vec::with_capacity(fanout);
    for i in 0..fanout {
        let mut sub =
            SubscriberClient::new(ClientConfig::new(100 + i as u64, addrs.clone())).unwrap();
        sub.subscribe("ticker").await.unwrap();
        subscribers.push(sub);
    }
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut publisher = PublisherClient::new(ClientConfig::new(2, addrs)).unwrap();
    let messages = 20;
    for i in 0..messages {
        publisher.publish("ticker", format!("tick-{i}").as_bytes()).await.unwrap();
    }

    for sub in &mut subscribers {
        for i in 0..messages {
            let delivery = recv(sub).await;
            assert_eq!(delivery.topic, "ticker");
            assert_eq!(delivery.publisher, 2);
            assert_eq!(&delivery.payload[..], format!("tick-{i}").as_bytes());
        }
    }
    drop(broker);
}

/// Unsubscribing while a publisher is streaming stops the leaver's
/// deliveries without dropping or duplicating anything for the
/// subscriber that stays.
#[tokio::test]
async fn unsubscribe_during_fanout_is_clean() {
    let (broker, addrs) = broker_with_shards(4).await;

    let mut stayer = SubscriberClient::new(ClientConfig::new(10, addrs.clone())).unwrap();
    stayer.subscribe("feed").await.unwrap();
    let mut leaver = SubscriberClient::new(ClientConfig::new(11, addrs.clone())).unwrap();
    leaver.subscribe("feed").await.unwrap();
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut publisher = PublisherClient::new(ClientConfig::new(2, addrs)).unwrap();
    for i in 0..10 {
        publisher.publish("feed", format!("pre-{i}").as_bytes()).await.unwrap();
    }

    // Unsubscribe mid-stream. The client ack confirms the frame is on
    // the wire, not yet processed; the settle sleep mirrors the
    // subscribe convention above so the shard entry is gone before the
    // post batch. In-flight pre-frames may still arrive and are
    // drained below.
    leaver.unsubscribe("feed").await.unwrap();
    tokio::time::sleep(Duration::from_millis(100)).await;
    for i in 0..10 {
        publisher.publish("feed", format!("post-{i}").as_bytes()).await.unwrap();
    }

    // The stayer sees the entire stream, in order.
    for phase in ["pre", "post"] {
        for i in 0..10 {
            let delivery = recv(&mut stayer).await;
            assert_eq!(&delivery.payload[..], format!("{phase}-{i}").as_bytes());
        }
    }

    // The leaver saw some prefix of the pre-unsubscribe stream (frames
    // already queued may land), then silence — never a post-* payload.
    let mut last_pre = None;
    while let Ok(delivery) = timeout(Duration::from_millis(300), leaver.next_delivery()).await {
        let payload = delivery.unwrap().payload;
        let text = String::from_utf8(payload.to_vec()).unwrap();
        assert!(text.starts_with("pre-"), "leaver got post-unsubscribe delivery {text}");
        last_pre = Some(text);
    }
    drop(last_pre);
    assert_quiet(&mut leaver, Duration::from_millis(300)).await;
    drop(broker);
}

/// `--shards 1` is the seed-equivalent reference configuration: the
/// basic pub/sub contract must hold exactly as it does on the default
/// multi-shard path.
#[tokio::test]
async fn single_shard_reference_configuration_is_equivalent() {
    let (broker, addrs) = broker_with_shards(1).await;
    assert_eq!(broker.shard_count(), 1);

    let fanout = 4;
    let mut subscribers = Vec::with_capacity(fanout);
    for i in 0..fanout {
        let mut sub =
            SubscriberClient::new(ClientConfig::new(200 + i as u64, addrs.clone())).unwrap();
        sub.subscribe("news").await.unwrap();
        subscribers.push(sub);
    }
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut publisher = PublisherClient::new(ClientConfig::new(2, addrs)).unwrap();
    for i in 0..5 {
        publisher.publish("news", format!("n-{i}").as_bytes()).await.unwrap();
    }
    for sub in &mut subscribers {
        for i in 0..5 {
            let delivery = recv(sub).await;
            assert_eq!(delivery.topic, "news");
            assert_eq!(&delivery.payload[..], format!("n-{i}").as_bytes());
        }
    }

    // With one shard, every publish lands on the single counter.
    assert_eq!(broker.shard_publish_counts(), vec![5]);
    drop(broker);
}

/// A subscriber disconnecting entirely is swept from every shard: the
/// publisher keeps streaming to the survivors and the broker does not
/// retain the dead connection in its subscriber report.
#[tokio::test]
async fn disconnect_sweeps_all_shards() {
    let (broker, addrs) = broker_with_shards(8).await;

    // The doomed subscriber spreads subscriptions across shards.
    let topics: Vec<String> = (0..8).map(|i| format!("sweep/t-{i}")).collect();
    let mut doomed = SubscriberClient::new(ClientConfig::new(30, addrs.clone())).unwrap();
    for topic in &topics {
        doomed.subscribe(topic).await.unwrap();
    }
    let mut survivor = SubscriberClient::new(ClientConfig::new(31, addrs.clone())).unwrap();
    for topic in &topics {
        survivor.subscribe(topic).await.unwrap();
    }
    tokio::time::sleep(Duration::from_millis(50)).await;

    drop(doomed);
    tokio::time::sleep(Duration::from_millis(100)).await;

    let mut publisher = PublisherClient::new(ClientConfig::new(2, addrs)).unwrap();
    for topic in &topics {
        publisher.publish(topic, &b"after-drop"[..]).await.unwrap();
    }
    for _ in &topics {
        let delivery = recv(&mut survivor).await;
        assert_eq!(&delivery.payload[..], b"after-drop");
    }
    drop(broker);
}
