//! At-least-once (QoS 1) end-to-end tests: publisher acks, broker-side
//! dedup, retained last values, redelivery to evicted subscribers and
//! zero-loss delivery across a broker kill — all on loopback with real
//! sockets.
//!
//! The deterministic protocol-level invariants (dedup-window semantics,
//! codec round trips) live in the broker crate's unit and property
//! tests; these tests assert the *end-to-end* contract: every QoS 1
//! publish that was acked or is still pending reaches every QoS 1
//! subscriber exactly once, whatever the sockets did in between.

use bytes::BytesMut;
use multipub_broker::broker::Broker;
use multipub_broker::client::{ClientConfig, Delivery, PublisherClient, SubscriberClient};
use multipub_broker::codec::encode_to_bytes;
use multipub_broker::flow::SlowConsumerPolicy;
use multipub_broker::frame::{Frame, Role};
use multipub_broker::read_frame;
use multipub_broker::session::ReconnectPolicy;
use multipub_core::ids::RegionId;
use std::collections::HashSet;
use std::net::SocketAddr;
use std::time::Duration;
use tokio::io::AsyncWriteExt;
use tokio::net::TcpStream;
use tokio::time::timeout;

const TICK: Duration = Duration::from_secs(5);

/// A reconnect policy fast enough for tests: 20 ms base, 300 ms cap.
fn fast_reconnect() -> ReconnectPolicy {
    ReconnectPolicy::new(Duration::from_millis(20), Duration::from_millis(300))
}

/// A client configuration that treats `topics` as QoS 1.
fn qos1_config(client_id: u64, addrs: Vec<SocketAddr>, topics: &[&str]) -> ClientConfig {
    ClientConfig {
        qos1_topics: topics.iter().map(|t| (*t).to_string()).collect(),
        reconnect: fast_reconnect(),
        ..ClientConfig::new(client_id, addrs)
    }
}

async fn recv(sub: &mut SubscriberClient) -> Delivery {
    timeout(TICK, sub.next_delivery()).await.expect("delivery within deadline").unwrap()
}

/// Rebinds a broker on the address it previously held. The old listener
/// may take a moment to fully release the port, so retry briefly.
async fn restart_broker(region: u8, addr: SocketAddr) -> Broker {
    let mut last_err = None;
    for _ in 0..100 {
        match Broker::builder(RegionId(region)).bind(addr).spawn().await {
            Ok(broker) => return broker,
            Err(e) => {
                last_err = Some(e);
                tokio::time::sleep(Duration::from_millis(50)).await;
            }
        }
    }
    panic!("failed to rebind broker on {addr}: {:?}", last_err);
}

/// Happy path: QoS 1 publishes are acked promptly, carry their sequence
/// numbers through to the subscriber, and arrive exactly once.
#[tokio::test]
async fn qos1_publishes_are_acked_and_delivered_exactly_once() {
    let broker = Broker::builder(RegionId(0)).spawn().await.unwrap();
    let addr = broker.local_addr();

    let mut subscriber = SubscriberClient::new(qos1_config(1, vec![addr], &["orders"])).unwrap();
    subscriber.subscribe_qos1("orders").await.unwrap();
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut publisher = PublisherClient::new(qos1_config(2, vec![addr], &["orders"])).unwrap();
    for i in 0..5u32 {
        publisher.publish("orders", format!("o-{i}").into_bytes()).await.unwrap();
    }
    assert!(publisher.await_acked(TICK).await, "all five publishes acked");
    assert_eq!(publisher.unacked_count(), 0);

    let mut seqs = HashSet::new();
    for i in 0..5u32 {
        let delivery = recv(&mut subscriber).await;
        assert_eq!(&delivery.payload[..], format!("o-{i}").as_bytes());
        assert_eq!(delivery.qos, 1, "QoS 1 subscription sees QoS 1 deliveries");
        assert!(delivery.seq > 0, "QoS 1 deliveries carry sequence numbers");
        assert!(seqs.insert(delivery.seq), "sequence {} delivered twice", delivery.seq);
    }
    let extra = timeout(Duration::from_millis(200), subscriber.next_delivery()).await;
    assert!(extra.is_err(), "no duplicate deliveries after the acked stream");
    drop(broker);
}

/// A retransmitted QoS 1 publish (same publisher, same seq) is re-acked
/// by the broker but deduplicated before the fan-out: subscribers see
/// the message exactly once. Driven over a raw socket so the duplicate
/// is sent unconditionally, exactly like a client whose first `PubAck`
/// was lost in transit.
#[tokio::test]
async fn broker_dedups_retransmits_and_reacks_them() {
    let broker = Broker::builder(RegionId(0)).spawn().await.unwrap();
    let addr = broker.local_addr();

    let mut subscriber = SubscriberClient::new(qos1_config(10, vec![addr], &["dup"])).unwrap();
    subscriber.subscribe_qos1("dup").await.unwrap();
    tokio::time::sleep(Duration::from_millis(50)).await;

    let stream = TcpStream::connect(addr).await.unwrap();
    stream.set_nodelay(true).ok();
    let (mut read_half, mut write_half) = stream.into_split();
    let connect = Frame::Connect { client_id: 11, role: Role::Publisher, policy: None };
    write_half.write_all(&encode_to_bytes(&connect)).await.unwrap();
    let publish = Frame::Publish {
        topic: "dup".to_string(),
        publisher: 11,
        publish_micros: 1,
        single_target: true,
        headers: String::new(),
        payload: bytes::Bytes::from_static(b"once"),
        trace: None,
        qos: 1,
        seq: 1,
        retain: false,
        epoch: 0,
    };
    // The "original" and a verbatim retransmit of the same sequence.
    write_half.write_all(&encode_to_bytes(&publish)).await.unwrap();
    write_half.write_all(&encode_to_bytes(&publish)).await.unwrap();

    // Both sightings earn a PubAck for seq 1 — the duplicate is re-acked
    // so a publisher whose first ack was lost stops retransmitting.
    let mut buf = BytesMut::new();
    let mut acks = 0;
    while acks < 2 {
        match timeout(TICK, read_frame(&mut read_half, &mut buf)).await.expect("ack in time") {
            Ok(Some(Frame::PubAck { seq, .. })) => {
                assert_eq!(seq, 1);
                acks += 1;
            }
            Ok(Some(_)) => {} // ConnectAck, config replays
            other => panic!("publisher link died early: {other:?}"),
        }
    }

    let delivery = recv(&mut subscriber).await;
    assert_eq!(&delivery.payload[..], b"once");
    assert_eq!(delivery.seq, 1);
    let extra = timeout(Duration::from_millis(300), subscriber.next_delivery()).await;
    assert!(extra.is_err(), "the retransmit must not be delivered twice");
    drop(broker);
}

/// Retained messages: with retention enabled, the topic's last retained
/// value is replayed to every late subscriber, a newer value replaces
/// it, and an empty payload clears it.
#[tokio::test]
async fn retained_value_replays_to_late_subscribers() {
    let broker = Broker::builder(RegionId(0)).retain(true).spawn().await.unwrap();
    let addr = broker.local_addr();

    let mut publisher = PublisherClient::new(qos1_config(20, vec![addr], &["px"])).unwrap();
    let headers = multipub_filter::Headers::new();
    publisher.publish_retained("px", &headers, &b"100"[..]).await.unwrap();
    assert!(publisher.await_acked(TICK).await);
    assert_eq!(broker.retained_payload("px").as_deref(), Some(&b"100"[..]));

    // A subscriber arriving after the fact gets the snapshot, flagged as
    // a retained replay rather than a live publication.
    let mut late = SubscriberClient::new(qos1_config(21, vec![addr], &[])).unwrap();
    late.subscribe("px").await.unwrap();
    let replay = recv(&mut late).await;
    assert_eq!(&replay.payload[..], b"100");
    assert!(replay.retained, "replayed snapshot is marked retained");
    assert_eq!(replay.publisher, 20);

    // A newer retained value replaces the old one for the next arrival.
    publisher.publish_retained("px", &headers, &b"101"[..]).await.unwrap();
    assert!(publisher.await_acked(TICK).await);
    let mut later = SubscriberClient::new(qos1_config(22, vec![addr], &[])).unwrap();
    later.subscribe("px").await.unwrap();
    assert_eq!(&recv(&mut later).await.payload[..], b"101");

    // An empty retained payload clears the stored value entirely.
    publisher.publish_retained("px", &headers, &b""[..]).await.unwrap();
    assert!(publisher.await_acked(TICK).await);
    assert!(broker.retained_payload("px").is_none(), "empty payload clears retention");
    let mut last = SubscriberClient::new(qos1_config(23, vec![addr], &[])).unwrap();
    last.subscribe("px").await.unwrap();
    let nothing = timeout(Duration::from_millis(300), last.next_delivery()).await;
    assert!(nothing.is_err(), "no replay after the retained value was cleared");
    drop(broker);
}

/// The acceptance scenario: kill the broker mid-stream. Publishes issued
/// during the outage stay unacked at the publisher and are retransmitted
/// after the restart; the subscriber reconnects, resubscribes at QoS 1
/// and receives **every** publish exactly once (client-side dedup
/// absorbs any retransmit overlap).
#[tokio::test]
async fn broker_kill_midstream_loses_no_qos1_publish() {
    let broker = Broker::builder(RegionId(0)).spawn().await.unwrap();
    let addr = broker.local_addr();

    let mut subscriber = SubscriberClient::new(qos1_config(30, vec![addr], &["stream"])).unwrap();
    subscriber.subscribe_qos1("stream").await.unwrap();
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut publisher = PublisherClient::new(qos1_config(31, vec![addr], &["stream"])).unwrap();

    // Phase 1, healthy: lock-step publish/ack/receive so every pre-kill
    // message is confirmed delivered before the outage begins.
    let mut expected = Vec::new();
    for i in 0..10u32 {
        let body = format!("pre-{i}");
        publisher.publish("stream", body.clone().into_bytes()).await.unwrap();
        assert!(publisher.await_acked(TICK).await, "healthy publish {i} acked");
        assert_eq!(&recv(&mut subscriber).await.payload[..], body.as_bytes());
        expected.push(body);
    }

    // Phase 2: kill the broker, then keep publishing. Every publish in
    // this phase stays in the unacked set (a write into the dying socket
    // may falsely succeed, but without a PubAck it is retransmitted).
    broker.shutdown();
    tokio::time::sleep(Duration::from_millis(100)).await;
    let mut outage = Vec::new();
    for i in 0..10u32 {
        let body = format!("outage-{i}");
        publisher.publish("stream", body.clone().into_bytes()).await.unwrap();
        outage.push(body.clone());
        expected.push(body);
    }
    assert_eq!(publisher.unacked_count(), 10, "outage publishes all await acks");

    // Phase 3: restart, wait for the subscriber to resubscribe (QoS 1
    // redelivery protects *subscribed* clients; the publisher must not
    // beat the subscription back), then drive retransmission.
    let broker = restart_broker(0, addr).await;
    let mut resubscribed = false;
    for _ in 0..200u32 {
        if broker.client_count() >= 1 {
            resubscribed = true;
            break;
        }
        tokio::time::sleep(Duration::from_millis(50)).await;
    }
    assert!(resubscribed, "subscriber never reconnected to the restarted broker");
    tokio::time::sleep(Duration::from_millis(100)).await;

    assert!(
        publisher.await_acked(Duration::from_secs(20)).await,
        "every outage publish retransmitted and acked after restart \
         ({} still unacked)",
        publisher.unacked_count()
    );

    // Audit: every outage-phase publish arrives, each sequence exactly
    // once, with no stray duplicates of the pre-kill stream.
    let mut got = Vec::new();
    let mut seqs = HashSet::new();
    while got.len() < outage.len() {
        let delivery = recv(&mut subscriber).await;
        assert!(seqs.insert(delivery.seq), "sequence {} delivered twice", delivery.seq);
        got.push(String::from_utf8(delivery.payload.to_vec()).unwrap());
    }
    for body in &outage {
        assert!(got.contains(body), "lost {body:?}; received {got:?}");
    }
    let extra = timeout(Duration::from_millis(300), subscriber.next_delivery()).await;
    assert!(extra.is_err(), "no duplicate deliveries after the audit");
    drop(broker);
}

/// A QoS 1 subscriber evicted by the `Disconnect` slow-consumer policy
/// gets redelivery, not loss: the broker keeps its unacked-delivery
/// buffer across the eviction and replays it when the client
/// resubscribes, trimming entries as `DeliverAck`s come back.
#[tokio::test]
async fn disconnect_evicted_qos1_subscriber_is_redelivered() {
    let broker = Broker::builder(RegionId(0))
        .outbound_queue(8)
        .slow_consumer(SlowConsumerPolicy::Disconnect)
        .spawn()
        .await
        .unwrap();
    let addr = broker.local_addr();

    // A raw subscriber that subscribes at QoS 1 and then never reads:
    // its socket jams, the outbound queue overflows and the Disconnect
    // policy evicts it mid-burst.
    let stream = TcpStream::connect(addr).await.unwrap();
    let (_jammed_read, mut jammed_write) = stream.into_split();
    let connect = Frame::Connect { client_id: 40, role: Role::Subscriber, policy: None };
    jammed_write.write_all(&encode_to_bytes(&connect)).await.unwrap();
    let subscribe = Frame::Subscribe { topic: "firehose".into(), filter: String::new(), qos: 1 };
    jammed_write.write_all(&encode_to_bytes(&subscribe)).await.unwrap();
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut publisher = PublisherClient::new(qos1_config(41, vec![addr], &["firehose"])).unwrap();
    let payload = vec![0x5Au8; 64 * 1024];
    let mut evicted = false;
    let mut published = 0u64;
    for _ in 0..64u32 {
        publisher.publish("firehose", payload.clone()).await.unwrap();
        published += 1;
        publisher.await_acked(TICK).await;
        if broker.client_count() <= 1 {
            evicted = true;
            break;
        }
    }
    assert!(evicted, "jammed subscriber was never evicted ({published} published)");

    // Eviction preserved the unacked-delivery buffer: the tracked depth
    // is exactly what a reconnecting client can recover.
    let tracked = broker.unacked_depth();
    assert!(tracked > 0, "eviction must keep unacked deliveries tracked");
    assert!(tracked <= i64::try_from(published).unwrap());

    // The client comes back (same id), resubscribes at QoS 1, acks each
    // redelivery — and the broker's buffer drains to zero.
    let stream = TcpStream::connect(addr).await.unwrap();
    stream.set_nodelay(true).ok();
    let (mut read_half, mut write_half) = stream.into_split();
    write_half.write_all(&encode_to_bytes(&connect)).await.unwrap();
    write_half.write_all(&encode_to_bytes(&subscribe)).await.unwrap();

    let mut buf = BytesMut::new();
    let mut redelivered = HashSet::new();
    while (redelivered.len() as i64) < tracked {
        match timeout(TICK, read_frame(&mut read_half, &mut buf)).await.expect("redelivery in time")
        {
            Ok(Some(Frame::Deliver { topic, publisher, seq, qos, .. })) => {
                assert_eq!(qos, 1);
                assert!(redelivered.insert(seq), "sequence {seq} redelivered twice");
                let ack = Frame::DeliverAck { topic, publisher, seq };
                write_half.write_all(&encode_to_bytes(&ack)).await.unwrap();
            }
            Ok(Some(_)) => {} // ConnectAck, config replays
            other => panic!("resubscribed link died early: {other:?}"),
        }
    }
    // The DeliverAcks trim the broker's buffer back to empty.
    let mut drained = false;
    for _ in 0..100u32 {
        if broker.unacked_depth() == 0 {
            drained = true;
            break;
        }
        tokio::time::sleep(Duration::from_millis(20)).await;
    }
    assert!(drained, "DeliverAcks must trim the unacked buffer (depth {})", broker.unacked_depth());
    drop(broker);
}

/// Busy-NACK interaction: a rate-limited broker NACKs part of a QoS 1
/// burst, but the NACKed publishes stay pending and are retransmitted
/// after the advertised window — every message is eventually acked and
/// delivered exactly once.
#[tokio::test]
async fn busy_nacked_qos1_publishes_retry_until_acked() {
    let broker = Broker::builder(RegionId(0)).publish_rate(20.0).spawn().await.unwrap();
    let addr = broker.local_addr();

    let mut subscriber = SubscriberClient::new(qos1_config(50, vec![addr], &["bursty"])).unwrap();
    subscriber.subscribe_qos1("bursty").await.unwrap();
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut publisher = PublisherClient::new(qos1_config(51, vec![addr], &["bursty"])).unwrap();
    let total = 30u32;
    for i in 0..total {
        publisher.publish("bursty", format!("b-{i}").into_bytes()).await.unwrap();
    }
    // A 30-message burst against a 20 msgs/s bucket must trip admission
    // control for part of the burst; those publishes stay pending.
    assert!(
        publisher.await_acked(Duration::from_secs(30)).await,
        "burst fully acked despite Busy NACKs ({} still unacked)",
        publisher.unacked_count()
    );

    let mut seqs = HashSet::new();
    let mut got = HashSet::new();
    for _ in 0..total {
        let delivery = recv(&mut subscriber).await;
        assert!(seqs.insert(delivery.seq), "sequence {} delivered twice", delivery.seq);
        got.insert(String::from_utf8(delivery.payload.to_vec()).unwrap());
    }
    for i in 0..total {
        assert!(got.contains(&format!("b-{i}")), "missing b-{i}");
    }
    let extra = timeout(Duration::from_millis(300), subscriber.next_delivery()).await;
    assert!(extra.is_err(), "retries must not double-deliver");
    drop(broker);
}
