//! Overload and flow-control tests: bounded outbound queues, per-subscriber
//! slow-consumer policies, publish admission control (`Busy` NACKs from the
//! token bucket and the global in-flight-bytes budget), and hysteretic
//! recovery from the `Overloaded` state — all on loopback with real sockets.
//!
//! The deterministic "slow consumer" in most tests is a broker-side
//! artificial downlink delay ([`DelayTable::set_client_delay_ms`]): the
//! connection writer sleeps out the delay while the publisher bursts, so
//! the outbound [`FlowQueue`] fills on a schedule the test controls instead
//! of depending on kernel socket buffer sizes. The chaos test at the bottom
//! uses a genuinely wedged consumer (a raw socket that never reads).

use bytes::Bytes;
use multipub_broker::broker::Broker;
use multipub_broker::client::{ClientConfig, Delivery, PublisherClient, SubscriberClient};
use multipub_broker::codec::encode_to_bytes;
use multipub_broker::delay::DelayTable;
use multipub_broker::flow::SlowConsumerPolicy;
use multipub_broker::frame::{Frame, Role};
use multipub_broker::session::ReconnectPolicy;
use multipub_core::ids::RegionId;
use std::net::SocketAddr;
use std::time::Duration;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;
use tokio::time::timeout;

const TICK: Duration = Duration::from_secs(5);

/// A reconnect policy fast enough for tests; also paces the publisher's
/// busy-window backoff.
fn fast_reconnect() -> ReconnectPolicy {
    ReconnectPolicy::new(Duration::from_millis(20), Duration::from_millis(300))
}

async fn recv(sub: &mut SubscriberClient) -> Delivery {
    timeout(TICK, sub.next_delivery()).await.expect("delivery within deadline").unwrap()
}

/// One receive attempt with a short deadline, for draining loops.
async fn try_recv(sub: &mut SubscriberClient) -> Option<Delivery> {
    match timeout(Duration::from_millis(400), sub.next_delivery()).await {
        Ok(result) => result.ok(),
        Err(_) => None,
    }
}

/// Drains every delivery currently reachable and returns the numeric
/// suffixes of `m-<n>` payloads, in arrival order.
async fn drain_indices(sub: &mut SubscriberClient) -> Vec<u32> {
    let mut indices = Vec::new();
    while let Some(delivery) = try_recv(sub).await {
        let text = String::from_utf8(delivery.payload.to_vec()).unwrap();
        let n = text.strip_prefix("m-").expect("numbered payload").parse().unwrap();
        indices.push(n);
    }
    indices
}

fn numbered(i: u32) -> Vec<u8> {
    format!("m-{i}").into_bytes()
}

/// A hand-rolled subscriber: Connect (with an explicit slow-consumer
/// policy) plus Subscribe, then the caller decides whether to ever read.
async fn raw_subscriber(
    addr: SocketAddr,
    client_id: u64,
    topic: &str,
    policy: Option<SlowConsumerPolicy>,
) -> TcpStream {
    let mut stream = TcpStream::connect(addr).await.unwrap();
    stream.set_nodelay(true).ok();
    let connect = encode_to_bytes(&Frame::Connect { client_id, role: Role::Subscriber, policy });
    stream.write_all(&connect).await.unwrap();
    let subscribe = encode_to_bytes(&Frame::Subscribe {
        topic: topic.to_string(),
        filter: String::new(),
        qos: 0,
    });
    stream.write_all(&subscribe).await.unwrap();
    stream
}

/// Publishes until the publisher's event stream reports a `Busy` NACK,
/// returning how many publishes it took. Panics when the broker never
/// pushes back.
async fn publish_until_busy(publisher: &mut PublisherClient, topic: &str, payload: &[u8]) -> u32 {
    for i in 0..200u32 {
        publisher.publish(topic, payload.to_vec()).await.unwrap();
        // Let the client reader task drain the socket before re-checking.
        tokio::time::sleep(Duration::from_millis(2)).await;
        if publisher.is_busy() {
            return i + 1;
        }
    }
    panic!("broker never sent Busy after 200 publishes");
}

/// The global in-flight-bytes budget sheds publishes with `Busy` once a
/// slow subscriber's backlog trips it, and clears hysteretically once the
/// backlog drains — after which buffered publications flush normally.
#[tokio::test]
async fn budget_trips_to_busy_and_recovers_hysteretically() {
    let mut delays = DelayTable::none();
    delays.set_client_delay_ms(11, 500.0); // the slow subscriber's downlink
    let broker = Broker::builder(RegionId(0))
        .delays(delays)
        .inflight_budget(32 * 1024)
        .spawn()
        .await
        .unwrap();
    let addr = broker.local_addr();

    let mut slow = SubscriberClient::new(ClientConfig::new(11, vec![addr])).unwrap();
    slow.subscribe("firehose").await.unwrap();
    tokio::time::sleep(Duration::from_millis(800)).await; // ride out the delayed handshake

    let mut publisher = PublisherClient::new(ClientConfig {
        reconnect: fast_reconnect(),
        ..ClientConfig::new(1, vec![addr])
    })
    .unwrap();

    // 4 KiB frames against a 32 KiB budget: the delayed writer holds the
    // backlog in the flow queue, so roughly nine publishes trip the budget.
    let payload = vec![0x5Au8; 4096];
    let took = publish_until_busy(&mut publisher, "firehose", &payload).await;
    assert!(broker.is_overloaded(), "budget must be tripped after {took} publishes");
    assert!(broker.queued_bytes() > 32 * 1024, "backlog above budget");

    // While busy, publishes buffer locally instead of hitting the wire.
    let pending_before = publisher.pending_count();
    assert_eq!(publisher.publish("firehose", &b"shed"[..]).await.unwrap(), 0);
    assert_eq!(publisher.pending_count(), pending_before + 1);

    // The 500 ms delay elapses, the writer drains the backlog, and the
    // overload state clears at the low watermark — without new publishes.
    let mut recovered = false;
    for _ in 0..100u32 {
        if !broker.is_overloaded() {
            recovered = true;
            break;
        }
        tokio::time::sleep(Duration::from_millis(50)).await;
    }
    assert!(recovered, "overload never cleared after the backlog drained");

    // `Busy` was retryable: once the busy window expires, the buffered
    // backlog flushes and the subscriber sees it.
    let mut flushed = 0;
    for _ in 0..100u32 {
        flushed += publisher.flush_pending().await;
        if publisher.pending_count() == 0 {
            break;
        }
        tokio::time::sleep(Duration::from_millis(50)).await;
    }
    assert!(flushed > 0 && publisher.pending_count() == 0, "backlog must flush after recovery");
    // Deliveries trickle in on the 500 ms artificial downlink; wait out
    // the whole schedule for the flushed marker message.
    let mut got_shed = false;
    let deadline = tokio::time::Instant::now() + Duration::from_secs(5);
    while !got_shed && tokio::time::Instant::now() < deadline {
        if let Ok(Ok(delivery)) = timeout(Duration::from_secs(1), slow.next_delivery()).await {
            got_shed = &delivery.payload[..] == b"shed";
        }
    }
    assert!(got_shed, "publication buffered during overload must arrive after recovery");
    drop(broker);
}

/// `DropOldest` keeps the queue bounded and favours the freshest traffic:
/// a stalled subscriber misses history but receives the newest messages.
#[tokio::test]
async fn drop_oldest_bounds_the_queue_and_keeps_freshest() {
    let mut delays = DelayTable::none();
    delays.set_client_delay_ms(21, 400.0);
    let broker = Broker::builder(RegionId(0))
        .delays(delays)
        .outbound_queue(8)
        .slow_consumer(SlowConsumerPolicy::DropOldest)
        .spawn()
        .await
        .unwrap();
    let addr = broker.local_addr();

    let mut slow = SubscriberClient::new(ClientConfig::new(21, vec![addr])).unwrap();
    slow.subscribe("ticker").await.unwrap();
    tokio::time::sleep(Duration::from_millis(700)).await;

    let mut publisher = PublisherClient::new(ClientConfig::new(2, vec![addr])).unwrap();
    for i in 0..50u32 {
        publisher.publish("ticker", numbered(i)).await.unwrap();
    }

    let got = drain_indices(&mut slow).await;
    // The writer holds at most one frame while it sleeps out the delay;
    // everything else is bounded by the 8-frame queue.
    assert!(!got.is_empty() && got.len() <= 10, "bounded backlog, got {got:?}");
    assert!(got.contains(&49), "freshest message must survive eviction, got {got:?}");
    assert!(got.windows(2).all(|w| w[0] < w[1]), "order preserved, got {got:?}");
    drop(broker);
}

/// A subscriber can pick `DropNewest` for itself on Connect: it keeps the
/// backlog it already queued and sheds the burst's tail instead.
#[tokio::test]
async fn drop_newest_override_keeps_backlog_and_sheds_tail() {
    let mut delays = DelayTable::none();
    delays.set_client_delay_ms(31, 400.0);
    let broker = Broker::builder(RegionId(0))
        .delays(delays)
        .outbound_queue(8) // broker default stays DropOldest; the client overrides
        .spawn()
        .await
        .unwrap();
    let addr = broker.local_addr();

    let mut slow = SubscriberClient::new(ClientConfig {
        slow_consumer: Some(SlowConsumerPolicy::DropNewest),
        ..ClientConfig::new(31, vec![addr])
    })
    .unwrap();
    slow.subscribe("ticker").await.unwrap();
    tokio::time::sleep(Duration::from_millis(700)).await;

    let mut publisher = PublisherClient::new(ClientConfig::new(2, vec![addr])).unwrap();
    for i in 0..50u32 {
        publisher.publish("ticker", numbered(i)).await.unwrap();
    }

    let got = drain_indices(&mut slow).await;
    assert!(!got.is_empty() && got.len() <= 10, "bounded backlog, got {got:?}");
    assert!(got.contains(&0), "oldest message must survive under DropNewest, got {got:?}");
    assert!(!got.contains(&49), "burst tail must be shed under DropNewest, got {got:?}");
    assert!(got.windows(2).all(|w| w[0] < w[1]), "order preserved, got {got:?}");
    drop(broker);
}

/// `Disconnect` severs the consumer that cannot keep a bounded queue —
/// and a well-behaved subscriber on the same topic is unaffected because
/// its own queue (here under `Block`) is independent.
#[tokio::test]
async fn disconnect_policy_severs_slow_consumer_fast_one_unaffected() {
    let mut delays = DelayTable::none();
    delays.set_client_delay_ms(41, 400.0);
    let broker =
        Broker::builder(RegionId(0)).delays(delays).outbound_queue(8).spawn().await.unwrap();
    let addr = broker.local_addr();

    // The doomed consumer opts into Disconnect on its Connect frame.
    let mut doomed = raw_subscriber(addr, 41, "ticker", Some(SlowConsumerPolicy::Disconnect)).await;
    // The healthy consumer opts into Block so the 8-frame queue cannot
    // drop anything: the publisher is backpressured instead.
    let mut healthy = SubscriberClient::new(ClientConfig {
        slow_consumer: Some(SlowConsumerPolicy::Block { deadline: Duration::from_secs(5) }),
        ..ClientConfig::new(42, vec![addr])
    })
    .unwrap();
    healthy.subscribe("ticker").await.unwrap();
    tokio::time::sleep(Duration::from_millis(100)).await;

    let mut publisher = PublisherClient::new(ClientConfig::new(2, vec![addr])).unwrap();
    for i in 0..50u32 {
        publisher.publish("ticker", numbered(i)).await.unwrap();
    }

    // The healthy subscriber sees the complete, ordered stream.
    let got = drain_indices(&mut healthy).await;
    assert_eq!(got, (0..50).collect::<Vec<_>>(), "Block subscriber must not lose messages");

    // The doomed subscriber's ninth queued frame tripped Disconnect: the
    // broker drops its write half, which reads as EOF on our side.
    let saw_eof = timeout(TICK, async {
        let mut buf = [0u8; 4096];
        loop {
            match doomed.read(&mut buf).await {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    })
    .await
    .is_ok();
    assert!(saw_eof, "slow consumer under Disconnect must be severed");
    drop(broker);
}

/// The per-publisher token bucket NACKs publishes beyond the configured
/// rate with a `Busy` carrying a retry hint; the client treats it as
/// retryable and the backlog eventually drains at the admitted rate.
#[tokio::test]
async fn publish_rate_limit_nacks_with_busy_and_backlog_drains() {
    let broker = Broker::builder(RegionId(0)).publish_rate(5.0).spawn().await.unwrap();
    let addr = broker.local_addr();

    let mut subscriber = SubscriberClient::new(ClientConfig::new(9, vec![addr])).unwrap();
    subscriber.subscribe("paced").await.unwrap();
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut publisher = PublisherClient::new(ClientConfig {
        reconnect: fast_reconnect(),
        ..ClientConfig::new(3, vec![addr])
    })
    .unwrap();

    // Burst allowance is 5: the bucket must push back within a short burst.
    let took = publish_until_busy(&mut publisher, "paced", b"tick").await;
    assert!(took <= 10, "bucket of 5/s must push back within 10 publishes, took {took}");
    assert!(publisher.is_busy(), "client must be inside its busy window");

    // Everything published so far either reached the subscriber or sits
    // in the local pending buffer; keep flushing until the bucket has
    // admitted the whole backlog.
    let deadline = tokio::time::Instant::now() + Duration::from_secs(10);
    while publisher.pending_count() > 0 {
        assert!(tokio::time::Instant::now() < deadline, "backlog never drained");
        publisher.flush_pending().await;
        tokio::time::sleep(Duration::from_millis(100)).await;
    }
    // A NACKed publish is shed, not redelivered (at-most-once QoS), so
    // only the burst allowance plus the retried backlog is guaranteed.
    let mut received = 0;
    while try_recv(&mut subscriber).await.is_some() {
        received += 1;
    }
    assert!(received >= 5, "burst allowance must be delivered, got {received}");
    drop(broker);
}

fn p99_ms(latencies: &[f64]) -> f64 {
    let mut sorted = latencies.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted[(sorted.len() * 99 / 100).min(sorted.len() - 1)]
}

/// The acceptance scenario: a sustained 10× publish burst with one
/// genuinely wedged subscriber (a raw socket that never reads). Asserts
/// (a) the broker's queued-bytes RSS proxy stays under the configured
/// budget throughout, (b) the wedged consumer is handled by its
/// `DropOldest` policy (bounded queue, connection kept), and (c) the fast
/// subscriber's delivery p99 stays within 2× of the unloaded baseline
/// (with a generous floor for CI scheduling noise). Runs in the CI chaos
/// job via `--include-ignored`.
#[tokio::test]
#[ignore = "chaos test (sustained burst, seconds of wall clock); run with --include-ignored"]
async fn burst_with_wedged_subscriber_stays_bounded_and_fast_path_keeps_p99() {
    const BUDGET: u64 = 1024 * 1024;
    // A 200 ms downlink delay on the wedged consumer keeps its writer
    // asleep during the burst, so its flow queue demonstrably fills and
    // evicts instead of the kernel socket buffer absorbing everything.
    let mut delays = DelayTable::none();
    delays.set_client_delay_ms(52, 200.0);
    let broker = Broker::builder(RegionId(0))
        .delays(delays)
        .outbound_queue(128)
        .slow_consumer(SlowConsumerPolicy::DropOldest)
        .inflight_budget(BUDGET)
        .spawn()
        .await
        .unwrap();
    let addr = broker.local_addr();

    // The fast subscriber opts into Block so the burst is lossless for it:
    // the publisher is paced by its drain rate rather than dropping.
    let mut fast = SubscriberClient::new(ClientConfig {
        slow_consumer: Some(SlowConsumerPolicy::Block { deadline: Duration::from_secs(10) }),
        ..ClientConfig::new(51, vec![addr])
    })
    .unwrap();
    fast.subscribe("melee").await.unwrap();
    tokio::time::sleep(Duration::from_millis(50)).await;

    let mut publisher = PublisherClient::new(ClientConfig {
        reconnect: fast_reconnect(),
        ..ClientConfig::new(5, vec![addr])
    })
    .unwrap();
    let payload = Bytes::from(vec![0x42u8; 2048]);

    // ---- Unloaded baseline: 40 publishes at ~200/s. ----
    let mut baseline = Vec::new();
    for _ in 0..40u32 {
        publisher.publish("melee", payload.clone()).await.unwrap();
        tokio::time::sleep(Duration::from_millis(5)).await;
        if let Some(delivery) = try_recv(&mut fast).await {
            baseline.push(delivery.latency_ms());
        }
    }
    assert!(baseline.len() >= 30, "baseline mostly delivered, got {}", baseline.len());
    let baseline_p99 = p99_ms(&baseline);

    // ---- Wedge one consumer, then burst at 10×: no pacing at all. ----
    let wedged = raw_subscriber(addr, 52, "melee", None).await;
    tokio::time::sleep(Duration::from_millis(100)).await;

    let mut burst_latencies = Vec::new();
    let mut max_queued = 0u64;
    for i in 0..400u32 {
        publisher.publish("melee", payload.clone()).await.unwrap();
        max_queued = max_queued.max(broker.queued_bytes());
        if i % 8 == 0 {
            // Drain opportunistically so client-side buffering does not
            // masquerade as broker latency.
            while let Ok(Ok(delivery)) =
                timeout(Duration::from_millis(1), fast.next_delivery()).await
            {
                burst_latencies.push(delivery.latency_ms());
            }
        }
    }
    while burst_latencies.len() < 400 {
        match try_recv(&mut fast).await {
            Some(delivery) => burst_latencies.push(delivery.latency_ms()),
            None => break,
        }
    }
    max_queued = max_queued.max(broker.queued_bytes());

    // (a) The queued-bytes proxy never exceeded the budget: the wedged
    // consumer's queue is clamped at 128 × 2 KiB, well under 1 MiB.
    assert!(max_queued <= BUDGET, "queued bytes {max_queued} exceeded budget {BUDGET}");
    assert!(!broker.is_overloaded(), "bounded queues must keep the broker out of overload");

    // (b) DropOldest kept the wedged connection alive rather than severing
    // it: publisher + fast subscriber + wedged subscriber.
    assert_eq!(broker.client_count(), 3, "wedged consumer stays connected under DropOldest");

    // (c) The fast path was lossless and its tail latency did not collapse.
    assert_eq!(burst_latencies.len(), 400, "Block subscriber must receive the whole burst");
    let burst_p99 = p99_ms(&burst_latencies);
    let bound = (2.0 * baseline_p99).max(250.0);
    assert!(
        burst_p99 <= bound,
        "burst p99 {burst_p99:.1} ms vs baseline p99 {baseline_p99:.1} ms (bound {bound:.1} ms)"
    );

    // The backlog drains once the burst stops: the gauge returns to zero
    // (the wedged queue keeps only its bounded freshest window until the
    // writer wedges on the socket; give it a moment).
    tokio::time::sleep(Duration::from_millis(500)).await;
    assert!(
        broker.queued_bytes() <= BUDGET,
        "post-burst queued bytes {} within budget",
        broker.queued_bytes()
    );
    drop(wedged);
    drop(broker);
}
