//! Epoch-based make-before-break reconfiguration, end to end: a live
//! QoS 0 topic is reconfigured under continuous publishing without
//! losing a message, and a broker killed mid-prepare rolls the handover
//! back to the previously committed epoch.
//!
//! The fast tests cover epoch plumbing (monotonic installs, stale-update
//! rejection); the chaos tests drive the full three-phase protocol over
//! real sockets and run in the CI chaos job via `--include-ignored`.

use multipub_broker::broker::Broker;
use multipub_broker::client::{ClientConfig, Delivery, PublisherClient, SubscriberClient};
use multipub_broker::controller::Controller;
use multipub_broker::frame::WireMode;
use multipub_broker::session::ReconnectPolicy;
use multipub_core::assignment::{AssignmentVector, Configuration, DeliveryMode};
use multipub_core::constraint::DeliveryConstraint;
use multipub_core::ids::RegionId;
use multipub_core::latency::InterRegionMatrix;
use multipub_core::region::{Region, RegionSet};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Duration;
use tokio::time::timeout;

const TICK: Duration = Duration::from_secs(5);

/// A reconnect policy fast enough for tests: 20 ms base, 300 ms cap.
fn fast_reconnect() -> ReconnectPolicy {
    ReconnectPolicy::new(Duration::from_millis(20), Duration::from_millis(300))
}

async fn recv(sub: &mut SubscriberClient) -> Delivery {
    timeout(TICK, sub.next_delivery()).await.expect("delivery within deadline").unwrap()
}

/// One receive attempt with a short deadline, for polling loops.
async fn try_recv(sub: &mut SubscriberClient) -> Option<Delivery> {
    match timeout(Duration::from_millis(250), sub.next_delivery()).await {
        Ok(result) => result.ok(),
        Err(_) => None,
    }
}

/// Spawns `n` brokers fully meshed as peers, returning them plus their
/// addresses indexed by region.
async fn mesh(n: usize) -> (Vec<Broker>, Vec<SocketAddr>) {
    let mut brokers = Vec::with_capacity(n);
    for region in 0..n {
        brokers.push(Broker::builder(RegionId(region as u8)).spawn().await.unwrap());
    }
    let addrs: Vec<SocketAddr> = brokers.iter().map(Broker::local_addr).collect();
    for (i, broker) in brokers.iter().enumerate() {
        for (j, addr) in addrs.iter().enumerate() {
            if i != j {
                broker.add_peer(RegionId(j as u8), *addr);
            }
        }
    }
    (brokers, addrs)
}

fn two_regions() -> (RegionSet, InterRegionMatrix) {
    (
        RegionSet::new(vec![
            Region::new("cheap", "A", 0.02, 0.09),
            Region::new("pricey", "B", 0.16, 0.25),
        ])
        .unwrap(),
        InterRegionMatrix::from_rows(vec![vec![0.0, 40.0], vec![40.0, 0.0]]).unwrap(),
    )
}

fn single(region: u8, n_regions: usize, mode: DeliveryMode) -> Configuration {
    Configuration::new(AssignmentVector::single(RegionId(region), n_regions).unwrap(), mode)
}

/// The current value of a counter in the process-wide registry (0 when
/// it has never been touched).
fn counter_value(name: &str) -> u64 {
    multipub_obs::registry().snapshot().counters.get(name).copied().unwrap_or(0)
}

/// Samples recorded into a histogram so far.
fn histogram_count(name: &str) -> u64 {
    multipub_obs::registry().snapshot().histograms.get(name).map(|h| h.count()).unwrap_or(0)
}

async fn connected_controller(addrs: &[SocketAddr]) -> Controller {
    let (regions, inter) = two_regions();
    let constraint = DeliveryConstraint::new(95.0, 500.0).unwrap();
    let mut controller = Controller::connect(regions, inter, addrs, constraint).await.unwrap();
    controller.set_connect_timeout(Duration::from_millis(250));
    controller.set_report_timeout(Duration::from_millis(1000));
    controller
}

/// Epoch plumbing: every deploy mints the next epoch, brokers install
/// it, and a stale `ConfigUpdate` (older epoch) is rejected rather than
/// un-steering the topic.
#[tokio::test]
async fn deploys_mint_monotonic_epochs_and_stale_updates_are_rejected() {
    let (brokers, addrs) = mesh(2).await;
    let mut controller = connected_controller(&addrs).await;

    controller.deploy("feed", single(0, 2, DeliveryMode::Direct));
    tokio::time::sleep(Duration::from_millis(100)).await;
    assert_eq!(controller.installed_epoch("feed"), Some(1));
    assert_eq!(brokers[0].config_for("feed").epoch, 1);
    assert_eq!(brokers[0].config_for("feed").mask, 0b01);

    controller.deploy("feed", single(1, 2, DeliveryMode::Routed));
    tokio::time::sleep(Duration::from_millis(100)).await;
    assert_eq!(controller.installed_epoch("feed"), Some(2));
    let installed = brokers[0].config_for("feed");
    assert_eq!(installed.epoch, 2);
    assert_eq!(installed.mask, 0b10);

    // A replayed epoch-1 update (e.g. from a lagging link) must not win.
    let stale_before = counter_value("multipub_broker_stale_config_updates_total");
    brokers[0].install_config_at("feed", 0b01, WireMode::Direct, 1);
    let installed = brokers[0].config_for("feed");
    assert_eq!(installed.epoch, 2, "stale epoch must not override the committed one");
    assert_eq!(installed.mask, 0b10);
    assert_eq!(
        counter_value("multipub_broker_stale_config_updates_total"),
        stale_before + 1,
        "the rejected update is counted"
    );
    drop(brokers);
}

/// The make-before-break handover commits when every participant acks:
/// the controller's installed epoch advances and both the retiring and
/// the new serving broker hold the committed configuration.
#[tokio::test]
async fn handover_commits_and_installs_on_both_sides() {
    let (brokers, addrs) = mesh(2).await;
    let mut controller = connected_controller(&addrs).await;
    controller.set_handover_grace(Duration::from_millis(100));

    controller.deploy("feed", single(0, 2, DeliveryMode::Direct));
    tokio::time::sleep(Duration::from_millis(50)).await;

    let committed = controller.handover("feed", single(1, 2, DeliveryMode::Routed)).await;
    assert!(committed, "handover with all participants live must commit");
    assert_eq!(controller.installed_epoch("feed"), Some(2));
    tokio::time::sleep(Duration::from_millis(50)).await;
    for broker in &brokers {
        let installed = broker.config_for("feed");
        assert_eq!(installed.epoch, 2, "both participants hold the committed epoch");
        assert_eq!(installed.mask, 0b10);
    }
    drop(brokers);
}

/// Collects deliveries until `bodies` distinct payloads have been seen
/// or the stream goes idle, returning per-payload delivery counts.
async fn drain_counts(sub: &mut SubscriberClient, bodies: usize) -> HashMap<String, u64> {
    let mut counts: HashMap<String, u64> = HashMap::new();
    let mut idle = 0;
    while idle < 8 {
        match try_recv(sub).await {
            Some(delivery) => {
                idle = 0;
                *counts
                    .entry(String::from_utf8(delivery.payload.to_vec()).unwrap())
                    .or_default() += 1;
            }
            None => {
                if counts.len() >= bodies {
                    break;
                }
                idle += 1;
            }
        }
    }
    counts
}

/// The acceptance gate: a QoS 0 topic under continuous publishing is
/// reconfigured direct → routed and across a serving-set change with
/// **zero lost messages** and a bounded duplicate rate. Loss-freedom
/// comes from the union bridge mask on the brokers plus the
/// subscriber's make-before-break re-steer; duplicates are bounded by
/// the retiring-region count. Slow by construction (live traffic spans
/// two full handovers); runs in the CI chaos job via
/// `--include-ignored`.
#[tokio::test]
#[ignore = "chaos test (live traffic across handovers); run with --include-ignored"]
async fn live_qos0_handover_loses_nothing() {
    let (brokers, addrs) = mesh(2).await;
    let mut controller = connected_controller(&addrs).await;
    controller.set_handover_grace(Duration::from_millis(750));
    controller.set_handover_timeout(Duration::from_secs(2));

    controller.deploy("feed", single(0, 2, DeliveryMode::Direct));
    tokio::time::sleep(Duration::from_millis(100)).await;

    let mut subscriber = SubscriberClient::new(ClientConfig {
        latencies_ms: vec![5.0, 70.0],
        reconnect: fast_reconnect(),
        ..ClientConfig::new(31, addrs.clone())
    })
    .unwrap();
    subscriber.subscribe("feed").await.unwrap();
    assert_eq!(subscriber.subscribed_region("feed"), Some(RegionId(0)));
    tokio::time::sleep(Duration::from_millis(100)).await;

    // Continuous publishing for the whole test: one message every 2 ms
    // from a task that stops only after both handovers are done.
    let (stop_tx, mut stop_rx) = tokio::sync::watch::channel(false);
    let mut publisher = PublisherClient::new(ClientConfig {
        latencies_ms: vec![5.0, 70.0],
        reconnect: fast_reconnect(),
        ..ClientConfig::new(30, addrs.clone())
    })
    .unwrap();
    let feeder = tokio::spawn(async move {
        let mut bodies = Vec::new();
        let mut i = 0u32;
        loop {
            let body = format!("m-{i}");
            let sent = publisher.publish("feed", body.clone().into_bytes()).await.unwrap();
            assert!(sent >= 1, "no broker accepted {body:?} (no broker dies in this test)");
            bodies.push(body);
            i += 1;
            tokio::time::sleep(Duration::from_millis(2)).await;
            if *stop_rx.borrow_and_update() {
                return bodies;
            }
        }
    });

    let prepare_before = histogram_count("multipub_controller_handover_prepare_ms");
    let commit_before = histogram_count("multipub_controller_handover_commit_ms");

    // Handover 1: direct → routed, serving set {0} → {1}.
    tokio::time::sleep(Duration::from_millis(200)).await;
    assert!(
        controller.handover("feed", single(1, 2, DeliveryMode::Routed)).await,
        "first handover must commit"
    );

    // Handover 2: serving-set change {1} → {0, 1}, back to direct.
    tokio::time::sleep(Duration::from_millis(200)).await;
    let both =
        Configuration::new(AssignmentVector::from_mask(0b11, 2).unwrap(), DeliveryMode::Direct);
    assert!(controller.handover("feed", both).await, "second handover must commit");

    // Keep traffic flowing past the drain window, then stop.
    tokio::time::sleep(Duration::from_millis(200)).await;
    stop_tx.send(true).unwrap();
    let bodies = feeder.await.unwrap();
    assert!(bodies.len() >= 100, "continuous publishing spanned the handovers");

    // Phase durations are observable on the metrics surface.
    assert_eq!(
        histogram_count("multipub_controller_handover_prepare_ms"),
        prepare_before + 2,
        "each handover records its prepare-phase duration"
    );
    assert_eq!(
        histogram_count("multipub_controller_handover_commit_ms"),
        commit_before + 2,
        "each handover records its commit-phase duration"
    );

    // Zero-loss audit: every published payload arrives at least once.
    let counts = drain_counts(&mut subscriber, bodies.len()).await;
    let mut lost = Vec::new();
    for body in &bodies {
        if !counts.contains_key(body) {
            lost.push(body.clone());
        }
    }
    assert!(lost.is_empty(), "lost {} messages across the handovers: {lost:?}", lost.len());

    // Bounded duplicates: with one retiring region per handover each
    // message can arrive at most once per bridging side; allow a little
    // slack for re-steer overlap but reject an unbounded storm.
    let total: u64 = counts.values().sum();
    let duplicates = total - bodies.len() as u64;
    assert!(
        duplicates <= bodies.len() as u64,
        "duplicate rate must stay bounded: {duplicates} duplicates over {} messages",
        bodies.len()
    );
    for (body, count) in &counts {
        assert!(*count <= 4, "{body:?} delivered {count} times; bridging must be loop-free");
    }

    // The committed configuration is in force everywhere.
    assert_eq!(controller.installed_epoch("feed"), Some(3));
    for broker in &brokers {
        assert_eq!(broker.config_for("feed").epoch, 3);
        assert_eq!(broker.config_for("feed").mask, 0b11);
    }
    drop(brokers);
}

/// A broker killed mid-prepare aborts the handover: the controller
/// rolls back to the previously committed epoch, counts the rollback on
/// the metrics surface, and delivery on the old configuration continues
/// unharmed.
#[tokio::test]
#[ignore = "chaos test (handover timeout against a dead broker); run with --include-ignored"]
async fn broker_killed_mid_prepare_rolls_back() {
    let (brokers, addrs) = mesh(2).await;
    let mut controller = connected_controller(&addrs).await;
    controller.set_handover_timeout(Duration::from_millis(400));

    controller.deploy("feed", single(0, 2, DeliveryMode::Direct));
    tokio::time::sleep(Duration::from_millis(100)).await;
    assert_eq!(controller.installed_epoch("feed"), Some(1));

    let mut subscriber = SubscriberClient::new(ClientConfig {
        latencies_ms: vec![5.0, 70.0],
        reconnect: fast_reconnect(),
        ..ClientConfig::new(41, addrs.clone())
    })
    .unwrap();
    subscriber.subscribe("feed").await.unwrap();
    let mut publisher = PublisherClient::new(ClientConfig {
        latencies_ms: vec![5.0, 70.0],
        reconnect: fast_reconnect(),
        ..ClientConfig::new(40, addrs.clone())
    })
    .unwrap();
    publisher.publish("feed", &b"before"[..]).await.unwrap();
    assert_eq!(&recv(&mut subscriber).await.payload[..], b"before");

    // Kill the region the handover is about to move the topic onto. The
    // prepare either fails to send (link already noticed) or times out
    // waiting for the dead broker's ack — both must roll back.
    let mut brokers = brokers.into_iter();
    let broker0 = brokers.next().unwrap();
    let broker1 = brokers.next().unwrap();
    broker1.shutdown();
    tokio::time::sleep(Duration::from_millis(100)).await;

    let handovers_before = counter_value("multipub_controller_handovers_total");
    let rollbacks_before = counter_value("multipub_controller_handover_rollbacks_total");
    let committed = controller.handover("feed", single(1, 2, DeliveryMode::Routed)).await;
    assert!(!committed, "a dead prepare participant must abort the handover");

    // Rollback counts are observable, and the committed epoch is
    // untouched — degraded-mode redial would replay epoch 1, never the
    // half-applied epoch 2.
    assert_eq!(counter_value("multipub_controller_handovers_total"), handovers_before + 1);
    assert_eq!(
        counter_value("multipub_controller_handover_rollbacks_total"),
        rollbacks_before + 1,
        "the abort is counted as a rollback"
    );
    assert_eq!(controller.installed_epoch("feed"), Some(1));
    assert_eq!(broker0.config_for("feed").epoch, 1);
    assert_eq!(broker0.config_for("feed").mask, 0b01, "old serving set stays in force");

    // Delivery on the rolled-back configuration continues.
    publisher.publish("feed", &b"after-rollback"[..]).await.unwrap();
    assert_eq!(&recv(&mut subscriber).await.payload[..], b"after-rollback");
    drop(broker0);
}
