//! Property tests of the controller's report aggregation
//! ([`merge_reports`]): publisher statistics are deduplicated by
//! maximum and subscriber lists are unioned, for arbitrary overlapping
//! per-region reports — including a subscriber that appears in two
//! regions' reports mid-resubscription.

use multipub_broker::broker::{PublisherStats, RegionReport, TopicReport};
use multipub_broker::controller::merge_reports;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// A small closed pool of topic names so generated reports overlap.
fn arb_topic_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["alpha".to_string(), "beta".to_string(), "gamma".to_string()])
}

fn arb_topic_report() -> impl Strategy<Value = TopicReport> {
    (
        proptest::collection::btree_map(
            0u64..5,
            (0u64..100, 0u64..10_000)
                .prop_map(|(messages, bytes)| PublisherStats { messages, bytes }),
            0..4,
        ),
        // Small id pool so the same subscriber shows up in several
        // regions' reports (the reconfiguration window).
        proptest::collection::vec(0u64..8, 0..5),
    )
        .prop_map(|(publishers, subscribers)| TopicReport { publishers, subscribers })
}

fn arb_reports() -> impl Strategy<Value = Vec<RegionReport>> {
    proptest::collection::vec(
        proptest::collection::btree_map(arb_topic_name(), arb_topic_report(), 0..3),
        1..5,
    )
    .prop_map(|maps| {
        maps.into_iter()
            .enumerate()
            .map(|(region, topics)| RegionReport { region: region as u16, topics })
            .collect()
    })
}

proptest! {
    /// Publisher dedup-by-max: for every `(topic, publisher)` pair the
    /// merged message count is the maximum over all region reports, and
    /// the merged `(messages, bytes)` pair was observed verbatim by some
    /// region — the merge never fabricates statistics.
    #[test]
    fn publisher_stats_are_deduplicated_by_max(reports in arb_reports()) {
        let merged = merge_reports(&reports);
        for (topic, topic_report) in &merged {
            for (&publisher, stats) in &topic_report.publishers {
                let observed: Vec<PublisherStats> = reports
                    .iter()
                    .filter_map(|r| r.topics.get(topic))
                    .filter_map(|t| t.publishers.get(&publisher))
                    .copied()
                    .collect();
                let max_messages =
                    observed.iter().map(|s| s.messages).max().expect("publisher came from a report");
                prop_assert_eq!(
                    stats.messages, max_messages,
                    "merged count for {}/{} must be the per-region max", topic, publisher
                );
                prop_assert!(
                    observed.contains(stats),
                    "merged stats for {}/{} must match some region's observation", topic, publisher
                );
            }
        }
    }

    /// Subscriber union: the merged subscriber list for every topic is
    /// exactly the sorted, duplicate-free union of the per-region lists.
    #[test]
    fn subscribers_are_unioned_sorted_and_deduplicated(reports in arb_reports()) {
        let merged = merge_reports(&reports);
        let mut expected: BTreeMap<&String, BTreeSet<u64>> = BTreeMap::new();
        for report in &reports {
            for (topic, topic_report) in &report.topics {
                expected.entry(topic).or_default().extend(topic_report.subscribers.iter().copied());
            }
        }
        for (topic, subs) in &expected {
            let merged_subs = &merged[*topic].subscribers;
            let union: Vec<u64> = subs.iter().copied().collect();
            prop_assert_eq!(
                merged_subs, &union,
                "merged subscribers of {} must be the sorted union", topic
            );
        }
        // No topic appears from thin air.
        prop_assert_eq!(merged.len(), expected.len());
    }

    /// The reconfiguration window: a subscriber attached to one region
    /// while still listed by another (it appears in **two** regions'
    /// reports) is merged to a single entry.
    #[test]
    fn subscriber_in_two_regions_is_merged_once(
        subscriber in 0u64..1000,
        extra_a in proptest::collection::vec(1000u64..1008, 0..4),
        extra_b in proptest::collection::vec(1000u64..1008, 0..4),
    ) {
        let topic_report = |subs: Vec<u64>| TopicReport {
            publishers: BTreeMap::new(),
            subscribers: subs,
        };
        let mut subs_a = extra_a.clone();
        subs_a.push(subscriber);
        let mut subs_b = extra_b.clone();
        subs_b.push(subscriber);
        let reports = vec![
            RegionReport {
                region: 0,
                topics: [("t".to_string(), topic_report(subs_a))].into_iter().collect(),
            },
            RegionReport {
                region: 1,
                topics: [("t".to_string(), topic_report(subs_b))].into_iter().collect(),
            },
        ];
        let merged = merge_reports(&reports);
        let count =
            merged["t"].subscribers.iter().filter(|&&s| s == subscriber).count();
        prop_assert_eq!(count, 1, "the twice-reported subscriber appears exactly once");
        // And the union still covers every extra.
        for s in extra_a.iter().chain(extra_b.iter()) {
            prop_assert!(merged["t"].subscribers.contains(s));
        }
    }
}
