//! Fuzz the length-prefixed frame decoder with arbitrary bytes.
//!
//! The decoder sits on the network boundary: every broker and client
//! connection feeds it attacker-controlled input, so for any byte
//! sequence it must either yield frames, report a clean `CodecError`,
//! or ask for more bytes — never panic, never loop. Frames it does
//! accept (including the QoS 1 `PubAck`/`DeliverAck` tags and the
//! qos/seq/retain fields appended to the publish path) must survive an
//! encode→decode round trip unchanged.

#![no_main]

use bytes::BytesMut;
use libfuzzer_sys::fuzz_target;
use multipub_broker::codec::{decode, encode};

fuzz_target!(|data: &[u8]| {
    let mut buf = BytesMut::from(data);
    let mut previous_len = buf.len();
    while let Ok(Some(frame)) = decode(&mut buf) {
        // Progress: a decoded frame must have consumed bytes, or the
        // loop would never terminate on a real connection either.
        assert!(buf.len() < previous_len, "decode yielded a frame without consuming bytes");
        previous_len = buf.len();

        // Round trip: anything the decoder accepts, the encoder must
        // reproduce bit-compatibly at the frame level.
        let mut wire = BytesMut::new();
        encode(&frame, &mut wire);
        let back = decode(&mut wire)
            .expect("re-encoding a decoded frame must decode cleanly")
            .expect("re-encoded frame must be complete");
        assert_eq!(back, frame, "encode/decode round trip changed the frame");
        assert!(wire.is_empty(), "round trip left trailing bytes");
    }
});
