//! Fuzz the QoS 1 per-publisher dedup window.
//!
//! The window is a ring bitmap fed straight from wire-supplied sequence
//! numbers, so it must tolerate any `u64` — huge jumps, wrap-around
//! distances, repeats — without panicking, and it must uphold the two
//! invariants the at-least-once path leans on: sequence 0 (unsequenced
//! QoS 0 traffic) is always fresh, and an immediate retransmit of any
//! other sequence is always reported as a duplicate.

#![no_main]

use libfuzzer_sys::fuzz_target;
use multipub_broker::qos::DedupWindow;

fuzz_target!(|data: &[u8]| {
    let Some((&first, rest)) = data.split_first() else {
        return;
    };
    let mut dedup = DedupWindow::new(usize::from(first).max(1));
    for chunk in rest.chunks(8) {
        let mut bytes = [0u8; 8];
        bytes[..chunk.len()].copy_from_slice(chunk);
        let seq = u64::from_le_bytes(bytes);
        let fresh = dedup.observe(seq);
        if seq == 0 {
            assert!(fresh, "sequence 0 is unsequenced and must always be fresh");
        } else {
            assert!(!dedup.observe(seq), "immediate retransmit of {seq} was not deduplicated");
        }
    }
});
