//! Flow control and overload protection: bounded outbound queues with
//! slow-consumer policies, token-bucket publish admission, and the
//! broker-wide in-flight-bytes budget with a hysteretic `Overloaded`
//! state (DESIGN.md §10).
//!
//! Every connection writer drains a [`FlowQueue`] instead of an
//! unbounded channel. Data frames (deliveries, forwards) respect the
//! queue capacity and, when it is full, the connection's
//! [`SlowConsumerPolicy`] decides what gives: the sender's time
//! (`Block`), the oldest queued frames (`DropOldest`), the new frame
//! (`DropNewest`), or the consumer itself (`Disconnect`). Control
//! frames (acks, pongs, config updates, `Busy` NACKs) bypass the
//! capacity check so a congested data path can never wedge the control
//! plane, but they still count toward the byte budget.
//!
//! Broker-owned queues additionally share a [`GlobalBudget`]: the sum of
//! queued bytes across all connections. When it exceeds the configured
//! budget the broker enters the `Overloaded` state, sheds new publishes
//! with [`crate::frame::Frame::Busy`] NACKs, and recovers only once the
//! backlog drains below the low watermark — hysteresis, so the state
//! does not flap at the boundary.

use crate::sync::Mutex;
use bytes::Bytes;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tokio::sync::Notify;
use tokio::time::Instant;

/// What a connection writer does with **data** frames once its outbound
/// queue is full (the queue's high watermark is its capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowConsumerPolicy {
    /// Apply backpressure: the sender waits until the queue drains below
    /// the low watermark, giving up (and dropping the frame) after
    /// `deadline`.
    Block {
        /// How long a sender may wait for queue space.
        deadline: Duration,
    },
    /// Evict the oldest queued data frame to make room — the consumer
    /// keeps up with the *freshest* traffic and loses history.
    DropOldest,
    /// Drop the incoming frame — the consumer keeps the backlog it
    /// already has and misses new traffic.
    DropNewest,
    /// Close the connection: a consumer too slow to keep a bounded
    /// queue is cut off rather than degraded.
    Disconnect,
}

impl Default for SlowConsumerPolicy {
    fn default() -> Self {
        SlowConsumerPolicy::DropOldest
    }
}

impl SlowConsumerPolicy {
    /// Parses the CLI spelling: `block:<ms>`, `drop-oldest`,
    /// `drop-newest` or `disconnect`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown spellings or a
    /// malformed `block:<ms>` deadline.
    pub fn parse(s: &str) -> Result<SlowConsumerPolicy, String> {
        match s {
            "drop-oldest" => Ok(SlowConsumerPolicy::DropOldest),
            "drop-newest" => Ok(SlowConsumerPolicy::DropNewest),
            "disconnect" => Ok(SlowConsumerPolicy::Disconnect),
            other => match other.strip_prefix("block:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(|ms| SlowConsumerPolicy::Block { deadline: Duration::from_millis(ms) })
                    .map_err(|_| format!("bad block deadline `{ms}` (want milliseconds)")),
                None => Err(format!(
                    "unknown slow-consumer policy `{other}` \
                     (want block:<ms>, drop-oldest, drop-newest or disconnect)"
                )),
            },
        }
    }

    /// Wire discriminant for the `Connect` frame (`0` is reserved for
    /// "no preference, use the broker default").
    pub(crate) fn wire_byte(self) -> u8 {
        match self {
            SlowConsumerPolicy::Block { .. } => 1,
            SlowConsumerPolicy::DropOldest => 2,
            SlowConsumerPolicy::DropNewest => 3,
            SlowConsumerPolicy::Disconnect => 4,
        }
    }

    /// Deadline in milliseconds as carried on the wire (zero for the
    /// non-blocking policies).
    pub(crate) fn wire_ms(self) -> u32 {
        match self {
            SlowConsumerPolicy::Block { deadline } => {
                deadline.as_millis().min(u128::from(u32::MAX)) as u32
            }
            _ => 0,
        }
    }

    /// Inverse of [`wire_byte`](Self::wire_byte)/[`wire_ms`](Self::wire_ms):
    /// `Ok(None)` for byte `0`, `Err(byte)` for unknown discriminants.
    pub(crate) fn from_wire(byte: u8, ms: u32) -> Result<Option<SlowConsumerPolicy>, u8> {
        Ok(Some(match byte {
            0 => return Ok(None),
            1 => SlowConsumerPolicy::Block { deadline: Duration::from_millis(u64::from(ms)) },
            2 => SlowConsumerPolicy::DropOldest,
            3 => SlowConsumerPolicy::DropNewest,
            4 => SlowConsumerPolicy::Disconnect,
            other => return Err(other),
        }))
    }
}

/// Sizing and policy for one connection's outbound [`FlowQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowConfig {
    /// Maximum queued **data** frames — the queue's high watermark.
    /// Control frames bypass this bound.
    pub capacity: usize,
    /// Senders blocked by [`SlowConsumerPolicy::Block`] resume once the
    /// queue drains to this depth (hysteresis against thrash).
    pub low_watermark: usize,
    /// What to do with data frames once the queue is full.
    pub policy: SlowConsumerPolicy,
    /// How many already-due frames the connection writer may coalesce
    /// into one vectored `writev` call (DESIGN.md §11). `1` disables
    /// batching and reproduces the seed broker's frame-at-a-time
    /// writes — the single-shard reference configuration uses this.
    pub max_write_batch: usize,
}

/// Queue capacity used by [`crate::delay::Outbound::spawn`] when the
/// caller does not pick one: generous enough that well-behaved client
/// and controller links never trip it, bounded so a wedged link cannot
/// grow without limit.
pub const DEFAULT_OUTBOUND_CAPACITY: usize = 65_536;

/// Default writer batch: enough to amortize the per-syscall cost at
/// high fan-out without letting one connection monopolize the writer.
pub const DEFAULT_MAX_WRITE_BATCH: usize = 64;

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            capacity: DEFAULT_OUTBOUND_CAPACITY,
            low_watermark: DEFAULT_OUTBOUND_CAPACITY / 2,
            policy: SlowConsumerPolicy::default(),
            max_write_batch: DEFAULT_MAX_WRITE_BATCH,
        }
    }
}

impl FlowConfig {
    /// A config with `capacity`, a low watermark at half of it, and the
    /// default policy.
    pub fn with_capacity(capacity: usize) -> Self {
        FlowConfig {
            capacity: capacity.max(1),
            low_watermark: (capacity / 2).max(1),
            policy: SlowConsumerPolicy::default(),
            max_write_batch: DEFAULT_MAX_WRITE_BATCH,
        }
    }

    /// Replaces the slow-consumer policy.
    pub fn policy(mut self, policy: SlowConsumerPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the writer's vectored-write batch limit (floored at 1).
    pub fn max_write_batch(mut self, max: usize) -> Self {
        self.max_write_batch = max.max(1);
        self
    }
}

/// Outcome of offering a data frame to a [`FlowQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Enqueued with room to spare.
    Queued,
    /// Enqueued after evicting this many older data frames
    /// ([`SlowConsumerPolicy::DropOldest`]).
    Evicted(usize),
    /// The frame was discarded ([`SlowConsumerPolicy::DropNewest`], or a
    /// [`SlowConsumerPolicy::Block`] deadline expiring).
    Dropped,
    /// The queue closed itself because the consumer was too slow
    /// ([`SlowConsumerPolicy::Disconnect`]); the frame was discarded.
    Disconnected,
    /// The queue was already closed (peer gone); the frame was discarded.
    Closed,
}

impl PushOutcome {
    /// Whether the frame is on the queue (possibly at others' expense).
    pub fn queued(self) -> bool {
        matches!(self, PushOutcome::Queued | PushOutcome::Evicted(_))
    }
}

/// One queued, already-encoded frame.
#[derive(Debug)]
pub(crate) struct QueuedFrame {
    /// When the WAN-emulation delay allows the frame onto the socket.
    pub deliver_at: Instant,
    /// The encoded frame.
    pub bytes: Bytes,
    /// Control frames bypass the capacity bound and are never evicted.
    pub control: bool,
}

#[derive(Debug)]
struct QueueState {
    entries: VecDeque<QueuedFrame>,
    /// Number of non-control entries (the capacity bound applies to these).
    data_len: usize,
    /// Bytes across all entries, control included.
    bytes: u64,
    closed: bool,
}

impl QueueState {
    /// Queue-depth invariants, asserted in debug builds after every
    /// mutation: the data count and byte total must both re-derive from
    /// the entries, and data depth may exceed capacity only while a
    /// `Block`-policy sender is parked waiting for space.
    #[cfg(debug_assertions)]
    fn check_invariants(&self, capacity: usize, policy: SlowConsumerPolicy) {
        let data = self.entries.iter().filter(|e| !e.control).count();
        debug_assert_eq!(data, self.data_len, "data_len must track non-control entries");
        let bytes: u64 = self.entries.iter().map(|e| e.bytes.len() as u64).sum();
        debug_assert_eq!(bytes, self.bytes, "byte accounting must match queued entries");
        if !matches!(policy, SlowConsumerPolicy::Block { .. }) {
            debug_assert!(
                self.data_len <= capacity,
                "data depth {} exceeds capacity {capacity} under a non-blocking policy",
                self.data_len
            );
        }
    }

    #[cfg(not(debug_assertions))]
    fn check_invariants(&self, _capacity: usize, _policy: SlowConsumerPolicy) {}
}

/// A bounded, policy-aware MPSC queue of encoded frames: many senders,
/// one connection-writer consumer.
#[derive(Debug)]
pub(crate) struct FlowQueue {
    config: FlowConfig,
    state: Mutex<QueueState>, // lock:rank(flow.state, 80)
    /// Signals the single consumer that an entry (or close) is pending.
    readable: Notify,
    /// Wakes `Block`-policy senders once the queue drains to the low
    /// watermark.
    writable: Notify,
    /// Interrupts a writer wedged mid-`write_all` when the queue closes
    /// (`Disconnect` policy), so a stalled consumer is actually severed.
    killed: Notify,
    killed_flag: AtomicBool,
    /// Shared broker-wide byte budget; `None` for client/controller-side
    /// queues so same-process tests do not pollute the broker gauges.
    budget: Option<Arc<GlobalBudget>>,
    dropped: AtomicU64,
    evicted: AtomicU64,
}

impl FlowQueue {
    pub(crate) fn new(config: FlowConfig, budget: Option<Arc<GlobalBudget>>) -> FlowQueue {
        FlowQueue {
            config,
            state: Mutex::new(
                80,
                "flow.state",
                QueueState { entries: VecDeque::new(), data_len: 0, bytes: 0, closed: false },
            ),
            readable: Notify::new(),
            writable: Notify::new(),
            killed: Notify::new(),
            killed_flag: AtomicBool::new(false),
            budget,
            dropped: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Enqueues a control frame, bypassing the capacity bound. Returns
    /// `false` if the queue is closed.
    pub(crate) fn push_control(&self, deliver_at: Instant, bytes: Bytes) -> bool {
        let len = bytes.len() as u64;
        {
            let mut state = self.state.lock();
            if state.closed {
                return false;
            }
            state.entries.push_back(QueuedFrame { deliver_at, bytes, control: true });
            state.bytes += len;
            state.check_invariants(self.config.capacity, self.config.policy);
        }
        if let Some(budget) = &self.budget {
            budget.add(len);
        }
        self.readable.notify_one();
        true
    }

    /// Offers a data frame, applying the queue's [`SlowConsumerPolicy`]
    /// when it is full.
    pub(crate) async fn push_data(&self, deliver_at: Instant, bytes: Bytes) -> PushOutcome {
        enum Action {
            Queued,
            Evicted { count: usize, freed: u64 },
            DroppedNewest,
            Disconnected,
            Closed,
            Wait,
        }
        let len = bytes.len() as u64;
        let deadline = match self.config.policy {
            SlowConsumerPolicy::Block { deadline } => Some(Instant::now() + deadline),
            _ => None,
        };
        loop {
            let action = {
                let mut state = self.state.lock();
                if state.closed {
                    Action::Closed
                } else if state.data_len < self.config.capacity {
                    state.entries.push_back(QueuedFrame {
                        deliver_at,
                        bytes: bytes.clone(),
                        control: false,
                    });
                    state.data_len += 1;
                    state.bytes += len;
                    state.check_invariants(self.config.capacity, self.config.policy);
                    Action::Queued
                } else {
                    match self.config.policy {
                        SlowConsumerPolicy::Block { .. } => Action::Wait,
                        SlowConsumerPolicy::DropOldest => {
                            let mut count = 0usize;
                            let mut freed = 0u64;
                            while state.data_len >= self.config.capacity {
                                let Some(idx) = state.entries.iter().position(|e| !e.control)
                                else {
                                    break;
                                };
                                let Some(old) = state.entries.remove(idx) else { break };
                                state.data_len -= 1;
                                state.bytes -= old.bytes.len() as u64;
                                freed += old.bytes.len() as u64;
                                count += 1;
                            }
                            state.entries.push_back(QueuedFrame {
                                deliver_at,
                                bytes: bytes.clone(),
                                control: false,
                            });
                            state.data_len += 1;
                            state.bytes += len;
                            state.check_invariants(self.config.capacity, self.config.policy);
                            Action::Evicted { count, freed }
                        }
                        SlowConsumerPolicy::DropNewest => Action::DroppedNewest,
                        SlowConsumerPolicy::Disconnect => {
                            state.closed = true;
                            state.check_invariants(self.config.capacity, self.config.policy);
                            Action::Disconnected
                        }
                    }
                }
            };
            match action {
                Action::Closed => return PushOutcome::Closed,
                Action::Queued => {
                    if let Some(budget) = &self.budget {
                        budget.add(len);
                    }
                    self.readable.notify_one();
                    return PushOutcome::Queued;
                }
                Action::Evicted { count, freed } => {
                    self.evicted.fetch_add(count as u64, Ordering::Relaxed);
                    if let Some(budget) = &self.budget {
                        budget.sub(freed, count as u64);
                        budget.add(len);
                    }
                    multipub_obs::counter!(multipub_obs::metrics::BROKER_SLOW_EVICTIONS_TOTAL)
                        .add(count as u64);
                    self.readable.notify_one();
                    return PushOutcome::Evicted(count);
                }
                Action::DroppedNewest => {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    multipub_obs::counter!(multipub_obs::metrics::BROKER_SLOW_DROPS_TOTAL).inc();
                    return PushOutcome::Dropped;
                }
                Action::Disconnected => {
                    multipub_obs::counter!(multipub_obs::metrics::BROKER_SLOW_DISCONNECTS_TOTAL)
                        .inc();
                    // Sever the connection: discard the backlog, interrupt
                    // a writer wedged on the stalled socket, release any
                    // parked senders.
                    self.kill();
                    return PushOutcome::Disconnected;
                }
                Action::Wait => {}
            }
            // Block policy: park until the queue drains or the deadline
            // passes. The permit is armed *before* re-checking, so a pop
            // between the check above and the await cannot be missed.
            let Some(deadline) = deadline else {
                return PushOutcome::Dropped;
            };
            let notified = self.writable.notified();
            tokio::pin!(notified);
            notified.as_mut().enable();
            let has_room = {
                let state = self.state.lock();
                state.closed || state.data_len < self.config.capacity
            };
            if !has_room {
                tokio::select! {
                    _ = notified.as_mut() => {}
                    _ = tokio::time::sleep_until(deadline) => {
                        self.dropped.fetch_add(1, Ordering::Relaxed);
                        multipub_obs::counter!(multipub_obs::metrics::BROKER_SLOW_DROPS_TOTAL)
                            .inc();
                        return PushOutcome::Dropped;
                    }
                }
            }
        }
    }

    /// Awaits and removes the next frame; `None` once the queue is
    /// closed **and** drained. Single-consumer.
    pub(crate) async fn recv(&self) -> Option<QueuedFrame> {
        loop {
            let notified = self.readable.notified();
            tokio::pin!(notified);
            notified.as_mut().enable();
            let (frame, wake_writers) = {
                let mut state = self.state.lock();
                match state.entries.pop_front() {
                    Some(frame) => {
                        if !frame.control {
                            state.data_len -= 1;
                        }
                        state.bytes -= frame.bytes.len() as u64;
                        state.check_invariants(self.config.capacity, self.config.policy);
                        let wake = state.data_len <= self.config.low_watermark;
                        (Some(frame), wake)
                    }
                    None if state.closed => return None,
                    None => (None, false),
                }
            };
            match frame {
                Some(frame) => {
                    if let Some(budget) = &self.budget {
                        budget.sub(frame.bytes.len() as u64, 1);
                    }
                    if wake_writers {
                        self.writable.notify_waiters();
                    }
                    return Some(frame);
                }
                None => notified.await,
            }
        }
    }

    /// Removes the front frame **iff** its WAN-emulation release time
    /// has already passed — the writer's batching probe, never blocking
    /// and never reordering (frames behind a not-yet-due frame stay
    /// queued, preserving per-connection FIFO + delay semantics).
    ///
    /// Accounting is identical to [`Self::recv`]: data/byte counters,
    /// the shared budget, and the `Block`-policy writer wakeup.
    pub(crate) fn try_pop_due(&self, now: Instant) -> Option<QueuedFrame> {
        let (frame, wake_writers) = {
            let mut state = self.state.lock();
            if state.entries.front().is_none_or(|front| front.deliver_at > now) {
                return None;
            }
            let frame = state.entries.pop_front()?;
            if !frame.control {
                state.data_len -= 1;
            }
            state.bytes -= frame.bytes.len() as u64;
            state.check_invariants(self.config.capacity, self.config.policy);
            let wake = state.data_len <= self.config.low_watermark;
            (frame, wake)
        };
        if let Some(budget) = &self.budget {
            budget.sub(frame.bytes.len() as u64, 1);
        }
        if wake_writers {
            self.writable.notify_waiters();
        }
        Some(frame)
    }

    /// The writer's batch limit, from the queue's [`FlowConfig`].
    pub(crate) fn max_write_batch(&self) -> usize {
        self.config.max_write_batch.max(1)
    }

    /// Closes the queue gracefully (idempotent): new pushes fail, but
    /// already-queued frames still drain through the writer — the
    /// behaviour of dropping an unbounded sender.
    pub(crate) fn close(&self) {
        {
            let mut state = self.state.lock();
            state.closed = true;
        }
        self.readable.notify_waiters();
        self.writable.notify_waiters();
    }

    /// Kills the queue (idempotent): remaining frames are discarded and
    /// refunded to the budget (the socket they were bound for is dead or
    /// being severed), new pushes fail, parked senders, the consumer,
    /// and a writer wedged mid-write all wake.
    pub(crate) fn kill(&self) {
        let (freed_bytes, freed_frames) = {
            let mut state = self.state.lock();
            state.closed = true;
            let bytes = state.bytes;
            let frames = state.entries.len() as u64;
            state.entries.clear();
            state.data_len = 0;
            state.bytes = 0;
            state.check_invariants(self.config.capacity, self.config.policy);
            (bytes, frames)
        };
        if freed_frames > 0 {
            if let Some(budget) = &self.budget {
                budget.sub(freed_bytes, freed_frames);
            }
        }
        self.killed_flag.store(true, Ordering::Release);
        self.killed.notify_waiters();
        self.readable.notify_waiters();
        self.writable.notify_waiters();
    }

    /// Resolves once the queue has been closed — the writer races this
    /// against `write_all` so a stalled socket cannot pin the task.
    pub(crate) async fn wait_killed(&self) {
        loop {
            if self.killed_flag.load(Ordering::Acquire) {
                return;
            }
            let notified = self.killed.notified();
            tokio::pin!(notified);
            notified.as_mut().enable();
            if self.killed_flag.load(Ordering::Acquire) {
                return;
            }
            notified.await;
        }
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Current queue depth in frames (data + control).
    pub(crate) fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// Current queue depth in bytes.
    pub(crate) fn queued_bytes(&self) -> u64 {
        self.state.lock().bytes
    }

    /// Frames dropped by `DropNewest` or an expired `Block` deadline.
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Frames evicted by `DropOldest`.
    pub(crate) fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

/// Per-publisher token-bucket rate limiter for publish admission.
///
/// Tokens accrue continuously at `rate` per second up to `burst`; each
/// admitted publish spends one.
#[derive(Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    refilled_at: Instant,
}

impl TokenBucket {
    /// A bucket admitting `rate` publishes per second with a burst
    /// allowance of `burst`. Non-finite or non-positive inputs are
    /// clamped to a minimal 1/s bucket.
    pub fn new(rate: f64, burst: f64) -> TokenBucket {
        let rate = if rate.is_finite() && rate > 0.0 { rate } else { 1.0 };
        let burst = if burst.is_finite() && burst >= 1.0 { burst } else { 1.0 };
        TokenBucket { rate, burst, tokens: burst, refilled_at: Instant::now() }
    }

    fn refill(&mut self, now: Instant) {
        let elapsed = now.saturating_duration_since(self.refilled_at).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        self.refilled_at = now;
    }

    /// Spends one token if available.
    pub fn try_acquire(&mut self) -> bool {
        self.try_acquire_at(Instant::now())
    }

    fn try_acquire_at(&mut self, now: Instant) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Milliseconds until the next token accrues — the `retry_after`
    /// hint carried in a [`crate::frame::Frame::Busy`] NACK.
    pub fn retry_after_ms(&self) -> u32 {
        let deficit = (1.0 - self.tokens).max(0.0);
        ((deficit / self.rate) * 1000.0).ceil().min(f64::from(u32::MAX)) as u32
    }
}

/// The broker-wide in-flight-bytes budget and `Overloaded` state
/// machine.
///
/// Every broker-owned [`FlowQueue`] reports queued bytes here. Crossing
/// `budget` enters the overloaded state (gauge `1`, structured event,
/// publishes NACKed with `Busy`); the state clears only once the total
/// drains to `low` — hysteresis, so admission does not flap while the
/// backlog hovers at the boundary.
#[derive(Debug)]
pub struct GlobalBudget {
    budget: u64,
    low: u64,
    queued: AtomicU64,
    queued_frames: AtomicU64,
    overloaded: AtomicBool,
}

impl GlobalBudget {
    /// A budget of `budget_bytes` recovering at half of it.
    pub fn new(budget_bytes: u64) -> GlobalBudget {
        GlobalBudget::with_low_watermark(budget_bytes, budget_bytes / 2)
    }

    /// A budget with an explicit recovery (low-watermark) point; `low`
    /// is clamped to the budget.
    pub fn with_low_watermark(budget_bytes: u64, low: u64) -> GlobalBudget {
        GlobalBudget {
            budget: budget_bytes,
            low: low.min(budget_bytes),
            queued: AtomicU64::new(0),
            queued_frames: AtomicU64::new(0),
            overloaded: AtomicBool::new(false),
        }
    }

    /// Total bytes currently queued across the owning broker's
    /// connections.
    pub fn queued_bytes(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    /// Whether the broker is shedding publishes.
    pub fn is_overloaded(&self) -> bool {
        self.overloaded.load(Ordering::Relaxed)
    }

    /// The configured budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    fn add(&self, bytes: u64) {
        let queued = self.queued.fetch_add(bytes, Ordering::Relaxed) + bytes;
        let frames = self.queued_frames.fetch_add(1, Ordering::Relaxed) + 1;
        multipub_obs::gauge!(multipub_obs::metrics::BROKER_QUEUED_BYTES).set(queued as i64);
        multipub_obs::gauge!(multipub_obs::metrics::BROKER_QUEUED_FRAMES).set(frames as i64);
        if queued > self.budget && !self.overloaded.swap(true, Ordering::Relaxed) {
            multipub_obs::counter!(multipub_obs::metrics::BROKER_OVERLOAD_ENTERED_TOTAL).inc();
            multipub_obs::gauge!(multipub_obs::metrics::BROKER_OVERLOADED).set(1);
            multipub_obs::event!(
                Warn,
                "broker",
                msg = "overloaded: in-flight byte budget exceeded, shedding publishes",
                queued_bytes = queued,
                budget_bytes = self.budget,
            );
        }
    }

    fn sub(&self, bytes: u64, frame_count: u64) {
        let queued = self.queued.fetch_sub(bytes, Ordering::Relaxed).saturating_sub(bytes);
        let frames = self
            .queued_frames
            .fetch_sub(frame_count, Ordering::Relaxed)
            .saturating_sub(frame_count);
        multipub_obs::gauge!(multipub_obs::metrics::BROKER_QUEUED_BYTES).set(queued as i64);
        multipub_obs::gauge!(multipub_obs::metrics::BROKER_QUEUED_FRAMES).set(frames as i64);
        if queued <= self.low && self.overloaded.load(Ordering::Relaxed) {
            if !self.overloaded.swap(false, Ordering::Relaxed) {
                return;
            }
            multipub_obs::gauge!(multipub_obs::metrics::BROKER_OVERLOADED).set(0);
            multipub_obs::event!(
                Info,
                "broker",
                msg = "overload cleared: backlog drained to the low watermark",
                queued_bytes = queued,
                low_watermark = self.low,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(capacity: usize, policy: SlowConsumerPolicy) -> FlowQueue {
        let config =
            FlowConfig { capacity, low_watermark: capacity / 2, policy, ..FlowConfig::default() };
        FlowQueue::new(config, None)
    }

    fn payload(n: usize) -> Bytes {
        Bytes::from(vec![0u8; n])
    }

    #[test]
    fn policy_parses_cli_spellings() {
        assert_eq!(SlowConsumerPolicy::parse("drop-oldest"), Ok(SlowConsumerPolicy::DropOldest));
        assert_eq!(SlowConsumerPolicy::parse("drop-newest"), Ok(SlowConsumerPolicy::DropNewest));
        assert_eq!(SlowConsumerPolicy::parse("disconnect"), Ok(SlowConsumerPolicy::Disconnect));
        assert_eq!(
            SlowConsumerPolicy::parse("block:250"),
            Ok(SlowConsumerPolicy::Block { deadline: Duration::from_millis(250) })
        );
        assert!(SlowConsumerPolicy::parse("block:soon").is_err());
        assert!(SlowConsumerPolicy::parse("yolo").is_err());
    }

    #[test]
    fn policy_wire_roundtrip() {
        for policy in [
            SlowConsumerPolicy::Block { deadline: Duration::from_millis(750) },
            SlowConsumerPolicy::DropOldest,
            SlowConsumerPolicy::DropNewest,
            SlowConsumerPolicy::Disconnect,
        ] {
            assert_eq!(
                SlowConsumerPolicy::from_wire(policy.wire_byte(), policy.wire_ms()),
                Ok(Some(policy))
            );
        }
        assert_eq!(SlowConsumerPolicy::from_wire(0, 0), Ok(None));
        assert_eq!(SlowConsumerPolicy::from_wire(9, 0), Err(9));
    }

    #[tokio::test]
    async fn drop_oldest_keeps_freshest_suffix() {
        let queue = q(4, SlowConsumerPolicy::DropOldest);
        let now = Instant::now();
        for i in 0..10u8 {
            let outcome = queue.push_data(now, Bytes::from(vec![i])).await;
            assert!(outcome.queued());
        }
        assert_eq!(queue.len(), 4);
        assert_eq!(queue.evicted(), 6);
        let mut seen = Vec::new();
        for _ in 0..4 {
            seen.push(queue.recv().await.unwrap().bytes[0]);
        }
        assert_eq!(seen, vec![6, 7, 8, 9], "survivors are the newest frames, in order");
    }

    #[tokio::test]
    async fn drop_newest_keeps_backlog() {
        let queue = q(3, SlowConsumerPolicy::DropNewest);
        let now = Instant::now();
        for i in 0..8u8 {
            queue.push_data(now, Bytes::from(vec![i])).await;
        }
        assert_eq!(queue.len(), 3);
        assert_eq!(queue.dropped(), 5);
        let mut seen = Vec::new();
        for _ in 0..3 {
            seen.push(queue.recv().await.unwrap().bytes[0]);
        }
        assert_eq!(seen, vec![0, 1, 2], "survivors are the oldest frames, in order");
    }

    #[tokio::test]
    async fn disconnect_policy_closes_the_queue() {
        let queue = q(2, SlowConsumerPolicy::Disconnect);
        let now = Instant::now();
        assert!(queue.push_data(now, payload(1)).await.queued());
        assert!(queue.push_data(now, payload(1)).await.queued());
        assert_eq!(queue.push_data(now, payload(1)).await, PushOutcome::Disconnected);
        assert!(queue.is_closed());
        assert_eq!(queue.push_data(now, payload(1)).await, PushOutcome::Closed);
        // The backlog is discarded — the consumer sees the close at once
        // and the byte accounting is zeroed.
        assert!(queue.recv().await.is_none());
        assert_eq!(queue.queued_bytes(), 0);
    }

    #[tokio::test(start_paused = true)]
    async fn block_policy_drops_on_deadline() {
        let queue =
            Arc::new(q(1, SlowConsumerPolicy::Block { deadline: Duration::from_millis(100) }));
        let now = Instant::now();
        assert!(queue.push_data(now, payload(1)).await.queued());
        // Queue full and nobody consuming: the push parks, then expires.
        assert_eq!(queue.push_data(now, payload(1)).await, PushOutcome::Dropped);
        assert_eq!(queue.dropped(), 1);
    }

    #[tokio::test]
    async fn block_policy_resumes_below_low_watermark() {
        let queue = Arc::new(FlowQueue::new(
            FlowConfig {
                capacity: 2,
                low_watermark: 1,
                policy: SlowConsumerPolicy::Block { deadline: Duration::from_secs(5) },
                ..FlowConfig::default()
            },
            None,
        ));
        let now = Instant::now();
        assert!(queue.push_data(now, payload(1)).await.queued());
        assert!(queue.push_data(now, payload(1)).await.queued());
        let sender = {
            let queue = Arc::clone(&queue);
            tokio::spawn(async move { queue.push_data(now, payload(1)).await })
        };
        tokio::time::sleep(Duration::from_millis(20)).await;
        assert!(!sender.is_finished(), "sender must park while the queue is full");
        // Draining to the low watermark (1 entry) releases the sender.
        assert!(queue.recv().await.is_some());
        let outcome = tokio::time::timeout(Duration::from_secs(2), sender).await.unwrap().unwrap();
        assert!(outcome.queued());
    }

    #[tokio::test]
    async fn control_frames_bypass_capacity() {
        let queue = q(1, SlowConsumerPolicy::DropNewest);
        let now = Instant::now();
        assert!(queue.push_data(now, payload(1)).await.queued());
        assert!(queue.push_control(now, payload(1)));
        assert!(queue.push_control(now, payload(1)));
        assert_eq!(queue.len(), 3);
        // The next data frame is still shed.
        assert_eq!(queue.push_data(now, payload(1)).await, PushOutcome::Dropped);
    }

    #[tokio::test]
    async fn drop_oldest_spares_control_frames() {
        let queue = q(1, SlowConsumerPolicy::DropOldest);
        let now = Instant::now();
        assert!(queue.push_control(now, Bytes::from(vec![0xCC])));
        assert!(queue.push_data(now, Bytes::from(vec![1])).await.queued());
        // Full: the data frame is evicted, the control frame survives.
        assert_eq!(queue.push_data(now, Bytes::from(vec![2])).await, PushOutcome::Evicted(1));
        let first = queue.recv().await.unwrap();
        assert!(first.control);
        assert_eq!(first.bytes[0], 0xCC);
        assert_eq!(queue.recv().await.unwrap().bytes[0], 2);
    }

    #[tokio::test]
    async fn try_pop_due_respects_release_times_and_accounting() {
        let queue = q(8, SlowConsumerPolicy::DropOldest);
        let now = Instant::now();
        queue.push_data(now, payload(10)).await;
        queue.push_data(now, payload(20)).await;
        queue.push_data(now + Duration::from_secs(60), payload(30)).await;
        // Frames behind the delayed one stay queued: FIFO is preserved.
        queue.push_data(now, payload(40)).await;

        assert_eq!(queue.try_pop_due(now).map(|f| f.bytes.len()), Some(10));
        assert_eq!(queue.try_pop_due(now).map(|f| f.bytes.len()), Some(20));
        assert!(queue.try_pop_due(now).is_none(), "front frame not yet due");
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.queued_bytes(), 70, "popped frames left the byte accounting");
        assert_eq!(
            queue.try_pop_due(now + Duration::from_secs(61)).map(|f| f.bytes.len()),
            Some(30)
        );
        assert_eq!(
            queue.try_pop_due(now + Duration::from_secs(61)).map(|f| f.bytes.len()),
            Some(40)
        );
        assert!(queue.try_pop_due(now + Duration::from_secs(61)).is_none(), "drained");
        assert_eq!(queue.queued_bytes(), 0);
    }

    #[tokio::test]
    async fn byte_accounting_balances() {
        let queue = q(8, SlowConsumerPolicy::DropOldest);
        let now = Instant::now();
        queue.push_data(now, payload(100)).await;
        queue.push_data(now, payload(50)).await;
        assert_eq!(queue.queued_bytes(), 150);
        queue.recv().await.unwrap();
        assert_eq!(queue.queued_bytes(), 50);
        queue.recv().await.unwrap();
        assert_eq!(queue.queued_bytes(), 0);
    }

    #[test]
    fn token_bucket_admits_burst_then_throttles() {
        let mut bucket = TokenBucket::new(10.0, 3.0);
        let now = Instant::now();
        assert!(bucket.try_acquire_at(now));
        assert!(bucket.try_acquire_at(now));
        assert!(bucket.try_acquire_at(now));
        assert!(!bucket.try_acquire_at(now), "burst exhausted");
        assert!(bucket.retry_after_ms() > 0);
        // One token accrues every 100ms at 10/s.
        assert!(bucket.try_acquire_at(now + Duration::from_millis(150)));
        assert!(!bucket.try_acquire_at(now + Duration::from_millis(160)));
    }

    #[test]
    fn token_bucket_caps_at_burst() {
        let mut bucket = TokenBucket::new(1000.0, 2.0);
        let now = Instant::now();
        bucket.refill(now + Duration::from_secs(60));
        assert!(bucket.tokens <= 2.0);
    }

    #[test]
    fn global_budget_is_hysteretic() {
        let budget = GlobalBudget::with_low_watermark(1000, 400);
        assert!(!budget.is_overloaded());
        budget.add(600);
        assert!(!budget.is_overloaded(), "under budget");
        budget.add(600);
        assert!(budget.is_overloaded(), "1200 > 1000");
        budget.sub(300, 1);
        assert!(budget.is_overloaded(), "900 is above the low watermark of 400");
        budget.sub(600, 1);
        assert!(!budget.is_overloaded(), "300 <= 400 clears the state");
        assert_eq!(budget.queued_bytes(), 300);
    }
}
