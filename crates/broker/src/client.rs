//! Publisher and subscriber client handles.
//!
//! Clients know their one-way latency towards every region (measured out
//! of band; here supplied up front) and the address of each region's
//! broker. They track per-topic configurations pushed by the brokers
//! ([`Frame::ConfigUpdate`]) and re-steer automatically:
//!
//! * a **subscriber** keeps each topic subscribed at the *closest serving
//!   region*, resubscribing (make-before-break) when a reconfiguration
//!   changes that region;
//! * a **publisher** sends each publication to *all* serving regions under
//!   direct delivery, or only to its closest serving region under routed
//!   delivery.
//!
//! Topics with no installed configuration yet are treated as served by all
//! regions with routed delivery, matching the brokers' bootstrap default.
//!
//! ## Fault tolerance
//!
//! Sessions survive broker restarts (see [`crate::session`]):
//!
//! * a **subscriber** that loses a connection re-dials it with
//!   exponential backoff + decorrelated jitter and *replays its Subscribe
//!   set* for every topic homed at that region the moment the link is
//!   back;
//! * a **publisher** that finds every serving region unreachable buffers
//!   the publication in a bounded FIFO instead of erroring, then flushes
//!   it — re-resolving the serving set against the latest configuration —
//!   once a broker answers again;
//! * with [`ClientConfig::keepalive`] set, every connection sends
//!   [`Frame::Ping`] heartbeats so broker-side idle reaping never culls a
//!   healthy but quiet client.

use crate::broker::InstalledConfig;
use crate::conn::{read_frame, BrokerError};
use crate::delay::{duration_from_ms, Outbound};
use crate::flow::SlowConsumerPolicy;
use crate::frame::{Frame, Role, TraceContext, WireMode};
use crate::qos::{DedupWindow, DEFAULT_DEDUP_WINDOW};
use crate::session::{Backoff, PendingPublish, PendingQueue, ReconnectPolicy};
use crate::sync::Mutex;
use bytes::{Bytes, BytesMut};
use multipub_core::ids::RegionId;
use multipub_filter::{Headers, Predicate};
use std::collections::{BTreeMap, HashMap};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;
use tokio::net::TcpStream;
use tokio::sync::mpsc;

/// Connection settings shared by publishers and subscribers.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// This client's id (unique per deployment).
    pub client_id: u64,
    /// Broker address per region, indexed by region id.
    pub region_addrs: Vec<SocketAddr>,
    /// One-way latency towards each region, milliseconds. Drives the
    /// "closest region" choice; leave empty for all-zero (first region
    /// wins ties).
    pub latencies_ms: Vec<f64>,
    /// When `true`, the client delays its own outbound frames by
    /// `latencies_ms[region]`, emulating its WAN uplink on loopback.
    pub emulate_wan: bool,
    /// Backoff policy for re-dialing lost connections.
    pub reconnect: ReconnectPolicy,
    /// Heartbeat interval: when set, every connection sends
    /// [`Frame::Ping`] at this cadence so idle-deadline brokers keep it
    /// alive. `None` (the default) sends no heartbeats.
    pub keepalive: Option<Duration>,
    /// Maximum number of publications a publisher buffers while every
    /// serving region is unreachable (oldest evicted first).
    pub publish_buffer: usize,
    /// Slow-consumer policy this client requests for its own broker-side
    /// outbound queue (subscribers only; `None` accepts the broker's
    /// default). See [`SlowConsumerPolicy`].
    pub slow_consumer: Option<SlowConsumerPolicy>,
    /// Fraction of publications to trace end to end (`0.0` = never, the
    /// default; `1.0` = every publication). Sampled publications carry a
    /// [`TraceContext`] on the wire and every hop records per-stage spans
    /// into the process-local trace ring.
    pub trace_sample: f64,
    /// Topics carried with at-least-once (QoS 1) delivery. Publications
    /// on these topics are sequenced, acked by the broker and
    /// retransmitted until acked; subscriptions on them request
    /// broker-side redelivery buffering. Everything else is
    /// fire-and-forget (QoS 0).
    pub qos1_topics: Vec<String>,
}

impl ClientConfig {
    /// A configuration with no latency information, no WAN emulation, the
    /// default reconnect policy, no keepalive, and a 1024-entry publish
    /// buffer.
    pub fn new(client_id: u64, region_addrs: Vec<SocketAddr>) -> Self {
        ClientConfig {
            client_id,
            region_addrs,
            latencies_ms: Vec::new(),
            emulate_wan: false,
            reconnect: ReconnectPolicy::default(),
            keepalive: None,
            publish_buffer: 1024,
            slow_consumer: None,
            trace_sample: 0.0,
            qos1_topics: Vec::new(),
        }
    }

    /// The delivery QoS configured for `topic`: `1` when listed in
    /// [`ClientConfig::qos1_topics`], else `0`.
    pub fn qos_for(&self, topic: &str) -> u8 {
        u8::from(self.qos1_topics.iter().any(|t| t == topic))
    }

    fn latency(&self, region: usize) -> f64 {
        self.latencies_ms.get(region).copied().unwrap_or(0.0)
    }

    fn validate(&self) -> Result<(), BrokerError> {
        if self.region_addrs.is_empty() {
            return Err(BrokerError::UnknownRegion { region: 0 });
        }
        Ok(())
    }
}

/// A publication received by a subscriber.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// The topic the publication was sent on.
    pub topic: String,
    /// The publishing client's id.
    pub publisher: u64,
    /// Publisher-side timestamp, microseconds since the Unix epoch.
    pub publish_micros: u64,
    /// Receipt timestamp, microseconds since the Unix epoch.
    pub received_micros: u64,
    /// Content headers the publication carried (empty when none).
    pub headers: Headers,
    /// Message payload.
    pub payload: Bytes,
    /// Trace context the delivery arrived with (`None` when the
    /// publication was not sampled).
    pub trace: Option<TraceContext>,
    /// Delivery QoS the publication was sent with (`1` = at-least-once).
    pub qos: u8,
    /// Per-publisher sequence number (`0` for unsequenced QoS 0 traffic).
    pub seq: u64,
    /// `true` when this is a retained last-value replay rather than a
    /// live publication.
    pub retained: bool,
}

impl Delivery {
    /// End-to-end delivery time in milliseconds (meaningful when publisher
    /// and subscriber clocks agree, e.g. on one host).
    pub fn latency_ms(&self) -> f64 {
        (self.received_micros.saturating_sub(self.publish_micros)) as f64 / 1000.0
    }
}

#[derive(Debug)]
enum Event {
    Delivery(Delivery),
    Config {
        topic: String,
    },
    Disconnected {
        region: u16,
    },
    /// A backoff timer fired: time to attempt a reconnect to `region`.
    ReconnectDue {
        region: u16,
    },
    /// The broker refused a publication with a [`Frame::Busy`] NACK.
    Busy {
        retry_after_ms: u32,
        /// Sequence of the refused QoS 1 publication (`0` for QoS 0).
        seq: u64,
    },
    /// The broker acked a QoS 1 publication.
    PubAck {
        seq: u64,
    },
}

/// Capacity of the per-client internal event channel (deliveries, config
/// updates, disconnect notices). Bounded so a stalled application
/// backpressures the reader task instead of growing the queue without
/// limit.
const EVENT_CHANNEL_CAPACITY: usize = 1024;

/// Capacity of the subscriber's application→actor command channel.
const COMMAND_CHANNEL_CAPACITY: usize = 64;

/// Per-region connection management shared by both client kinds.
#[derive(Debug)]
struct Links {
    config: ClientConfig,
    role: Role,
    conns: HashMap<u16, Outbound>,
    topic_configs: Arc<Mutex<HashMap<String, InstalledConfig>>>, // lock:rank(client.topic_configs, 60)
    events_tx: mpsc::Sender<Event>,
    /// Regions connected at least once — a later connect is a *re*connect.
    ever_connected: std::collections::HashSet<u16>,
    /// When each currently-dead region was first seen down, for the
    /// reconnect-duration histogram.
    disconnected_at: HashMap<u16, std::time::Instant>,
}

impl Links {
    fn new(config: ClientConfig, role: Role, events_tx: mpsc::Sender<Event>) -> Self {
        Links {
            config,
            role,
            conns: HashMap::new(),
            topic_configs: Arc::new(Mutex::new(60, "client.topic_configs", HashMap::new())),
            events_tx,
            ever_connected: std::collections::HashSet::new(),
            disconnected_at: HashMap::new(),
        }
    }

    /// Drops a dead handle and stamps the outage start (first notice
    /// wins), so the next [`Links::connect`] reconnects and reports how
    /// long the region was gone.
    fn mark_disconnected(&mut self, region: u16) {
        self.conns.remove(&region);
        self.disconnected_at.entry(region).or_insert_with(std::time::Instant::now);
    }

    fn n_regions(&self) -> usize {
        self.config.region_addrs.len()
    }

    /// The configuration to use for `topic`: installed, or the all-regions
    /// routed bootstrap default.
    fn config_for(&self, topic: &str) -> InstalledConfig {
        self.topic_configs.lock().get(topic).copied().unwrap_or(InstalledConfig {
            mask: if self.n_regions() >= 32 { u32::MAX } else { (1u32 << self.n_regions()) - 1 },
            mode: WireMode::Routed,
            epoch: 0,
        })
    }

    /// The closest region among the serving set of `mask`.
    fn closest_serving(&self, mask: u32) -> u16 {
        let mut best: Option<(f64, u16)> = None;
        for region in 0..self.n_regions() as u16 {
            if mask & (1u32 << region) == 0 {
                continue;
            }
            let lat = self.config.latency(region as usize);
            if best.is_none_or(|(b, _)| lat < b) {
                best = Some((lat, region));
            }
        }
        best.map(|(_, r)| r).unwrap_or(0)
    }

    /// Returns the outbound handle for a region, connecting on demand.
    async fn connect(&mut self, region: u16) -> Result<Outbound, BrokerError> {
        if let Some(out) = self.conns.get(&region) {
            if out.is_open() {
                return Ok(out.clone());
            }
        }
        let addr = *self
            .config
            .region_addrs
            .get(region as usize)
            .ok_or(BrokerError::UnknownRegion { region })?;
        let stream = TcpStream::connect(addr).await?;
        stream.set_nodelay(true).ok();
        let (mut read_half, write_half) = stream.into_split();
        let delay = if self.config.emulate_wan {
            duration_from_ms(self.config.latency(region as usize))
        } else {
            Duration::ZERO
        };
        let outbound = Outbound::spawn(write_half, delay);
        let policy = match self.role {
            Role::Subscriber => self.config.slow_consumer,
            _ => None,
        };
        outbound.send(&Frame::Connect {
            client_id: self.config.client_id,
            role: self.role,
            policy,
        });

        if !self.ever_connected.insert(region) {
            multipub_obs::counter!(multipub_obs::metrics::CLIENT_RECONNECTS_TOTAL).inc();
        }
        if let Some(since) = self.disconnected_at.remove(&region) {
            multipub_obs::histogram!(multipub_obs::metrics::CLIENT_RECONNECT_MS)
                .record(since.elapsed().as_secs_f64() * 1000.0);
        }

        // Keepalive task: periodic pings keep broker-side idle deadlines
        // at bay; stops as soon as the writer is gone.
        if let Some(interval) = self.config.keepalive {
            let heartbeat = outbound.clone();
            tokio::spawn(async move {
                let mut nonce = 0u64;
                loop {
                    tokio::time::sleep(interval).await;
                    nonce = nonce.wrapping_add(1);
                    if !heartbeat.send(&Frame::Ping { nonce }) {
                        break;
                    }
                }
            });
        }

        // Reader task: funnel deliveries and config updates into the
        // client's event queue.
        let events_tx = self.events_tx.clone();
        let topic_configs = Arc::clone(&self.topic_configs);
        let acker = outbound.clone();
        tokio::spawn(async move {
            let mut buf = BytesMut::new();
            loop {
                match read_frame(&mut read_half, &mut buf).await {
                    Ok(Some(Frame::Deliver {
                        topic,
                        publisher,
                        publish_micros,
                        headers,
                        payload,
                        trace,
                        qos,
                        seq,
                        retained,
                    })) => {
                        let headers = if headers.is_empty() {
                            Headers::new()
                        } else {
                            Headers::from_json(&headers).unwrap_or_default()
                        };
                        let received_micros = now_micros();
                        // Final trace stage: socket write → client receipt.
                        // The write stamp is patched in by the broker's
                        // writer task; zero means the frame never crossed
                        // an instrumented writer, so no span can be formed.
                        if let Some(ctx) = trace {
                            if ctx.sampled && ctx.write_micros > 0 {
                                let dur = received_micros.saturating_sub(ctx.write_micros);
                                multipub_obs::histogram!(
                                    multipub_obs::metrics::BROKER_STAGE_DELIVER_MS
                                )
                                .record(dur as f64 / 1000.0);
                                multipub_obs::trace::record_span(multipub_obs::trace::Span {
                                    trace_id: ctx.trace_id,
                                    stage: "deliver",
                                    start_micros: ctx.write_micros,
                                    dur_micros: dur,
                                });
                            }
                        }
                        // QoS 1 deliveries are acked on receipt so the
                        // broker can trim its redelivery buffer;
                        // duplicates are re-acked too (the ack may have
                        // been lost with the previous connection).
                        if qos == 1 {
                            acker.send(&Frame::DeliverAck { topic: topic.clone(), publisher, seq });
                        }
                        let delivery = Delivery {
                            topic,
                            publisher,
                            publish_micros,
                            received_micros,
                            headers,
                            payload,
                            trace,
                            qos,
                            seq,
                            retained,
                        };
                        if events_tx.send(Event::Delivery(delivery)).await.is_err() {
                            break;
                        }
                    }
                    Ok(Some(Frame::ConfigUpdate { topic, mask, mode, epoch })) => {
                        // Epoch-gate the install: during a handover both
                        // old and new regions replay configs, and a stale
                        // region's replay must not un-steer the client.
                        let installed = {
                            let mut configs = topic_configs.lock();
                            let stale = configs
                                .get(&topic)
                                .is_some_and(|current: &InstalledConfig| epoch < current.epoch);
                            if !stale {
                                configs
                                    .insert(topic.clone(), InstalledConfig { mask, mode, epoch });
                            }
                            !stale
                        };
                        if installed && events_tx.send(Event::Config { topic }).await.is_err() {
                            break;
                        }
                    }
                    Ok(Some(Frame::Busy { topic, retry_after_ms, seq })) => {
                        multipub_obs::counter!(multipub_obs::metrics::CLIENT_BUSY_RECEIVED_TOTAL)
                            .inc();
                        multipub_obs::event!(
                            Debug,
                            "client",
                            msg = "publish refused busy",
                            region = region,
                            topic = topic,
                            retry_after_ms = retry_after_ms,
                        );
                        if events_tx.send(Event::Busy { retry_after_ms, seq }).await.is_err() {
                            break;
                        }
                    }
                    Ok(Some(Frame::PubAck { seq, .. })) => {
                        if events_tx.send(Event::PubAck { seq }).await.is_err() {
                            break;
                        }
                    }
                    Ok(Some(_)) => {} // ConnectAck, Pong, …
                    Ok(None) | Err(_) => {
                        let _ = events_tx.send(Event::Disconnected { region }).await;
                        break;
                    }
                }
            }
        });
        self.conns.insert(region, outbound.clone());
        Ok(outbound)
    }
}

/// Microseconds since the Unix epoch.
pub(crate) fn now_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

#[derive(Debug)]
enum Command {
    Subscribe {
        topic: String,
        filter: String,
        qos: u8,
        ack: tokio::sync::oneshot::Sender<Result<(), BrokerError>>,
    },
    Unsubscribe {
        topic: String,
        ack: tokio::sync::oneshot::Sender<Result<(), BrokerError>>,
    },
}

/// A subscribing client. See the module docs for the steering rules.
///
/// Subscription steering runs in a background actor task: configuration
/// updates are applied (make-before-break resubscription) the moment they
/// arrive, even while the application is not waiting in
/// [`SubscriberClient::next_delivery`] — otherwise publications sent right
/// after a reconfiguration could slip past a subscriber that has not yet
/// moved to the new serving region.
#[derive(Debug)]
pub struct SubscriberClient {
    commands_tx: mpsc::Sender<Command>,
    deliveries_rx: mpsc::Receiver<Delivery>,
    /// topic → (region currently subscribed at, filter source, qos) —
    /// shared with the actor.
    subscriptions: Arc<Mutex<HashMap<String, (u16, String, u8)>>>, // lock:rank(client.subscriptions, 62)
}

impl SubscriberClient {
    /// Creates a subscriber handle and spawns its steering actor on the
    /// current tokio runtime. Connections are opened lazily on the first
    /// subscribe touching each region.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownRegion`] if `config` lists no regions.
    pub fn new(config: ClientConfig) -> Result<Self, BrokerError> {
        config.validate()?;
        let (events_tx, events_rx) = mpsc::channel(EVENT_CHANNEL_CAPACITY);
        let (commands_tx, commands_rx) = mpsc::channel(COMMAND_CHANNEL_CAPACITY);
        let (deliveries_tx, deliveries_rx) = mpsc::channel(EVENT_CHANNEL_CAPACITY);
        let subscriptions = Arc::new(Mutex::new(62, "client.subscriptions", HashMap::new()));
        let actor = SubscriberActor {
            links: Links::new(config, Role::Subscriber, events_tx),
            events_rx,
            commands_rx,
            deliveries_tx,
            subscriptions: Arc::clone(&subscriptions),
            backoffs: HashMap::new(),
            dedup: HashMap::new(),
        };
        tokio::spawn(actor.run());
        Ok(SubscriberClient { commands_tx, deliveries_rx, subscriptions })
    }

    /// Subscribes to `topic` at the closest serving region.
    ///
    /// # Errors
    ///
    /// Returns a connection error if the serving broker is unreachable.
    pub async fn subscribe(&mut self, topic: &str) -> Result<(), BrokerError> {
        self.send_subscribe(topic, String::new(), 0).await
    }

    /// Subscribes to `topic` with at-least-once (QoS 1) delivery: the
    /// broker buffers unacked deliveries and replays them when this
    /// client resubscribes after a disconnect, and the client filters
    /// the resulting duplicates by per-publisher sequence number.
    ///
    /// # Errors
    ///
    /// Returns a connection error if the serving broker is unreachable.
    pub async fn subscribe_qos1(&mut self, topic: &str) -> Result<(), BrokerError> {
        self.send_subscribe(topic, String::new(), 1).await
    }

    /// Subscribes to `topic` restricted by a content filter (the
    /// `multipub-filter` predicate language) — the paper's future-work
    /// content-based extension. Only publications whose headers satisfy
    /// the predicate are delivered.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::BadFilter`] when the predicate does not
    /// parse, or a connection error if the serving broker is unreachable.
    pub async fn subscribe_filtered(
        &mut self,
        topic: &str,
        filter: &str,
    ) -> Result<(), BrokerError> {
        Predicate::parse(filter).map_err(|e| BrokerError::BadFilter { message: e.to_string() })?;
        self.send_subscribe(topic, filter.to_string(), 0).await
    }

    async fn send_subscribe(
        &mut self,
        topic: &str,
        filter: String,
        qos: u8,
    ) -> Result<(), BrokerError> {
        let (ack, done) = tokio::sync::oneshot::channel();
        self.commands_tx
            .send(Command::Subscribe { topic: topic.to_string(), filter, qos, ack })
            .await
            .map_err(|_| BrokerError::ConnectionClosed)?;
        done.await.map_err(|_| BrokerError::ConnectionClosed)?
    }

    /// Drops the subscription to `topic`.
    ///
    /// # Errors
    ///
    /// Returns a connection error if the serving broker is unreachable.
    pub async fn unsubscribe(&mut self, topic: &str) -> Result<(), BrokerError> {
        let (ack, done) = tokio::sync::oneshot::channel();
        self.commands_tx
            .send(Command::Unsubscribe { topic: topic.to_string(), ack })
            .await
            .map_err(|_| BrokerError::ConnectionClosed)?;
        done.await.map_err(|_| BrokerError::ConnectionClosed)?
    }

    /// The region a topic is currently subscribed at, if any.
    pub fn subscribed_region(&self, topic: &str) -> Option<RegionId> {
        self.subscriptions.lock().get(topic).map(|&(r, _, _)| RegionId(r as u8))
    }

    /// Waits for the next delivery.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::ConnectionClosed`] when the steering actor
    /// has terminated.
    pub async fn next_delivery(&mut self) -> Result<Delivery, BrokerError> {
        self.deliveries_rx.recv().await.ok_or(BrokerError::ConnectionClosed)
    }
}

struct SubscriberActor {
    links: Links,
    events_rx: mpsc::Receiver<Event>,
    commands_rx: mpsc::Receiver<Command>,
    deliveries_tx: mpsc::Sender<Delivery>,
    /// Shared with the [`SubscriberClient`] handle; same lock as the
    /// handle's field. lock:rank(client.subscriptions, 62)
    subscriptions: Arc<Mutex<HashMap<String, (u16, String, u8)>>>,
    /// In-flight reconnect episodes, one per dead region.
    backoffs: HashMap<u16, Backoff>,
    /// Per-publisher duplicate filter for QoS 1 traffic, mirroring the
    /// broker's dedup discipline: redeliveries (reconnect replay, mesh
    /// double-path, broker retransmit) are dropped before they reach
    /// the application.
    dedup: HashMap<u64, DedupWindow>,
}

impl SubscriberActor {
    async fn run(mut self) {
        loop {
            tokio::select! {
                command = self.commands_rx.recv() => match command {
                    Some(Command::Subscribe { topic, filter, qos, ack }) => {
                        let _ = ack.send(self.subscribe(&topic, filter, qos).await);
                    }
                    Some(Command::Unsubscribe { topic, ack }) => {
                        let _ = ack.send(self.unsubscribe(&topic).await);
                    }
                    None => break, // handle dropped
                },
                event = self.events_rx.recv() => match event {
                    Some(Event::Delivery(delivery)) => {
                        if self.is_duplicate(&delivery) {
                            multipub_obs::counter!(
                                multipub_obs::metrics::CLIENT_DEDUP_HITS_TOTAL
                            )
                            .inc();
                        } else if self.deliveries_tx.send(delivery).await.is_err() {
                            break;
                        }
                    }
                    Some(Event::Config { topic }) => {
                        // Steering failures (unreachable broker) leave the
                        // old subscription in place; the next update
                        // retries.
                        let _ = self.handle_config_update(&topic).await;
                    }
                    Some(Event::Disconnected { region }) => {
                        self.links.mark_disconnected(region);
                        self.begin_reconnect(region);
                    }
                    Some(Event::ReconnectDue { region }) => {
                        self.try_reconnect(region).await;
                    }
                    // Busy NACKs and publish acks only concern publishers.
                    Some(Event::Busy { .. }) | Some(Event::PubAck { .. }) => {}
                    None => break,
                },
            }
        }
    }

    /// Client-side duplicate filter: QoS 1 deliveries are tracked in a
    /// per-publisher sequence window; a sequence already observed is a
    /// redelivery and must not reach the application twice.
    fn is_duplicate(&mut self, delivery: &Delivery) -> bool {
        if delivery.qos != 1 || delivery.seq == 0 {
            return false;
        }
        !self
            .dedup
            .entry(delivery.publisher)
            .or_insert_with(|| DedupWindow::new(DEFAULT_DEDUP_WINDOW))
            .observe(delivery.seq)
    }

    /// Starts a backoff episode for `region` if any subscription is homed
    /// there and no episode is already running.
    fn begin_reconnect(&mut self, region: u16) {
        let needed = self.subscriptions.lock().values().any(|&(r, _, _)| r == region);
        if !needed {
            self.backoffs.remove(&region);
            return;
        }
        if self.backoffs.contains_key(&region) {
            return;
        }
        let seed = self.links.config.client_id ^ ((region as u64) << 32);
        let mut backoff = self.links.config.reconnect.backoff(seed);
        if let Some(delay) = backoff.next_delay() {
            self.backoffs.insert(region, backoff);
            self.schedule_reconnect(region, delay);
        }
    }

    /// Arms a timer that re-enters the actor via `Event::ReconnectDue`,
    /// keeping the actor responsive while the backoff elapses.
    fn schedule_reconnect(&self, region: u16, delay: Duration) {
        let events_tx = self.links.events_tx.clone();
        tokio::spawn(async move {
            tokio::time::sleep(delay).await;
            let _ = events_tx.send(Event::ReconnectDue { region }).await;
        });
    }

    /// One reconnect attempt: on success, replay the Subscribe set homed
    /// at `region` (the broker lost it with the connection); on failure,
    /// re-arm the next backoff delay until the policy gives up.
    async fn try_reconnect(&mut self, region: u16) {
        let to_replay: Vec<(String, String, u8)> = self
            .subscriptions
            .lock()
            .iter()
            .filter(|(_, (r, _, _))| *r == region)
            .map(|(topic, (_, filter, qos))| (topic.clone(), filter.clone(), *qos))
            .collect();
        if to_replay.is_empty() {
            // Everything re-steered elsewhere while we were backing off.
            self.backoffs.remove(&region);
            return;
        }
        match self.links.connect(region).await {
            Ok(outbound) => {
                self.backoffs.remove(&region);
                for (topic, filter, qos) in to_replay {
                    outbound.send(&Frame::Subscribe { topic, filter, qos });
                }
            }
            Err(_) => {
                if let Some(backoff) = self.backoffs.get_mut(&region) {
                    match backoff.next_delay() {
                        Some(delay) => self.schedule_reconnect(region, delay),
                        None => {
                            self.backoffs.remove(&region);
                            multipub_obs::event!(
                                Warn,
                                "client",
                                msg = "reconnect attempts exhausted",
                                region = region
                            );
                        }
                    }
                }
            }
        }
    }

    async fn subscribe(&mut self, topic: &str, filter: String, qos: u8) -> Result<(), BrokerError> {
        // A topic listed in `qos1_topics` upgrades any plain subscribe.
        let qos = qos.max(self.links.config.qos_for(topic));
        let config = self.links.config_for(topic);
        let region = self.links.closest_serving(config.mask);
        let outbound = self.links.connect(region).await?;
        outbound.send(&Frame::Subscribe { topic: topic.to_string(), filter: filter.clone(), qos });
        self.subscriptions.lock().insert(topic.to_string(), (region, filter, qos));
        Ok(())
    }

    async fn unsubscribe(&mut self, topic: &str) -> Result<(), BrokerError> {
        let entry = self.subscriptions.lock().remove(topic);
        if let Some((region, _, _)) = entry {
            let outbound = self.links.connect(region).await?;
            outbound.send(&Frame::Unsubscribe { topic: topic.to_string() });
        }
        Ok(())
    }

    async fn handle_config_update(&mut self, topic: &str) -> Result<(), BrokerError> {
        let (current, filter, qos) = match self.subscriptions.lock().get(topic) {
            Some((region, filter, qos)) => (*region, filter.clone(), *qos),
            None => return Ok(()), // not subscribed to this topic
        };
        let config = self.links.config_for(topic);
        let target = self.links.closest_serving(config.mask);
        if target == current {
            return Ok(());
        }
        // Make before break: subscribe at the new region first, carrying
        // the same content filter and QoS.
        let new_outbound = self.links.connect(target).await?;
        new_outbound.send(&Frame::Subscribe {
            topic: topic.to_string(),
            filter: filter.clone(),
            qos,
        });
        if let Ok(old_outbound) = self.links.connect(current).await {
            old_outbound.send(&Frame::Unsubscribe { topic: topic.to_string() });
        }
        self.subscriptions.lock().insert(topic.to_string(), (target, filter, qos));
        Ok(())
    }
}

/// A publishing client. See the module docs for the steering rules.
///
/// When every serving region is unreachable, publications are buffered in
/// a bounded FIFO (size [`ClientConfig::publish_buffer`], oldest evicted
/// first) and flushed — with the serving set re-resolved against the
/// latest configuration — on the next successful publish or an explicit
/// [`PublisherClient::flush_pending`].
#[derive(Debug)]
pub struct PublisherClient {
    links: Links,
    events_rx: mpsc::Receiver<Event>,
    pending: PendingQueue,
    /// While set, the broker has NACKed with [`Frame::Busy`]: publishes
    /// are buffered instead of sent until the deadline passes.
    busy_until: Option<tokio::time::Instant>,
    /// Decorrelated-jitter backoff across consecutive Busy NACKs, so a
    /// fleet of refused publishers does not retry in lockstep.
    busy_backoff: Backoff,
    /// Deterministic 1-in-N trace sampler built from
    /// [`ClientConfig::trace_sample`].
    sampler: multipub_obs::trace::Sampler,
    /// Next QoS 1 sequence number. Per-publisher and global across
    /// topics, starting at 1 — sequence 0 marks unsequenced QoS 0
    /// traffic on the wire.
    next_seq: u64,
    /// QoS 1 publications not yet acked by a broker, keyed by sequence.
    /// Each is retransmitted on its own decorrelated-jitter schedule
    /// until a [`Frame::PubAck`] arrives — including across reconnects,
    /// since every send re-resolves and re-dials the serving set.
    unacked: BTreeMap<u64, UnackedPublish>,
}

/// A QoS 1 publication awaiting its broker ack.
#[derive(Debug)]
struct UnackedPublish {
    entry: PendingPublish,
    /// Retransmit schedule for this publication.
    backoff: Backoff,
    /// Earliest instant the next retransmit may go out.
    next_retry: tokio::time::Instant,
    /// Wire-send attempts so far.
    attempts: u32,
}

impl PublisherClient {
    /// Creates a publisher handle. Connections are opened lazily on the
    /// first publish touching each region.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownRegion`] if `config` lists no regions.
    pub fn new(config: ClientConfig) -> Result<Self, BrokerError> {
        config.validate()?;
        let (events_tx, events_rx) = mpsc::channel(EVENT_CHANNEL_CAPACITY);
        let pending = PendingQueue::new(config.publish_buffer);
        let busy_backoff = config.reconnect.backoff(config.client_id ^ 0xB5_5B);
        let sampler = multipub_obs::trace::Sampler::new(config.trace_sample);
        Ok(PublisherClient {
            links: Links::new(config, Role::Publisher, events_tx),
            events_rx,
            pending,
            busy_until: None,
            busy_backoff,
            sampler,
            next_seq: 1,
            unacked: BTreeMap::new(),
        })
    }

    /// Publishes `payload` on `topic`, steering by the topic's current
    /// configuration: to every serving region under direct delivery, to
    /// the closest serving region under routed delivery.
    ///
    /// Returns the number of regions the publication was sent to.
    ///
    /// # Errors
    ///
    /// Returns a connection error if a serving broker is unreachable.
    pub async fn publish(
        &mut self,
        topic: &str,
        payload: impl Into<Bytes>,
    ) -> Result<usize, BrokerError> {
        self.publish_with_headers(topic, &Headers::new(), payload).await
    }

    /// Publishes `payload` on `topic` with content headers attached, so
    /// filtered subscribers (see
    /// [`SubscriberClient::subscribe_filtered`]) can match on them.
    ///
    /// Returns the number of regions the publication was sent to — `0`
    /// when every serving region was unreachable and the publication was
    /// buffered for a later flush instead.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownRegion`] only for malformed
    /// configurations; unreachable brokers buffer rather than error.
    pub async fn publish_with_headers(
        &mut self,
        topic: &str,
        headers: &Headers,
        payload: impl Into<Bytes>,
    ) -> Result<usize, BrokerError> {
        self.publish_inner(topic, headers, payload.into(), false).await
    }

    /// Publishes `payload` on `topic` and asks the broker to **retain**
    /// it as the topic's last value, replayed to every future subscriber
    /// (the market-data snapshot pattern). An empty payload clears the
    /// retained value. Requires the broker to run with retention
    /// enabled; otherwise the flag is ignored and this behaves like a
    /// plain publish.
    ///
    /// # Errors
    ///
    /// As [`PublisherClient::publish_with_headers`].
    pub async fn publish_retained(
        &mut self,
        topic: &str,
        headers: &Headers,
        payload: impl Into<Bytes>,
    ) -> Result<usize, BrokerError> {
        self.publish_inner(topic, headers, payload.into(), true).await
    }

    async fn publish_inner(
        &mut self,
        topic: &str,
        headers: &Headers,
        payload: Bytes,
        retain: bool,
    ) -> Result<usize, BrokerError> {
        self.drain_events();
        let qos = self.links.config.qos_for(topic);
        let seq = if qos == 1 {
            let seq = self.next_seq;
            self.next_seq += 1;
            seq
        } else {
            0
        };
        let trace = self
            .sampler
            .should_sample()
            .then(|| TraceContext::new(multipub_obs::trace::next_trace_id()));
        let entry = PendingPublish {
            topic: topic.to_string(),
            headers: if headers.is_empty() { String::new() } else { headers.to_json() },
            payload: payload.to_vec(),
            publish_micros: now_micros(),
            trace,
            qos,
            seq,
            retain,
        };
        if qos == 1 {
            return Ok(self.publish_qos1(entry).await);
        }
        // Inside a Busy window the broker asked us to back off: buffer
        // without attempting, exactly like an unreachable region.
        if self.in_busy_window() {
            self.buffer(entry);
            return Ok(0);
        }
        self.flush_pending().await;
        match self.try_send(&entry).await {
            Ok(sent) => {
                // An accepted publication ends the overload episode:
                // reset the Busy backoff so the next NACK starts small.
                self.busy_backoff =
                    self.links.config.reconnect.backoff(self.links.config.client_id ^ 0xB5_5B);
                Ok(sent)
            }
            Err(_) => {
                self.buffer(entry);
                Ok(0)
            }
        }
    }

    /// QoS 1 send path. The publication is tracked as unacked *before*
    /// the first wire attempt, so a send failure, a Busy NACK or a
    /// broker crash all leave it scheduled for retransmission rather
    /// than lost.
    async fn publish_qos1(&mut self, entry: PendingPublish) -> usize {
        let seq = entry.seq;
        let backoff = self.links.config.reconnect.backoff(self.links.config.client_id ^ seq);
        self.unacked.insert(
            seq,
            UnackedPublish { entry, backoff, next_retry: tokio::time::Instant::now(), attempts: 0 },
        );
        if self.in_busy_window() {
            // Honour the broker's backoff request; the publication waits
            // in the unacked set until the window passes.
            if let (Some(pending), Some(until)) = (self.unacked.get_mut(&seq), self.busy_until) {
                pending.next_retry = until;
            }
            return 0;
        }
        self.send_unacked(seq).await
    }

    /// One wire attempt for an unacked publication; reschedules its next
    /// retransmit regardless of outcome.
    async fn send_unacked(&mut self, seq: u64) -> usize {
        let Some(mut pending) = self.unacked.remove(&seq) else {
            return 0; // acked concurrently
        };
        let sent = self.try_send(&pending.entry).await.unwrap_or(0);
        pending.attempts += 1;
        if pending.attempts > 1 {
            multipub_obs::counter!(multipub_obs::metrics::CLIENT_RETRANSMITS_TOTAL).inc();
        }
        let delay = pending.backoff.next_delay().unwrap_or(self.links.config.reconnect.cap);
        pending.next_retry = tokio::time::Instant::now() + delay;
        self.unacked.insert(seq, pending);
        // The ack may already be queued; apply it before reporting.
        self.drain_events();
        sent
    }

    /// Retransmits every unacked QoS 1 publication whose retry deadline
    /// has passed (unless a Busy window holds sends back). Returns the
    /// number of publications attempted. [`PublisherClient::await_acked`]
    /// calls this in a loop; callers driving their own schedule can
    /// invoke it directly.
    pub async fn flush_retransmits(&mut self) -> usize {
        self.drain_events();
        if self.in_busy_window() {
            return 0;
        }
        let now = tokio::time::Instant::now();
        let due: Vec<u64> =
            self.unacked.iter().filter(|(_, p)| p.next_retry <= now).map(|(&s, _)| s).collect();
        let mut attempted = 0;
        for seq in due {
            if self.unacked.contains_key(&seq) {
                self.send_unacked(seq).await;
                attempted += 1;
            }
            if self.in_busy_window() {
                break;
            }
        }
        attempted
    }

    /// Drives retransmission until every outstanding QoS 1 publication
    /// is acked or `timeout` elapses. Returns `true` when the unacked
    /// set drained in time.
    pub async fn await_acked(&mut self, timeout: Duration) -> bool {
        let deadline = tokio::time::Instant::now() + timeout;
        loop {
            self.flush_retransmits().await;
            if self.unacked.is_empty() {
                return true;
            }
            let now = tokio::time::Instant::now();
            if now >= deadline {
                return false;
            }
            // Sleep until the earliest retry (pushed past any Busy
            // window), waking early for inbound acks.
            let mut wake = self.unacked.values().map(|p| p.next_retry).min().unwrap_or(deadline);
            if let Some(until) = self.busy_until {
                wake = wake.max(until);
            }
            let wake = wake.min(deadline);
            tokio::select! {
                event = self.events_rx.recv() => match event {
                    Some(event) => self.apply_event(event),
                    None => return false,
                },
                _ = tokio::time::sleep_until(wake) => {}
            }
        }
    }

    /// Number of QoS 1 publications sent (or buffered behind a Busy
    /// window) but not yet acked by a broker.
    pub fn unacked_count(&self) -> usize {
        self.unacked.len()
    }

    /// Whether a broker [`Frame::Busy`] NACK currently holds publishing
    /// back (window not yet elapsed).
    pub fn is_busy(&mut self) -> bool {
        self.drain_events();
        self.in_busy_window()
    }

    fn in_busy_window(&mut self) -> bool {
        match self.busy_until {
            Some(until) if tokio::time::Instant::now() < until => true,
            Some(_) => {
                self.busy_until = None;
                false
            }
            None => false,
        }
    }

    /// One immediate send attempt for a (possibly buffered) publication,
    /// resolving the serving set from the *current* configuration. Under
    /// routed delivery, serving regions are tried closest-first until one
    /// answers (§IV.B's latency-preference applied to failover); under
    /// direct delivery every reachable serving region gets a copy. Errors
    /// only when no serving region accepted the message.
    async fn try_send(&mut self, entry: &PendingPublish) -> Result<usize, BrokerError> {
        let config = self.links.config_for(&entry.topic);
        let publisher_id = self.links.config.client_id;
        let frame = |single_target: bool| Frame::Publish {
            topic: entry.topic.clone(),
            publisher: publisher_id,
            publish_micros: entry.publish_micros,
            single_target,
            headers: entry.headers.clone(),
            payload: Bytes::from(entry.payload.clone()),
            trace: entry.trace,
            qos: entry.qos,
            seq: entry.seq,
            retain: entry.retain,
            epoch: config.epoch,
        };
        let mut serving: Vec<u16> = (0..self.links.n_regions() as u16)
            .filter(|&r| config.mask & (1u32 << r) != 0)
            .collect();
        let mut last_err = BrokerError::UnknownRegion { region: 0 };
        match config.mode {
            WireMode::Routed => {
                serving.sort_by(|&a, &b| {
                    self.links
                        .config
                        .latency(a as usize)
                        .total_cmp(&self.links.config.latency(b as usize))
                });
                for region in serving {
                    match self.links.connect(region).await {
                        Ok(outbound) => {
                            if outbound.send(&frame(true)) {
                                return Ok(1);
                            }
                            self.links.mark_disconnected(region);
                            last_err = BrokerError::ConnectionClosed;
                        }
                        Err(e) => last_err = e,
                    }
                }
                Err(last_err)
            }
            WireMode::Direct => {
                let message = frame(false);
                let mut sent = 0;
                for region in serving {
                    match self.links.connect(region).await {
                        Ok(outbound) => {
                            if outbound.send(&message) {
                                sent += 1;
                            } else {
                                self.links.mark_disconnected(region);
                                last_err = BrokerError::ConnectionClosed;
                            }
                        }
                        Err(e) => last_err = e,
                    }
                }
                if sent > 0 {
                    Ok(sent)
                } else {
                    Err(last_err)
                }
            }
        }
    }

    fn buffer(&mut self, entry: PendingPublish) {
        let dropped_before = self.pending.dropped();
        self.pending.push(entry);
        multipub_obs::counter!(multipub_obs::metrics::CLIENT_FRAMES_BUFFERED_TOTAL).inc();
        let evicted = self.pending.dropped() - dropped_before;
        if evicted > 0 {
            multipub_obs::counter!(multipub_obs::metrics::CLIENT_FRAMES_DROPPED_TOTAL).add(evicted);
        }
    }

    /// Attempts to deliver buffered publications in FIFO order, stopping
    /// at the first one that still cannot reach any serving region.
    /// Returns the number flushed. Called automatically at the start of
    /// every publish.
    pub async fn flush_pending(&mut self) -> usize {
        if self.in_busy_window() {
            return 0;
        }
        let mut flushed = 0;
        while let Some(entry) = self.pending.pop() {
            match self.try_send(&entry).await {
                Ok(_) => flushed += 1,
                Err(_) => {
                    self.pending.push_front(entry);
                    break;
                }
            }
        }
        flushed
    }

    /// Number of publications currently buffered while awaiting a
    /// reachable serving region.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// The configuration this publisher currently holds for a topic.
    pub fn config_for(&self, topic: &str) -> (u32, WireMode) {
        let config = self.links.config_for(topic);
        (config.mask, config.mode)
    }

    /// Applies any queued configuration updates, acks and NACKs without
    /// blocking.
    pub fn drain_events(&mut self) {
        while let Ok(event) = self.events_rx.try_recv() {
            self.apply_event(event);
        }
    }

    fn apply_event(&mut self, event: Event) {
        // Config updates already landed in the shared map; Delivery
        // events cannot occur on a publisher connection.
        match event {
            Event::Disconnected { region } => self.links.mark_disconnected(region),
            Event::Busy { retry_after_ms, seq } => {
                self.note_busy(retry_after_ms);
                // A NACKed QoS 1 publish stays pending for retry: push
                // its next attempt past the broker's hint instead of
                // shedding it (the broker never recorded it as seen).
                if seq != 0 {
                    if let (Some(pending), Some(until)) =
                        (self.unacked.get_mut(&seq), self.busy_until)
                    {
                        pending.next_retry = pending.next_retry.max(until);
                    }
                }
            }
            Event::PubAck { seq } => {
                self.unacked.remove(&seq);
            }
            _ => {}
        }
    }

    /// Opens (or extends) the Busy window: the broker's retry hint, or
    /// the decorrelated-jitter backoff delay when that is longer —
    /// consecutive NACKs push retries further apart.
    fn note_busy(&mut self, retry_after_ms: u32) {
        let hint = Duration::from_millis(u64::from(retry_after_ms));
        let delay = self.busy_backoff.next_delay().map_or(hint, |d| d.max(hint));
        let until = tokio::time::Instant::now() + delay;
        if self.busy_until.is_none_or(|current| until > current) {
            self.busy_until = Some(until);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config(latencies: Vec<f64>) -> ClientConfig {
        let n = latencies.len();
        ClientConfig {
            region_addrs: (0..n)
                .map(|i| SocketAddr::from(([127, 0, 0, 1], 10_000 + i as u16)))
                .collect(),
            latencies_ms: latencies,
            ..ClientConfig::new(1, Vec::new())
        }
    }

    #[test]
    fn closest_serving_respects_mask_and_latency() {
        let (tx, _rx) = mpsc::channel(8);
        let links = Links::new(test_config(vec![30.0, 10.0, 20.0]), Role::Subscriber, tx);
        assert_eq!(links.closest_serving(0b111), 1);
        assert_eq!(links.closest_serving(0b101), 2);
        assert_eq!(links.closest_serving(0b001), 0);
    }

    #[test]
    fn default_topic_config_is_all_regions_routed() {
        let (tx, _rx) = mpsc::channel(8);
        let links = Links::new(test_config(vec![1.0, 2.0]), Role::Publisher, tx);
        let config = links.config_for("unknown");
        assert_eq!(config.mask, 0b11);
        assert_eq!(config.mode, WireMode::Routed);
    }

    #[test]
    fn empty_region_list_rejected() {
        let config = ClientConfig::new(1, vec![]);
        assert!(SubscriberClient::new(config.clone()).is_err());
        assert!(PublisherClient::new(config).is_err());
    }

    #[test]
    fn delivery_latency_computation() {
        let delivery = Delivery {
            topic: "t".into(),
            publisher: 1,
            publish_micros: 1_000,
            received_micros: 43_500,
            headers: Headers::new(),
            payload: Bytes::new(),
            trace: None,
            qos: 0,
            seq: 0,
            retained: false,
        };
        assert!((delivery.latency_ms() - 42.5).abs() < 1e-9);
        // Clock skew never yields negative latency.
        let skewed = Delivery { received_micros: 0, ..delivery };
        assert_eq!(skewed.latency_ms(), 0.0);
    }

    #[test]
    fn missing_latencies_default_to_zero() {
        let mut config = test_config(vec![]);
        config.region_addrs =
            vec![SocketAddr::from(([127, 0, 0, 1], 1)), SocketAddr::from(([127, 0, 0, 1], 2))];
        let (tx, _rx) = mpsc::channel(8);
        let links = Links::new(config, Role::Subscriber, tx);
        assert_eq!(links.closest_serving(0b10), 1);
        assert_eq!(links.closest_serving(0b11), 0);
    }
}
