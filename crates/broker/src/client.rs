//! Publisher and subscriber client handles.
//!
//! Clients know their one-way latency towards every region (measured out
//! of band; here supplied up front) and the address of each region's
//! broker. They track per-topic configurations pushed by the brokers
//! ([`Frame::ConfigUpdate`]) and re-steer automatically:
//!
//! * a **subscriber** keeps each topic subscribed at the *closest serving
//!   region*, resubscribing (make-before-break) when a reconfiguration
//!   changes that region;
//! * a **publisher** sends each publication to *all* serving regions under
//!   direct delivery, or only to its closest serving region under routed
//!   delivery.
//!
//! Topics with no installed configuration yet are treated as served by all
//! regions with routed delivery, matching the brokers' bootstrap default.

use crate::broker::InstalledConfig;
use crate::conn::{read_frame, BrokerError};
use crate::delay::{duration_from_ms, Outbound};
use crate::frame::{Frame, Role, WireMode};
use bytes::{Bytes, BytesMut};
use multipub_core::ids::RegionId;
use multipub_filter::{Headers, Predicate};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;
use tokio::net::TcpStream;
use tokio::sync::mpsc;

/// Connection settings shared by publishers and subscribers.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// This client's id (unique per deployment).
    pub client_id: u64,
    /// Broker address per region, indexed by region id.
    pub region_addrs: Vec<SocketAddr>,
    /// One-way latency towards each region, milliseconds. Drives the
    /// "closest region" choice; leave empty for all-zero (first region
    /// wins ties).
    pub latencies_ms: Vec<f64>,
    /// When `true`, the client delays its own outbound frames by
    /// `latencies_ms[region]`, emulating its WAN uplink on loopback.
    pub emulate_wan: bool,
}

impl ClientConfig {
    /// A configuration with no latency information and no WAN emulation.
    pub fn new(client_id: u64, region_addrs: Vec<SocketAddr>) -> Self {
        ClientConfig { client_id, region_addrs, latencies_ms: Vec::new(), emulate_wan: false }
    }

    fn latency(&self, region: usize) -> f64 {
        self.latencies_ms.get(region).copied().unwrap_or(0.0)
    }

    fn validate(&self) -> Result<(), BrokerError> {
        if self.region_addrs.is_empty() {
            return Err(BrokerError::UnknownRegion { region: 0 });
        }
        Ok(())
    }
}

/// A publication received by a subscriber.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// The topic the publication was sent on.
    pub topic: String,
    /// The publishing client's id.
    pub publisher: u64,
    /// Publisher-side timestamp, microseconds since the Unix epoch.
    pub publish_micros: u64,
    /// Receipt timestamp, microseconds since the Unix epoch.
    pub received_micros: u64,
    /// Content headers the publication carried (empty when none).
    pub headers: Headers,
    /// Message payload.
    pub payload: Bytes,
}

impl Delivery {
    /// End-to-end delivery time in milliseconds (meaningful when publisher
    /// and subscriber clocks agree, e.g. on one host).
    pub fn latency_ms(&self) -> f64 {
        (self.received_micros.saturating_sub(self.publish_micros)) as f64 / 1000.0
    }
}

#[derive(Debug)]
enum Event {
    Delivery(Delivery),
    Config { topic: String },
    Disconnected { region: u16 },
}

/// Per-region connection management shared by both client kinds.
#[derive(Debug)]
struct Links {
    config: ClientConfig,
    role: Role,
    conns: HashMap<u16, Outbound>,
    topic_configs: Arc<Mutex<HashMap<String, InstalledConfig>>>,
    events_tx: mpsc::UnboundedSender<Event>,
}

impl Links {
    fn new(config: ClientConfig, role: Role, events_tx: mpsc::UnboundedSender<Event>) -> Self {
        Links {
            config,
            role,
            conns: HashMap::new(),
            topic_configs: Arc::new(Mutex::new(HashMap::new())),
            events_tx,
        }
    }

    fn n_regions(&self) -> usize {
        self.config.region_addrs.len()
    }

    /// The configuration to use for `topic`: installed, or the all-regions
    /// routed bootstrap default.
    fn config_for(&self, topic: &str) -> InstalledConfig {
        self.topic_configs.lock().get(topic).copied().unwrap_or(InstalledConfig {
            mask: if self.n_regions() >= 32 { u32::MAX } else { (1u32 << self.n_regions()) - 1 },
            mode: WireMode::Routed,
        })
    }

    /// The closest region among the serving set of `mask`.
    fn closest_serving(&self, mask: u32) -> u16 {
        let mut best: Option<(f64, u16)> = None;
        for region in 0..self.n_regions() as u16 {
            if mask & (1u32 << region) == 0 {
                continue;
            }
            let lat = self.config.latency(region as usize);
            if best.is_none_or(|(b, _)| lat < b) {
                best = Some((lat, region));
            }
        }
        best.map(|(_, r)| r).unwrap_or(0)
    }

    /// Returns the outbound handle for a region, connecting on demand.
    async fn connect(&mut self, region: u16) -> Result<Outbound, BrokerError> {
        if let Some(out) = self.conns.get(&region) {
            if out.is_open() {
                return Ok(out.clone());
            }
        }
        let addr = *self
            .config
            .region_addrs
            .get(region as usize)
            .ok_or(BrokerError::UnknownRegion { region })?;
        let stream = TcpStream::connect(addr).await?;
        stream.set_nodelay(true).ok();
        let (mut read_half, write_half) = stream.into_split();
        let delay = if self.config.emulate_wan {
            duration_from_ms(self.config.latency(region as usize))
        } else {
            Duration::ZERO
        };
        let outbound = Outbound::spawn(write_half, delay);
        outbound.send(&Frame::Connect { client_id: self.config.client_id, role: self.role });

        // Reader task: funnel deliveries and config updates into the
        // client's event queue.
        let events_tx = self.events_tx.clone();
        let topic_configs = Arc::clone(&self.topic_configs);
        tokio::spawn(async move {
            let mut buf = BytesMut::new();
            loop {
                match read_frame(&mut read_half, &mut buf).await {
                    Ok(Some(Frame::Deliver {
                        topic,
                        publisher,
                        publish_micros,
                        headers,
                        payload,
                    })) => {
                        let headers = if headers.is_empty() {
                            Headers::new()
                        } else {
                            Headers::from_json(&headers).unwrap_or_default()
                        };
                        let delivery = Delivery {
                            topic,
                            publisher,
                            publish_micros,
                            received_micros: now_micros(),
                            headers,
                            payload,
                        };
                        if events_tx.send(Event::Delivery(delivery)).is_err() {
                            break;
                        }
                    }
                    Ok(Some(Frame::ConfigUpdate { topic, mask, mode })) => {
                        topic_configs.lock().insert(topic.clone(), InstalledConfig { mask, mode });
                        if events_tx.send(Event::Config { topic }).is_err() {
                            break;
                        }
                    }
                    Ok(Some(_)) => {} // ConnectAck, Pong, …
                    Ok(None) | Err(_) => {
                        let _ = events_tx.send(Event::Disconnected { region });
                        break;
                    }
                }
            }
        });
        self.conns.insert(region, outbound.clone());
        Ok(outbound)
    }
}

/// Microseconds since the Unix epoch.
pub(crate) fn now_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

#[derive(Debug)]
enum Command {
    Subscribe {
        topic: String,
        filter: String,
        ack: tokio::sync::oneshot::Sender<Result<(), BrokerError>>,
    },
    Unsubscribe {
        topic: String,
        ack: tokio::sync::oneshot::Sender<Result<(), BrokerError>>,
    },
}

/// A subscribing client. See the module docs for the steering rules.
///
/// Subscription steering runs in a background actor task: configuration
/// updates are applied (make-before-break resubscription) the moment they
/// arrive, even while the application is not waiting in
/// [`SubscriberClient::next_delivery`] — otherwise publications sent right
/// after a reconfiguration could slip past a subscriber that has not yet
/// moved to the new serving region.
#[derive(Debug)]
pub struct SubscriberClient {
    commands_tx: mpsc::UnboundedSender<Command>,
    deliveries_rx: mpsc::UnboundedReceiver<Delivery>,
    /// topic → (region currently subscribed at, filter source) — shared
    /// with the actor.
    subscriptions: Arc<Mutex<HashMap<String, (u16, String)>>>,
}

impl SubscriberClient {
    /// Creates a subscriber handle and spawns its steering actor on the
    /// current tokio runtime. Connections are opened lazily on the first
    /// subscribe touching each region.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownRegion`] if `config` lists no regions.
    pub fn new(config: ClientConfig) -> Result<Self, BrokerError> {
        config.validate()?;
        let (events_tx, events_rx) = mpsc::unbounded_channel();
        let (commands_tx, commands_rx) = mpsc::unbounded_channel();
        let (deliveries_tx, deliveries_rx) = mpsc::unbounded_channel();
        let subscriptions = Arc::new(Mutex::new(HashMap::new()));
        let actor = SubscriberActor {
            links: Links::new(config, Role::Subscriber, events_tx),
            events_rx,
            commands_rx,
            deliveries_tx,
            subscriptions: Arc::clone(&subscriptions),
        };
        tokio::spawn(actor.run());
        Ok(SubscriberClient { commands_tx, deliveries_rx, subscriptions })
    }

    /// Subscribes to `topic` at the closest serving region.
    ///
    /// # Errors
    ///
    /// Returns a connection error if the serving broker is unreachable.
    pub async fn subscribe(&mut self, topic: &str) -> Result<(), BrokerError> {
        self.send_subscribe(topic, String::new()).await
    }

    /// Subscribes to `topic` restricted by a content filter (the
    /// `multipub-filter` predicate language) — the paper's future-work
    /// content-based extension. Only publications whose headers satisfy
    /// the predicate are delivered.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::BadFilter`] when the predicate does not
    /// parse, or a connection error if the serving broker is unreachable.
    pub async fn subscribe_filtered(
        &mut self,
        topic: &str,
        filter: &str,
    ) -> Result<(), BrokerError> {
        Predicate::parse(filter).map_err(|e| BrokerError::BadFilter { message: e.to_string() })?;
        self.send_subscribe(topic, filter.to_string()).await
    }

    async fn send_subscribe(&mut self, topic: &str, filter: String) -> Result<(), BrokerError> {
        let (ack, done) = tokio::sync::oneshot::channel();
        self.commands_tx
            .send(Command::Subscribe { topic: topic.to_string(), filter, ack })
            .map_err(|_| BrokerError::ConnectionClosed)?;
        done.await.map_err(|_| BrokerError::ConnectionClosed)?
    }

    /// Drops the subscription to `topic`.
    ///
    /// # Errors
    ///
    /// Returns a connection error if the serving broker is unreachable.
    pub async fn unsubscribe(&mut self, topic: &str) -> Result<(), BrokerError> {
        let (ack, done) = tokio::sync::oneshot::channel();
        self.commands_tx
            .send(Command::Unsubscribe { topic: topic.to_string(), ack })
            .map_err(|_| BrokerError::ConnectionClosed)?;
        done.await.map_err(|_| BrokerError::ConnectionClosed)?
    }

    /// The region a topic is currently subscribed at, if any.
    pub fn subscribed_region(&self, topic: &str) -> Option<RegionId> {
        self.subscriptions.lock().get(topic).map(|&(r, _)| RegionId(r as u8))
    }

    /// Waits for the next delivery.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::ConnectionClosed`] when the steering actor
    /// has terminated.
    pub async fn next_delivery(&mut self) -> Result<Delivery, BrokerError> {
        self.deliveries_rx.recv().await.ok_or(BrokerError::ConnectionClosed)
    }
}

struct SubscriberActor {
    links: Links,
    events_rx: mpsc::UnboundedReceiver<Event>,
    commands_rx: mpsc::UnboundedReceiver<Command>,
    deliveries_tx: mpsc::UnboundedSender<Delivery>,
    subscriptions: Arc<Mutex<HashMap<String, (u16, String)>>>,
}

impl SubscriberActor {
    async fn run(mut self) {
        loop {
            tokio::select! {
                command = self.commands_rx.recv() => match command {
                    Some(Command::Subscribe { topic, filter, ack }) => {
                        let _ = ack.send(self.subscribe(&topic, filter).await);
                    }
                    Some(Command::Unsubscribe { topic, ack }) => {
                        let _ = ack.send(self.unsubscribe(&topic).await);
                    }
                    None => break, // handle dropped
                },
                event = self.events_rx.recv() => match event {
                    Some(Event::Delivery(delivery)) => {
                        if self.deliveries_tx.send(delivery).is_err() {
                            break;
                        }
                    }
                    Some(Event::Config { topic }) => {
                        // Steering failures (unreachable broker) leave the
                        // old subscription in place; the next update
                        // retries.
                        let _ = self.handle_config_update(&topic).await;
                    }
                    Some(Event::Disconnected { region }) => {
                        // Drop the dead handle so the next use reconnects.
                        self.links.conns.remove(&region);
                    }
                    None => break,
                },
            }
        }
    }

    async fn subscribe(&mut self, topic: &str, filter: String) -> Result<(), BrokerError> {
        let config = self.links.config_for(topic);
        let region = self.links.closest_serving(config.mask);
        let outbound = self.links.connect(region).await?;
        outbound.send(&Frame::Subscribe { topic: topic.to_string(), filter: filter.clone() });
        self.subscriptions.lock().insert(topic.to_string(), (region, filter));
        Ok(())
    }

    async fn unsubscribe(&mut self, topic: &str) -> Result<(), BrokerError> {
        let entry = self.subscriptions.lock().remove(topic);
        if let Some((region, _)) = entry {
            let outbound = self.links.connect(region).await?;
            outbound.send(&Frame::Unsubscribe { topic: topic.to_string() });
        }
        Ok(())
    }

    async fn handle_config_update(&mut self, topic: &str) -> Result<(), BrokerError> {
        let (current, filter) = match self.subscriptions.lock().get(topic) {
            Some((region, filter)) => (*region, filter.clone()),
            None => return Ok(()), // not subscribed to this topic
        };
        let config = self.links.config_for(topic);
        let target = self.links.closest_serving(config.mask);
        if target == current {
            return Ok(());
        }
        // Make before break: subscribe at the new region first, carrying
        // the same content filter.
        let new_outbound = self.links.connect(target).await?;
        new_outbound.send(&Frame::Subscribe { topic: topic.to_string(), filter: filter.clone() });
        if let Ok(old_outbound) = self.links.connect(current).await {
            old_outbound.send(&Frame::Unsubscribe { topic: topic.to_string() });
        }
        self.subscriptions.lock().insert(topic.to_string(), (target, filter));
        Ok(())
    }
}

/// A publishing client. See the module docs for the steering rules.
#[derive(Debug)]
pub struct PublisherClient {
    links: Links,
    events_rx: mpsc::UnboundedReceiver<Event>,
}

impl PublisherClient {
    /// Creates a publisher handle. Connections are opened lazily on the
    /// first publish touching each region.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownRegion`] if `config` lists no regions.
    pub fn new(config: ClientConfig) -> Result<Self, BrokerError> {
        config.validate()?;
        let (events_tx, events_rx) = mpsc::unbounded_channel();
        Ok(PublisherClient { links: Links::new(config, Role::Publisher, events_tx), events_rx })
    }

    /// Publishes `payload` on `topic`, steering by the topic's current
    /// configuration: to every serving region under direct delivery, to
    /// the closest serving region under routed delivery.
    ///
    /// Returns the number of regions the publication was sent to.
    ///
    /// # Errors
    ///
    /// Returns a connection error if a serving broker is unreachable.
    pub async fn publish(
        &mut self,
        topic: &str,
        payload: impl Into<Bytes>,
    ) -> Result<usize, BrokerError> {
        self.publish_with_headers(topic, &Headers::new(), payload).await
    }

    /// Publishes `payload` on `topic` with content headers attached, so
    /// filtered subscribers (see
    /// [`SubscriberClient::subscribe_filtered`]) can match on them.
    ///
    /// Returns the number of regions the publication was sent to.
    ///
    /// # Errors
    ///
    /// Returns a connection error if a serving broker is unreachable.
    pub async fn publish_with_headers(
        &mut self,
        topic: &str,
        headers: &Headers,
        payload: impl Into<Bytes>,
    ) -> Result<usize, BrokerError> {
        self.drain_events();
        let payload = payload.into();
        let config = self.links.config_for(topic);
        let publisher_id = self.links.config.client_id;
        let headers_json = if headers.is_empty() { String::new() } else { headers.to_json() };
        let frame = move |payload: Bytes, single_target: bool| Frame::Publish {
            topic: topic.to_string(),
            publisher: publisher_id,
            publish_micros: now_micros(),
            single_target,
            headers: headers_json.clone(),
            payload,
        };
        match config.mode {
            WireMode::Routed => {
                let region = self.links.closest_serving(config.mask);
                let outbound = self.links.connect(region).await?;
                outbound.send(&frame(payload, true));
                Ok(1)
            }
            WireMode::Direct => {
                let mut sent = 0;
                let message = frame(payload, false);
                for region in 0..self.links.n_regions() as u16 {
                    if config.mask & (1u32 << region) == 0 {
                        continue;
                    }
                    let outbound = self.links.connect(region).await?;
                    outbound.send(&message);
                    sent += 1;
                }
                Ok(sent)
            }
        }
    }

    /// The configuration this publisher currently holds for a topic.
    pub fn config_for(&self, topic: &str) -> (u32, WireMode) {
        let config = self.links.config_for(topic);
        (config.mask, config.mode)
    }

    /// Applies any queued configuration updates without blocking.
    pub fn drain_events(&mut self) {
        while let Ok(event) = self.events_rx.try_recv() {
            // Config updates already landed in the shared map; Delivery
            // events cannot occur on a publisher connection.
            let _ = event;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config(latencies: Vec<f64>) -> ClientConfig {
        let n = latencies.len();
        ClientConfig {
            client_id: 1,
            region_addrs: (0..n)
                .map(|i| SocketAddr::from(([127, 0, 0, 1], 10_000 + i as u16)))
                .collect(),
            latencies_ms: latencies,
            emulate_wan: false,
        }
    }

    #[test]
    fn closest_serving_respects_mask_and_latency() {
        let (tx, _rx) = mpsc::unbounded_channel();
        let links = Links::new(test_config(vec![30.0, 10.0, 20.0]), Role::Subscriber, tx);
        assert_eq!(links.closest_serving(0b111), 1);
        assert_eq!(links.closest_serving(0b101), 2);
        assert_eq!(links.closest_serving(0b001), 0);
    }

    #[test]
    fn default_topic_config_is_all_regions_routed() {
        let (tx, _rx) = mpsc::unbounded_channel();
        let links = Links::new(test_config(vec![1.0, 2.0]), Role::Publisher, tx);
        let config = links.config_for("unknown");
        assert_eq!(config.mask, 0b11);
        assert_eq!(config.mode, WireMode::Routed);
    }

    #[test]
    fn empty_region_list_rejected() {
        let config = ClientConfig::new(1, vec![]);
        assert!(SubscriberClient::new(config.clone()).is_err());
        assert!(PublisherClient::new(config).is_err());
    }

    #[test]
    fn delivery_latency_computation() {
        let delivery = Delivery {
            topic: "t".into(),
            publisher: 1,
            publish_micros: 1_000,
            received_micros: 43_500,
            headers: Headers::new(),
            payload: Bytes::new(),
        };
        assert!((delivery.latency_ms() - 42.5).abs() < 1e-9);
        // Clock skew never yields negative latency.
        let skewed = Delivery { received_micros: 0, ..delivery };
        assert_eq!(skewed.latency_ms(), 0.0);
    }

    #[test]
    fn missing_latencies_default_to_zero() {
        let mut config = test_config(vec![]);
        config.region_addrs =
            vec![SocketAddr::from(([127, 0, 0, 1], 1)), SocketAddr::from(([127, 0, 0, 1], 2))];
        let (tx, _rx) = mpsc::unbounded_channel();
        let links = Links::new(config, Role::Subscriber, tx);
        assert_eq!(links.closest_serving(0b10), 1);
        assert_eq!(links.closest_serving(0b11), 0);
    }
}
