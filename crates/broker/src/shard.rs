//! Topic-sharded subscription maps for the publish hot path.
//!
//! The seed broker funneled every publish through one global
//! `Mutex<HashMap<String, TopicState>>`: concurrent publishes to
//! *different* topics still contended on the same lock, and the lock
//! was held while snapshotting the fan-out set. This module replaces
//! that map with `N` independent shards. A topic is routed to a shard
//! by a stable FNV-1a hash of its name, so:
//!
//! * publishes to topics on different shards never touch the same lock,
//! * a topic's subscribers always live on exactly one shard (routing is
//!   total and deterministic — see `tests/shard_properties.rs`),
//! * per-shard publish counters come for free, feeding the
//!   `multipub_broker_shard_publishes_total` metric.
//!
//! The container is generic over the subscriber entry type so the loom
//! model in `tests/loom_models.rs` can instantiate it with a plain test
//! payload while the broker instantiates it with its `SubEntry`
//! (client id + filter + outbound handle). Interior locking goes
//! through [`crate::sync`], which swaps `parking_lot` for `loom` under
//! `RUSTFLAGS="--cfg loom"`.

use std::collections::HashMap;

use crate::sync::{AtomicU64, Mutex, Ordering};

/// Upper bound on the shard count; requests beyond this are clamped.
///
/// Guards against a typo'd `--shards 1000000` allocating a million
/// mutexes — beyond ~4× the core count extra shards only add memory,
/// never parallelism.
pub const MAX_SHARDS: usize = 256;

/// Environment variable consulted when no explicit shard count is set.
///
/// Lets the existing integration suites pin the broker to the
/// single-shard reference configuration (`MULTIPUB_SHARDS=1`) without
/// threading a knob through every test helper.
pub const SHARDS_ENV: &str = "MULTIPUB_SHARDS";

/// Stable 64-bit FNV-1a hash of a topic name.
///
/// Hand-rolled rather than `std::hash::DefaultHasher` because shard
/// routing must be deterministic across processes and Rust versions:
/// the committed proptests pin concrete hash values, and operators can
/// predict shard placement from the topic name alone.
#[must_use]
pub fn topic_hash(topic: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in topic.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Shard index for `topic` in a map of `shard_count` shards.
///
/// Total for every `(topic, shard_count)` pair: a `shard_count` of zero
/// is treated as one so the result is always a valid index.
#[must_use]
pub fn shard_index(topic: &str, shard_count: usize) -> usize {
    (topic_hash(topic) % shard_count.max(1) as u64) as usize
}

/// Resolve the effective shard count for a broker.
///
/// Precedence: an explicit builder/CLI value, then the
/// [`SHARDS_ENV`] environment variable, then
/// `std::thread::available_parallelism()` floored at 2 so the
/// encode-once zero-copy path is the default even on single-core
/// hosts. The result is clamped to `1..=`[`MAX_SHARDS`].
///
/// Shard count 1 is special: it is the *reference configuration* that
/// preserves the seed broker's exact data-path cost model
/// (per-subscriber encode, frame-at-a-time socket writes) for
/// apples-to-apples benchmarking — see DESIGN.md §11.
#[must_use]
pub fn resolve_shard_count(explicit: Option<usize>) -> usize {
    explicit.or_else(shard_count_from_env).unwrap_or_else(default_shard_count).clamp(1, MAX_SHARDS)
}

fn shard_count_from_env() -> Option<usize> {
    std::env::var(SHARDS_ENV).ok()?.trim().parse::<usize>().ok().filter(|count| *count > 0)
}

fn default_shard_count() -> usize {
    std::thread::available_parallelism().map(usize::from).unwrap_or(1).max(2)
}

/// One shard: the slice of the topic space hashing to this index, plus
/// a publish counter updated without taking the map lock.
#[derive(Debug)]
struct Shard<E> {
    /// topic → (connection id → subscriber entry). All shards share one
    /// rank: a thread never holds two shard guards at once (the sweeps
    /// visit shards one at a time), and the equal rank makes the witness
    /// enforce exactly that. lock:rank(broker.shard_topics, 70)
    topics: Mutex<HashMap<String, HashMap<u64, E>>>,
    publishes: AtomicU64,
}

impl<E> Shard<E> {
    fn new() -> Self {
        Shard {
            topics: Mutex::new(70, "broker.shard_topics", HashMap::new()),
            publishes: AtomicU64::new(0),
        }
    }
}

/// Topic-sharded subscription registry.
///
/// Keys are `(topic, connection id)`; the entry type `E` carries
/// whatever the caller needs at fan-out time (the broker stores its
/// `SubEntry`). All operations lock only the single shard that owns
/// the topic, except the whole-map sweeps ([`Self::remove_conn`],
/// [`Self::topics_snapshot`]) which visit shards one at a time and
/// never hold two shard locks at once.
#[derive(Debug)]
pub struct ShardedTopics<E> {
    shards: Box<[Shard<E>]>,
}

impl<E> ShardedTopics<E> {
    /// Create a registry with `shard_count` shards (floored at one).
    #[must_use]
    pub fn new(shard_count: usize) -> Self {
        let count = shard_count.clamp(1, MAX_SHARDS);
        let shards: Vec<Shard<E>> = (0..count).map(|_| Shard::new()).collect();
        ShardedTopics { shards: shards.into_boxed_slice() }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard index owning `topic`.
    #[must_use]
    pub fn shard_for(&self, topic: &str) -> usize {
        shard_index(topic, self.shards.len())
    }

    fn shard(&self, topic: &str) -> &Shard<E> {
        let idx = self.shard_for(topic);
        // lint:allow(indexing) shard_for is hash % len with len >= 1, always in bounds
        &self.shards[idx]
    }

    /// Register `conn_id` on `topic`, replacing any previous entry for
    /// the same connection (re-subscribing updates the filter).
    pub fn insert(&self, topic: &str, conn_id: u64, entry: E) {
        let mut topics = self.shard(topic).topics.lock();
        topics.entry(topic.to_string()).or_default().insert(conn_id, entry);
    }

    /// Remove `conn_id` from `topic`. Returns whether an entry existed.
    /// Drops the topic's map entirely once its last subscriber leaves.
    pub fn remove(&self, topic: &str, conn_id: u64) -> bool {
        let mut topics = self.shard(topic).topics.lock();
        let Some(subs) = topics.get_mut(topic) else { return false };
        let removed = subs.remove(&conn_id).is_some();
        if subs.is_empty() {
            topics.remove(topic);
        }
        removed
    }

    /// Remove `conn_id` from every topic on every shard (connection
    /// teardown). Locks are taken one shard at a time.
    pub fn remove_conn(&self, conn_id: u64) {
        for shard in self.shards.iter() {
            let mut topics = shard.topics.lock();
            topics.retain(|_, subs| {
                subs.remove(&conn_id);
                !subs.is_empty()
            });
        }
    }

    /// Record a publish routed to `topic`'s shard; returns the shard
    /// index. Lock-free: touches only the shard's atomic counter.
    pub fn note_publish(&self, topic: &str) -> usize {
        let idx = self.shard_for(topic);
        self.shard(topic).publishes.fetch_add(1, Ordering::Relaxed);
        idx
    }

    /// Per-shard publish counts, indexed by shard.
    #[must_use]
    pub fn publish_counts(&self) -> Vec<u64> {
        self.shards.iter().map(|shard| shard.publishes.load(Ordering::Relaxed)).collect()
    }
}

impl<E: Clone> ShardedTopics<E> {
    /// Snapshot `topic`'s subscriber set as `(conn_id, entry)` pairs.
    ///
    /// The clone happens under the shard lock but fan-out I/O does not:
    /// the caller works from the snapshot, so a subscriber registering
    /// concurrently with a publish either makes the snapshot (and
    /// receives the frame) or does not (and receives nothing) — never a
    /// partial delivery. The loom model pins down exactly this.
    #[must_use]
    pub fn snapshot(&self, topic: &str) -> Vec<(u64, E)> {
        let topics = self.shard(topic).topics.lock();
        match topics.get(topic) {
            Some(subs) => subs.iter().map(|(id, entry)| (*id, entry.clone())).collect(),
            None => Vec::new(),
        }
    }

    /// Snapshot every topic across all shards, sorted by topic name for
    /// deterministic reporting (`take_report`).
    #[must_use]
    pub fn topics_snapshot(&self) -> Vec<(String, Vec<(u64, E)>)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let topics = shard.topics.lock();
            for (topic, subs) in topics.iter() {
                let entries = subs.iter().map(|(id, entry)| (*id, entry.clone())).collect();
                out.push((topic.clone(), entries));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors; pins the hash across
        // Rust versions so shard placement never silently moves.
        assert_eq!(topic_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(topic_hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(topic_hash("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn shard_index_is_total_and_stable() {
        for count in 1..=16 {
            for topic in ["", "a", "news/sports", "θ-unicode"] {
                let idx = shard_index(topic, count);
                assert!(idx < count);
                assert_eq!(idx, shard_index(topic, count));
            }
        }
        assert_eq!(shard_index("anything", 0), 0);
    }

    #[test]
    fn resolve_prefers_explicit_and_clamps() {
        assert_eq!(resolve_shard_count(Some(4)), 4);
        assert_eq!(resolve_shard_count(Some(0)), 1);
        assert_eq!(resolve_shard_count(Some(MAX_SHARDS + 1)), MAX_SHARDS);
        assert!(resolve_shard_count(None) >= 1);
    }

    #[test]
    fn insert_snapshot_remove_roundtrip() {
        let map: ShardedTopics<&'static str> = ShardedTopics::new(4);
        map.insert("news", 1, "alpha");
        map.insert("news", 2, "beta");
        map.insert("weather", 1, "gamma");

        let mut news = map.snapshot("news");
        news.sort();
        assert_eq!(news, vec![(1, "alpha"), (2, "beta")]);
        assert_eq!(map.snapshot("weather"), vec![(1, "gamma")]);
        assert!(map.snapshot("missing").is_empty());

        assert!(map.remove("news", 1));
        assert!(!map.remove("news", 1));
        assert_eq!(map.snapshot("news"), vec![(2, "beta")]);

        map.remove_conn(2);
        assert!(map.snapshot("news").is_empty());
        assert_eq!(map.snapshot("weather"), vec![(1, "gamma")]);
    }

    #[test]
    fn reinsert_replaces_filter_entry() {
        let map: ShardedTopics<u32> = ShardedTopics::new(2);
        map.insert("t", 7, 1);
        map.insert("t", 7, 2);
        assert_eq!(map.snapshot("t"), vec![(7, 2)]);
    }

    #[test]
    fn publish_counts_track_per_shard() {
        let map: ShardedTopics<u8> = ShardedTopics::new(3);
        let idx = map.note_publish("hot-topic");
        map.note_publish("hot-topic");
        let counts = map.publish_counts();
        assert_eq!(counts.len(), 3);
        assert_eq!(counts.iter().sum::<u64>(), 2);
        assert_eq!(counts.get(idx).copied(), Some(2));
    }

    #[test]
    fn topics_snapshot_is_sorted() {
        let map: ShardedTopics<u8> = ShardedTopics::new(8);
        for topic in ["zebra", "apple", "mango"] {
            map.insert(topic, 1, 0);
        }
        let names: Vec<String> = map.topics_snapshot().into_iter().map(|(t, _)| t).collect();
        assert_eq!(names, vec!["apple", "mango", "zebra"]);
    }
}
