//! At-least-once delivery state: per-publisher dedup windows, the
//! retained last-value store and the per-(client, topic) unacked
//! delivery buffers.
//!
//! QoS 1 publishes carry a `(publisher, seq)` pair. The broker's
//! [`DedupWindow`] makes retransmits idempotent: the first sighting of a
//! sequence number fans out and is acked, every later sighting is
//! answered with a fresh `PubAck` but dropped before the fan-out. On the
//! subscriber side [`QosState`] records each QoS 1 delivery until the
//! subscriber's `DeliverAck` trims it; a reconnecting subscriber gets
//! the surviving entries replayed (see DESIGN.md §13). All of this state
//! is in-memory and bounded — the dedup window and unacked buffers are
//! capped at the configured window size per key.

use crate::sync::Mutex;
use bytes::Bytes;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicI64, Ordering};

/// Default dedup-window span (sequence numbers remembered per
/// publisher) and unacked-delivery bound per `(client, topic)`.
pub const DEFAULT_DEDUP_WINDOW: usize = 1024;

/// A bounded sliding bitmap over one publisher's sequence numbers.
///
/// Tracks which of the most recent `window` sequence numbers have been
/// seen. Sequence numbers start at 1 and are expected to be roughly
/// monotonic; anything older than `highest - window` is conservatively
/// treated as a duplicate (at-least-once permits the false positive
/// only for messages long since acked, since a publisher never has more
/// than `window` unacked sequences outstanding when sized accordingly).
#[derive(Debug, Clone)]
pub struct DedupWindow {
    /// Highest sequence number observed so far (0 = none yet).
    highest: u64,
    /// Ring bitmap: bit `seq % capacity` records whether `seq` was seen,
    /// valid for `highest - capacity < seq <= highest`.
    bits: Vec<u64>,
    /// Number of sequence slots in `bits` (multiple of 64).
    capacity: u64,
}

impl DedupWindow {
    /// Creates a window remembering at least `window` recent sequence
    /// numbers (rounded up to a multiple of 64).
    ///
    /// # Panics
    ///
    /// Panics when `window` is zero.
    #[must_use]
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "dedup window must be at least 1");
        let words = window.div_ceil(64);
        DedupWindow { highest: 0, bits: vec![0; words], capacity: (words * 64) as u64 }
    }

    /// Number of sequence slots this window tracks.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Records a sighting of `seq`; returns `true` when this is the
    /// first time it has been seen (the caller should process the
    /// message) and `false` for duplicates. `seq == 0` marks
    /// unsequenced traffic and is always fresh.
    pub fn observe(&mut self, seq: u64) -> bool {
        if seq == 0 {
            return true;
        }
        if seq > self.highest {
            // Advancing: clear the slots for every skipped sequence so
            // stale bits from `capacity` generations ago cannot alias.
            let gap = seq - self.highest;
            if gap >= self.capacity || self.highest == 0 {
                self.bits.fill(0);
            } else {
                for s in (self.highest + 1)..=seq {
                    self.clear(s);
                }
            }
            self.highest = seq;
            self.set(seq);
            return true;
        }
        if self.highest - seq >= self.capacity {
            // Fell off the window: too old to distinguish, treat as dup.
            return false;
        }
        if self.get(seq) {
            return false;
        }
        self.set(seq);
        true
    }

    fn slot(&self, seq: u64) -> (usize, u64) {
        let bit = seq % self.capacity;
        ((bit / 64) as usize, 1u64 << (bit % 64))
    }

    fn get(&self, seq: u64) -> bool {
        let (word, mask) = self.slot(seq);
        self.bits.get(word).is_some_and(|w| w & mask != 0)
    }

    fn set(&mut self, seq: u64) {
        let (word, mask) = self.slot(seq);
        if let Some(w) = self.bits.get_mut(word) {
            *w |= mask;
        }
    }

    fn clear(&mut self, seq: u64) {
        let (word, mask) = self.slot(seq);
        if let Some(w) = self.bits.get_mut(word) {
            *w &= !mask;
        }
    }
}

/// A topic's retained last value, replayed to new subscribers.
#[derive(Debug, Clone)]
pub struct RetainedMessage {
    /// Origin publisher id.
    pub publisher: u64,
    /// Origin publisher sequence number (`0` for QoS 0 retains).
    pub seq: u64,
    /// QoS of the originating publish.
    pub qos: u8,
    /// Publisher-side timestamp (microseconds).
    pub publish_micros: u64,
    /// JSON-encoded content headers, empty when none.
    pub headers: String,
    /// Message payload (never empty — an empty payload clears).
    pub payload: Bytes,
}

/// One QoS 1 delivery awaiting a subscriber's `DeliverAck`.
#[derive(Debug, Clone)]
pub struct UnackedDelivery {
    /// Origin publisher id.
    pub publisher: u64,
    /// Origin publisher sequence number.
    pub seq: u64,
    /// Publisher-side timestamp (microseconds).
    pub publish_micros: u64,
    /// JSON-encoded content headers, empty when none.
    pub headers: String,
    /// Message payload.
    pub payload: Bytes,
}

/// Broker-side at-least-once state: dedup windows keyed by origin
/// publisher, the retained store keyed by topic, and unacked QoS 1
/// deliveries keyed by `(subscriber client id, topic)`.
#[derive(Debug)]
pub struct QosState {
    window: usize,
    retain_enabled: bool,
    dedup: Mutex<HashMap<u64, DedupWindow>>, // lock:rank(qos.dedup, 74)
    retained: Mutex<HashMap<String, RetainedMessage>>, // lock:rank(qos.retained, 75)
    unacked: Mutex<HashMap<(u64, String), VecDeque<UnackedDelivery>>>, // lock:rank(qos.unacked, 76)
    /// Total unacked deliveries across all keys, mirrored into the
    /// `multipub_broker_unacked_depth` gauge by the broker.
    depth: AtomicI64,
}

impl QosState {
    /// Creates the state with the given per-key window bound and
    /// whether retained messages are stored at all.
    #[must_use]
    pub fn new(window: usize, retain_enabled: bool) -> Self {
        assert!(window > 0, "dedup window must be at least 1");
        QosState {
            window,
            retain_enabled,
            dedup: Mutex::new(74, "qos.dedup", HashMap::new()),
            retained: Mutex::new(75, "qos.retained", HashMap::new()),
            unacked: Mutex::new(76, "qos.unacked", HashMap::new()),
            depth: AtomicI64::new(0),
        }
    }

    /// The configured window size (dedup span and unacked bound).
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Whether this broker stores retained messages.
    #[must_use]
    pub fn retain_enabled(&self) -> bool {
        self.retain_enabled
    }

    /// Records a `(publisher, seq)` sighting; `true` means first
    /// sighting (process the message), `false` means duplicate.
    pub fn observe(&self, publisher: u64, seq: u64) -> bool {
        if seq == 0 {
            return true;
        }
        self.dedup
            .lock()
            .entry(publisher)
            .or_insert_with(|| DedupWindow::new(self.window))
            .observe(seq)
    }

    /// Stores (or, for an empty payload, clears) a topic's retained
    /// value. No-op unless retention is enabled.
    pub fn store_retained(&self, topic: &str, message: RetainedMessage) {
        if !self.retain_enabled {
            return;
        }
        let mut retained = self.retained.lock();
        if message.payload.is_empty() {
            retained.remove(topic);
        } else {
            retained.insert(topic.to_string(), message);
        }
    }

    /// The topic's retained value, if retention is enabled and one is
    /// stored.
    #[must_use]
    pub fn retained(&self, topic: &str) -> Option<RetainedMessage> {
        self.retained.lock().get(topic).cloned()
    }

    /// Records a QoS 1 delivery to `client_id` pending its ack. The
    /// per-key buffer is bounded by the window size: the oldest entry is
    /// dropped when full (matching the dedup window's span — a slower
    /// subscriber's redelivery horizon is the same as the dedup
    /// horizon).
    pub fn track_unacked(&self, client_id: u64, topic: &str, delivery: UnackedDelivery) {
        let mut unacked = self.unacked.lock();
        let queue = unacked.entry((client_id, topic.to_string())).or_default();
        if queue.len() >= self.window {
            queue.pop_front();
            self.depth.fetch_sub(1, Ordering::Relaxed);
        }
        queue.push_back(delivery);
        self.depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Trims the entry matching a subscriber's `DeliverAck`.
    pub fn ack(&self, client_id: u64, topic: &str, publisher: u64, seq: u64) {
        let mut unacked = self.unacked.lock();
        let Some(queue) = unacked.get_mut(&(client_id, topic.to_string())) else {
            return;
        };
        let before = queue.len();
        queue.retain(|d| !(d.publisher == publisher && d.seq == seq));
        let removed = before - queue.len();
        if removed > 0 {
            self.depth.fetch_sub(removed as i64, Ordering::Relaxed);
        }
        if queue.is_empty() {
            unacked.remove(&(client_id, topic.to_string()));
        }
    }

    /// A snapshot of `client_id`'s unacked deliveries on `topic`, oldest
    /// first, for redelivery on (re)subscribe. Entries stay tracked
    /// until acked.
    #[must_use]
    pub fn unacked_snapshot(&self, client_id: u64, topic: &str) -> Vec<UnackedDelivery> {
        self.unacked
            .lock()
            .get(&(client_id, topic.to_string()))
            .map(|queue| queue.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Total unacked deliveries across every `(client, topic)` key.
    #[must_use]
    pub fn unacked_depth(&self) -> i64 {
        self.depth.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn first_sighting_is_fresh_then_duplicate() {
        let mut window = DedupWindow::new(16);
        assert!(window.observe(1));
        assert!(!window.observe(1));
        assert!(window.observe(2));
        assert!(!window.observe(2));
        assert!(!window.observe(1));
    }

    #[test]
    fn seq_zero_is_always_fresh() {
        let mut window = DedupWindow::new(16);
        assert!(window.observe(0));
        assert!(window.observe(0));
    }

    #[test]
    fn out_of_order_arrivals_within_window_are_fresh_once() {
        let mut window = DedupWindow::new(64);
        assert!(window.observe(10));
        assert!(window.observe(3));
        assert!(window.observe(7));
        assert!(!window.observe(3));
        assert!(!window.observe(10));
        assert!(window.observe(5));
    }

    #[test]
    fn sequences_older_than_the_window_count_as_duplicates() {
        let mut window = DedupWindow::new(64);
        assert!(window.observe(1));
        assert!(window.observe(100));
        // 100 - 64 = 36: anything at or below is out of the window.
        assert!(!window.observe(36));
        assert!(!window.observe(1));
        assert!(window.observe(37));
    }

    #[test]
    fn large_jumps_clear_stale_bits() {
        let mut window = DedupWindow::new(64);
        assert!(window.observe(1));
        // Jump by many multiples of the capacity: slot 1's ring position
        // aliases, but the skipped range must have been cleared.
        let aliased = 1 + 64 * 10;
        assert!(window.observe(aliased), "aliased slot must not read the stale bit");
        assert!(!window.observe(aliased));
    }

    #[test]
    fn capacity_rounds_up_to_words() {
        assert_eq!(DedupWindow::new(1).capacity(), 64);
        assert_eq!(DedupWindow::new(64).capacity(), 64);
        assert_eq!(DedupWindow::new(65).capacity(), 128);
        assert_eq!(DedupWindow::new(1000).capacity(), 1024);
    }

    #[test]
    #[should_panic(expected = "dedup window must be at least 1")]
    fn zero_window_panics() {
        let _ = DedupWindow::new(0);
    }

    proptest! {
        /// The bitmap agrees with an exact seen-set for every sequence
        /// inside the live window; outside it everything is a duplicate.
        #[test]
        fn window_matches_reference_model(
            seqs in proptest::collection::vec(1u64..500, 1..200),
        ) {
            let mut window = DedupWindow::new(128);
            let mut seen = std::collections::HashSet::new();
            let mut highest = 0u64;
            for seq in seqs {
                let fresh = window.observe(seq);
                highest = highest.max(seq);
                let in_window = highest - seq < window.capacity() as u64;
                if in_window {
                    prop_assert_eq!(fresh, seen.insert(seq), "seq {} (hi {})", seq, highest);
                } else {
                    prop_assert!(!fresh, "seq {} below window of {} must be dup", seq, highest);
                }
            }
        }
    }

    #[test]
    fn retained_store_roundtrip_and_clear() {
        let state = QosState::new(8, true);
        assert!(state.retained("ticks").is_none());
        state.store_retained(
            "ticks",
            RetainedMessage {
                publisher: 7,
                seq: 3,
                qos: 1,
                publish_micros: 1,
                headers: String::new(),
                payload: Bytes::from_static(b"px=101"),
            },
        );
        let got = state.retained("ticks").expect("stored");
        assert_eq!((got.publisher, got.seq), (7, 3));
        // Empty payload clears.
        state.store_retained(
            "ticks",
            RetainedMessage {
                publisher: 7,
                seq: 4,
                qos: 1,
                publish_micros: 2,
                headers: String::new(),
                payload: Bytes::new(),
            },
        );
        assert!(state.retained("ticks").is_none());
    }

    #[test]
    fn retained_store_disabled_is_a_no_op() {
        let state = QosState::new(8, false);
        state.store_retained(
            "ticks",
            RetainedMessage {
                publisher: 7,
                seq: 3,
                qos: 1,
                publish_micros: 1,
                headers: String::new(),
                payload: Bytes::from_static(b"x"),
            },
        );
        assert!(state.retained("ticks").is_none());
    }

    fn delivery(publisher: u64, seq: u64) -> UnackedDelivery {
        UnackedDelivery {
            publisher,
            seq,
            publish_micros: 0,
            headers: String::new(),
            payload: Bytes::from_static(b"m"),
        }
    }

    #[test]
    fn unacked_tracked_until_acked() {
        let state = QosState::new(8, false);
        state.track_unacked(1, "t", delivery(9, 1));
        state.track_unacked(1, "t", delivery(9, 2));
        assert_eq!(state.unacked_depth(), 2);
        assert_eq!(state.unacked_snapshot(1, "t").len(), 2);
        state.ack(1, "t", 9, 1);
        let rest = state.unacked_snapshot(1, "t");
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].seq, 2);
        state.ack(1, "t", 9, 2);
        assert_eq!(state.unacked_depth(), 0);
        assert!(state.unacked_snapshot(1, "t").is_empty());
        // Acking something unknown is harmless.
        state.ack(1, "t", 9, 99);
        state.ack(2, "other", 9, 1);
        assert_eq!(state.unacked_depth(), 0);
    }

    #[test]
    fn unacked_buffer_is_bounded_oldest_dropped() {
        let state = QosState::new(4, false);
        for seq in 1..=10 {
            state.track_unacked(1, "t", delivery(9, seq));
        }
        let kept = state.unacked_snapshot(1, "t");
        assert_eq!(kept.len(), 4);
        assert_eq!(kept.iter().map(|d| d.seq).collect::<Vec<_>>(), vec![7, 8, 9, 10]);
        assert_eq!(state.unacked_depth(), 4);
    }

    #[test]
    fn unacked_keys_are_per_client_and_topic() {
        let state = QosState::new(8, false);
        state.track_unacked(1, "a", delivery(9, 1));
        state.track_unacked(2, "a", delivery(9, 1));
        state.track_unacked(1, "b", delivery(9, 1));
        assert_eq!(state.unacked_depth(), 3);
        state.ack(1, "a", 9, 1);
        assert_eq!(state.unacked_depth(), 2);
        assert_eq!(state.unacked_snapshot(2, "a").len(), 1);
        assert_eq!(state.unacked_snapshot(1, "b").len(), 1);
    }

    #[test]
    fn observe_dedups_per_publisher() {
        let state = QosState::new(8, false);
        assert!(state.observe(1, 1));
        assert!(state.observe(2, 1), "publisher keys are independent");
        assert!(!state.observe(1, 1));
        assert!(state.observe(1, 0), "seq 0 is unsequenced traffic");
    }
}
