//! The MultiPub controller (paper §III.A4–A5).
//!
//! The controller connects to every region broker, periodically pulls the
//! region managers' interval reports, reassembles per-topic workloads
//! (using its client↔region latency knowledge), re-runs the optimizer for
//! each topic, and deploys improved configurations with
//! [`Frame::ConfigUpdate`] — which the brokers apply and fan out to their
//! clients.
//!
//! Client latencies are registered explicitly here ([`
//! Controller::register_client`]); in a production deployment the same
//! table would be fed by continuous out-of-band latency probes (the paper
//! measures pings from every region).

use crate::broker::{RegionReport, TopicReport};
use crate::conn::{read_frame, BrokerError};
use crate::delay::Outbound;
use crate::frame::{Frame, Role};
use bytes::BytesMut;
use multipub_core::assignment::Configuration;
use multipub_core::constraint::DeliveryConstraint;
use multipub_core::ids::RegionId;
use multipub_core::latency::InterRegionMatrix;
use multipub_core::mitigation::{mitigate, retract_unneeded, MitigationPolicy};
use multipub_core::optimizer::Optimizer;
use multipub_core::region::RegionSet;
use multipub_core::workload::{MessageBatch, Publisher, Subscriber, TopicWorkload};
use std::collections::{BTreeMap, HashMap};
use std::net::SocketAddr;
use std::time::Duration;
use tokio::net::TcpStream;
use tokio::sync::mpsc;

/// One per-topic decision taken by [`Controller::optimize_once`].
#[derive(Debug, Clone, PartialEq)]
pub struct TopicDecision {
    /// The topic.
    pub topic: String,
    /// The configuration selected (and deployed, unless unchanged).
    pub configuration: Configuration,
    /// Whether the topic's constraint is met by the selection.
    pub feasible: bool,
    /// Expected delivery-time percentile of the selection, ms.
    pub percentile_ms: f64,
    /// Expected interval cost of the selection, dollars.
    pub cost_dollars: f64,
    /// Whether a [`Frame::ConfigUpdate`] was actually sent (false when the
    /// chosen configuration was already installed).
    pub deployed: bool,
    /// Clients seen in the reports but unknown to the latency table; they
    /// were ignored during optimization.
    pub unknown_clients: usize,
    /// Regions force-added by the §IV.D straggler mitigation this round
    /// (already part of `configuration`).
    pub forced_regions: Vec<RegionId>,
}

struct BrokerLink {
    outbound: Outbound,
    reports_rx: mpsc::UnboundedReceiver<RegionReport>,
    snapshots_rx: mpsc::UnboundedReceiver<String>,
}

impl std::fmt::Debug for BrokerLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerLink").finish_non_exhaustive()
    }
}

/// The MultiPub controller. See the module docs.
#[derive(Debug)]
pub struct Controller {
    regions: RegionSet,
    inter: InterRegionMatrix,
    links: Vec<BrokerLink>,
    client_latencies: HashMap<u64, Vec<f64>>,
    constraints: HashMap<String, DeliveryConstraint>,
    default_constraint: DeliveryConstraint,
    installed: HashMap<String, Configuration>,
    report_timeout: Duration,
    mitigation: Option<MitigationPolicy>,
    /// Regions force-added per topic by the straggler scan, retracted when
    /// no longer needed.
    forced: HashMap<String, Vec<RegionId>>,
}

impl Controller {
    /// Connects to every region broker (one address per region, in region
    /// order). `default_constraint` applies to topics without an explicit
    /// one.
    ///
    /// # Errors
    ///
    /// Returns a connection error if any broker is unreachable, and
    /// [`BrokerError::UnknownRegion`] if the address count does not match
    /// the region set.
    pub async fn connect(
        regions: RegionSet,
        inter: InterRegionMatrix,
        broker_addrs: &[SocketAddr],
        default_constraint: DeliveryConstraint,
    ) -> Result<Self, BrokerError> {
        if broker_addrs.len() != regions.len() {
            return Err(BrokerError::UnknownRegion { region: broker_addrs.len() as u16 });
        }
        let mut links = Vec::with_capacity(broker_addrs.len());
        for addr in broker_addrs {
            let stream = TcpStream::connect(addr).await?;
            stream.set_nodelay(true).ok();
            let (mut read_half, write_half) = stream.into_split();
            let outbound = Outbound::spawn(write_half, Duration::ZERO);
            outbound.send(&Frame::Connect { client_id: 0, role: Role::Controller });
            let (reports_tx, reports_rx) = mpsc::unbounded_channel();
            let (snapshots_tx, snapshots_rx) = mpsc::unbounded_channel();
            tokio::spawn(async move {
                let mut buf = BytesMut::new();
                loop {
                    match read_frame(&mut read_half, &mut buf).await {
                        Ok(Some(Frame::StatsReport { json })) => {
                            if let Ok(report) = serde_json::from_str::<RegionReport>(&json) {
                                if reports_tx.send(report).is_err() {
                                    break;
                                }
                            }
                        }
                        Ok(Some(Frame::StatsSnapshot { json })) => {
                            if snapshots_tx.send(json).is_err() {
                                break;
                            }
                        }
                        Ok(Some(_)) => {}
                        Ok(None) | Err(_) => break,
                    }
                }
            });
            links.push(BrokerLink { outbound, reports_rx, snapshots_rx });
        }
        Ok(Controller {
            regions,
            inter,
            links,
            client_latencies: HashMap::new(),
            constraints: HashMap::new(),
            default_constraint,
            installed: HashMap::new(),
            report_timeout: Duration::from_secs(5),
            mitigation: None,
            forced: HashMap::new(),
        })
    }

    /// Enables the §IV.D straggler scan: after each optimization round the
    /// controller checks for clients whose *every* delivery exceeds the
    /// bound and force-adds regions that help them, retracting those
    /// regions once they stop being needed.
    pub fn enable_mitigation(&mut self, policy: MitigationPolicy) {
        self.mitigation = Some(policy);
    }

    /// Registers (or refreshes) a client's one-way latency row towards
    /// every region — the controller's copy of matrix `L` (paper §III.C).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the region count.
    pub fn register_client(&mut self, client_id: u64, latencies_ms: Vec<f64>) {
        assert_eq!(latencies_ms.len(), self.regions.len(), "latency row must cover every region");
        self.client_latencies.insert(client_id, latencies_ms);
    }

    /// Sets a topic's delivery constraint `<ratio_T, max_T>`.
    pub fn set_constraint(&mut self, topic: impl Into<String>, constraint: DeliveryConstraint) {
        self.constraints.insert(topic.into(), constraint);
    }

    /// Adjusts how long [`Controller::collect_reports`] waits per broker.
    pub fn set_report_timeout(&mut self, timeout: Duration) {
        self.report_timeout = timeout;
    }

    /// The configuration currently installed for a topic, if any.
    pub fn installed(&self, topic: &str) -> Option<Configuration> {
        self.installed.get(topic).copied()
    }

    /// Requests and gathers one interval report from every region manager.
    /// Brokers that fail to answer within the report timeout are skipped
    /// (their interval data simply misses this round).
    pub async fn collect_reports(&mut self) -> Vec<RegionReport> {
        for link in &self.links {
            link.outbound.send(&Frame::StatsRequest);
        }
        let mut reports = Vec::with_capacity(self.links.len());
        for link in &mut self.links {
            match tokio::time::timeout(self.report_timeout, link.reports_rx.recv()).await {
                Ok(Some(report)) => reports.push(report),
                Ok(None) | Err(_) => {}
            }
        }
        reports
    }

    /// Pulls every broker's `multipub-obs` metrics snapshot in-band
    /// ([`Frame::StatsSnapshotRequest`]), returning one JSON document per
    /// answering broker, in region order. Brokers that fail to answer
    /// within the report timeout are skipped.
    pub async fn collect_metrics(&mut self) -> Vec<String> {
        for link in &self.links {
            link.outbound.send(&Frame::StatsSnapshotRequest);
        }
        let mut snapshots = Vec::with_capacity(self.links.len());
        for link in &mut self.links {
            match tokio::time::timeout(self.report_timeout, link.snapshots_rx.recv()).await {
                Ok(Some(json)) => snapshots.push(json),
                Ok(None) | Err(_) => {}
            }
        }
        snapshots
    }

    /// One full control round: collect reports, rebuild per-topic
    /// workloads, optimize every topic, and deploy improved
    /// configurations.
    pub async fn optimize_once(&mut self) -> Vec<TopicDecision> {
        let _round_timer = multipub_obs::timer!("multipub_controller_round_ms");
        multipub_obs::counter!("multipub_controller_rounds_total").inc();
        let reports = self.collect_reports().await;
        let merged = merge_reports(&reports);
        let mut decisions = Vec::new();
        for (topic, report) in merged {
            let constraint =
                self.constraints.get(&topic).copied().unwrap_or(self.default_constraint);
            let (workload, unknown_clients) = self.build_workload(&report);
            if workload.publisher_count() == 0 || workload.subscriber_count() == 0 {
                continue; // nothing to optimize this interval
            }
            let optimizer = Optimizer::new(&self.regions, &self.inter, &workload)
                .expect("workload validated non-empty");
            let solution = optimizer.solve(&constraint);
            let mut configuration = solution.configuration();

            // §IV.D: help stragglers the percentile constraint cannot see.
            let mut forced_regions = Vec::new();
            if let Some(policy) = self.mitigation {
                let evaluator = optimizer.evaluator();
                // Retract previously forced regions that no longer help.
                let previous = self.forced.remove(&topic).unwrap_or_default();
                let retained = retract_unneeded(evaluator, configuration, &previous, &constraint);
                let mut assignment = configuration.assignment();
                for &region in &retained {
                    assignment = assignment.with(region);
                }
                configuration = Configuration::new(assignment, configuration.mode());
                // Scan for (new) stragglers and force-add helpful regions.
                let outcome = mitigate(evaluator, configuration, &constraint, &policy);
                configuration = outcome.configuration;
                forced_regions = retained;
                forced_regions.extend(outcome.added);
                if !forced_regions.is_empty() {
                    self.forced.insert(topic.clone(), forced_regions.clone());
                }
            }

            multipub_obs::counter!("multipub_controller_topics_evaluated_total").inc();
            if solution.is_feasible() {
                multipub_obs::counter!("multipub_controller_feasible_total").inc();
            } else {
                multipub_obs::counter!("multipub_controller_infeasible_total").inc();
            }
            if !forced_regions.is_empty() {
                multipub_obs::counter!("multipub_controller_mitigations_total").inc();
            }
            let deployed = self.installed.get(&topic) != Some(&configuration);
            if deployed {
                self.deploy(&topic, configuration);
                multipub_obs::counter!("multipub_controller_reconfigurations_total").inc();
            }
            multipub_obs::event!(
                Debug,
                "controller",
                msg = "topic decided",
                topic = topic,
                configuration = configuration,
                feasible = solution.is_feasible(),
                deployed = deployed,
                percentile_ms = solution.evaluation().percentile_ms(),
                unknown_clients = unknown_clients,
            );
            decisions.push(TopicDecision {
                topic,
                configuration,
                feasible: solution.is_feasible(),
                percentile_ms: solution.evaluation().percentile_ms(),
                cost_dollars: solution.evaluation().cost_dollars(),
                deployed,
                unknown_clients,
                forced_regions,
            });
        }
        multipub_obs::event!(
            Info,
            "controller",
            msg = "round complete",
            reports = reports.len(),
            topics = decisions.len(),
        );
        decisions
    }

    /// Pushes a configuration to every broker (which fan it out to their
    /// clients) and records it as installed.
    pub fn deploy(&mut self, topic: &str, configuration: Configuration) {
        let update = Frame::ConfigUpdate {
            topic: topic.to_string(),
            mask: configuration.assignment().mask(),
            mode: configuration.mode().into(),
        };
        for link in &self.links {
            link.outbound.send(&update);
        }
        self.installed.insert(topic.to_string(), configuration);
    }

    /// Builds the analytic workload for one topic from the merged report,
    /// returning it plus the number of clients skipped for lack of latency
    /// data.
    fn build_workload(&self, report: &TopicReport) -> (TopicWorkload, usize) {
        let mut workload = TopicWorkload::new(self.regions.len());
        let mut unknown = 0usize;
        for (&publisher_id, stats) in &report.publishers {
            match self.client_latencies.get(&publisher_id) {
                Some(latencies) => {
                    let publisher = Publisher::new(
                        multipub_core::ids::ClientId(publisher_id),
                        latencies.clone(),
                        MessageBatch::uniform(stats.messages, average_size(stats)),
                    )
                    .expect("registered latencies are valid");
                    workload.add_publisher(publisher).expect("publisher ids unique in report");
                }
                None => unknown += 1,
            }
        }
        for &subscriber_id in &report.subscribers {
            match self.client_latencies.get(&subscriber_id) {
                Some(latencies) => {
                    let subscriber = Subscriber::new(
                        multipub_core::ids::ClientId(subscriber_id),
                        latencies.clone(),
                    )
                    .expect("registered latencies are valid");
                    workload
                        .add_subscriber(subscriber)
                        .expect("subscriber ids deduplicated in report");
                }
                None => unknown += 1,
            }
        }
        (workload, unknown)
    }
}

fn average_size(stats: &crate::broker::PublisherStats) -> u64 {
    if stats.messages == 0 {
        0
    } else {
        stats.bytes / stats.messages
    }
}

/// Merges the per-region reports into one per-topic view.
///
/// Publisher statistics are **deduplicated by maximum**: under direct
/// delivery every serving region observes the same publications, and under
/// routed delivery only the first-hop region does — taking the per-region
/// maximum recovers the true per-publisher counts in both cases.
/// Subscriber lists are unioned (a subscriber is attached to exactly one
/// region at a time; unions also tolerate the reconfiguration window).
pub fn merge_reports(reports: &[RegionReport]) -> BTreeMap<String, TopicReport> {
    let mut merged: BTreeMap<String, TopicReport> = BTreeMap::new();
    for report in reports {
        for (topic, topic_report) in &report.topics {
            let entry = merged.entry(topic.clone()).or_default();
            for (&publisher, stats) in &topic_report.publishers {
                let slot = entry.publishers.entry(publisher).or_default();
                if stats.messages > slot.messages {
                    *slot = *stats;
                }
            }
            entry.subscribers.extend(topic_report.subscribers.iter().copied());
        }
    }
    for report in merged.values_mut() {
        report.subscribers.sort_unstable();
        report.subscribers.dedup();
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::PublisherStats;

    fn report(region: u16, topic: &str, pubs: &[(u64, u64, u64)], subs: &[u64]) -> RegionReport {
        let mut topics = BTreeMap::new();
        topics.insert(
            topic.to_string(),
            TopicReport {
                publishers: pubs
                    .iter()
                    .map(|&(id, messages, bytes)| (id, PublisherStats { messages, bytes }))
                    .collect(),
                subscribers: subs.to_vec(),
            },
        );
        RegionReport { region, topics }
    }

    #[test]
    fn merge_dedups_direct_mode_double_counting() {
        // Direct delivery: both regions saw the same 10 messages of P1.
        let reports = vec![
            report(0, "t", &[(1, 10, 10_000)], &[5]),
            report(1, "t", &[(1, 10, 10_000)], &[6]),
        ];
        let merged = merge_reports(&reports);
        let t = &merged["t"];
        assert_eq!(t.publishers[&1].messages, 10);
        assert_eq!(t.subscribers, vec![5, 6]);
    }

    #[test]
    fn merge_keeps_max_when_regions_disagree() {
        // Reconfiguration window: one region missed some messages.
        let reports =
            vec![report(0, "t", &[(1, 7, 7_000)], &[]), report(1, "t", &[(1, 10, 10_000)], &[])];
        let merged = merge_reports(&reports);
        assert_eq!(merged["t"].publishers[&1].messages, 10);
        assert_eq!(merged["t"].publishers[&1].bytes, 10_000);
    }

    #[test]
    fn merge_unions_topics_across_regions() {
        let reports =
            vec![report(0, "a", &[(1, 1, 100)], &[2]), report(1, "b", &[(3, 2, 200)], &[4])];
        let merged = merge_reports(&reports);
        assert_eq!(merged.len(), 2);
        assert!(merged.contains_key("a") && merged.contains_key("b"));
    }

    #[test]
    fn merge_dedups_subscribers_seen_twice() {
        // A subscriber mid-resubscription appears in two regions.
        let reports = vec![report(0, "t", &[], &[9, 5]), report(1, "t", &[], &[5])];
        let merged = merge_reports(&reports);
        assert_eq!(merged["t"].subscribers, vec![5, 9]);
    }

    #[test]
    fn average_size_handles_empty() {
        assert_eq!(average_size(&PublisherStats { messages: 0, bytes: 0 }), 0);
        assert_eq!(average_size(&PublisherStats { messages: 4, bytes: 1000 }), 250);
    }
}
