//! The MultiPub controller (paper §III.A4–A5).
//!
//! The controller connects to every region broker, periodically pulls the
//! region managers' interval reports, reassembles per-topic workloads
//! (using its client↔region latency knowledge), re-runs the optimizer for
//! each topic, and deploys improved configurations with
//! [`Frame::ConfigUpdate`] — which the brokers apply and fan out to their
//! clients.
//!
//! Client latencies are registered explicitly here ([`
//! Controller::register_client`]); in a production deployment the same
//! table would be fed by continuous out-of-band latency probes (the paper
//! measures pings from every region).
//!
//! ## Degraded mode
//!
//! The controller survives broker failures instead of requiring every
//! region up front: [`Controller::connect`] records unreachable brokers
//! and succeeds as long as *any* broker answers, dead links are re-dialed
//! at the start of every round, and regions whose broker is down (or has
//! missed consecutive report deadlines) are **excluded from the
//! optimizer's search space** via its allowed-regions facility — so new
//! configurations only ever place topics on regions that can actually
//! serve them. Excluded regions rejoin automatically once their broker
//! answers again.

use crate::broker::{RegionReport, TopicReport};
use crate::conn::{read_frame, BrokerError};
use crate::delay::Outbound;
use crate::frame::{Frame, Role};
use bytes::BytesMut;
use multipub_core::assignment::{AssignmentVector, Configuration, Epoch, VersionedConfiguration};
use multipub_core::constraint::DeliveryConstraint;
use multipub_core::ids::RegionId;
use multipub_core::latency::InterRegionMatrix;
use multipub_core::mitigation::{mitigate, retract_unneeded, MitigationPolicy};
use multipub_core::optimizer::Optimizer;
use multipub_core::region::RegionSet;
use multipub_core::workload::{MessageBatch, Publisher, Subscriber, TopicWorkload};
use std::collections::{BTreeMap, HashMap};
use std::net::SocketAddr;
use std::time::Duration;
use tokio::net::TcpStream;
use tokio::sync::mpsc;

/// One per-topic decision taken by [`Controller::optimize_once`].
#[derive(Debug, Clone, PartialEq)]
pub struct TopicDecision {
    /// The topic.
    pub topic: String,
    /// The configuration selected (and deployed, unless unchanged).
    pub configuration: Configuration,
    /// Whether the topic's constraint is met by the selection.
    pub feasible: bool,
    /// Expected delivery-time percentile of the selection, ms.
    pub percentile_ms: f64,
    /// Expected interval cost of the selection, dollars.
    pub cost_dollars: f64,
    /// Whether a [`Frame::ConfigUpdate`] was actually sent (false when the
    /// chosen configuration was already installed).
    pub deployed: bool,
    /// Clients seen in the reports but unknown to the latency table; they
    /// were ignored during optimization.
    pub unknown_clients: usize,
    /// Regions force-added by the §IV.D straggler mitigation this round
    /// (already part of `configuration`).
    pub forced_regions: Vec<RegionId>,
    /// Regions excluded from the optimizer's search space this round
    /// because their broker was unreachable (degraded mode).
    pub excluded_regions: Vec<RegionId>,
}

/// Capacity of each broker link's inbound report/snapshot channels. The
/// controller consumes one report per broker per round, so even a small
/// bound is generous; overflow (a wedged controller) drops the newest and
/// counts `multipub_controller_reports_dropped_total`.
const LINK_CHANNEL_CAPACITY: usize = 256;

struct BrokerLink {
    outbound: Outbound,
    reports_rx: mpsc::Receiver<RegionReport>,
    snapshots_rx: mpsc::Receiver<String>,
    /// Handover acks as `(topic, epoch, phase)` triples, consumed by the
    /// per-topic handover state machine.
    acks_rx: mpsc::Receiver<(String, u64, u8)>,
}

impl std::fmt::Debug for BrokerLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerLink").finish_non_exhaustive()
    }
}

/// One region's slot in the controller: the broker address is always
/// known; the link itself may be down.
struct RegionLink {
    addr: SocketAddr,
    /// `None` while the broker is unreachable.
    state: Option<BrokerLink>,
    /// Consecutive report deadlines this broker has missed while its
    /// connection looked alive. At [`MISS_THRESHOLD`] the region is
    /// treated as unreachable for optimization purposes.
    consecutive_misses: u32,
    /// Backoff episode across failed redials (`None` while connected).
    backoff: Option<crate::session::Backoff>,
    /// Earliest instant at which the next redial may be attempted.
    next_redial: Option<std::time::Instant>,
}

impl std::fmt::Debug for RegionLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegionLink")
            .field("addr", &self.addr)
            .field("connected", &self.state.is_some())
            .field("consecutive_misses", &self.consecutive_misses)
            .finish()
    }
}

impl RegionLink {
    fn is_alive(&self) -> bool {
        match &self.state {
            Some(link) => link.outbound.is_open() && self.consecutive_misses < MISS_THRESHOLD,
            None => false,
        }
    }
}

/// Consecutive missed report deadlines before a connected-looking broker
/// is excluded from optimization anyway (half-open TCP, overloaded peer).
const MISS_THRESHOLD: u32 = 2;

/// The MultiPub controller. See the module docs.
#[derive(Debug)]
pub struct Controller {
    regions: RegionSet,
    inter: InterRegionMatrix,
    links: Vec<RegionLink>,
    client_latencies: HashMap<u64, Vec<f64>>,
    constraints: HashMap<String, DeliveryConstraint>,
    default_constraint: DeliveryConstraint,
    installed: HashMap<String, VersionedConfiguration>,
    report_timeout: Duration,
    connect_timeout: Duration,
    /// Post-commit drain window: how long retiring regions keep
    /// bridge-forwarding stragglers before dropping the topic.
    handover_grace: Duration,
    /// Per-phase ack deadline; a phase that misses it aborts the
    /// handover and rolls back to the last committed epoch.
    handover_timeout: Duration,
    /// Backoff schedule between redial attempts on a dead broker link.
    redial_policy: crate::session::ReconnectPolicy,
    mitigation: Option<MitigationPolicy>,
    /// Regions force-added per topic by the straggler scan, retracted when
    /// no longer needed.
    forced: HashMap<String, Vec<RegionId>>,
}

/// Dials one broker and spawns its reader task, demultiplexing inbound
/// stats frames onto the link's channels.
async fn dial(addr: SocketAddr, connect_timeout: Duration) -> Result<BrokerLink, BrokerError> {
    let stream = match tokio::time::timeout(connect_timeout, TcpStream::connect(addr)).await {
        Ok(result) => result?,
        Err(_) => return Err(BrokerError::Timeout { what: "broker connect" }),
    };
    stream.set_nodelay(true).ok();
    let (mut read_half, write_half) = stream.into_split();
    let outbound = Outbound::spawn(write_half, Duration::ZERO);
    outbound.send(&Frame::Connect { client_id: 0, role: Role::Controller, policy: None });
    let (reports_tx, reports_rx) = mpsc::channel(LINK_CHANNEL_CAPACITY);
    let (snapshots_tx, snapshots_rx) = mpsc::channel(LINK_CHANNEL_CAPACITY);
    let (acks_tx, acks_rx) = mpsc::channel(LINK_CHANNEL_CAPACITY);
    tokio::spawn(async move {
        let mut buf = BytesMut::new();
        loop {
            match read_frame(&mut read_half, &mut buf).await {
                Ok(Some(Frame::StatsReport { json })) => {
                    if let Ok(report) = serde_json::from_str::<RegionReport>(&json) {
                        match reports_tx.try_send(report) {
                            Ok(()) => {}
                            Err(mpsc::error::TrySendError::Full(_)) => {
                                // Stale reports are worthless — shed rather
                                // than stall the reader behind a wedged
                                // controller.
                                multipub_obs::counter!(
                                    multipub_obs::metrics::CONTROLLER_REPORTS_DROPPED_TOTAL
                                )
                                .inc();
                            }
                            Err(mpsc::error::TrySendError::Closed(_)) => break,
                        }
                    }
                }
                Ok(Some(Frame::StatsSnapshot { json })) => match snapshots_tx.try_send(json) {
                    Ok(()) => {}
                    Err(mpsc::error::TrySendError::Full(_)) => {
                        multipub_obs::counter!(
                            multipub_obs::metrics::CONTROLLER_REPORTS_DROPPED_TOTAL
                        )
                        .inc();
                    }
                    Err(mpsc::error::TrySendError::Closed(_)) => break,
                },
                Ok(Some(Frame::HandoverAck { topic, epoch, phase })) => {
                    match acks_tx.try_send((topic, epoch, phase)) {
                        Ok(()) => {}
                        Err(mpsc::error::TrySendError::Full(_)) => {
                            multipub_obs::counter!(
                                multipub_obs::metrics::CONTROLLER_REPORTS_DROPPED_TOTAL
                            )
                            .inc();
                        }
                        Err(mpsc::error::TrySendError::Closed(_)) => break,
                    }
                }
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
    });
    Ok(BrokerLink { outbound, reports_rx, snapshots_rx, acks_rx })
}

impl Controller {
    /// Connects to every region broker (one address per region, in region
    /// order). `default_constraint` applies to topics without an explicit
    /// one.
    ///
    /// Unreachable brokers do **not** fail the call: their regions are
    /// recorded (see [`Controller::unreachable_regions`]), excluded from
    /// optimization, and re-dialed in the background at the start of every
    /// round until they answer.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownRegion`] if the address count does
    /// not match the region set, and the last connection error if *every*
    /// broker is unreachable — a controller with zero live region managers
    /// cannot do anything useful.
    pub async fn connect(
        regions: RegionSet,
        inter: InterRegionMatrix,
        broker_addrs: &[SocketAddr],
        default_constraint: DeliveryConstraint,
    ) -> Result<Self, BrokerError> {
        if broker_addrs.len() != regions.len() {
            return Err(BrokerError::UnknownRegion { region: broker_addrs.len() as u16 });
        }
        let connect_timeout = Duration::from_secs(2);
        let mut links = Vec::with_capacity(broker_addrs.len());
        let mut last_err = None;
        for (region, &addr) in broker_addrs.iter().enumerate() {
            let state = match dial(addr, connect_timeout).await {
                Ok(link) => Some(link),
                Err(e) => {
                    multipub_obs::event!(
                        Warn,
                        "controller",
                        msg = "broker unreachable at startup",
                        region = region,
                        error = e,
                    );
                    last_err = Some(e);
                    None
                }
            };
            links.push(RegionLink {
                addr,
                state,
                consecutive_misses: 0,
                backoff: None,
                next_redial: None,
            });
        }
        if links.iter().all(|l| l.state.is_none()) {
            return Err(last_err.unwrap_or(BrokerError::ConnectionClosed));
        }
        Ok(Controller {
            regions,
            inter,
            links,
            client_latencies: HashMap::new(),
            constraints: HashMap::new(),
            default_constraint,
            installed: HashMap::new(),
            report_timeout: Duration::from_secs(5),
            connect_timeout,
            handover_grace: Duration::from_millis(500),
            handover_timeout: Duration::from_secs(2),
            redial_policy: crate::session::ReconnectPolicy::default(),
            mitigation: None,
            forced: HashMap::new(),
        })
    }

    /// Regions whose broker link is currently down or degraded (missed
    /// [`MISS_THRESHOLD`] consecutive report deadlines). These regions are
    /// excluded from optimization until their broker answers again.
    pub fn unreachable_regions(&self) -> Vec<RegionId> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, link)| !link.is_alive())
            .map(|(region, _)| RegionId(region as u8))
            .collect()
    }

    /// Re-dials every dead broker link whose backoff delay has elapsed.
    /// Called automatically at the start of each
    /// [`Controller::optimize_once`] round; public so embedders driving
    /// [`Controller::collect_reports`] directly can recover links too.
    ///
    /// Attempts are spaced by the redial policy (see
    /// [`Controller::set_redial_policy`]); once a policy's attempt limit
    /// is exhausted the link keeps being retried at the cap cadence — a
    /// controller never permanently writes a region off.
    pub async fn ensure_links(&mut self) {
        for (region, link) in self.links.iter_mut().enumerate() {
            if let Some(state) = &link.state {
                if state.outbound.is_open() {
                    continue;
                }
                // The broker went away since last round; drop the stale
                // link so the reports channel cannot yield old data.
                link.state = None;
            }
            if let Some(at) = link.next_redial {
                if std::time::Instant::now() < at {
                    continue;
                }
            }
            multipub_obs::counter!(multipub_obs::metrics::CONTROLLER_LINK_REDIALS_TOTAL).inc();
            match dial(link.addr, self.connect_timeout).await {
                Ok(state) => {
                    // Replay every installed configuration at its
                    // **committed** epoch — never a half-applied one; a
                    // handover that aborted mid-prepare left `installed`
                    // untouched, so the replay is exactly the rollback
                    // target (DESIGN.md §15).
                    for (topic, versioned) in &self.installed {
                        let configuration = versioned.configuration();
                        state.outbound.send(&Frame::ConfigUpdate {
                            topic: topic.clone(),
                            mask: configuration.assignment().mask(),
                            mode: configuration.mode().into(),
                            epoch: versioned.epoch().get(),
                        });
                    }
                    link.state = Some(state);
                    link.consecutive_misses = 0;
                    link.backoff = None;
                    link.next_redial = None;
                    multipub_obs::event!(
                        Info,
                        "controller",
                        msg = "broker link re-established",
                        region = region,
                    );
                }
                Err(_) => {
                    let backoff = link
                        .backoff
                        .get_or_insert_with(|| self.redial_policy.backoff(region as u64));
                    let delay = backoff.next_delay().unwrap_or(self.redial_policy.cap);
                    link.next_redial = Some(std::time::Instant::now() + delay);
                }
            }
        }
    }

    /// Sets the backoff policy between redial attempts on dead broker
    /// links (default: 100 ms base, 10 s cap, no attempt limit).
    pub fn set_redial_policy(&mut self, policy: crate::session::ReconnectPolicy) {
        self.redial_policy = policy;
    }

    /// Enables the §IV.D straggler scan: after each optimization round the
    /// controller checks for clients whose *every* delivery exceeds the
    /// bound and force-adds regions that help them, retracting those
    /// regions once they stop being needed.
    pub fn enable_mitigation(&mut self, policy: MitigationPolicy) {
        self.mitigation = Some(policy);
    }

    /// Registers (or refreshes) a client's one-way latency row towards
    /// every region — the controller's copy of matrix `L` (paper §III.C).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the region count.
    pub fn register_client(&mut self, client_id: u64, latencies_ms: Vec<f64>) {
        assert_eq!(latencies_ms.len(), self.regions.len(), "latency row must cover every region");
        self.client_latencies.insert(client_id, latencies_ms);
    }

    /// Sets a topic's delivery constraint `<ratio_T, max_T>`.
    pub fn set_constraint(&mut self, topic: impl Into<String>, constraint: DeliveryConstraint) {
        self.constraints.insert(topic.into(), constraint);
    }

    /// Adjusts how long [`Controller::collect_reports`] waits per broker.
    pub fn set_report_timeout(&mut self, timeout: Duration) {
        self.report_timeout = timeout;
    }

    /// Adjusts how long each (re-)dial of a broker may take (default 2 s).
    pub fn set_connect_timeout(&mut self, timeout: Duration) {
        self.connect_timeout = timeout;
    }

    /// Adjusts the post-commit drain window during which retiring
    /// regions keep bridge-forwarding stragglers (default 500 ms).
    pub fn set_handover_grace(&mut self, grace: Duration) {
        self.handover_grace = grace;
    }

    /// Adjusts the per-phase ack deadline; a handover phase that misses
    /// it aborts and rolls back to the last committed epoch (default
    /// 2 s).
    pub fn set_handover_timeout(&mut self, timeout: Duration) {
        self.handover_timeout = timeout;
    }

    /// The configuration currently installed for a topic, if any.
    pub fn installed(&self, topic: &str) -> Option<Configuration> {
        self.installed.get(topic).map(|versioned| versioned.configuration())
    }

    /// The committed epoch of a topic's installed configuration, if any.
    /// Epochs minted by aborted handovers never appear here — `installed`
    /// only ever advances at a commit point.
    pub fn installed_epoch(&self, topic: &str) -> Option<u64> {
        self.installed.get(topic).map(|versioned| versioned.epoch().get())
    }

    /// Requests and gathers one interval report from every live region
    /// manager. Brokers that fail to answer within the report timeout are
    /// skipped (their interval data simply misses this round) and accrue a
    /// miss; a broker whose connection turns out closed is marked dead and
    /// re-dialed next round.
    pub async fn collect_reports(&mut self) -> Vec<RegionReport> {
        for link in &self.links {
            if let Some(state) = &link.state {
                state.outbound.send(&Frame::StatsRequest);
            }
        }
        let timeout = self.report_timeout;
        let mut reports = Vec::with_capacity(self.links.len());
        for link in &mut self.links {
            let Some(state) = &mut link.state else { continue };
            match tokio::time::timeout(timeout, state.reports_rx.recv()).await {
                Ok(Some(report)) => {
                    link.consecutive_misses = 0;
                    reports.push(report);
                }
                Ok(None) => {
                    // Reader task exited: the broker hung up.
                    link.state = None;
                }
                Err(_) => {
                    link.consecutive_misses += 1;
                    if !state.outbound.is_open() {
                        link.state = None;
                    }
                }
            }
        }
        reports
    }

    /// Pulls every live broker's `multipub-obs` metrics snapshot in-band
    /// ([`Frame::StatsSnapshotRequest`]), returning one JSON document per
    /// answering broker, in region order. Brokers that fail to answer
    /// within the report timeout are skipped; dead connections are marked
    /// for re-dial.
    pub async fn collect_metrics(&mut self) -> Vec<String> {
        for link in &self.links {
            if let Some(state) = &link.state {
                state.outbound.send(&Frame::StatsSnapshotRequest);
            }
        }
        let timeout = self.report_timeout;
        let mut snapshots = Vec::with_capacity(self.links.len());
        for link in &mut self.links {
            let Some(state) = &mut link.state else { continue };
            match tokio::time::timeout(timeout, state.snapshots_rx.recv()).await {
                Ok(Some(json)) => snapshots.push(json),
                Ok(None) => link.state = None,
                Err(_) => {
                    if !state.outbound.is_open() {
                        link.state = None;
                    }
                }
            }
        }
        snapshots
    }

    /// One full control round: recover dead broker links, collect
    /// reports, rebuild per-topic workloads, optimize every topic over
    /// the **reachable** regions, and deploy improved configurations.
    ///
    /// With every broker down the round is skipped entirely (no decisions,
    /// no deployments) — better a stale configuration than one derived
    /// from nothing.
    pub async fn optimize_once(&mut self) -> Vec<TopicDecision> {
        let _round_timer = multipub_obs::timer!(multipub_obs::metrics::CONTROLLER_ROUND_MS);
        multipub_obs::counter!(multipub_obs::metrics::CONTROLLER_ROUNDS_TOTAL).inc();
        self.ensure_links().await;
        let reports = self.collect_reports().await;

        // Degraded mode: optimize only over regions whose broker answers.
        let mut alive_mask = 0u32;
        for (region, link) in self.links.iter().enumerate() {
            if link.is_alive() {
                alive_mask |= 1u32 << region;
            }
        }
        let excluded = self.unreachable_regions();
        let Ok(allowed) = AssignmentVector::from_mask(alive_mask, self.regions.len()) else {
            multipub_obs::event!(
                Warn,
                "controller",
                msg = "every broker unreachable; skipping optimization round",
            );
            return Vec::new();
        };
        if !excluded.is_empty() {
            multipub_obs::counter!(multipub_obs::metrics::CONTROLLER_DEGRADED_ROUNDS_TOTAL).inc();
            multipub_obs::event!(
                Warn,
                "controller",
                msg = "optimizing in degraded mode",
                excluded = excluded.len(),
                alive_mask = format!("{alive_mask:#b}"),
            );
        }

        let merged = merge_reports(&reports);
        let mut decisions = Vec::new();
        for (topic, report) in merged {
            let constraint =
                self.constraints.get(&topic).copied().unwrap_or(self.default_constraint);
            let (workload, unknown_clients) = self.build_workload(&report);
            if workload.publisher_count() == 0 || workload.subscriber_count() == 0 {
                continue; // nothing to optimize this interval
            }
            let optimizer = Optimizer::new(&self.regions, &self.inter, &workload)
                // lint:allow(panic) the surrounding branch only runs for workloads the report loop already checked non-empty and dimension-matched
                .expect("workload validated non-empty")
                .with_allowed_regions(allowed);
            let solution = optimizer.solve(&constraint);
            let mut configuration = solution.configuration();

            // §IV.D: help stragglers the percentile constraint cannot see.
            let mut forced_regions = Vec::new();
            if let Some(policy) = self.mitigation {
                let evaluator = optimizer.evaluator();
                // Retract previously forced regions that no longer help —
                // or whose broker has since become unreachable.
                let previous = self.forced.remove(&topic).unwrap_or_default();
                let retained: Vec<RegionId> =
                    retract_unneeded(evaluator, configuration, &previous, &constraint)
                        .into_iter()
                        .filter(|&region| allowed.contains(region))
                        .collect();
                let mut assignment = configuration.assignment();
                for &region in &retained {
                    assignment = assignment.with(region);
                }
                configuration = Configuration::new(assignment, configuration.mode());
                // Scan for (new) stragglers and force-add helpful regions.
                // The scan considers every region; strip any force-added
                // region that cannot actually serve right now.
                let outcome = mitigate(evaluator, configuration, &constraint, &policy);
                let mut assignment = outcome.configuration.assignment();
                let mut added = Vec::new();
                for region in outcome.added {
                    if allowed.contains(region) {
                        added.push(region);
                    } else if let Some(stripped) = assignment.without(region) {
                        assignment = stripped;
                    }
                }
                configuration = Configuration::new(assignment, outcome.configuration.mode());
                forced_regions = retained;
                forced_regions.extend(added);
                if !forced_regions.is_empty() {
                    self.forced.insert(topic.clone(), forced_regions.clone());
                }
            }

            multipub_obs::counter!(multipub_obs::metrics::CONTROLLER_TOPICS_EVALUATED_TOTAL).inc();
            if solution.is_feasible() {
                multipub_obs::counter!(multipub_obs::metrics::CONTROLLER_FEASIBLE_TOTAL).inc();
            } else {
                multipub_obs::counter!(multipub_obs::metrics::CONTROLLER_INFEASIBLE_TOTAL).inc();
            }
            if !forced_regions.is_empty() {
                multipub_obs::counter!(multipub_obs::metrics::CONTROLLER_MITIGATIONS_TOTAL).inc();
            }
            let changed =
                self.installed.get(&topic).map(|v| v.configuration()) != Some(configuration);
            let deployed = if changed {
                // Live traffic may be steering by the old configuration:
                // run the make-before-break handover rather than a
                // fire-and-forget broadcast. A rolled-back handover
                // leaves the committed configuration in force.
                let committed = self.handover(&topic, configuration).await;
                if committed {
                    multipub_obs::counter!(
                        multipub_obs::metrics::CONTROLLER_RECONFIGURATIONS_TOTAL
                    )
                    .inc();
                }
                committed
            } else {
                false
            };
            multipub_obs::event!(
                Debug,
                "controller",
                msg = "topic decided",
                topic = topic,
                configuration = configuration,
                feasible = solution.is_feasible(),
                deployed = deployed,
                percentile_ms = solution.evaluation().percentile_ms(),
                unknown_clients = unknown_clients,
            );
            decisions.push(TopicDecision {
                topic,
                configuration,
                feasible: solution.is_feasible(),
                percentile_ms: solution.evaluation().percentile_ms(),
                cost_dollars: solution.evaluation().cost_dollars(),
                deployed,
                unknown_clients,
                forced_regions,
                excluded_regions: excluded.clone(),
            });
        }
        multipub_obs::event!(
            Info,
            "controller",
            msg = "round complete",
            reports = reports.len(),
            topics = decisions.len(),
        );
        decisions
    }

    /// The epoch the next configuration change of `topic` would commit
    /// at: one past the installed epoch, or `1` for a first install.
    fn next_versioned(&self, topic: &str, configuration: Configuration) -> VersionedConfiguration {
        match self.installed.get(topic) {
            Some(current) => current.succeeded_by(configuration),
            None => VersionedConfiguration::new(configuration, Epoch::INITIAL.next()),
        }
    }

    /// Pushes a configuration to every *live* broker (which fan it out to
    /// their clients) and records it as installed, minting the next
    /// epoch. Brokers whose link is down at deploy time are **deferred**:
    /// counted in `multipub_controller_config_deferred_total` and logged,
    /// and they pick the configuration up via the redial replay — until
    /// then their clients keep steering by the previous one, which is
    /// safe (at-least-once across config changes).
    ///
    /// This is the single-shot path, kept for embedders that manage
    /// their own traffic windows; [`Controller::optimize_once`] uses the
    /// make-before-break [`Controller::handover`] instead.
    pub fn deploy(&mut self, topic: &str, configuration: Configuration) {
        let versioned = self.next_versioned(topic, configuration);
        let update = Frame::ConfigUpdate {
            topic: topic.to_string(),
            mask: configuration.assignment().mask(),
            mode: configuration.mode().into(),
            epoch: versioned.epoch().get(),
        };
        for (region, link) in self.links.iter().enumerate() {
            let sent = match &link.state {
                Some(state) => state.outbound.send(&update),
                None => false,
            };
            if !sent {
                multipub_obs::counter!(multipub_obs::metrics::CONTROLLER_CONFIG_DEFERRED_TOTAL)
                    .inc();
                multipub_obs::event!(
                    Warn,
                    "controller",
                    msg = "config install deferred: broker link down",
                    region = region,
                    topic = topic,
                    epoch = versioned.epoch().get(),
                );
            }
        }
        self.installed.insert(topic.to_string(), versioned);
    }

    /// Runs the three-phase make-before-break handover for one topic
    /// (DESIGN.md §15): **prepare** every participating broker (old and
    /// new serving regions) so both sides bridge traffic, **commit**
    /// once all prepare acks are in (brokers fan the new epoch to
    /// clients, who re-steer), then let retiring regions **drain**
    /// stragglers for the grace window. A phase that misses its ack
    /// deadline — or a dead broker in the *new* serving set — aborts the
    /// handover and rolls back to the last committed epoch.
    ///
    /// Returns `true` when the new configuration committed, `false` when
    /// it was aborted (the previously committed configuration stays in
    /// force and `installed` is untouched).
    pub async fn handover(&mut self, topic: &str, configuration: Configuration) -> bool {
        multipub_obs::counter!(multipub_obs::metrics::CONTROLLER_HANDOVERS_TOTAL).inc();
        let versioned = self.next_versioned(topic, configuration);
        let epoch = versioned.epoch().get();
        let new_mask = configuration.assignment().mask();
        let old_mask =
            self.installed.get(topic).map(|v| v.configuration().assignment().mask()).unwrap_or(0);
        let participants = new_mask | old_mask;

        // Phase 1: prepare. New serving regions must all be reachable —
        // they are about to carry the topic. A dead *retiring* region is
        // skipped (deferred): it cannot lose messages it will never
        // receive, and the redial replay brings it to the committed
        // epoch when it returns.
        let prepare = Frame::HandoverPrepare {
            topic: topic.to_string(),
            mask: new_mask,
            mode: configuration.mode().into(),
            epoch,
        };
        let mut awaiting = 0u32;
        let mut dead_new_region = false;
        for (region, link) in self.links.iter().enumerate() {
            let bit = 1u32 << region;
            if participants & bit == 0 {
                continue;
            }
            let sent = match &link.state {
                Some(state) => state.outbound.send(&prepare),
                None => false,
            };
            if sent {
                awaiting |= bit;
            } else if new_mask & bit != 0 {
                dead_new_region = true;
                multipub_obs::event!(
                    Warn,
                    "controller",
                    msg = "handover target region unreachable",
                    region = region,
                    topic = topic,
                    epoch = epoch,
                );
            } else {
                multipub_obs::counter!(multipub_obs::metrics::CONTROLLER_CONFIG_DEFERRED_TOTAL)
                    .inc();
                multipub_obs::event!(
                    Warn,
                    "controller",
                    msg = "retiring region skipped in handover: broker link down",
                    region = region,
                    topic = topic,
                    epoch = epoch,
                );
            }
        }
        if dead_new_region {
            self.abort_handover(topic, epoch);
            return false;
        }
        let prepare_started = std::time::Instant::now();
        let acked = self.await_acks(topic, epoch, 0, awaiting).await;
        multipub_obs::histogram!(multipub_obs::metrics::CONTROLLER_HANDOVER_PREPARE_MS)
            .record(prepare_started.elapsed().as_secs_f64() * 1000.0);
        if acked != awaiting {
            // A participant died or timed out mid-prepare: no client has
            // re-steered yet, so rolling back is free.
            self.abort_handover(topic, epoch);
            return false;
        }

        // Commit point — irrevocable from here on. Record the committed
        // epoch first so a redial replay always carries the new
        // configuration, even to a broker that misses the commit frame.
        self.installed.insert(topic.to_string(), versioned);
        let grace_ms = self.handover_grace.as_millis().min(u128::from(u32::MAX)) as u32;
        let commit = Frame::HandoverCommit { topic: topic.to_string(), epoch, grace_ms };
        let mut commit_awaiting = 0u32;
        for (region, link) in self.links.iter().enumerate() {
            let bit = 1u32 << region;
            if awaiting & bit == 0 {
                continue;
            }
            if let Some(state) = &link.state {
                if state.outbound.send(&commit) {
                    commit_awaiting |= bit;
                }
            }
        }
        let commit_started = std::time::Instant::now();
        let commit_acked = self.await_acks(topic, epoch, 1, commit_awaiting).await;
        multipub_obs::histogram!(multipub_obs::metrics::CONTROLLER_HANDOVER_COMMIT_MS)
            .record(commit_started.elapsed().as_secs_f64() * 1000.0);
        // Missing commit acks are diagnostic only: the handover is
        // committed, and stragglers recover via the redial replay.
        if commit_acked != commit_awaiting {
            multipub_obs::event!(
                Warn,
                "controller",
                msg = "handover committed with missing commit acks",
                topic = topic,
                epoch = epoch,
                awaited = format!("{commit_awaiting:#b}"),
                acked = format!("{commit_acked:#b}"),
            );
        }
        multipub_obs::event!(
            Info,
            "controller",
            msg = "handover committed",
            topic = topic,
            epoch = epoch,
            mask = format!("{new_mask:#b}"),
        );
        true
    }

    /// Broadcasts a [`Frame::HandoverAbort`] for `(topic, epoch)` and
    /// counts the rollback. `installed` is deliberately untouched: the
    /// redial replay path then replays the *committed* epoch, never the
    /// half-applied one.
    fn abort_handover(&mut self, topic: &str, epoch: u64) {
        multipub_obs::counter!(multipub_obs::metrics::CONTROLLER_HANDOVER_ROLLBACKS_TOTAL).inc();
        let abort = Frame::HandoverAbort { topic: topic.to_string(), epoch };
        for link in &self.links {
            if let Some(state) = &link.state {
                state.outbound.send(&abort);
            }
        }
        multipub_obs::event!(
            Warn,
            "controller",
            msg = "handover aborted; committed epoch stays in force",
            topic = topic,
            epoch = epoch,
        );
    }

    /// Waits for a `(topic, epoch, phase)` handover ack from every
    /// region in `awaiting`, bounded by the handover timeout shared
    /// across the whole phase. Returns the mask of regions that acked.
    /// Acks from older handovers or other phases are drained and
    /// discarded — handovers run one at a time.
    async fn await_acks(&mut self, topic: &str, epoch: u64, phase: u8, awaiting: u32) -> u32 {
        let deadline = tokio::time::Instant::now() + self.handover_timeout;
        let mut acked = 0u32;
        for (region, link) in self.links.iter_mut().enumerate() {
            let bit = 1u32 << region;
            if awaiting & bit == 0 {
                continue;
            }
            let Some(state) = &mut link.state else { continue };
            loop {
                let now = tokio::time::Instant::now();
                if now >= deadline {
                    break;
                }
                match tokio::time::timeout(deadline - now, state.acks_rx.recv()).await {
                    Ok(Some((t, e, p))) => {
                        if t == topic && e == epoch && p == phase {
                            acked |= bit;
                            break;
                        }
                    }
                    // Reader exited (broker hung up) or deadline passed.
                    Ok(None) | Err(_) => break,
                }
            }
        }
        acked
    }

    /// Builds the analytic workload for one topic from the merged report,
    /// returning it plus the number of clients skipped for lack of latency
    /// data.
    fn build_workload(&self, report: &TopicReport) -> (TopicWorkload, usize) {
        let mut workload = TopicWorkload::new(self.regions.len());
        let mut unknown = 0usize;
        for (&publisher_id, stats) in &report.publishers {
            match self.client_latencies.get(&publisher_id) {
                Some(latencies) => {
                    let publisher = Publisher::new(
                        multipub_core::ids::ClientId(publisher_id),
                        latencies.clone(),
                        MessageBatch::uniform(stats.messages, average_size(stats)),
                    )
                    // lint:allow(panic) latency rows were length-checked against the region count when the client registered
                    .expect("registered latencies are valid");
                    // lint:allow(panic) publisher entries are keyed by client id in the report map, so duplicates cannot reach here
                    workload.add_publisher(publisher).expect("publisher ids unique in report");
                }
                None => unknown += 1,
            }
        }
        for &subscriber_id in &report.subscribers {
            match self.client_latencies.get(&subscriber_id) {
                Some(latencies) => {
                    let subscriber = Subscriber::new(
                        multipub_core::ids::ClientId(subscriber_id),
                        latencies.clone(),
                    )
                    // lint:allow(panic) latency rows were length-checked against the region count when the client registered
                    .expect("registered latencies are valid");
                    workload
                        .add_subscriber(subscriber)
                        // lint:allow(panic) subscriber entries are keyed by client id in the report map, so duplicates cannot reach here
                        .expect("subscriber ids deduplicated in report");
                }
                None => unknown += 1,
            }
        }
        (workload, unknown)
    }
}

fn average_size(stats: &crate::broker::PublisherStats) -> u64 {
    if stats.messages == 0 {
        0
    } else {
        stats.bytes / stats.messages
    }
}

/// Merges the per-region reports into one per-topic view.
///
/// Publisher statistics are **deduplicated by maximum**: under direct
/// delivery every serving region observes the same publications, and under
/// routed delivery only the first-hop region does — taking the per-region
/// maximum recovers the true per-publisher counts in both cases.
/// Subscriber lists are unioned (a subscriber is attached to exactly one
/// region at a time; unions also tolerate the reconfiguration window).
pub fn merge_reports(reports: &[RegionReport]) -> BTreeMap<String, TopicReport> {
    let mut merged: BTreeMap<String, TopicReport> = BTreeMap::new();
    for report in reports {
        for (topic, topic_report) in &report.topics {
            let entry = merged.entry(topic.clone()).or_default();
            for (&publisher, stats) in &topic_report.publishers {
                let slot = entry.publishers.entry(publisher).or_default();
                if stats.messages > slot.messages {
                    *slot = *stats;
                }
            }
            entry.subscribers.extend(topic_report.subscribers.iter().copied());
        }
    }
    for report in merged.values_mut() {
        report.subscribers.sort_unstable();
        report.subscribers.dedup();
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::PublisherStats;

    fn report(region: u16, topic: &str, pubs: &[(u64, u64, u64)], subs: &[u64]) -> RegionReport {
        let mut topics = BTreeMap::new();
        topics.insert(
            topic.to_string(),
            TopicReport {
                publishers: pubs
                    .iter()
                    .map(|&(id, messages, bytes)| (id, PublisherStats { messages, bytes }))
                    .collect(),
                subscribers: subs.to_vec(),
            },
        );
        RegionReport { region, topics }
    }

    #[test]
    fn merge_dedups_direct_mode_double_counting() {
        // Direct delivery: both regions saw the same 10 messages of P1.
        let reports = vec![
            report(0, "t", &[(1, 10, 10_000)], &[5]),
            report(1, "t", &[(1, 10, 10_000)], &[6]),
        ];
        let merged = merge_reports(&reports);
        let t = &merged["t"];
        assert_eq!(t.publishers[&1].messages, 10);
        assert_eq!(t.subscribers, vec![5, 6]);
    }

    #[test]
    fn merge_keeps_max_when_regions_disagree() {
        // Reconfiguration window: one region missed some messages.
        let reports =
            vec![report(0, "t", &[(1, 7, 7_000)], &[]), report(1, "t", &[(1, 10, 10_000)], &[])];
        let merged = merge_reports(&reports);
        assert_eq!(merged["t"].publishers[&1].messages, 10);
        assert_eq!(merged["t"].publishers[&1].bytes, 10_000);
    }

    #[test]
    fn merge_unions_topics_across_regions() {
        let reports =
            vec![report(0, "a", &[(1, 1, 100)], &[2]), report(1, "b", &[(3, 2, 200)], &[4])];
        let merged = merge_reports(&reports);
        assert_eq!(merged.len(), 2);
        assert!(merged.contains_key("a") && merged.contains_key("b"));
    }

    #[test]
    fn merge_dedups_subscribers_seen_twice() {
        // A subscriber mid-resubscription appears in two regions.
        let reports = vec![report(0, "t", &[], &[9, 5]), report(1, "t", &[], &[5])];
        let merged = merge_reports(&reports);
        assert_eq!(merged["t"].subscribers, vec![5, 9]);
    }

    #[test]
    fn average_size_handles_empty() {
        assert_eq!(average_size(&PublisherStats { messages: 0, bytes: 0 }), 0);
        assert_eq!(average_size(&PublisherStats { messages: 4, bytes: 1000 }), 250);
    }
}
