//! Outbound frame channels with optional WAN latency injection.
//!
//! Every connection owns an [`Outbound`] handle: frames pushed into it are
//! written to the socket by a dedicated writer task, after an optional
//! fixed one-way delay. Running every endpoint with the delays of a real
//! latency matrix turns a loopback deployment into a faithful WAN
//! emulation — the same trick the discrete-event simulator plays, but on
//! real sockets.
//!
//! The handle is backed by a bounded, policy-aware [`FlowQueue`] rather
//! than an unbounded channel (DESIGN.md §10): [`Outbound::send`] queues
//! control frames past the capacity bound, while
//! [`Outbound::send_data`] subjects bulk traffic (deliveries, forwards)
//! to the queue's [`crate::flow::SlowConsumerPolicy`].
//!
//! The writer task batches socket writes (DESIGN.md §11): once the
//! frame at the head of the queue is due, every *other* already-due
//! frame behind it — up to [`FlowConfig::max_write_batch`] — is
//! coalesced into a single vectored `writev` call. Frames whose
//! WAN-emulation release time has not arrived are never pulled forward,
//! so batching changes syscall count, not delivery times or order. With
//! `max_write_batch == 1` the writer degenerates to the original
//! frame-at-a-time loop.

use crate::codec::{encode_to_bytes, peek_trace, stamp_queue_write};
use crate::flow::{FlowConfig, FlowQueue, GlobalBudget, PushOutcome};
use crate::frame::Frame;
use bytes::{Buf, Bytes};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;
use tokio::io::AsyncWriteExt;
use tokio::net::tcp::OwnedWriteHalf;
use tokio::time::Instant;

/// A handle for sending frames on one connection.
///
/// Cloneable; all clones feed the same writer task. Frames are written in
/// send order; with a non-zero delay each frame is held for the configured
/// one-way latency first, preserving order (FIFO with constant delay).
#[derive(Debug, Clone)]
pub struct Outbound {
    queue: Arc<FlowQueue>,
    /// Shared by every clone but not the writer task: when the last
    /// handle drops, the queue closes gracefully and the writer exits
    /// after draining — the semantics of dropping an unbounded sender.
    _closer: Arc<CloseOnDrop>,
    delay: Duration,
}

#[derive(Debug)]
struct CloseOnDrop {
    queue: Arc<FlowQueue>,
}

impl Drop for CloseOnDrop {
    fn drop(&mut self) {
        self.queue.close();
    }
}

impl Outbound {
    /// Wraps a socket write-half, spawning the writer task on the current
    /// runtime. All frames sent through the handle are delayed by `delay`
    /// before hitting the socket. The queue uses the default
    /// [`FlowConfig`] and no shared byte budget — the configuration for
    /// client- and controller-side links; brokers use
    /// [`Outbound::spawn_with`].
    pub fn spawn(write_half: OwnedWriteHalf, delay: Duration) -> Outbound {
        Outbound::spawn_with(write_half, delay, FlowConfig::default(), None)
    }

    /// Wraps a socket write-half with an explicit queue configuration
    /// and, for broker-owned connections, the broker's shared
    /// [`GlobalBudget`].
    pub fn spawn_with(
        write_half: OwnedWriteHalf,
        delay: Duration,
        config: FlowConfig,
        budget: Option<Arc<GlobalBudget>>,
    ) -> Outbound {
        let queue = Arc::new(FlowQueue::new(config, budget));
        tokio::spawn(writer_task(write_half, Arc::clone(&queue)));
        let closer = Arc::new(CloseOnDrop { queue: Arc::clone(&queue) });
        Outbound { queue, _closer: closer, delay }
    }

    /// Queues one control frame, bypassing the data-capacity bound (a
    /// congested data path must never wedge acks, pongs or config
    /// updates). Returns `false` if the connection is closed.
    pub fn send(&self, frame: &Frame) -> bool {
        let deliver_at = Instant::now() + self.delay;
        self.queue.push_control(deliver_at, encode_to_bytes(frame))
    }

    /// Offers one data frame (delivery or forward), applying the queue's
    /// slow-consumer policy when it is full. Encodes per call — the
    /// single-shard reference path; the sharded fan-out uses
    /// [`Outbound::send_data_encoded`] instead.
    pub async fn send_data(&self, frame: &Frame) -> PushOutcome {
        let deliver_at = Instant::now() + self.delay;
        self.queue.push_data(deliver_at, encode_to_bytes(frame)).await
    }

    /// Offers one **already encoded** data frame — the zero-copy fan-out
    /// path (DESIGN.md §11). The broker encodes a delivery once and
    /// hands every subscriber's queue a reference-counted slice of the
    /// same buffer: cloning the [`Bytes`] bumps a refcount, no payload
    /// copy happens, and the queue's byte accounting is unchanged
    /// because the slice length equals the encoded frame length.
    pub async fn send_data_encoded(&self, bytes: Bytes) -> PushOutcome {
        let deliver_at = Instant::now() + self.delay;
        self.queue.push_data(deliver_at, bytes).await
    }

    /// The configured one-way delay.
    pub fn delay(&self) -> Duration {
        self.delay
    }

    /// Whether the connection can still accept frames.
    pub fn is_open(&self) -> bool {
        !self.queue.is_closed()
    }

    /// Current queue depth in frames.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Current queue depth in bytes.
    pub fn queued_bytes(&self) -> u64 {
        self.queue.queued_bytes()
    }

    /// Frames dropped on this connection (`DropNewest`, expired `Block`
    /// deadlines).
    pub fn dropped(&self) -> u64 {
        self.queue.dropped()
    }

    /// Frames evicted on this connection (`DropOldest`).
    pub fn evicted(&self) -> u64 {
        self.queue.evicted()
    }
}

async fn writer_task(mut write_half: OwnedWriteHalf, queue: Arc<FlowQueue>) {
    let max_batch = queue.max_write_batch();
    let mut batch: VecDeque<Bytes> = VecDeque::with_capacity(max_batch.min(64));
    // `(batch index, trace id, match stamp, pop time)` of the sampled
    // frames in the current batch; empty for untraced traffic, so the
    // hot path pays one cheap flag peek per frame.
    let mut traced: Vec<(usize, u64, u64, u64)> = Vec::new();
    loop {
        let Some(frame) = queue.recv().await else { break };
        // Hold the frame through its WAN-emulation delay. A
        // `Disconnect`-policy trip closes the queue while this task may
        // be parked here or wedged writing to the stalled socket — the
        // kill signal severs it regardless.
        let killed = tokio::select! {
            _ = tokio::time::sleep_until(frame.deliver_at) => false,
            _ = queue.wait_killed() => true,
        };
        if killed {
            break;
        }
        // The head frame is due; coalesce every other already-due frame
        // behind it into the same write. Not-yet-due frames stay queued
        // (and everything behind them — FIFO is preserved).
        batch.clear();
        traced.clear();
        if let Some((trace_id, match_micros)) = peek_trace(&frame.bytes) {
            traced.push((0, trace_id, match_micros, multipub_obs::trace::now_micros()));
        }
        batch.push_back(frame.bytes);
        while batch.len() < max_batch {
            let Some(due) = queue.try_pop_due(Instant::now()) else { break };
            if let Some((trace_id, match_micros)) = peek_trace(&due.bytes) {
                traced.push((
                    batch.len(),
                    trace_id,
                    match_micros,
                    multipub_obs::trace::now_micros(),
                ));
            }
            batch.push_back(due.bytes);
        }
        // Stamp queue/write times into the sampled frames just before
        // the syscall. The batch holds refcounted slices shared with
        // other subscriber queues, so the stamp patches a private copy
        // (`stamp_queue_write`) — only sampled frames pay for it.
        if !traced.is_empty() {
            let write_start = multipub_obs::trace::now_micros();
            for &(index, trace_id, match_micros, popped) in &traced {
                if let Some(slot) = batch.get_mut(index) {
                    *slot = stamp_queue_write(slot, popped, write_start);
                }
                multipub_obs::histogram!(multipub_obs::metrics::BROKER_STAGE_QUEUE_MS)
                    .record(popped.saturating_sub(match_micros) as f64 / 1000.0);
                multipub_obs::trace::record_span(multipub_obs::trace::Span {
                    trace_id,
                    stage: "queue",
                    start_micros: match_micros,
                    dur_micros: popped.saturating_sub(match_micros),
                });
                multipub_obs::histogram!(multipub_obs::metrics::BROKER_STAGE_WRITE_MS)
                    .record(write_start.saturating_sub(popped) as f64 / 1000.0);
                multipub_obs::trace::record_span(multipub_obs::trace::Span {
                    trace_id,
                    stage: "write",
                    start_micros: popped,
                    dur_micros: write_start.saturating_sub(popped),
                });
            }
        }
        let killed = tokio::select! {
            result = write_batch(&mut write_half, &mut batch) => result.is_err(),
            _ = queue.wait_killed() => true,
        };
        if killed {
            break;
        }
    }
    // Reached on peer close, a policy kill, or a drained graceful close;
    // the socket drops here, leftover frames are refunded to the budget,
    // and senders observe a closed queue.
    queue.kill();
}

/// Writes every buffer in `batch` to the socket: a plain `write_all` for
/// a single frame, one `writev` attempt per iteration otherwise, looping
/// until the batch drains (vectored writes may be partial).
async fn write_batch(
    write_half: &mut OwnedWriteHalf,
    batch: &mut VecDeque<Bytes>,
) -> std::io::Result<()> {
    if batch.len() == 1 {
        if let Some(bytes) = batch.pop_front() {
            write_half.write_all(&bytes).await?;
        }
        return Ok(());
    }
    while !batch.is_empty() {
        let written = {
            let slices: Vec<std::io::IoSlice<'_>> =
                batch.iter().map(|bytes| std::io::IoSlice::new(bytes)).collect();
            write_half.write_vectored(&slices).await?
        };
        if written == 0 {
            return Err(std::io::ErrorKind::WriteZero.into());
        }
        // Drop fully written buffers from the front; trim a partially
        // written one in place (`advance` moves the Bytes view, no copy).
        let mut remaining = written;
        while remaining > 0 {
            let Some(front) = batch.front_mut() else { break };
            if remaining >= front.len() {
                remaining -= front.len();
                batch.pop_front();
            } else {
                front.advance(remaining);
                remaining = 0;
            }
        }
    }
    Ok(())
}

/// A one-way delay table for a broker: how long frames take to reach each
/// peer region and each known client. Used to emulate WAN latencies when a
/// whole deployment runs on one host; production deployments leave it
/// empty (all zeros).
#[derive(Debug, Clone, Default)]
pub struct DelayTable {
    /// One-way delay towards each region, indexed by region id.
    region_delays: Vec<Duration>,
    /// One-way delay towards specific clients.
    client_delays: std::collections::HashMap<u64, Duration>,
}

impl DelayTable {
    /// No delays anywhere — production behaviour.
    pub fn none() -> Self {
        DelayTable::default()
    }

    /// Builds a table with per-region one-way delays in milliseconds.
    pub fn with_region_delays_ms(delays_ms: &[f64]) -> Self {
        DelayTable {
            region_delays: delays_ms.iter().map(|&ms| duration_from_ms(ms)).collect(),
            client_delays: std::collections::HashMap::new(),
        }
    }

    /// Sets the one-way delay towards one client, in milliseconds.
    pub fn set_client_delay_ms(&mut self, client_id: u64, ms: f64) {
        self.client_delays.insert(client_id, duration_from_ms(ms));
    }

    /// Delay towards a region (zero when unknown).
    pub fn to_region(&self, region: u16) -> Duration {
        self.region_delays.get(region as usize).copied().unwrap_or(Duration::ZERO)
    }

    /// Delay towards a client (zero when unknown).
    pub fn to_client(&self, client_id: u64) -> Duration {
        self.client_delays.get(&client_id).copied().unwrap_or(Duration::ZERO)
    }
}

/// Converts milliseconds to a [`Duration`], clamping rather than
/// panicking on hostile input: negative, NaN and infinite values become
/// zero (`Duration::from_secs_f64` would panic on them), and absurdly
/// large finite values are capped at ~11.5 days so a corrupt latency
/// table cannot wedge a writer task forever.
pub fn duration_from_ms(ms: f64) -> Duration {
    const MAX_MS: f64 = 1e9;
    if !ms.is_finite() || ms <= 0.0 {
        return Duration::ZERO;
    }
    Duration::from_secs_f64(ms.min(MAX_MS) / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decode;
    use bytes::BytesMut;
    use tokio::io::AsyncReadExt;
    use tokio::net::{TcpListener, TcpStream};

    async fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).await.unwrap();
        let (server, _) = listener.accept().await.unwrap();
        (client, server)
    }

    #[tokio::test]
    async fn frames_arrive_in_order() {
        let (client, mut server) = socket_pair().await;
        let (_read, write) = client.into_split();
        let outbound = Outbound::spawn(write, Duration::ZERO);
        for nonce in 0..50u64 {
            assert!(outbound.send(&Frame::Ping { nonce }));
        }
        let mut buf = BytesMut::new();
        let mut seen = Vec::new();
        while seen.len() < 50 {
            let mut chunk = [0u8; 256];
            let n = server.read(&mut chunk).await.unwrap();
            buf.extend_from_slice(&chunk[..n]);
            while let Some(frame) = decode(&mut buf).unwrap() {
                match frame {
                    Frame::Ping { nonce } => seen.push(nonce),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }

    #[tokio::test]
    async fn batched_vectored_writes_preserve_order() {
        let (client, mut server) = socket_pair().await;
        let (_read, write) = client.into_split();
        let config = FlowConfig::default().max_write_batch(16);
        let outbound = Outbound::spawn_with(write, Duration::ZERO, config, None);
        // Shared encoded frames through the zero-copy path: one encode,
        // fifty refcounted sends, all due immediately → the writer
        // coalesces them into vectored writes.
        for nonce in 0..50u64 {
            let encoded = encode_to_bytes(&Frame::Ping { nonce });
            assert!(outbound.send_data_encoded(encoded.clone()).await.queued());
        }
        let mut buf = BytesMut::new();
        let mut seen = Vec::new();
        while seen.len() < 50 {
            let mut chunk = [0u8; 512];
            let n = server.read(&mut chunk).await.unwrap();
            buf.extend_from_slice(&chunk[..n]);
            while let Some(frame) = decode(&mut buf).unwrap() {
                match frame {
                    Frame::Ping { nonce } => seen.push(nonce),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }

    #[tokio::test]
    async fn writer_stamps_queue_and_write_on_sampled_frames() {
        use crate::frame::TraceContext;
        let (client, mut server) = socket_pair().await;
        let (_read, write) = client.into_split();
        let outbound = Outbound::spawn(write, Duration::ZERO);
        let mut ctx = TraceContext::new(0xBEEF);
        ctx.admit_micros = 1;
        ctx.match_micros = multipub_obs::trace::now_micros();
        let frame = Frame::Deliver {
            topic: "t".into(),
            publisher: 1,
            publish_micros: 2,
            headers: String::new(),
            payload: Bytes::from_static(b"x"),
            trace: Some(ctx),
            qos: 0,
            seq: 0,
            retained: false,
        };
        let before = multipub_obs::trace::now_micros();
        assert!(outbound.send_data_encoded(encode_to_bytes(&frame)).await.queued());
        let mut buf = BytesMut::new();
        let received = loop {
            let mut chunk = [0u8; 256];
            let n = server.read(&mut chunk).await.unwrap();
            buf.extend_from_slice(&chunk[..n]);
            if let Some(frame) = decode(&mut buf).unwrap() {
                break frame;
            }
        };
        let Frame::Deliver { trace: Some(stamped), .. } = received else {
            panic!("expected a traced Deliver, got {received:?}");
        };
        let after = multipub_obs::trace::now_micros();
        assert_eq!(stamped.trace_id, 0xBEEF);
        assert!(stamped.queue_micros >= before && stamped.queue_micros <= after);
        assert!(stamped.write_micros >= stamped.queue_micros && stamped.write_micros <= after);
        // The unsampled path is left byte-identical (no stamps).
        let unsampled = TraceContext { sampled: false, ..TraceContext::new(1) };
        let quiet = Frame::Deliver {
            topic: "t".into(),
            publisher: 1,
            publish_micros: 2,
            headers: String::new(),
            payload: Bytes::new(),
            trace: Some(unsampled),
            qos: 0,
            seq: 0,
            retained: false,
        };
        assert!(outbound.send_data_encoded(encode_to_bytes(&quiet)).await.queued());
        let received = loop {
            let mut chunk = [0u8; 256];
            let n = server.read(&mut chunk).await.unwrap();
            buf.extend_from_slice(&chunk[..n]);
            if let Some(frame) = decode(&mut buf).unwrap() {
                break frame;
            }
        };
        let Frame::Deliver { trace: Some(quiet_trace), .. } = received else {
            panic!("expected Deliver");
        };
        assert_eq!((quiet_trace.queue_micros, quiet_trace.write_micros), (0, 0));
    }

    #[tokio::test]
    async fn delay_holds_frames_back() {
        let (client, mut server) = socket_pair().await;
        let (_read, write) = client.into_split();
        let outbound = Outbound::spawn(write, Duration::from_millis(50));
        let sent_at = std::time::Instant::now();
        outbound.send(&Frame::Ping { nonce: 1 });
        let mut chunk = [0u8; 64];
        let n = server.read(&mut chunk).await.unwrap();
        assert!(n > 0);
        let elapsed = sent_at.elapsed();
        assert!(elapsed >= Duration::from_millis(45), "arrived after {elapsed:?}");
    }

    #[tokio::test]
    async fn send_after_peer_close_reports_failure() {
        let (client, server) = socket_pair().await;
        drop(server);
        let (_read, write) = client.into_split();
        let outbound = Outbound::spawn(write, Duration::ZERO);
        // The writer task discovers the closed peer on first write;
        // subsequent sends eventually fail once the task exits.
        let mut closed = false;
        for _ in 0..100 {
            if !outbound.send(&Frame::Ping { nonce: 0 }) {
                closed = true;
                break;
            }
            tokio::time::sleep(Duration::from_millis(5)).await;
        }
        assert!(closed, "outbound should notice the closed peer");
        assert!(!outbound.is_open());
    }

    #[test]
    fn delay_table_lookup() {
        let mut table = DelayTable::with_region_delays_ms(&[10.0, 20.0]);
        table.set_client_delay_ms(7, 35.0);
        assert_eq!(table.to_region(0), Duration::from_millis(10));
        assert_eq!(table.to_region(1), Duration::from_millis(20));
        assert_eq!(table.to_region(9), Duration::ZERO);
        assert_eq!(table.to_client(7), Duration::from_millis(35));
        assert_eq!(table.to_client(8), Duration::ZERO);
    }

    #[test]
    fn duration_conversion_clamps_negative() {
        assert_eq!(duration_from_ms(-5.0), Duration::ZERO);
        assert_eq!(duration_from_ms(1.5), Duration::from_micros(1500));
    }

    #[test]
    fn duration_conversion_never_panics() {
        assert_eq!(duration_from_ms(f64::NAN), Duration::ZERO);
        assert_eq!(duration_from_ms(f64::INFINITY), Duration::ZERO);
        assert_eq!(duration_from_ms(f64::NEG_INFINITY), Duration::ZERO);
        assert_eq!(duration_from_ms(1e300), Duration::from_secs(1_000_000));
    }
}
