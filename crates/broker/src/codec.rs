//! Binary framing: `[u32 length][u8 tag][fields…]`, all integers
//! big-endian, strings as `u16` length + UTF-8, payloads as `u32` length +
//! bytes.
//!
//! [`encode`] appends one frame to a buffer; [`decode`] incrementally
//! consumes complete frames from a receive buffer, returning `Ok(None)`
//! while a frame is still partial — the natural shape for reading from a
//! TCP stream.
//!
//! # Trace context layout
//!
//! The publish-path frames (`Publish`/`Forward`/`Deliver`) carry an
//! optional [`TraceContext`] encoded **first in the body, at a fixed
//! offset**: a presence flag byte right after the tag, then (when
//! present) trace id, sampled flag and the four stage stamps. The fixed
//! position lets the outbound writer task stamp queue/write times into
//! already-encoded bytes ([`stamp_queue_write`]) without re-encoding —
//! essential because a zero-copy fan-out shares one encoded buffer
//! across every subscriber queue. An absent context costs exactly one
//! byte. Control frames never carry a context
//! ([`Frame::is_control`]); [`peek_trace`] enforces this by tag.

use crate::flow::SlowConsumerPolicy;
use crate::frame::{Frame, Role, TraceContext, WireMode};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Upper bound on a frame's body size; larger lengths indicate stream
/// corruption and abort decoding.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Errors produced while decoding a frame stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The length prefix exceeded [`MAX_FRAME_BYTES`].
    Oversized {
        /// The advertised body length.
        len: usize,
    },
    /// An unknown frame tag was encountered.
    UnknownTag {
        /// The offending tag byte.
        tag: u8,
    },
    /// A frame body ended before all declared fields were read.
    Truncated,
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// An enum field carried an unknown discriminant.
    InvalidEnum {
        /// The offending discriminant.
        value: u8,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Oversized { len } => write!(f, "frame of {len} bytes exceeds limit"),
            CodecError::UnknownTag { tag } => write!(f, "unknown frame tag {tag:#04x}"),
            CodecError::Truncated => write!(f, "frame body ended early"),
            CodecError::InvalidUtf8 => write!(f, "string field is not valid utf-8"),
            CodecError::InvalidEnum { value } => write!(f, "invalid enum discriminant {value}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn put_string(buf: &mut BytesMut, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "topic names are short");
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn put_payload(buf: &mut BytesMut, payload: &Bytes) {
    buf.put_u32(payload.len() as u32);
    buf.put_slice(payload);
}

fn put_long_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

// Fixed offsets of the trace block within a full framed buffer
// (`[u32 len][u8 tag][u8 flag][trace fields…]`). `stamp_queue_write`
// and `peek_trace` rely on these staying in lockstep with
// `put_trace`/`read_trace`.
const TRACE_FLAG_OFFSET: usize = 5;
const TRACE_ID_OFFSET: usize = 6;
const TRACE_SAMPLED_OFFSET: usize = 14;
const TRACE_MATCH_OFFSET: usize = 23;
const TRACE_QUEUE_OFFSET: usize = 31;
const TRACE_WRITE_OFFSET: usize = 39;
/// Byte past the end of a present trace block (flag + id + sampled +
/// four stamps), relative to the start of the framed buffer.
const TRACE_END_OFFSET: usize = 47;

fn put_trace(buf: &mut BytesMut, trace: &Option<TraceContext>) {
    match trace {
        None => buf.put_u8(0),
        Some(ctx) => {
            buf.put_u8(1);
            buf.put_u64(ctx.trace_id);
            buf.put_u8(u8::from(ctx.sampled));
            buf.put_u64(ctx.admit_micros);
            buf.put_u64(ctx.match_micros);
            buf.put_u64(ctx.queue_micros);
            buf.put_u64(ctx.write_micros);
        }
    }
}

fn read_trace(reader: &mut Reader<'_>) -> Result<Option<TraceContext>, CodecError> {
    match reader.u8()? {
        0 => Ok(None),
        _ => {
            let trace_id = reader.u64()?;
            let sampled = reader.u8()? != 0;
            let admit_micros = reader.u64()?;
            let match_micros = reader.u64()?;
            let queue_micros = reader.u64()?;
            let write_micros = reader.u64()?;
            Ok(Some(TraceContext {
                trace_id,
                sampled,
                admit_micros,
                match_micros,
                queue_micros,
                write_micros,
            }))
        }
    }
}

fn read_u64_at(bytes: &Bytes, offset: usize) -> Option<u64> {
    let slice = bytes.get(offset..offset + 8)?;
    let array: [u8; 8] = slice.try_into().ok()?;
    Some(u64::from_be_bytes(array))
}

/// Peeks the trace context of an already-encoded `Forward`/`Deliver`
/// frame without decoding it.
///
/// Returns `(trace_id, match_micros)` when the buffer is a publish-path
/// frame carrying a **sampled** context, `None` otherwise. Control
/// frames are rejected by tag, so keepalive traffic can never produce
/// spans. `Publish` is also excluded: only broker-outbound frames pass
/// through the writer task that uses this peek.
#[must_use]
pub fn peek_trace(bytes: &Bytes) -> Option<(u64, u64)> {
    if bytes.len() < TRACE_END_OFFSET {
        return None;
    }
    let tag = *bytes.get(4)?;
    if tag != 0x06 && tag != 0x07 {
        return None;
    }
    if *bytes.get(TRACE_FLAG_OFFSET)? != 1 || *bytes.get(TRACE_SAMPLED_OFFSET)? != 1 {
        return None;
    }
    let trace_id = read_u64_at(bytes, TRACE_ID_OFFSET)?;
    let match_micros = read_u64_at(bytes, TRACE_MATCH_OFFSET)?;
    Some((trace_id, match_micros))
}

/// Returns a copy of an encoded frame with the queue/write stage stamps
/// patched into its trace block.
///
/// The writer task calls this only for frames where [`peek_trace`]
/// returned `Some`, so the offsets are known to exist; zero-copy
/// fan-out shares the original buffer across subscriber queues, and the
/// copy confines the stamps to this subscriber's frame. Unsampled
/// frames never pay for the copy.
#[must_use]
pub fn stamp_queue_write(bytes: &Bytes, queue_micros: u64, write_micros: u64) -> Bytes {
    let mut patched = BytesMut::with_capacity(bytes.len());
    patched.extend_from_slice(bytes);
    if let Some(slot) = patched.get_mut(TRACE_QUEUE_OFFSET..TRACE_QUEUE_OFFSET + 8) {
        slot.copy_from_slice(&queue_micros.to_be_bytes());
    }
    if let Some(slot) = patched.get_mut(TRACE_WRITE_OFFSET..TRACE_WRITE_OFFSET + 8) {
        slot.copy_from_slice(&write_micros.to_be_bytes());
    }
    patched.freeze()
}

/// Appends the wire encoding of `frame` to `buf`.
pub fn encode(frame: &Frame, buf: &mut BytesMut) {
    let start = buf.len();
    buf.put_u32(0); // length placeholder
    buf.put_u8(frame.tag());
    match frame {
        Frame::Connect { client_id, role, policy } => {
            buf.put_u64(*client_id);
            buf.put_u8(role.to_u8());
            match policy {
                Some(policy) => {
                    buf.put_u8(policy.wire_byte());
                    buf.put_u32(policy.wire_ms());
                }
                None => {
                    buf.put_u8(0);
                    buf.put_u32(0);
                }
            }
        }
        Frame::ConnectAck { region } => {
            buf.put_u16(*region);
        }
        Frame::Subscribe { topic, filter, qos } => {
            put_string(buf, topic);
            put_long_string(buf, filter);
            buf.put_u8(*qos);
        }
        Frame::Unsubscribe { topic } => {
            put_string(buf, topic);
        }
        Frame::Publish {
            topic,
            publisher,
            publish_micros,
            single_target,
            headers,
            payload,
            trace,
            qos,
            seq,
            retain,
            epoch,
        } => {
            put_trace(buf, trace);
            put_string(buf, topic);
            buf.put_u64(*publisher);
            buf.put_u64(*publish_micros);
            buf.put_u8(u8::from(*single_target));
            put_long_string(buf, headers);
            put_payload(buf, payload);
            // QoS fields are appended after the original body so the
            // trace block keeps its fixed offset near the frame start.
            buf.put_u8(*qos);
            buf.put_u64(*seq);
            buf.put_u8(u8::from(*retain));
            buf.put_u64(*epoch);
        }
        Frame::Deliver {
            topic,
            publisher,
            publish_micros,
            headers,
            payload,
            trace,
            qos,
            seq,
            retained,
        } => {
            put_trace(buf, trace);
            put_string(buf, topic);
            buf.put_u64(*publisher);
            buf.put_u64(*publish_micros);
            put_long_string(buf, headers);
            put_payload(buf, payload);
            buf.put_u8(*qos);
            buf.put_u64(*seq);
            buf.put_u8(u8::from(*retained));
        }
        Frame::Forward {
            topic,
            publisher,
            publish_micros,
            origin_region,
            headers,
            payload,
            trace,
            qos,
            seq,
            retain,
        } => {
            put_trace(buf, trace);
            put_string(buf, topic);
            buf.put_u64(*publisher);
            buf.put_u64(*publish_micros);
            buf.put_u16(*origin_region);
            put_long_string(buf, headers);
            put_payload(buf, payload);
            buf.put_u8(*qos);
            buf.put_u64(*seq);
            buf.put_u8(u8::from(*retain));
        }
        Frame::StatsRequest => {}
        Frame::StatsReport { json } => {
            put_long_string(buf, json);
        }
        Frame::ConfigUpdate { topic, mask, mode, epoch } => {
            put_string(buf, topic);
            buf.put_u32(*mask);
            buf.put_u8(mode.to_u8());
            buf.put_u64(*epoch);
        }
        Frame::Ping { nonce } | Frame::Pong { nonce } => {
            buf.put_u64(*nonce);
        }
        Frame::StatsSnapshotRequest => {}
        Frame::StatsSnapshot { json } => {
            put_long_string(buf, json);
        }
        Frame::Busy { topic, retry_after_ms, seq } => {
            put_string(buf, topic);
            buf.put_u32(*retry_after_ms);
            buf.put_u64(*seq);
        }
        Frame::PubAck { topic, seq } => {
            put_string(buf, topic);
            buf.put_u64(*seq);
        }
        Frame::DeliverAck { topic, publisher, seq } => {
            put_string(buf, topic);
            buf.put_u64(*publisher);
            buf.put_u64(*seq);
        }
        Frame::HandoverPrepare { topic, mask, mode, epoch } => {
            put_string(buf, topic);
            buf.put_u32(*mask);
            buf.put_u8(mode.to_u8());
            buf.put_u64(*epoch);
        }
        Frame::HandoverCommit { topic, epoch, grace_ms } => {
            put_string(buf, topic);
            buf.put_u64(*epoch);
            buf.put_u32(*grace_ms);
        }
        Frame::HandoverAbort { topic, epoch } => {
            put_string(buf, topic);
            buf.put_u64(*epoch);
        }
        Frame::HandoverAck { topic, epoch, phase } => {
            put_string(buf, topic);
            buf.put_u64(*epoch);
            buf.put_u8(*phase);
        }
    }
    let body_len = (buf.len() - start - 4) as u32;
    // lint:allow(indexing) the four length-prefix bytes were reserved at `start` before the body was written, so the range exists
    buf[start..start + 4].copy_from_slice(&body_len.to_be_bytes());
    multipub_obs::counter!(multipub_obs::metrics::BROKER_FRAMES_ENCODED_TOTAL).inc();
}

struct Reader<'a> {
    body: &'a mut Bytes,
}

impl Reader<'_> {
    fn u8(&mut self) -> Result<u8, CodecError> {
        if self.body.remaining() < 1 {
            return Err(CodecError::Truncated);
        }
        Ok(self.body.get_u8())
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        if self.body.remaining() < 2 {
            return Err(CodecError::Truncated);
        }
        Ok(self.body.get_u16())
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        if self.body.remaining() < 4 {
            return Err(CodecError::Truncated);
        }
        Ok(self.body.get_u32())
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        if self.body.remaining() < 8 {
            return Err(CodecError::Truncated);
        }
        Ok(self.body.get_u64())
    }

    fn string(&mut self) -> Result<String, CodecError> {
        let len = self.u16()? as usize;
        self.utf8(len)
    }

    fn long_string(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        self.utf8(len)
    }

    fn utf8(&mut self, len: usize) -> Result<String, CodecError> {
        if self.body.remaining() < len {
            return Err(CodecError::Truncated);
        }
        let raw = self.body.split_to(len);
        String::from_utf8(raw.to_vec()).map_err(|_| CodecError::InvalidUtf8)
    }

    fn payload(&mut self) -> Result<Bytes, CodecError> {
        let len = self.u32()? as usize;
        if self.body.remaining() < len {
            return Err(CodecError::Truncated);
        }
        Ok(self.body.split_to(len))
    }
}

/// Attempts to decode one complete frame from the front of `buf`.
///
/// Returns `Ok(None)` when the buffer holds only part of a frame — read
/// more bytes and call again. Consumed bytes are removed from `buf`.
///
/// # Errors
///
/// Any [`CodecError`] indicates an unrecoverable protocol violation; the
/// connection should be dropped.
pub fn decode(buf: &mut BytesMut) -> Result<Option<Frame>, CodecError> {
    let result = decode_inner(buf);
    match &result {
        Ok(Some(_)) => {
            multipub_obs::counter!(multipub_obs::metrics::BROKER_FRAMES_DECODED_TOTAL).inc()
        }
        Ok(None) => {}
        Err(_) => multipub_obs::counter!(multipub_obs::metrics::BROKER_CODEC_ERRORS_TOTAL).inc(),
    }
    result
}

fn decode_inner(buf: &mut BytesMut) -> Result<Option<Frame>, CodecError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    // lint:allow(indexing) guarded by the `buf.len() < 4` early return above
    let body_len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if body_len > MAX_FRAME_BYTES {
        return Err(CodecError::Oversized { len: body_len });
    }
    if buf.len() < 4 + body_len {
        return Ok(None);
    }
    buf.advance(4);
    let mut body = buf.split_to(body_len).freeze();
    let mut reader = Reader { body: &mut body };
    let tag = reader.u8()?;
    let frame = match tag {
        0x01 => {
            let client_id = reader.u64()?;
            let role_byte = reader.u8()?;
            let role =
                Role::from_u8(role_byte).ok_or(CodecError::InvalidEnum { value: role_byte })?;
            let policy_byte = reader.u8()?;
            let policy_ms = reader.u32()?;
            let policy = SlowConsumerPolicy::from_wire(policy_byte, policy_ms)
                .map_err(|value| CodecError::InvalidEnum { value })?;
            Frame::Connect { client_id, role, policy }
        }
        0x02 => Frame::ConnectAck { region: reader.u16()? },
        0x03 => {
            let topic = reader.string()?;
            let filter = reader.long_string()?;
            let qos = reader.u8()?;
            Frame::Subscribe { topic, filter, qos }
        }
        0x04 => Frame::Unsubscribe { topic: reader.string()? },
        0x05 => {
            let trace = read_trace(&mut reader)?;
            let topic = reader.string()?;
            let publisher = reader.u64()?;
            let publish_micros = reader.u64()?;
            let single_target = reader.u8()? != 0;
            let headers = reader.long_string()?;
            let payload = reader.payload()?;
            let qos = reader.u8()?;
            let seq = reader.u64()?;
            let retain = reader.u8()? != 0;
            let epoch = reader.u64()?;
            Frame::Publish {
                topic,
                publisher,
                publish_micros,
                single_target,
                headers,
                payload,
                trace,
                qos,
                seq,
                retain,
                epoch,
            }
        }
        0x07 => {
            let trace = read_trace(&mut reader)?;
            let topic = reader.string()?;
            let publisher = reader.u64()?;
            let publish_micros = reader.u64()?;
            let headers = reader.long_string()?;
            let payload = reader.payload()?;
            let qos = reader.u8()?;
            let seq = reader.u64()?;
            let retained = reader.u8()? != 0;
            Frame::Deliver {
                topic,
                publisher,
                publish_micros,
                headers,
                payload,
                trace,
                qos,
                seq,
                retained,
            }
        }
        0x06 => {
            let trace = read_trace(&mut reader)?;
            let topic = reader.string()?;
            let publisher = reader.u64()?;
            let publish_micros = reader.u64()?;
            let origin_region = reader.u16()?;
            let headers = reader.long_string()?;
            let payload = reader.payload()?;
            let qos = reader.u8()?;
            let seq = reader.u64()?;
            let retain = reader.u8()? != 0;
            Frame::Forward {
                topic,
                publisher,
                publish_micros,
                origin_region,
                headers,
                payload,
                trace,
                qos,
                seq,
                retain,
            }
        }
        0x08 => Frame::StatsRequest,
        0x09 => Frame::StatsReport { json: reader.long_string()? },
        0x0A => {
            let topic = reader.string()?;
            let mask = reader.u32()?;
            let mode_byte = reader.u8()?;
            let mode =
                WireMode::from_u8(mode_byte).ok_or(CodecError::InvalidEnum { value: mode_byte })?;
            let epoch = reader.u64()?;
            Frame::ConfigUpdate { topic, mask, mode, epoch }
        }
        0x0B => Frame::Ping { nonce: reader.u64()? },
        0x0C => Frame::Pong { nonce: reader.u64()? },
        0x0D => Frame::StatsSnapshotRequest,
        0x0E => Frame::StatsSnapshot { json: reader.long_string()? },
        0x0F => {
            let topic = reader.string()?;
            let retry_after_ms = reader.u32()?;
            let seq = reader.u64()?;
            Frame::Busy { topic, retry_after_ms, seq }
        }
        0x10 => {
            let topic = reader.string()?;
            let seq = reader.u64()?;
            Frame::PubAck { topic, seq }
        }
        0x11 => {
            let topic = reader.string()?;
            let publisher = reader.u64()?;
            let seq = reader.u64()?;
            Frame::DeliverAck { topic, publisher, seq }
        }
        0x12 => {
            let topic = reader.string()?;
            let mask = reader.u32()?;
            let mode_byte = reader.u8()?;
            let mode =
                WireMode::from_u8(mode_byte).ok_or(CodecError::InvalidEnum { value: mode_byte })?;
            let epoch = reader.u64()?;
            Frame::HandoverPrepare { topic, mask, mode, epoch }
        }
        0x13 => {
            let topic = reader.string()?;
            let epoch = reader.u64()?;
            let grace_ms = reader.u32()?;
            Frame::HandoverCommit { topic, epoch, grace_ms }
        }
        0x14 => {
            let topic = reader.string()?;
            let epoch = reader.u64()?;
            Frame::HandoverAbort { topic, epoch }
        }
        0x15 => {
            let topic = reader.string()?;
            let epoch = reader.u64()?;
            let phase = reader.u8()?;
            Frame::HandoverAck { topic, epoch, phase }
        }
        other => return Err(CodecError::UnknownTag { tag: other }),
    };
    Ok(Some(frame))
}

/// Encodes a frame into a fresh buffer — convenience for writers that send
/// one frame at a time.
pub fn encode_to_bytes(frame: &Frame) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    encode(frame, &mut buf);
    buf.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Connect { client_id: 77, role: Role::Subscriber, policy: None },
            Frame::Connect {
                client_id: 78,
                role: Role::Subscriber,
                policy: Some(SlowConsumerPolicy::Block {
                    deadline: std::time::Duration::from_millis(250),
                }),
            },
            Frame::ConnectAck { region: 9 },
            Frame::Subscribe { topic: "games/eu/chat".into(), filter: "price < 10".into(), qos: 0 },
            Frame::Subscribe { topic: "ticks".into(), filter: String::new(), qos: 1 },
            Frame::Unsubscribe { topic: "t".into() },
            Frame::Publish {
                topic: "scores".into(),
                publisher: 12,
                publish_micros: 123_456_789,
                single_target: true,
                headers: "{\"price\":9.5}".into(),
                payload: Bytes::from_static(b"hello world"),
                trace: None,
                qos: 0,
                seq: 0,
                retain: false,
                epoch: 0,
            },
            Frame::Publish {
                topic: "scores".into(),
                publisher: 12,
                publish_micros: 123_456_790,
                single_target: false,
                headers: String::new(),
                payload: Bytes::from_static(b"traced"),
                trace: Some(TraceContext::new(0xDEAD_BEEF_0000_0001)),
                qos: 1,
                seq: 7,
                retain: true,
                epoch: 3,
            },
            Frame::Forward {
                topic: "scores".into(),
                publisher: 12,
                publish_micros: 42,
                origin_region: 3,
                headers: String::new(),
                payload: Bytes::from_static(&[0, 1, 2, 255]),
                trace: None,
                qos: 0,
                seq: 0,
                retain: false,
            },
            Frame::Forward {
                topic: "scores".into(),
                publisher: 12,
                publish_micros: 43,
                origin_region: 3,
                headers: String::new(),
                payload: Bytes::from_static(&[7]),
                trace: Some(TraceContext {
                    trace_id: 0x1234_5678_9ABC_DEF0,
                    sampled: true,
                    admit_micros: 100,
                    match_micros: 200,
                    queue_micros: 300,
                    write_micros: 400,
                }),
                qos: 1,
                seq: u64::MAX,
                retain: false,
            },
            Frame::Deliver {
                topic: "scores".into(),
                publisher: 12,
                publish_micros: 42,
                headers: String::new(),
                payload: Bytes::new(),
                trace: None,
                qos: 0,
                seq: 0,
                retained: false,
            },
            Frame::Deliver {
                topic: "scores".into(),
                publisher: 12,
                publish_micros: 44,
                headers: String::new(),
                payload: Bytes::from_static(b"x"),
                trace: Some(TraceContext {
                    trace_id: 5,
                    sampled: false,
                    admit_micros: 1,
                    match_micros: 2,
                    queue_micros: 0,
                    write_micros: 0,
                }),
                qos: 1,
                seq: 9,
                retained: true,
            },
            Frame::StatsRequest,
            Frame::StatsReport { json: "{\"topics\":{}}".into() },
            Frame::ConfigUpdate {
                topic: "scores".into(),
                mask: 0b1011,
                mode: WireMode::Routed,
                epoch: 4,
            },
            Frame::Ping { nonce: u64::MAX },
            Frame::Pong { nonce: 0 },
            Frame::StatsSnapshotRequest,
            Frame::StatsSnapshot { json: "{\"counters\":{}}".into() },
            Frame::Busy { topic: "scores".into(), retry_after_ms: 125, seq: 3 },
            Frame::PubAck { topic: "ticks".into(), seq: 41 },
            Frame::DeliverAck { topic: "ticks".into(), publisher: 12, seq: 41 },
            Frame::HandoverPrepare {
                topic: "scores".into(),
                mask: 0b0110,
                mode: WireMode::Routed,
                epoch: 5,
            },
            Frame::HandoverCommit { topic: "scores".into(), epoch: 5, grace_ms: 750 },
            Frame::HandoverAbort { topic: "scores".into(), epoch: 5 },
            Frame::HandoverAck { topic: "scores".into(), epoch: 5, phase: 1 },
        ]
    }

    #[test]
    fn roundtrip_every_frame() {
        for frame in all_frames() {
            let mut buf = BytesMut::new();
            encode(&frame, &mut buf);
            let decoded = decode(&mut buf).unwrap().unwrap();
            assert_eq!(decoded, frame);
            assert!(buf.is_empty(), "no residue after {frame:?}");
        }
    }

    #[test]
    fn roundtrip_back_to_back_frames() {
        let frames = all_frames();
        let mut buf = BytesMut::new();
        for frame in &frames {
            encode(frame, &mut buf);
        }
        for frame in &frames {
            assert_eq!(decode(&mut buf).unwrap().as_ref(), Some(frame));
        }
        assert!(decode(&mut buf).unwrap().is_none());
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let frame = Frame::Publish {
            topic: "t".into(),
            publisher: 1,
            publish_micros: 2,
            single_target: false,
            headers: String::new(),
            payload: Bytes::from_static(b"abc"),
            trace: Some(TraceContext::new(9)),
            qos: 1,
            seq: 5,
            retain: false,
            epoch: 2,
        };
        let full = encode_to_bytes(&frame);
        for cut in 0..full.len() {
            let mut buf = BytesMut::from(&full[..cut]);
            assert_eq!(decode(&mut buf).unwrap(), None, "cut at {cut}");
        }
        let mut buf = BytesMut::from(&full[..]);
        assert_eq!(decode(&mut buf).unwrap(), Some(frame));
    }

    #[test]
    fn byte_by_byte_feed() {
        let frame =
            Frame::ConfigUpdate { topic: "x".into(), mask: 7, mode: WireMode::Direct, epoch: 1 };
        let full = encode_to_bytes(&frame);
        let mut buf = BytesMut::new();
        let mut decoded = None;
        for byte in full.iter() {
            buf.put_u8(*byte);
            if let Some(f) = decode(&mut buf).unwrap() {
                decoded = Some(f);
            }
        }
        assert_eq!(decoded, Some(frame));
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32((MAX_FRAME_BYTES + 1) as u32);
        assert_eq!(decode(&mut buf), Err(CodecError::Oversized { len: MAX_FRAME_BYTES + 1 }));
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        buf.put_u8(0xEE);
        assert_eq!(decode(&mut buf), Err(CodecError::UnknownTag { tag: 0xEE }));
    }

    #[test]
    fn truncated_body_rejected() {
        // Declared body of 3 bytes: tag + u16, but Connect needs 9 more.
        let mut buf = BytesMut::new();
        buf.put_u32(3);
        buf.put_u8(0x01);
        buf.put_u16(0);
        assert_eq!(decode(&mut buf), Err(CodecError::Truncated));
    }

    #[test]
    fn invalid_role_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(10);
        buf.put_u8(0x01);
        buf.put_u64(5);
        buf.put_u8(200);
        assert_eq!(decode(&mut buf), Err(CodecError::InvalidEnum { value: 200 }));
    }

    fn traced_deliver(trace: Option<TraceContext>) -> Frame {
        Frame::Deliver {
            topic: "t".into(),
            publisher: 1,
            publish_micros: 2,
            headers: String::new(),
            payload: Bytes::from_static(b"p"),
            trace,
            qos: 0,
            seq: 0,
            retained: false,
        }
    }

    #[test]
    fn peek_trace_reads_sampled_data_frames_only() {
        // Sampled Deliver: peek sees the id and match stamp.
        let mut ctx = TraceContext::new(0xAB);
        ctx.match_micros = 777;
        let encoded = encode_to_bytes(&traced_deliver(Some(ctx)));
        assert_eq!(peek_trace(&encoded), Some((0xAB, 777)));

        // Absent and unsampled contexts peek as None.
        assert_eq!(peek_trace(&encode_to_bytes(&traced_deliver(None))), None);
        let unsampled = TraceContext { sampled: false, ..TraceContext::new(0xAB) };
        assert_eq!(peek_trace(&encode_to_bytes(&traced_deliver(Some(unsampled)))), None);

        // Sampled Forward peeks too (peer-hop writer attribution).
        let forward = Frame::Forward {
            topic: "t".into(),
            publisher: 1,
            publish_micros: 2,
            origin_region: 0,
            headers: String::new(),
            payload: Bytes::new(),
            trace: Some(ctx),
            qos: 0,
            seq: 0,
            retain: false,
        };
        assert_eq!(peek_trace(&encode_to_bytes(&forward)), Some((0xAB, 777)));
    }

    #[test]
    fn peek_trace_excludes_control_frames() {
        // Control traffic can never produce spans, even under a
        // keepalive storm: peek rejects every control tag outright.
        let control = [
            Frame::Connect { client_id: 1, role: Role::Publisher, policy: None },
            Frame::ConnectAck { region: 0 },
            Frame::Subscribe { topic: "t".into(), filter: String::new(), qos: 1 },
            Frame::Unsubscribe { topic: "t".into() },
            Frame::StatsRequest,
            Frame::StatsReport { json: "{}".into() },
            Frame::ConfigUpdate { topic: "t".into(), mask: 1, mode: WireMode::Direct, epoch: 0 },
            Frame::Ping { nonce: 1 },
            Frame::Pong { nonce: 1 },
            Frame::StatsSnapshotRequest,
            Frame::StatsSnapshot { json: "{}".into() },
            Frame::Busy { topic: "t".into(), retry_after_ms: 5, seq: 2 },
            Frame::PubAck { topic: "t".into(), seq: 1 },
            Frame::DeliverAck { topic: "t".into(), publisher: 1, seq: 1 },
            Frame::HandoverPrepare { topic: "t".into(), mask: 2, mode: WireMode::Direct, epoch: 1 },
            Frame::HandoverCommit { topic: "t".into(), epoch: 1, grace_ms: 100 },
            Frame::HandoverAbort { topic: "t".into(), epoch: 1 },
            Frame::HandoverAck { topic: "t".into(), epoch: 1, phase: 2 },
        ];
        for frame in control {
            assert!(frame.is_control(), "{frame:?} must be control traffic");
            assert_eq!(peek_trace(&encode_to_bytes(&frame)), None, "{frame:?}");
        }
        // Publish is data but broker-inbound; the writer-side peek
        // ignores it as well.
        let publish = Frame::Publish {
            topic: "t".into(),
            publisher: 1,
            publish_micros: 2,
            single_target: false,
            headers: String::new(),
            payload: Bytes::new(),
            trace: Some(TraceContext::new(3)),
            qos: 0,
            seq: 0,
            retain: false,
            epoch: 0,
        };
        assert!(!publish.is_control());
        assert_eq!(peek_trace(&encode_to_bytes(&publish)), None);
    }

    #[test]
    fn stamp_queue_write_patches_only_the_stamp_slots() {
        let mut ctx = TraceContext::new(0xF00D);
        ctx.admit_micros = 10;
        ctx.match_micros = 20;
        let original = encode_to_bytes(&traced_deliver(Some(ctx)));
        let patched = stamp_queue_write(&original, 30, 40);
        assert_eq!(patched.len(), original.len());

        // The original (shared by the zero-copy fan-out) is untouched.
        let mut buf = BytesMut::from(original.as_ref());
        let Ok(Some(Frame::Deliver { trace: Some(untouched), .. })) = decode(&mut buf) else {
            panic!("original must still decode as Deliver");
        };
        assert_eq!((untouched.queue_micros, untouched.write_micros), (0, 0));

        // The patched copy decodes with the stamps and nothing else
        // changed.
        let mut buf = BytesMut::from(patched.as_ref());
        let Ok(Some(Frame::Deliver { trace: Some(stamped), payload, .. })) = decode(&mut buf)
        else {
            panic!("patched frame must decode as Deliver");
        };
        assert_eq!(stamped.queue_micros, 30);
        assert_eq!(stamped.write_micros, 40);
        assert_eq!(stamped.trace_id, 0xF00D);
        assert_eq!((stamped.admit_micros, stamped.match_micros), (10, 20));
        assert_eq!(payload, Bytes::from_static(b"p"));
    }

    #[test]
    fn untraced_frame_costs_one_flag_byte() {
        let untraced = encode_to_bytes(&traced_deliver(None));
        let traced = encode_to_bytes(&traced_deliver(Some(TraceContext::new(1))));
        // flag byte is shared; a present context adds id + sampled +
        // four u64 stamps.
        assert_eq!(traced.len() - untraced.len(), 8 + 1 + 4 * 8);
        assert_eq!(peek_trace(&untraced), None);
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(4);
        buf.put_u8(0x04); // Unsubscribe
        buf.put_u16(1);
        buf.put_u8(0xFF);
        assert_eq!(decode(&mut buf), Err(CodecError::InvalidUtf8));
    }
}
