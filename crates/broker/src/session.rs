//! Client-session fault-tolerance primitives: reconnect backoff policy
//! and the bounded publication buffer.
//!
//! These types are deliberately free of I/O so they can be unit-tested
//! exhaustively; `client.rs` wires them into the subscriber actor and the
//! publisher send path.
//!
//! The backoff schedule implements *decorrelated jitter* (each delay is
//! drawn uniformly from `[base, min(cap, 3 × previous)]`), which spreads
//! reconnect storms across time far better than plain exponential
//! doubling. The RNG is a tiny SplitMix64 — the broker crate has no
//! external RNG dependency and the sequence only needs to be
//! well-distributed, not cryptographic — seeded per client so test runs
//! are reproducible.

use crate::frame::TraceContext;
use std::collections::VecDeque;
use std::time::Duration;

/// Reconnect backoff policy: base delay, cap, and an optional attempt
/// limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Minimum (and first) delay between reconnect attempts.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Give up after this many consecutive failed attempts; `None` retries
    /// forever.
    pub max_attempts: Option<u32>,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            base: Duration::from_millis(100),
            cap: Duration::from_secs(10),
            max_attempts: None,
        }
    }
}

impl ReconnectPolicy {
    /// A policy with the given base and cap that retries forever.
    pub fn new(base: Duration, cap: Duration) -> Self {
        ReconnectPolicy { base, cap, max_attempts: None }
    }

    /// Returns a copy with an attempt limit.
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = Some(max_attempts);
        self
    }

    /// Starts a backoff schedule under this policy, seeded for
    /// reproducibility (seed with the client id so distinct clients
    /// decorrelate).
    pub fn backoff(&self, seed: u64) -> Backoff {
        Backoff { policy: *self, prev: None, attempts: 0, rng: SplitMix64::new(seed) }
    }
}

/// One reconnect episode: yields successive delays under a
/// [`ReconnectPolicy`] until the attempt limit is exhausted.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: ReconnectPolicy,
    prev: Option<Duration>,
    attempts: u32,
    rng: SplitMix64,
}

impl Backoff {
    /// The next delay to sleep before retrying, or `None` once the policy's
    /// attempt limit is exhausted.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if let Some(max) = self.policy.max_attempts {
            if self.attempts >= max {
                return None;
            }
        }
        self.attempts += 1;
        let base = self.policy.base.min(self.policy.cap);
        let delay = match self.prev {
            None => base,
            Some(prev) => {
                // Decorrelated jitter: uniform in [base, min(cap, 3 × prev)].
                let upper = prev.saturating_mul(3).min(self.policy.cap).max(base);
                let span = upper.as_nanos().saturating_sub(base.as_nanos()) as u64;
                if span == 0 {
                    base
                } else {
                    base + Duration::from_nanos(self.rng.next_u64() % (span + 1))
                }
            }
        };
        self.prev = Some(delay);
        Some(delay)
    }

    /// Number of delays handed out so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }
}

/// SplitMix64 — a tiny, fast, well-distributed PRNG (Steele et al.,
/// "Fast splittable pseudorandom number generators"). Used only for
/// backoff jitter; never for anything security-sensitive.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A publication held back while every serving region is unreachable.
/// The serving set is *not* stored: it is re-resolved from the installed
/// configuration at flush time, so a reconfiguration during the outage
/// steers buffered traffic correctly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingPublish {
    /// Destination topic.
    pub topic: String,
    /// Attribute headers serialized as JSON (empty for none).
    pub headers: String,
    /// Message payload.
    pub payload: Vec<u8>,
    /// Original publication timestamp (microseconds since the Unix
    /// epoch), preserved so end-to-end latency measurements include the
    /// buffering time.
    pub publish_micros: u64,
    /// Trace context assigned at publish time, preserved across buffering
    /// and reconnect replay so a sampled publication keeps its trace id
    /// end to end. `None` for unsampled publications.
    pub trace: Option<TraceContext>,
    /// Delivery quality of service: `0` fire-and-forget, `1`
    /// at-least-once (acked by the broker, retransmitted until a
    /// [`crate::frame::Frame::PubAck`] arrives).
    pub qos: u8,
    /// Per-publisher sequence number; `0` for unsequenced QoS 0 traffic.
    pub seq: u64,
    /// Whether the broker should retain this publication as the topic's
    /// last value, replayed to future subscribers.
    pub retain: bool,
}

/// A bounded FIFO of publications buffered during an outage.
///
/// When full, the *oldest* entry is evicted (and counted as dropped) so
/// the buffer always holds the freshest window of traffic.
#[derive(Debug)]
pub struct PendingQueue {
    entries: VecDeque<PendingPublish>,
    limit: usize,
    dropped: u64,
}

impl PendingQueue {
    /// An empty queue holding at most `limit` publications (a limit of 0
    /// disables buffering entirely: every push is an immediate drop).
    pub fn new(limit: usize) -> Self {
        PendingQueue { entries: VecDeque::new(), limit, dropped: 0 }
    }

    /// Buffers a publication, evicting the oldest entry if the queue is
    /// full. Returns `true` when the new entry was retained.
    pub fn push(&mut self, entry: PendingPublish) -> bool {
        if self.limit == 0 {
            self.dropped += 1;
            return false;
        }
        while self.entries.len() >= self.limit {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(entry);
        true
    }

    /// Takes the oldest buffered publication.
    pub fn pop(&mut self) -> Option<PendingPublish> {
        self.entries.pop_front()
    }

    /// Puts a publication back at the *front* (used when a flush attempt
    /// fails midway, preserving FIFO order).
    pub fn push_front(&mut self, entry: PendingPublish) {
        self.entries.push_front(entry);
    }

    /// Number of buffered publications.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total publications evicted or rejected since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: u8) -> PendingPublish {
        PendingPublish {
            topic: "t".to_string(),
            headers: String::new(),
            payload: vec![n],
            publish_micros: n as u64,
            trace: None,
            qos: 0,
            seq: 0,
            retain: false,
        }
    }

    #[test]
    fn first_delay_is_base_then_within_bounds() {
        let policy = ReconnectPolicy::new(Duration::from_millis(50), Duration::from_millis(800));
        let mut backoff = policy.backoff(1);
        assert_eq!(backoff.next_delay(), Some(Duration::from_millis(50)));
        let mut prev = Duration::from_millis(50);
        for _ in 0..32 {
            let d = backoff.next_delay().unwrap();
            assert!(d >= policy.base, "delay {d:?} below base");
            assert!(d <= policy.cap, "delay {d:?} above cap");
            assert!(d <= prev.saturating_mul(3).min(policy.cap).max(policy.base));
            prev = d;
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let policy = ReconnectPolicy::default();
        let draws = |seed: u64| {
            let mut b = policy.backoff(seed);
            (0..16).map(|_| b.next_delay().unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(draws(9), draws(9));
        assert_ne!(draws(9), draws(10));
    }

    #[test]
    fn max_attempts_exhausts() {
        let policy = ReconnectPolicy::default().with_max_attempts(3);
        let mut backoff = policy.backoff(0);
        assert!(backoff.next_delay().is_some());
        assert!(backoff.next_delay().is_some());
        assert!(backoff.next_delay().is_some());
        assert_eq!(backoff.next_delay(), None);
        assert_eq!(backoff.attempts(), 3);
    }

    #[test]
    fn degenerate_policy_yields_base() {
        let policy = ReconnectPolicy::new(Duration::from_millis(10), Duration::from_millis(10));
        let mut backoff = policy.backoff(5);
        for _ in 0..8 {
            assert_eq!(backoff.next_delay(), Some(Duration::from_millis(10)));
        }
    }

    #[test]
    fn queue_bounds_and_counts_drops() {
        let mut queue = PendingQueue::new(2);
        assert!(queue.push(entry(1)));
        assert!(queue.push(entry(2)));
        assert!(queue.push(entry(3))); // evicts 1
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.dropped(), 1);
        assert_eq!(queue.pop().unwrap().payload, vec![2]);
        assert_eq!(queue.pop().unwrap().payload, vec![3]);
        assert!(queue.pop().is_none());
    }

    #[test]
    fn zero_limit_disables_buffering() {
        let mut queue = PendingQueue::new(0);
        assert!(!queue.push(entry(1)));
        assert!(queue.is_empty());
        assert_eq!(queue.dropped(), 1);
    }

    #[test]
    fn buffered_publication_keeps_its_trace_context() {
        // A sampled publication buffered during an outage must replay
        // with its original trace id.
        let mut queue = PendingQueue::new(2);
        let ctx = TraceContext::new(0xCAFE);
        queue.push(PendingPublish { trace: Some(ctx), ..entry(1) });
        let replayed = queue.pop().unwrap();
        assert_eq!(replayed.trace, Some(ctx));
        assert_eq!(replayed.trace.unwrap().trace_id, 0xCAFE);
    }

    #[test]
    fn push_front_preserves_order() {
        let mut queue = PendingQueue::new(4);
        queue.push(entry(1));
        queue.push(entry(2));
        let head = queue.pop().unwrap();
        queue.push_front(head);
        assert_eq!(queue.pop().unwrap().payload, vec![1]);
        assert_eq!(queue.pop().unwrap().payload, vec![2]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn numbered(n: u64) -> PendingPublish {
        PendingPublish {
            topic: "t".to_string(),
            headers: String::new(),
            payload: Vec::new(),
            publish_micros: n,
            trace: None,
            qos: 0,
            seq: 0,
            retain: false,
        }
    }

    proptest! {
        /// The queue never holds more than its limit, no matter the push
        /// sequence.
        #[test]
        fn never_exceeds_limit(limit in 0usize..32, pushes in 0usize..200) {
            let mut queue = PendingQueue::new(limit);
            for n in 0..pushes as u64 {
                queue.push(numbered(n));
                prop_assert!(queue.len() <= limit);
            }
        }

        /// Overflow evicts from the front only: what remains is always the
        /// freshest contiguous suffix of everything pushed, in order.
        #[test]
        fn preserves_order_across_overflow(limit in 1usize..16, pushes in 0usize..100) {
            let mut queue = PendingQueue::new(limit);
            for n in 0..pushes as u64 {
                queue.push(numbered(n));
            }
            let kept: Vec<u64> =
                std::iter::from_fn(|| queue.pop()).map(|e| e.publish_micros).collect();
            let expect_start = pushes.saturating_sub(limit) as u64;
            let expected: Vec<u64> = (expect_start..pushes as u64).collect();
            prop_assert_eq!(kept, expected);
        }

        /// Every push beyond capacity drops exactly one entry; nothing is
        /// lost or double-counted: retained + dropped == pushed.
        #[test]
        fn counts_drops_exactly(limit in 0usize..16, pushes in 0usize..100) {
            let mut queue = PendingQueue::new(limit);
            for n in 0..pushes as u64 {
                queue.push(numbered(n));
            }
            let expected_dropped = pushes.saturating_sub(limit) as u64;
            prop_assert_eq!(queue.dropped(), expected_dropped);
            prop_assert_eq!(queue.len() as u64 + queue.dropped(), pushes as u64);
        }

        /// Interleaved pops never disturb the drop accounting: a pop frees
        /// a slot, so the next push is retained without eviction.
        #[test]
        fn pop_frees_capacity(limit in 1usize..8, rounds in 1usize..50) {
            let mut queue = PendingQueue::new(limit);
            let mut next = 0u64;
            for _ in 0..rounds {
                for _ in 0..limit {
                    queue.push(numbered(next));
                    next += 1;
                }
                let before = queue.dropped();
                let popped = queue.pop();
                prop_assert!(popped.is_some());
                queue.push(numbered(next));
                next += 1;
                prop_assert_eq!(queue.dropped(), before);
            }
        }
    }
}
