//! Wire-protocol frames exchanged between clients, brokers and the
//! controller.
//!
//! The protocol is a flat set of frames over a length-prefixed binary
//! encoding (see [`crate::codec`]). Publications travel as [`Frame::Publish`]
//! (client → broker), [`Frame::Forward`] (broker → peer broker, routed
//! delivery) and [`Frame::Deliver`] (broker → subscriber); the control
//! plane uses [`Frame::StatsReport`] (region manager → controller) and
//! [`Frame::ConfigUpdate`] (controller → broker → clients).

use crate::flow::SlowConsumerPolicy;
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Who is opening a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// A publishing client.
    Publisher,
    /// A subscribing client.
    Subscriber,
    /// A peer broker in another region (forwarding channel).
    Peer,
    /// The MultiPub controller's control-plane connection.
    Controller,
}

impl Role {
    pub(crate) fn to_u8(self) -> u8 {
        match self {
            Role::Publisher => 0,
            Role::Subscriber => 1,
            Role::Peer => 2,
            Role::Controller => 3,
        }
    }

    pub(crate) fn from_u8(value: u8) -> Option<Role> {
        Some(match value {
            0 => Role::Publisher,
            1 => Role::Subscriber,
            2 => Role::Peer,
            3 => Role::Controller,
            _ => return None,
        })
    }
}

/// Delivery mode carried in configuration updates (mirrors
/// [`multipub_core::assignment::DeliveryMode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WireMode {
    /// Publishers send to every serving region.
    Direct,
    /// Publishers send to their closest serving region, which forwards.
    Routed,
}

impl WireMode {
    pub(crate) fn to_u8(self) -> u8 {
        match self {
            WireMode::Direct => 0,
            WireMode::Routed => 1,
        }
    }

    pub(crate) fn from_u8(value: u8) -> Option<WireMode> {
        Some(match value {
            0 => WireMode::Direct,
            1 => WireMode::Routed,
            _ => return None,
        })
    }
}

impl From<multipub_core::assignment::DeliveryMode> for WireMode {
    fn from(mode: multipub_core::assignment::DeliveryMode) -> Self {
        match mode {
            multipub_core::assignment::DeliveryMode::Direct => WireMode::Direct,
            multipub_core::assignment::DeliveryMode::Routed => WireMode::Routed,
        }
    }
}

impl From<WireMode> for multipub_core::assignment::DeliveryMode {
    fn from(mode: WireMode) -> Self {
        match mode {
            WireMode::Direct => multipub_core::assignment::DeliveryMode::Direct,
            WireMode::Routed => multipub_core::assignment::DeliveryMode::Routed,
        }
    }
}

/// Optional per-message trace context carried on the publish path
/// ([`Frame::Publish`] → [`Frame::Forward`] → [`Frame::Deliver`]).
///
/// The sampling decision is made once at the publisher and travels with
/// the message; each pipeline stage stamps the wall-clock microsecond
/// at which it finished into its slot (`0` = not yet stamped), so the
/// receiver can reconstruct per-hop stage spans that sum exactly to the
/// end-to-end trip time (see `multipub_obs::trace` and DESIGN.md §12).
///
/// On the wire the context is encoded at a **fixed offset** immediately
/// after the tag byte (see [`crate::codec`]): the encoded bytes of a
/// zero-copy fan-out are shared across subscriber queues, and the
/// writer task patches the queue/write stamps into a private copy of
/// the sampled frames without re-encoding. Control frames never carry
/// a context ([`Frame::is_control`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// Trace id minted at the publisher; groups one message's spans.
    pub trace_id: u64,
    /// Whether stages should emit spans for this message.
    pub sampled: bool,
    /// When broker admission control passed (µs since the UNIX epoch).
    pub admit_micros: u64,
    /// When shard match + encode finished (µs since the UNIX epoch).
    pub match_micros: u64,
    /// When the frame left its outbound flow queue (µs since the UNIX
    /// epoch); stamped into the encoded bytes by the writer task.
    pub queue_micros: u64,
    /// When the vectored socket write started (µs since the UNIX
    /// epoch); stamped into the encoded bytes by the writer task.
    pub write_micros: u64,
}

impl TraceContext {
    /// A fresh sampled context with no stage stamps yet.
    #[must_use]
    pub fn new(trace_id: u64) -> Self {
        TraceContext {
            trace_id,
            sampled: true,
            admit_micros: 0,
            match_micros: 0,
            queue_micros: 0,
            write_micros: 0,
        }
    }
}

/// A protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Opens a connection, declaring the sender's identity and role.
    Connect {
        /// The connecting client/peer id.
        client_id: u64,
        /// The sender's role.
        role: Role,
        /// Slow-consumer policy the sender asks the broker to apply to
        /// this connection's outbound queue; `None` defers to the
        /// broker's configured default. Only meaningful for
        /// [`Role::Subscriber`] connections.
        policy: Option<SlowConsumerPolicy>,
    },
    /// Accepts a connection, telling the sender which region it reached.
    ConnectAck {
        /// The broker's region index.
        region: u16,
    },
    /// Registers interest in a topic, optionally restricted by a
    /// content filter (a `multipub-filter` predicate in textual form).
    Subscribe {
        /// Topic name.
        topic: String,
        /// Content filter source, empty for plain topic subscription.
        filter: String,
        /// Requested delivery quality of service: `0` = at-most-once,
        /// `1` = at-least-once (the broker tracks unacked deliveries
        /// for this subscription and redelivers on reconnect).
        qos: u8,
    },
    /// Removes interest in a topic.
    Unsubscribe {
        /// Topic name.
        topic: String,
    },
    /// A publication sent by a publishing client.
    Publish {
        /// Topic name.
        topic: String,
        /// Publishing client id.
        publisher: u64,
        /// Publisher-side timestamp, microseconds since an arbitrary epoch
        /// (used for end-to-end latency measurements).
        publish_micros: u64,
        /// `true` when the publisher sent this message to **only this**
        /// broker (routed delivery), `false` when it fanned out to every
        /// serving region itself (direct delivery). The broker forwards
        /// single-target publications to the topic's other serving
        /// regions, which also closes the reconfiguration window where a
        /// publisher's configuration view is stale.
        single_target: bool,
        /// JSON-encoded content headers (see `multipub-filter`), empty
        /// when the publication carries none.
        headers: String,
        /// Message payload.
        payload: Bytes,
        /// Optional trace context; `None` for unsampled messages.
        trace: Option<TraceContext>,
        /// Delivery quality of service: `0` = at-most-once (fire and
        /// forget), `1` = at-least-once (the broker answers with a
        /// [`Frame::PubAck`] and the publisher retransmits until acked).
        qos: u8,
        /// Per-publisher sequence number for QoS 1 publications
        /// (monotonic, starting at 1); `0` on QoS 0 traffic. Together
        /// with `publisher` this keys the broker's dedup window so
        /// retransmits are idempotent.
        seq: u64,
        /// When `true` the broker stores this message as the topic's
        /// retained last value (replayed to new subscribers); an empty
        /// payload clears the retained value.
        retain: bool,
        /// The topic epoch of the configuration the publisher steered
        /// by (`0` before any reconfiguration). Retiring brokers use a
        /// stale epoch to recognize — and bridge, not drop — traffic
        /// from publishers that have not yet re-steered (DESIGN.md §15).
        epoch: u64,
    },
    /// A publication forwarded between brokers (routed delivery).
    Forward {
        /// Topic name.
        topic: String,
        /// Publishing client id.
        publisher: u64,
        /// Publisher-side timestamp (microseconds).
        publish_micros: u64,
        /// Region the forwarding broker lives in.
        origin_region: u16,
        /// JSON-encoded content headers, empty when none.
        headers: String,
        /// Message payload.
        payload: Bytes,
        /// Optional trace context; `None` for unsampled messages.
        trace: Option<TraceContext>,
        /// Delivery quality of service of the originating publish.
        qos: u8,
        /// Origin publisher's sequence number (`0` on QoS 0 traffic).
        /// Dedup at the receiving broker is keyed on the **origin**
        /// publisher so a star-topology mesh cannot double-deliver.
        seq: u64,
        /// Whether the receiving broker should also store this message
        /// as the topic's retained last value.
        retain: bool,
    },
    /// A publication delivered to a subscriber.
    Deliver {
        /// Topic name.
        topic: String,
        /// Publishing client id.
        publisher: u64,
        /// Publisher-side timestamp (microseconds).
        publish_micros: u64,
        /// JSON-encoded content headers, empty when none.
        headers: String,
        /// Message payload.
        payload: Bytes,
        /// Optional trace context; `None` for unsampled messages.
        trace: Option<TraceContext>,
        /// Delivery quality of service of the originating publish. On
        /// QoS 1 the subscriber answers with a [`Frame::DeliverAck`] so
        /// the broker can trim its unacked-delivery buffer.
        qos: u8,
        /// Origin publisher's sequence number (`0` on QoS 0 traffic);
        /// subscribers filter duplicate `(publisher, seq)` pairs.
        seq: u64,
        /// `true` when this is a retained last-value replay triggered by
        /// a subscription rather than a live publication.
        retained: bool,
    },
    /// Controller → broker: asks the region manager for its statistics.
    StatsRequest,
    /// Broker → controller: one region manager's interval report,
    /// JSON-encoded (see [`crate::broker::RegionReport`]).
    StatsReport {
        /// JSON body of the report.
        json: String,
    },
    /// Controller → broker, and broker → affected clients: a topic's new
    /// configuration (assignment bitmask + delivery mode).
    ConfigUpdate {
        /// Topic name.
        topic: String,
        /// Assignment bitmask, bit `i` ↔ region `i`.
        mask: u32,
        /// Delivery mode.
        mode: WireMode,
        /// Monotonically-increasing per-topic configuration epoch.
        /// Receivers ignore updates whose epoch is older than what they
        /// already hold, so a delayed or replayed update can never roll
        /// a topic's view backwards (DESIGN.md §15).
        epoch: u64,
    },
    /// Latency probe — and keepalive. [`crate::probe`] times Ping/Pong
    /// round trips; clients with
    /// [`crate::client::ClientConfig::keepalive`] set (and outbound peer
    /// links on brokers with an idle timeout) also send periodic Pings so
    /// a broker's idle deadline sees traffic on otherwise-quiet but
    /// healthy connections.
    Ping {
        /// Echoed back in the matching [`Frame::Pong`].
        nonce: u64,
    },
    /// Latency probe response.
    Pong {
        /// The nonce of the [`Frame::Ping`] being answered.
        nonce: u64,
    },
    /// Controller → broker: asks for the broker's metrics-registry
    /// snapshot (counters, gauges, latency histograms), as opposed to
    /// [`Frame::StatsRequest`], which asks the region manager for its
    /// per-topic interval report.
    StatsSnapshotRequest,
    /// Broker → controller: the metrics-registry snapshot, in
    /// `multipub-obs` JSON form.
    StatsSnapshot {
        /// JSON body of the snapshot (see `multipub_obs::RegistrySnapshot::to_json`).
        json: String,
    },
    /// Broker → publisher: explicit admission-control NACK. The broker
    /// refused a [`Frame::Publish`] — its token bucket ran dry or the
    /// broker is in the `Overloaded` state — and dropped the message
    /// rather than queueing it silently. Clients treat this as
    /// retryable and back off (see DESIGN.md §10).
    Busy {
        /// Topic of the refused publication.
        topic: String,
        /// Broker's hint for when to retry, in milliseconds.
        retry_after_ms: u32,
        /// Sequence number of the refused publication (`0` for QoS 0).
        /// A NACKed QoS 1 publish stays pending at the publisher and is
        /// retransmitted after the hinted delay rather than shed.
        seq: u64,
    },
    /// Broker → publisher: acknowledges a QoS 1 [`Frame::Publish`]. The
    /// broker has accepted the message (fanned it out locally and
    /// forwarded it to peer regions as required) or recognized it as a
    /// duplicate retransmit; either way the publisher stops
    /// retransmitting `seq`.
    PubAck {
        /// Topic of the acknowledged publication.
        topic: String,
        /// The acknowledged publisher sequence number.
        seq: u64,
    },
    /// Subscriber → broker: acknowledges a QoS 1 [`Frame::Deliver`],
    /// letting the broker trim the matching entry from its bounded
    /// per-(topic, client) unacked-delivery buffer.
    DeliverAck {
        /// Topic of the acknowledged delivery.
        topic: String,
        /// Origin publisher id of the acknowledged delivery.
        publisher: u64,
        /// Origin publisher sequence number of the acknowledged delivery.
        seq: u64,
    },
    /// Controller → broker: phase one of a make-before-break handover
    /// (DESIGN.md §15). Every participating broker — new serving
    /// regions and retiring ones alike — records the pending
    /// configuration and starts bridge-forwarding publish traffic to
    /// the **union** of the committed and pending serving sets, so both
    /// sets see every message before any client re-steers. Clients are
    /// not told about the pending epoch; the update stays invisible
    /// until [`Frame::HandoverCommit`].
    HandoverPrepare {
        /// Topic name.
        topic: String,
        /// Pending assignment bitmask, bit `i` ↔ region `i`.
        mask: u32,
        /// Pending delivery mode.
        mode: WireMode,
        /// The epoch being prepared (committed epoch + 1).
        epoch: u64,
    },
    /// Controller → broker: phase two — all participants acked the
    /// prepare, the handover is now irrevocable. Brokers promote the
    /// pending configuration to committed, fan the new epoch to
    /// affected clients (who re-steer make-before-break), and keep
    /// bridging stale-epoch traffic to the retired regions' replacement
    /// set for `grace_ms` before dropping their pending state.
    HandoverCommit {
        /// Topic name.
        topic: String,
        /// The epoch being committed (must match the prepared epoch).
        epoch: u64,
        /// Drain window in milliseconds: how long retiring regions keep
        /// bridge-forwarding stragglers after commit.
        grace_ms: u32,
    },
    /// Controller → broker: a participant died or timed out during
    /// prepare; discard the pending epoch and fall back to the last
    /// committed configuration. Aborts are idempotent — a broker that
    /// never saw the prepare ignores the abort.
    HandoverAbort {
        /// Topic name.
        topic: String,
        /// The epoch being abandoned.
        epoch: u64,
    },
    /// Broker → controller: acknowledges a handover phase frame so the
    /// controller's state machine can advance (or abort on timeout).
    HandoverAck {
        /// Topic name.
        topic: String,
        /// The epoch the ack refers to.
        epoch: u64,
        /// Which phase is being acked: `0` = prepare, `1` = commit,
        /// `2` = abort.
        phase: u8,
    },
}

/// Every tag byte the wire protocol declares, in ascending order.
///
/// This is the protocol's tag catalog: `cargo xtask lint` (pass L3)
/// cross-checks it against [`Frame::tag`] and the codec's encode/decode
/// arms, and the codec property tests drive the decoder with each entry
/// to prove no declared tag can panic it.
pub const KNOWN_TAGS: [u8; 21] = [
    0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E, 0x0F, 0x10,
    0x11, 0x12, 0x13, 0x14, 0x15,
];

impl Frame {
    /// The discriminant byte used on the wire.
    pub fn tag(&self) -> u8 {
        match self {
            Frame::Connect { .. } => 0x01,
            Frame::ConnectAck { .. } => 0x02,
            Frame::Subscribe { .. } => 0x03,
            Frame::Unsubscribe { .. } => 0x04,
            Frame::Publish { .. } => 0x05,
            Frame::Forward { .. } => 0x06,
            Frame::Deliver { .. } => 0x07,
            Frame::StatsRequest => 0x08,
            Frame::StatsReport { .. } => 0x09,
            Frame::ConfigUpdate { .. } => 0x0A,
            Frame::Ping { .. } => 0x0B,
            Frame::Pong { .. } => 0x0C,
            Frame::StatsSnapshotRequest => 0x0D,
            Frame::StatsSnapshot { .. } => 0x0E,
            Frame::Busy { .. } => 0x0F,
            Frame::PubAck { .. } => 0x10,
            Frame::DeliverAck { .. } => 0x11,
            Frame::HandoverPrepare { .. } => 0x12,
            Frame::HandoverCommit { .. } => 0x13,
            Frame::HandoverAbort { .. } => 0x14,
            Frame::HandoverAck { .. } => 0x15,
        }
    }

    /// Whether this frame is control traffic (keepalives, stats,
    /// admission NACKs, connection management) rather than a message on
    /// the publish path. Control frames are excluded from trace
    /// sampling and span emission so keepalive storms under chaos runs
    /// cannot flood the span ring.
    pub fn is_control(&self) -> bool {
        !matches!(self, Frame::Publish { .. } | Frame::Forward { .. } | Frame::Deliver { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_roundtrip() {
        for role in [Role::Publisher, Role::Subscriber, Role::Peer, Role::Controller] {
            assert_eq!(Role::from_u8(role.to_u8()), Some(role));
        }
        assert_eq!(Role::from_u8(42), None);
    }

    #[test]
    fn mode_roundtrip() {
        for mode in [WireMode::Direct, WireMode::Routed] {
            assert_eq!(WireMode::from_u8(mode.to_u8()), Some(mode));
        }
        assert_eq!(WireMode::from_u8(9), None);
    }

    #[test]
    fn mode_converts_to_core() {
        use multipub_core::assignment::DeliveryMode;
        assert_eq!(DeliveryMode::from(WireMode::Routed), DeliveryMode::Routed);
        assert_eq!(WireMode::from(DeliveryMode::Direct), WireMode::Direct);
    }

    #[test]
    fn tags_are_unique() {
        use std::collections::HashSet;
        let frames = [
            Frame::Connect { client_id: 1, role: Role::Publisher, policy: None },
            Frame::ConnectAck { region: 0 },
            Frame::Subscribe { topic: "t".into(), filter: String::new(), qos: 0 },
            Frame::Unsubscribe { topic: "t".into() },
            Frame::Publish {
                topic: "t".into(),
                publisher: 1,
                publish_micros: 0,
                single_target: true,
                headers: String::new(),
                payload: Bytes::new(),
                trace: None,
                qos: 0,
                seq: 0,
                retain: false,
                epoch: 0,
            },
            Frame::Forward {
                topic: "t".into(),
                publisher: 1,
                publish_micros: 0,
                origin_region: 0,
                headers: String::new(),
                payload: Bytes::new(),
                trace: None,
                qos: 0,
                seq: 0,
                retain: false,
            },
            Frame::Deliver {
                topic: "t".into(),
                publisher: 1,
                publish_micros: 0,
                headers: String::new(),
                payload: Bytes::new(),
                trace: None,
                qos: 0,
                seq: 0,
                retained: false,
            },
            Frame::StatsRequest,
            Frame::StatsReport { json: "{}".into() },
            Frame::ConfigUpdate { topic: "t".into(), mask: 1, mode: WireMode::Direct, epoch: 0 },
            Frame::Ping { nonce: 0 },
            Frame::Pong { nonce: 0 },
            Frame::StatsSnapshotRequest,
            Frame::StatsSnapshot { json: "{}".into() },
            Frame::Busy { topic: "t".into(), retry_after_ms: 100, seq: 0 },
            Frame::PubAck { topic: "t".into(), seq: 1 },
            Frame::DeliverAck { topic: "t".into(), publisher: 1, seq: 1 },
            Frame::HandoverPrepare { topic: "t".into(), mask: 3, mode: WireMode::Routed, epoch: 1 },
            Frame::HandoverCommit { topic: "t".into(), epoch: 1, grace_ms: 500 },
            Frame::HandoverAbort { topic: "t".into(), epoch: 1 },
            Frame::HandoverAck { topic: "t".into(), epoch: 1, phase: 0 },
        ];
        let tags: HashSet<u8> = frames.iter().map(Frame::tag).collect();
        assert_eq!(tags.len(), frames.len());
        let declared: HashSet<u8> = KNOWN_TAGS.into_iter().collect();
        assert_eq!(tags, declared, "KNOWN_TAGS must list exactly the tags frames use");

        // Exactly the publish-path frames participate in tracing; all
        // control traffic (Ping/Pong/Stats*, Busy, connection
        // management) is excluded from sampling and span emission.
        let data_tags: HashSet<u8> =
            frames.iter().filter(|f| !f.is_control()).map(Frame::tag).collect();
        assert_eq!(data_tags, HashSet::from([0x05, 0x06, 0x07]));
    }

    #[test]
    fn trace_context_starts_unstamped() {
        let ctx = TraceContext::new(42);
        assert!(ctx.sampled);
        assert_eq!(
            (ctx.admit_micros, ctx.match_micros, ctx.queue_micros, ctx.write_micros),
            (0, 0, 0, 0)
        );
    }
}
